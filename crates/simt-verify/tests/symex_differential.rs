//! Differential property tests between the symbolic translation
//! validator and the marking oracle: on randomly generated kernels with
//! randomly *forged* redundancy markings, anything the oracle refutes on
//! a real execution must come out of `symex::prove` as `S401` or `S402`
//! — never as a proof — and every `S401` counterexample must reproduce a
//! real marking violation when the named block shape is handed to the
//! functional executor.

use gpu_sim::GlobalMemory;
use proptest::prelude::*;
use simt_compiler::compile;
use simt_isa::{
    CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, Marking, MemSpace, Op, SpecialReg, Value,
};
use simt_verify::{oracle, symex, LintCode};

/// One generated straight-line or guarded statement (same recipe as the
/// `random_kernels` suite). Register operands are indices into the value
/// pool modulo its current length.
#[derive(Debug, Clone)]
enum Stmt {
    Add(usize, usize),
    Sub(usize, usize),
    AddImm(usize, u32),
    MinImm(usize, usize, u32),
    And(usize, u32),
    Shl(usize, u32),
    IfAdd { c: usize, lt: bool, imm: u32, d: usize, a: usize },
    IfFresh { c: usize, lt: bool, imm: u32, a: usize },
}

/// Builds a kernel whose value pool is seeded with `tid.x`, `tid.y`,
/// `warpid` and a value loaded from `in[tid.x]`, and which stores the
/// last pool value to `out[linear tid]`.
fn build(stmts: &[Stmt], block: Dim3) -> simt_compiler::CompiledKernel {
    let mut b = KernelBuilder::new("random_forged");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let w = b.special(SpecialReg::WarpId);
    let inp = b.param(1);
    let off = b.shl_imm(tx, 2);
    let laddr = b.iadd(inp, off);
    let ld = b.load(MemSpace::Global, laddr, 0);
    let mut pool = vec![tx, ty, w, ld];
    let pick = |pool: &Vec<simt_isa::Reg>, i: usize| pool[i % pool.len()];
    for s in stmts {
        match *s {
            Stmt::Add(a, c) => {
                let r = b.iadd(pick(&pool, a), pick(&pool, c));
                pool.push(r);
            }
            Stmt::Sub(a, c) => {
                let r = b.isub(pick(&pool, a), pick(&pool, c));
                pool.push(r);
            }
            Stmt::AddImm(a, imm) => {
                let r = b.iadd(pick(&pool, a), imm);
                pool.push(r);
            }
            Stmt::MinImm(a, c, imm) => {
                let shifted = b.iadd(pick(&pool, c), imm);
                let r = b.imin(pick(&pool, a), shifted);
                pool.push(r);
            }
            Stmt::And(a, mask) => {
                let r = b.and(pick(&pool, a), mask);
                pool.push(r);
            }
            Stmt::Shl(a, n) => {
                let r = b.shl_imm(pick(&pool, a), n % 4);
                pool.push(r);
            }
            Stmt::IfAdd { c, lt, imm, d, a } => {
                let cmp = if lt { CmpOp::Lt } else { CmpOp::Eq };
                let p = b.setp(cmp, pick(&pool, c), imm);
                let dst = pick(&pool, d);
                let src = pick(&pool, a);
                b.if_then(Guard::if_true(p), |b| {
                    b.iadd_to(dst, src, 1u32);
                });
            }
            Stmt::IfFresh { c, lt, imm, a } => {
                let cmp = if lt { CmpOp::Lt } else { CmpOp::Eq };
                let p = b.setp(cmp, pick(&pool, c), imm);
                let fresh = b.alloc();
                let src = pick(&pool, a);
                b.if_then(Guard::if_true(p), |b| {
                    b.iadd_to(fresh, src, 0u32);
                });
                pool.push(fresh);
            }
        }
    }
    let last = *pool.last().unwrap();
    let lin = b.imad(ty, block.x, tx);
    let soff = b.shl_imm(lin, 2);
    let out = b.param(0);
    let saddr = b.iadd(out, soff);
    b.store(MemSpace::Global, saddr, last, 0);
    compile(b.finish())
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let ix = || 0usize..8;
    prop_oneof![
        (ix(), ix()).prop_map(|(a, c)| Stmt::Add(a, c)),
        (ix(), ix()).prop_map(|(a, c)| Stmt::Sub(a, c)),
        (ix(), 0u32..64).prop_map(|(a, imm)| Stmt::AddImm(a, imm)),
        (ix(), ix(), 0u32..64).prop_map(|(a, c, imm)| Stmt::MinImm(a, c, imm)),
        (ix(), 1u32..16).prop_map(|(a, mask)| Stmt::And(a, mask)),
        (ix(), 0u32..4).prop_map(|(a, n)| Stmt::Shl(a, n)),
        (ix(), any::<bool>(), 0u32..64, ix(), ix()).prop_map(|(c, lt, imm, d, a)| Stmt::IfAdd {
            c,
            lt,
            imm,
            d,
            a
        }),
        (ix(), any::<bool>(), 0u32..64, ix()).prop_map(|(c, lt, imm, a)| Stmt::IfFresh {
            c,
            lt,
            imm,
            a
        }),
    ]
}

/// The oracle-checked launch shapes: 2 warps 1D, the promoting 2D block,
/// and a single-warp 2D block (where nothing is cross-warp refutable).
fn launches() -> Vec<Dim3> {
    vec![Dim3::one_d(64), Dim3::two_d(16, 4), Dim3::two_d(8, 4)]
}

fn memory_with_input(input: &[u32]) -> (GlobalMemory, Vec<Value>) {
    let mut memory = GlobalMemory::new();
    let out = memory.alloc(64 * 4);
    let inp = memory.alloc(64 * 4);
    memory.write_slice_u32(inp, input);
    (memory, vec![Value(out as u32), Value(inp as u32)])
}

/// Forges `Redundant`/`CondRedundant` markings onto claimable pcs.
fn forge(ck: &mut simt_compiler::CompiledKernel, tamper: &[(usize, bool)]) {
    for &(i, dr) in tamper {
        let pc = i % ck.kernel.instrs.len();
        let instr = &ck.kernel.instrs[pc];
        if instr.op.writes_dst() && instr.dst.is_some() && !matches!(instr.op, Op::Atom(_)) {
            ck.markings[pc] = if dr { Marking::Redundant } else { Marking::ConditionallyRedundant };
        }
    }
}

/// Parses the `block (bx,by)` witness out of an `S401` message.
fn witness_block(msg: &str) -> (u32, u32) {
    let dims = msg.split("block (").nth(1).and_then(|s| s.split(')').next()).expect("dims");
    let (bx, by) = dims.split_once(',').expect("two dims");
    (bx.trim().parse().unwrap(), by.trim().parse().unwrap())
}

/// Vacuity guard for the property below: forging *every* claimable pc of
/// a warpid-mixing kernel must produce real oracle refutations, and each
/// of them must come back from the validator as `S401` (with the warpid
/// sum among them) — so the differential property is known to bite.
#[test]
fn forged_warpid_sum_is_refuted_by_both_sides() {
    let stmts = vec![Stmt::Add(2, 2)]; // pool[2] is warpid
    let block = Dim3::one_d(64);
    let mut ck = build(&stmts, block);
    let all: Vec<(usize, bool)> = (0..ck.kernel.instrs.len()).map(|i| (i, true)).collect();
    forge(&mut ck, &all);
    let input: Vec<u32> = (0..64).collect();
    let (memory, params) = memory_with_input(&input);
    let launch = LaunchConfig::new(1u32, block).with_params(params);
    let refuted = oracle::check(&ck, &launch, memory.clone());
    assert!(
        !refuted.with_code(LintCode::UnsoundMarking).is_empty(),
        "the forgery must be refutable:\n{}",
        refuted.render()
    );
    let p = symex::prove(&ck, Some((&launch, &memory)));
    for d in refuted.with_code(LintCode::UnsoundMarking) {
        assert!(
            p.report.with_code(LintCode::DisprovedMarking).iter().any(|s| s.pc == d.pc),
            "pc {:?} refuted by the oracle but not disproved:\n{}",
            d.pc,
            p.report.render()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Soundness both ways: (a) any marking the oracle refutes on a real
    /// launch is `S401` or `S402` under the validator — never proved;
    /// (b) any `S401` the validator emits names a block shape on which
    /// the executor really observes the violation at the same pc.
    #[test]
    fn symex_never_proves_what_the_oracle_refutes(
        stmts in prop::collection::vec(stmt_strategy(), 1..10),
        input in prop::collection::vec(0u32..1000, 64),
        tamper in prop::collection::vec((0usize..64, any::<bool>()), 1..4),
    ) {
        for block in launches() {
            let mut ck = build(&stmts, block);
            forge(&mut ck, &tamper);
            let (memory, params) = memory_with_input(&input);
            let launch = LaunchConfig::new(1u32, block).with_params(params.clone());
            let p = symex::prove(&ck, Some((&launch, &memory)));

            let refuted = oracle::check(&ck, &launch, memory.clone());
            for d in refuted
                .with_code(LintCode::UnsoundMarking)
                .iter()
                .chain(refuted.with_code(LintCode::UnsoundPromotion).iter())
            {
                let pc = d.pc.expect("oracle findings carry a pc");
                prop_assert!(
                    p.report.items.iter().any(|s| {
                        s.pc == Some(pc)
                            && matches!(
                                s.code,
                                LintCode::DisprovedMarking | LintCode::UnprovableMarking
                            )
                    }),
                    "validator proved a marking the oracle refutes at pc {pc} under \
                     {block:?}:\noracle: {}\nvalidator:\n{}",
                    d.message,
                    p.report.render(),
                );
            }

            for s in p.report.with_code(LintCode::DisprovedMarking) {
                let pc = s.pc.expect("S401 carries a pc");
                let wb = witness_block(&s.message);
                let wl = LaunchConfig::new(1u32, wb).with_params(params.clone());
                let replay = oracle::check(&ck, &wl, memory.clone());
                prop_assert!(
                    replay
                        .items
                        .iter()
                        .any(|d| d.pc == Some(pc)
                            && matches!(
                                d.code,
                                LintCode::UnsoundMarking | LintCode::UnsoundPromotion
                            )),
                    "S401 witness at pc {pc} does not reproduce on block {wb:?}:\n{}\n{}",
                    s.message,
                    replay.render(),
                );
            }
        }
    }
}
