//! The lint registry and its documentation must agree: every code the
//! verifier can emit appears as a row of the README lint table, and the
//! `LintCode::ALL` registry itself is complete and free of duplicates.

use simt_verify::LintCode;
use std::collections::BTreeSet;

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    std::fs::read_to_string(path).expect("README.md at the repository root")
}

/// Every registered lint code has a `| CODE |` row in the README table.
#[test]
fn every_lint_code_is_documented_in_the_readme() {
    let text = readme();
    for l in LintCode::ALL {
        let row = format!("| {} |", l.code());
        assert!(
            text.contains(&row),
            "lint {} ({}) has no row in the README lint table",
            l.code(),
            l.doc()
        );
    }
}

/// The registry is duplicate-free and its codes follow the band naming
/// convention the docs rely on (`V...`, `P...`, `S...`, `E...` + 3
/// digits).
#[test]
fn registry_codes_are_unique_and_well_formed() {
    let mut seen = BTreeSet::new();
    for l in LintCode::ALL {
        let c = l.code();
        assert!(seen.insert(c), "duplicate lint code {c}");
        assert_eq!(c.len(), 4, "{c}: band letter + 3 digits");
        assert!(matches!(c.as_bytes()[0], b'V' | b'P' | b'S' | b'E'), "{c}: unknown band");
        assert!(c[1..].bytes().all(|b| b.is_ascii_digit()), "{c}: digits after the band");
        assert!(!l.doc().is_empty() && !l.pass().is_empty(), "{c}: missing docs");
    }
}
