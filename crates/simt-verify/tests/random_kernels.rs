//! Property tests tying the refinement passes to the marking oracle:
//! on randomly generated structured kernels, refinement must only *raise*
//! classes (pointwise monotone over the baseline), and the refined
//! markings must survive the differential oracle under every launch shape
//! the catalog uses — including the promoting 2D blocks.

use gpu_sim::GlobalMemory;
use proptest::prelude::*;
use simt_compiler::{compile, refine};
use simt_isa::{CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};
use simt_verify::oracle;

/// One generated straight-line or guarded statement. Register operands
/// are indices into the value pool modulo its current length, so any
/// index is valid whatever the pool size.
#[derive(Debug, Clone)]
enum Stmt {
    /// `pool.push(pool[a] + pool[b])`
    Add(usize, usize),
    /// `pool.push(pool[a] - pool[b])`
    Sub(usize, usize),
    /// `pool.push(pool[a] + imm)`
    AddImm(usize, u32),
    /// `pool.push(min(pool[a], pool[b] + imm))`
    MinImm(usize, usize, u32),
    /// `pool.push(pool[a] & mask)` — deliberately non-affine.
    And(usize, u32),
    /// `pool.push(pool[a] << n)`, `n < 4`.
    Shl(usize, u32),
    /// `if (pool[c] cmp imm) { pool[d] += pool[a] }` — a guarded update
    /// of an existing value behind a possibly divergent branch.
    IfAdd { c: usize, lt: bool, imm: u32, d: usize, a: usize },
    /// `if (pool[c] cmp imm) { fresh += pool[a] }` where `fresh` is a
    /// never-otherwise-written register: exercises the entry-uniform
    /// refinement against register-file zero-init.
    IfFresh { c: usize, lt: bool, imm: u32, a: usize },
}

/// Builds a kernel from a statement recipe. The pool starts with
/// `tid.x`, `tid.y`, `warpid` and a value loaded from `in[tid.x]`, so
/// generated dataflow mixes affine, vector and memory-derived sources.
/// The kernel ends by storing the last pool value to `out[linear tid]`.
fn build(stmts: &[Stmt], block: Dim3) -> simt_compiler::CompiledKernel {
    let mut b = KernelBuilder::new("random");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let w = b.special(SpecialReg::WarpId);
    let inp = b.param(1);
    let off = b.shl_imm(tx, 2);
    let laddr = b.iadd(inp, off);
    let ld = b.load(MemSpace::Global, laddr, 0);
    let mut pool = vec![tx, ty, w, ld];
    let pick = |pool: &Vec<simt_isa::Reg>, i: usize| pool[i % pool.len()];
    for s in stmts {
        match *s {
            Stmt::Add(a, c) => {
                let r = b.iadd(pick(&pool, a), pick(&pool, c));
                pool.push(r);
            }
            Stmt::Sub(a, c) => {
                let r = b.isub(pick(&pool, a), pick(&pool, c));
                pool.push(r);
            }
            Stmt::AddImm(a, imm) => {
                let r = b.iadd(pick(&pool, a), imm);
                pool.push(r);
            }
            Stmt::MinImm(a, c, imm) => {
                let shifted = b.iadd(pick(&pool, c), imm);
                let r = b.imin(pick(&pool, a), shifted);
                pool.push(r);
            }
            Stmt::And(a, mask) => {
                let r = b.and(pick(&pool, a), mask);
                pool.push(r);
            }
            Stmt::Shl(a, n) => {
                let r = b.shl_imm(pick(&pool, a), n % 4);
                pool.push(r);
            }
            Stmt::IfAdd { c, lt, imm, d, a } => {
                let cmp = if lt { CmpOp::Lt } else { CmpOp::Eq };
                let p = b.setp(cmp, pick(&pool, c), imm);
                let dst = pick(&pool, d);
                let src = pick(&pool, a);
                b.if_then(Guard::if_true(p), |b| {
                    b.iadd_to(dst, src, 1u32);
                });
            }
            Stmt::IfFresh { c, lt, imm, a } => {
                let cmp = if lt { CmpOp::Lt } else { CmpOp::Eq };
                let p = b.setp(cmp, pick(&pool, c), imm);
                let fresh = b.alloc();
                let src = pick(&pool, a);
                b.if_then(Guard::if_true(p), |b| {
                    b.iadd_to(fresh, src, 0u32);
                });
                pool.push(fresh);
            }
        }
    }
    let last = *pool.last().unwrap();
    let lin = b.imad(ty, block.x, tx);
    let soff = b.shl_imm(lin, 2);
    let out = b.param(0);
    let saddr = b.iadd(out, soff);
    b.store(MemSpace::Global, saddr, last, 0);
    compile(b.finish())
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let ix = || 0usize..8;
    prop_oneof![
        (ix(), ix()).prop_map(|(a, c)| Stmt::Add(a, c)),
        (ix(), ix()).prop_map(|(a, c)| Stmt::Sub(a, c)),
        (ix(), 0u32..64).prop_map(|(a, imm)| Stmt::AddImm(a, imm)),
        (ix(), ix(), 0u32..64).prop_map(|(a, c, imm)| Stmt::MinImm(a, c, imm)),
        (ix(), 1u32..16).prop_map(|(a, mask)| Stmt::And(a, mask)),
        (ix(), 0u32..4).prop_map(|(a, n)| Stmt::Shl(a, n)),
        (ix(), any::<bool>(), 0u32..64, ix(), ix()).prop_map(|(c, lt, imm, d, a)| Stmt::IfAdd {
            c,
            lt,
            imm,
            d,
            a
        }),
        (ix(), any::<bool>(), 0u32..64, ix()).prop_map(|(c, lt, imm, a)| Stmt::IfFresh {
            c,
            lt,
            imm,
            a
        }),
    ]
}

/// The catalog's launch shapes: a plain 1D block, a `tid.y`-promoting
/// square-ish block, and the `(16,4)` block that promotes conditional
/// redundancy but not the y dimension.
fn launches() -> Vec<Dim3> {
    vec![Dim3::one_d(64), Dim3::two_d(16, 4), Dim3::two_d(8, 4)]
}

fn memory_with_input(input: &[u32]) -> (GlobalMemory, Vec<Value>) {
    let mut memory = GlobalMemory::new();
    let out = memory.alloc(64 * 4);
    let inp = memory.alloc(64 * 4);
    memory.write_slice_u32(inp, input);
    (memory, vec![Value(out as u32), Value(inp as u32)])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn refinement_is_pointwise_monotone(
        stmts in prop::collection::vec(stmt_strategy(), 1..12),
    ) {
        for block in launches() {
            let ck = build(&stmts, block);
            let refined = refine(&ck, block.z);
            for (pc, (base, up)) in
                ck.classes.iter().zip(refined.ck.classes.iter()).enumerate()
            {
                prop_assert!(
                    up.red >= base.red && up.pat >= base.pat,
                    "refinement lowered pc {pc}: {base:?} -> {up:?}",
                );
            }
            // Every reported upgrade must actually raise its class.
            for u in &refined.upgrades {
                prop_assert!(
                    u.to.red > u.from.red || u.to.pat > u.from.pat,
                    "upgrade at pc {} does not raise: {:?} -> {:?}",
                    u.pc, u.from, u.to,
                );
            }
        }
    }

    #[test]
    fn refined_markings_survive_the_oracle(
        stmts in prop::collection::vec(stmt_strategy(), 1..12),
        input in prop::collection::vec(0u32..1000, 64),
    ) {
        for block in launches() {
            let ck = build(&stmts, block);
            let refined = refine(&ck, block.z);
            let (memory, params) = memory_with_input(&input);
            let launch = LaunchConfig::new(1u32, block).with_params(params);
            let report = oracle::check(&refined.ck, &launch, memory);
            prop_assert!(
                report.is_clean(),
                "oracle rejected refined markings under {block:?}:\n{}",
                report.render(),
            );
        }
    }
}
