//! Integration tests for the shared-memory race detector: the racy
//! fixture kernels must be caught (statically where provable, dynamically
//! always), the clean control and the whole Table 1 catalog must not.

use simt_verify::{verify_full, LintCode};
use workloads::{catalog, fixtures, Scale};

#[test]
fn every_racy_fixture_is_caught_dynamically() {
    for f in fixtures::racy() {
        let r = verify_full(&f.ck, &f.launch, f.memory.clone());
        assert!(
            !r.with_code(LintCode::SharedRaceDynamic).is_empty(),
            "{}: no V303 fired:\n{}",
            f.name,
            r.render()
        );
        assert!(!r.is_clean(), "{}: report is clean:\n{}", f.name, r.render());
    }
}

#[test]
fn provably_racy_fixtures_are_caught_statically() {
    for f in [fixtures::racy_missing_barrier(), fixtures::racy_same_word()] {
        let r = verify_full(&f.ck, &f.launch, f.memory.clone());
        assert!(
            !r.with_code(LintCode::SharedRaceStatic).is_empty(),
            "{}: no V301 fired:\n{}",
            f.name,
            r.render()
        );
    }
}

#[test]
fn nonaffine_fixture_escalates_statically_but_is_not_a_static_false_claim() {
    let f = fixtures::racy_nonaffine();
    let r = verify_full(&f.ck, &f.launch, f.memory.clone());
    // The static pass cannot prove this one either way: warning, no V301.
    assert!(r.with_code(LintCode::SharedRaceStatic).is_empty(), "{}", r.render());
    assert!(!r.with_code(LintCode::SharedAddrUnknown).is_empty(), "{}", r.render());
    // The dynamic sanitizer still catches it.
    assert!(!r.with_code(LintCode::SharedRaceDynamic).is_empty(), "{}", r.render());
}

#[test]
fn racy_fixture_downgrades_the_tainted_redundant_load() {
    // The uniform load of shared word 0 is honestly marked redundant and
    // every warp observes the same value in the replay — but the word is
    // race-tainted, so the claim must be rejected anyway.
    let f = fixtures::racy_same_word();
    let load_pc =
        f.ck.kernel
            .instrs
            .iter()
            .position(|i| matches!(i.op, simt_isa::Op::Ld(simt_isa::MemSpace::Shared)))
            .expect("fixture has a shared load");
    let r = verify_full(&f.ck, &f.launch, f.memory.clone());
    assert!(
        r.with_code(LintCode::UnsoundMarking).iter().any(|d| d.pc == Some(load_pc)),
        "no downgrade for the tainted load:\n{}",
        r.render()
    );
}

#[test]
fn clean_control_fixture_reports_no_race_findings() {
    let f = fixtures::clean_two_phase();
    let r = verify_full(&f.ck, &f.launch, f.memory.clone());
    assert!(r.items.is_empty(), "{}: {}", f.name, r.render());
}

#[test]
fn catalog_has_zero_v30x_errors() {
    for w in catalog(Scale::Test) {
        let r = verify_full(&w.ck, &w.launch, w.memory.clone());
        assert!(
            r.with_code(LintCode::SharedRaceStatic).is_empty()
                && r.with_code(LintCode::SharedRaceDynamic).is_empty(),
            "{}: shared-memory race reported on a catalog workload:\n{}",
            w.abbr,
            r.render()
        );
    }
}
