//! End-to-end tests for the symbolic translation validator: the whole
//! workload catalog must prove clean, each forged-claim fixture must pin
//! its lint (with its negative control staying silent), and every `S401`
//! counterexample must be independently reproducible through the
//! functional executor.

use simt_isa::{LaunchConfig, Marking, Op, Operand};
use simt_verify::{oracle, symex, verify_full, LintCode};
use workloads::{catalog, fixtures, Scale};

/// Every catalog workload's markings and branch claims hold for their
/// entire quantified launch family — and today's engine proves all of
/// them outright (no budget exhaustion, no `S402` escapes).
#[test]
fn catalog_proves_clean_for_the_whole_family() {
    for w in catalog(Scale::Test) {
        let p = symex::prove(&w.ck, Some((&w.launch, &w.memory)));
        assert!(
            p.report.with_code(LintCode::DisprovedMarking).is_empty()
                && p.report.with_code(LintCode::BranchSyncViolation).is_empty(),
            "{}: {}",
            w.name,
            p.report.render()
        );
        assert!(p.stats.complete, "{}: symbolic execution exhausted its budget", w.name);
        assert_eq!(
            p.stats.unknown,
            0,
            "{}: {} claim(s) left unproved:\n{}",
            w.name,
            p.stats.unknown,
            p.report.render()
        );
        assert!(p.stats.value_claims > 0, "{}: no claims examined", w.name);
        assert_eq!(p.stats.proved, p.stats.value_claims + p.stats.branch_claims, "{}", w.name);
    }
}

#[test]
fn forged_dr_is_disproved_with_confirmed_counterexample() {
    let f = fixtures::symex_forged_dr();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    let s401 = p.report.with_code(LintCode::DisprovedMarking);
    assert_eq!(s401.len(), 1, "{}", p.report.render());
    let tampered =
        f.ck.kernel
            .instrs
            .iter()
            .position(|i| i.op == Op::IAdd && i.srcs.get(1) == Some(&Operand::Imm(5)));
    assert_eq!(s401[0].pc, tampered, "S401 must point at the forged marking");
    assert!(
        s401[0].message.contains("confirmed by functional replay"),
        "counterexamples must be replay-confirmed: {}",
        s401[0].message
    );
    assert_eq!(p.stats.disproved, 1);
    assert!(p.report.with_code(LintCode::UnprovableMarking).is_empty(), "no hedging on a disproof");
}

/// The no-false-witness property, checked from the outside: the block
/// shape named in the `S401` message really does make the functional
/// executor observe non-redundant vectors at the same pc.
#[test]
fn forged_dr_counterexample_reproduces_in_the_executor() {
    let f = fixtures::symex_forged_dr();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    let s401 = p.report.with_code(LintCode::DisprovedMarking);
    assert_eq!(s401.len(), 1);
    let msg = &s401[0].message;
    let dims = msg.split("block (").nth(1).and_then(|s| s.split(')').next()).expect("dims in msg");
    let (bx, by) = dims.split_once(',').expect("two dims");
    let block = (bx.trim().parse::<u32>().unwrap(), by.trim().parse::<u32>().unwrap());
    let launch = LaunchConfig::new(1u32, block).with_params(f.launch.params.clone());
    let replay = oracle::check(&f.ck, &launch, f.memory.clone());
    assert!(
        replay.with_code(LintCode::UnsoundMarking).iter().any(|d| d.pc == s401[0].pc),
        "executor does not confirm the witness:\n{}",
        replay.render()
    );
}

/// Negative control, and the term domain earning its keep: a laneid
/// chain is definitely redundant but never TB-uniform, so the affine
/// fallback alone cannot prove it.
#[test]
fn lane_dr_proves_clean_via_the_term_domain() {
    let f = fixtures::symex_lane_dr();
    let dr = f.ck.markings.iter().filter(|m| **m == Marking::Redundant).count();
    assert!(dr >= 2, "laneid chain must be DR-marked (got {dr})");
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(p.report.is_clean() && p.report.warning_count() == 0, "{}", p.report.render());
    assert_eq!(p.stats.proved, p.stats.value_claims + p.stats.branch_claims);
}

#[test]
fn opaque_escape_is_unprovable_not_disproved() {
    let f = fixtures::symex_opaque_escape();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    let s402 = p.report.with_code(LintCode::UnprovableMarking);
    assert_eq!(s402.len(), 1, "{}", p.report.render());
    assert!(
        p.report.with_code(LintCode::DisprovedMarking).is_empty(),
        "an unevaluable escape must never fabricate a counterexample"
    );
    let tampered =
        f.ck.kernel
            .instrs
            .iter()
            .position(|i| i.op == Op::IAdd && i.srcs.get(1) == Some(&Operand::Imm(0)));
    assert_eq!(s402[0].pc, tampered);
}

#[test]
fn opaque_control_proves_clean() {
    let f = fixtures::symex_opaque_control();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(p.report.is_clean() && p.report.warning_count() == 0, "{}", p.report.render());
}

#[test]
fn forged_uniform_branch_is_a_sync_violation() {
    let f = fixtures::symex_forged_uniform_branch();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    let s403 = p.report.with_code(LintCode::BranchSyncViolation);
    assert_eq!(s403.len(), 1, "{}", p.report.render());
    let bra =
        f.ck.kernel.instrs.iter().position(|i| matches!(i.op, Op::Bra { .. }) && i.guard.is_some());
    assert_eq!(s403[0].pc, bra);
    assert!(s403[0].message.contains("threads disagree"), "{}", s403[0].message);
}

#[test]
fn honest_uniform_branch_proves_clean() {
    let f = fixtures::symex_uniform_branch();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(p.report.is_clean() && p.report.warning_count() == 0, "{}", p.report.render());
    assert_eq!(p.stats.branch_claims, 1, "the ntid.x branch must be claimed uniform");
}

/// The validator runs as part of `verify_full`, so a forged marking
/// surfaces without any dedicated invocation.
#[test]
fn verify_full_carries_symex_findings() {
    let f = fixtures::symex_forged_dr();
    let r = verify_full(&f.ck, &f.launch, f.memory.clone());
    assert!(
        !r.with_code(LintCode::DisprovedMarking).is_empty(),
        "verify_full must include S401:\n{}",
        r.render()
    );
}

/// Proving without any reference launch (no parameters, zeroed memory)
/// still works — the candidate blocks carry the quantification.
#[test]
fn prove_without_reference_still_disproves_forgeries() {
    let f = fixtures::symex_forged_dr();
    let p = symex::prove(&f.ck, None);
    assert_eq!(p.report.with_code(LintCode::DisprovedMarking).len(), 1, "{}", p.report.render());
}

/// The summarization payoff: a reduction loop whose trip count is a
/// launch parameter proves outright instead of exhausting the fork
/// budget — the body's dependency sets close to empty, so the (true)
/// DR on the accumulator discharges for every launch.
#[test]
fn symbolic_trip_reduction_proves_clean() {
    let f = fixtures::symex_loop_reduction();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(p.stats.complete, "summarization must cover the parameter-trip loop");
    assert!(p.report.is_clean() && p.report.warning_count() == 0, "{}", p.report.render());
    assert_eq!(p.stats.unknown, 0, "{}", p.report.render());
    assert_eq!(p.stats.proved, p.stats.value_claims + p.stats.branch_claims);
}

/// Summarization's negative control: the same loop with a warp-dependent
/// trip count completes but must stay `S402` — the trip-condition taint
/// reaches the forged claim, and no concrete witness exists.
#[test]
fn warp_trip_control_stays_unknown() {
    let f = fixtures::symex_warp_trip_control();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(p.stats.complete, "summarization must still cover the warp-trip loop");
    assert!(p.report.with_code(LintCode::DisprovedMarking).is_empty(), "{}", p.report.render());
    let s402 = p.report.with_code(LintCode::UnprovableMarking);
    assert_eq!(s402.len(), 1, "{}", p.report.render());
    assert!(s402[0].message.contains("warpid"), "{}", s402[0].message);
}

/// The uniformity-bit payoff: with the symbolic engine aborted by a
/// thread-partial exit, only the affine fallback is left — and the
/// claimed value's interval is uniform without being exact. The
/// TB-uniform bit must carry the proof.
#[test]
fn uniform_base_proves_via_the_uniformity_bit() {
    let f = fixtures::symex_uniform_base();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(!p.stats.complete, "the partial exit must abort the term domain");
    assert!(p.report.is_clean() && p.report.warning_count() == 0, "{}", p.report.render());
    assert_eq!(p.stats.unknown, 0, "{}", p.report.render());
}

/// The uniformity bit's negative control: the same uniform value behind
/// a thread-divergent guard must not be proved (the write is partial)
/// and cannot be refuted (both concrete sides read zero) — an honest
/// `S402`, with the ledger blaming the term-domain escape.
#[test]
fn divergent_write_control_stays_unknown() {
    let f = fixtures::symex_divergent_write_control();
    let p = symex::prove(&f.ck, Some((&f.launch, &f.memory)));
    assert!(p.stats.complete);
    assert!(p.report.with_code(LintCode::DisprovedMarking).is_empty(), "{}", p.report.render());
    let s402 = p.report.with_code(LintCode::UnprovableMarking);
    assert_eq!(s402.len(), 1, "{}", p.report.render());
    let claim = p.claims.iter().find(|c| c.verdict == symex::Verdict::Unknown).unwrap();
    assert_eq!(claim.unknown_reason, Some(symex::UnknownReason::TermEscape));
}

/// Sharding the discharge stage must not change a single byte of the
/// outcome: same verdicts, same ledger, same diagnostics in the same
/// order for any worker count.
#[test]
fn parallel_discharge_is_deterministic() {
    for f in fixtures::symex() {
        let base = symex::prove_with_threads(&f.ck, Some((&f.launch, &f.memory)), 1);
        for threads in [2, 3, 8] {
            let par = symex::prove_with_threads(&f.ck, Some((&f.launch, &f.memory)), threads);
            assert_eq!(par.stats.proved, base.stats.proved, "{}", f.name);
            assert_eq!(par.stats.disproved, base.stats.disproved, "{}", f.name);
            assert_eq!(par.stats.unknown, base.stats.unknown, "{}", f.name);
            assert_eq!(par.claims.len(), base.claims.len(), "{}", f.name);
            for (a, b) in par.claims.iter().zip(&base.claims) {
                assert_eq!(a.pc, b.pc, "{}", f.name);
                assert_eq!(a.verdict, b.verdict, "{}", f.name);
                assert_eq!(a.evals, b.evals, "{}", f.name);
            }
            assert_eq!(par.report.render(), base.report.render(), "{}", f.name);
        }
    }
}

/// A warp-dependent-trip loop (`while (i < warpid) i++`) used to exhaust
/// the fork budget; loop summarization now covers it, so the run is
/// *complete* — but the forged DR on the increment must still degrade to
/// `S402`: the loop's trip condition depends on `warpid`, and that taint
/// flows into every in-loop visit. The recorded first-iteration terms
/// are constants, so no concrete witness exists — never a false proof,
/// never an unconfirmed disproof.
#[test]
fn symbolic_loop_degrades_to_unknown() {
    use simt_isa::{CmpOp, Guard, KernelBuilder, MemSpace, SpecialReg};
    let mut b = KernelBuilder::new("symbolic_loop");
    let w = b.special(SpecialReg::WarpId);
    let i = b.alloc();
    b.mov_to(i, 0u32);
    let top = b.here();
    b.iadd_to(i, i, 1u32);
    let p = b.setp(CmpOp::Lt, i, w);
    b.branch_back_if(top, Guard::if_true(p));
    let t = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let off = b.shl_imm(t, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, i, 0);
    let mut ck = simt_compiler::compile(b.finish());
    let pc =
        ck.kernel.instrs.iter().position(|ins| ins.op == Op::IAdd && ins.dst == Some(i)).unwrap();
    ck.markings[pc] = Marking::Redundant;
    let res = symex::prove(&ck, None);
    assert!(res.stats.complete, "loop summarization must cover the symbolic loop");
    assert!(res.report.with_code(LintCode::DisprovedMarking).is_empty());
    let unprovable = res.report.with_code(LintCode::UnprovableMarking);
    assert!(unprovable.iter().any(|d| d.pc == Some(pc)), "{}", res.report.render());
    assert!(
        unprovable.iter().any(|d| d.pc == Some(pc) && d.message.contains("warpid")),
        "the S402 must blame the warp-dependent trip count: {}",
        res.report.render()
    );
    let claim = res.claims.iter().find(|c| c.pc == pc).expect("claim ledger entry");
    assert_eq!(claim.verdict, symex::Verdict::Unknown);
    assert_eq!(claim.unknown_reason, Some(symex::UnknownReason::TermEscape));
}
