//! Integration test: every shipped workload kernel must verify clean.
//!
//! * All three passes (including the differential marking oracle) at each
//!   workload's native launch.
//! * The static passes (dataflow + divergence lint) additionally at a
//!   spread of 1D / 2D / 3D TB shapes — promotion decisions change with
//!   the shape, and no shape may make a shipped kernel unsafe. Static
//!   passes never execute the kernel, so foreign shapes are safe to probe.

use simt_isa::{Dim3, LaunchConfig};
use simt_verify::{verify_full, verify_launch, verify_static, LintCode};
use workloads::{catalog, ext_3d, Scale};

fn static_shapes() -> Vec<Dim3> {
    vec![
        Dim3::one_d(64),
        Dim3::one_d(256),
        Dim3::two_d(16, 16),
        Dim3::two_d(32, 8),
        Dim3::three_d(8, 4, 4),
        Dim3::three_d(4, 4, 2),
    ]
}

#[test]
fn every_catalog_workload_verifies_clean_at_its_native_launch() {
    for w in catalog(Scale::Test) {
        let report = verify_full(&w.ck, &w.launch, w.memory.clone());
        assert!(
            report.is_clean(),
            "{} ({}) failed verification:\n{}",
            w.abbr,
            w.name,
            report.render()
        );
        // The race pass may be honestly inconclusive (V302) on kernels
        // with non-affine shared addressing (FW's butterfly indices);
        // every other warning class must stay at zero.
        let non_v302 = report
            .items
            .iter()
            .filter(|d| {
                d.severity == simt_verify::Severity::Warning
                    && d.code != LintCode::SharedAddrUnknown
            })
            .count();
        assert_eq!(non_v302, 0, "{} ({}) has warnings:\n{}", w.abbr, w.name, report.render());
        // And inconclusive must never mean provably racy: no V301/V303.
        assert!(
            report.with_code(LintCode::SharedRaceStatic).is_empty()
                && report.with_code(LintCode::SharedRaceDynamic).is_empty(),
            "{} ({}) has shared-memory races:\n{}",
            w.abbr,
            w.name,
            report.render()
        );
    }
}

#[test]
fn every_catalog_workload_passes_static_checks_at_all_tb_shapes() {
    for w in catalog(Scale::Test) {
        let r = verify_static(&w.ck);
        assert!(r.is_clean(), "{} static:\n{}", w.abbr, r.render());
        for shape in static_shapes() {
            let launch = LaunchConfig::new(1u32, shape);
            let r = verify_launch(&w.ck, &launch);
            assert!(
                r.is_clean(),
                "{} at TB=({},{},{}):\n{}",
                w.abbr,
                shape.x,
                shape.y,
                shape.z,
                r.render()
            );
        }
    }
}

#[test]
fn ext_3d_volume_blend_verifies_clean_in_both_analysis_modes() {
    for analyze_tid_y in [false, true] {
        let w = ext_3d::volume_blend(Scale::Test, analyze_tid_y);
        let report = verify_full(&w.ck, &w.launch, w.memory.clone());
        assert!(
            report.is_clean(),
            "volume_blend (analyze_tid_y={analyze_tid_y}):\n{}",
            report.render()
        );
        for shape in static_shapes() {
            let r = verify_launch(&w.ck, &LaunchConfig::new(1u32, shape));
            assert!(
                r.is_clean(),
                "volume_blend (analyze_tid_y={analyze_tid_y}) at TB=({},{},{}):\n{}",
                shape.x,
                shape.y,
                shape.z,
                r.render()
            );
        }
    }
}
