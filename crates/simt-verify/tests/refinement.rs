//! Pins the analyzer's new behaviors to the dedicated fixture kernels:
//! each `P1xx` memory-performance lint fires exactly where its fixture
//! says (and stays silent on the matching control), and each refinement
//! pass strictly increases the skippable count on its "win" fixture while
//! leaving its negative control untouched — with the marking oracle
//! accepting every refined kernel.

use gpu_sim::GpuConfig;
use simt_compiler::{refine, LaunchPlan};
use simt_verify::perf::{self, MemPredKind};
use simt_verify::{oracle, LintCode};
use workloads::fixtures;

fn warp_size() -> u32 {
    GpuConfig::test_small().warp_size
}

fn lint_codes(fx: &fixtures::Fixture) -> Vec<&'static str> {
    let predictions = perf::predict(&fx.ck, &fx.launch, warp_size());
    perf::lint(&fx.ck, &predictions).items.iter().map(|d| d.code.code()).collect()
}

#[test]
fn conflict_stride_pins_p101_with_exact_degree() {
    let fx = fixtures::conflict_stride();
    let predictions = perf::predict(&fx.ck, &fx.launch, warp_size());
    let shared: Vec<_> = predictions
        .iter()
        .filter(|p| matches!(p.kind, MemPredKind::SharedConflict { .. }))
        .collect();
    assert_eq!(shared.len(), 2, "store + read-back load");
    for p in &shared {
        assert!(
            matches!(p.kind, MemPredKind::SharedConflict { min_degree: 32, max_degree: 32 }),
            "stride-128 must serialize over exactly 32 bank passes, got {:?}",
            p.kind
        );
    }
    let codes = lint_codes(&fx);
    assert_eq!(codes.iter().filter(|c| **c == "P101").count(), 2);
}

#[test]
fn conflict_free_stays_silent() {
    let codes = lint_codes(&fixtures::conflict_free());
    assert!(codes.is_empty(), "conflict-free control must not lint, got {codes:?}");
}

#[test]
fn uncoalesced_stride_pins_p102_with_exact_lines() {
    let fx = fixtures::uncoalesced_stride();
    let predictions = perf::predict(&fx.ck, &fx.launch, warp_size());
    let global: Vec<_> = predictions
        .iter()
        .filter(|p| matches!(p.kind, MemPredKind::GlobalCoalesce { .. }))
        .collect();
    assert_eq!(global.len(), 1);
    assert!(
        matches!(
            global[0].kind,
            MemPredKind::GlobalCoalesce { min_lines: 32, max_lines: 32, ideal_lines: 1 }
        ),
        "stride-128 must touch one line per lane, got {:?}",
        global[0].kind
    );
    assert_eq!(lint_codes(&fx), vec!["P102"]);
}

#[test]
fn coalesced_stride_stays_silent() {
    let fx = fixtures::coalesced_stride();
    let predictions = perf::predict(&fx.ck, &fx.launch, warp_size());
    let global: Vec<_> = predictions
        .iter()
        .filter(|p| matches!(p.kind, MemPredKind::GlobalCoalesce { .. }))
        .collect();
    assert_eq!(global.len(), 1);
    assert!(
        matches!(
            global[0].kind,
            MemPredKind::GlobalCoalesce { min_lines: 1, max_lines: 2, ideal_lines: 1 }
        ),
        "stride-4 must match the ideal when aligned, got {:?}",
        global[0].kind
    );
    let codes = lint_codes(&fx);
    assert!(codes.is_empty(), "coalesced control must not lint, got {codes:?}");
}

#[test]
fn nonaffine_addr_reports_p103_instead_of_guessing() {
    let fx = fixtures::nonaffine_addr();
    let predictions = perf::predict(&fx.ck, &fx.launch, warp_size());
    assert!(
        predictions.iter().any(|p| matches!(p.kind, MemPredKind::Unpredictable { .. })),
        "a tid.x & 1 address must be reported unpredictable"
    );
    assert!(lint_codes(&fx).contains(&"P103"));
}

/// Refines a fixture and returns (baseline skippable, refined skippable),
/// asserting the oracle accepts the refined markings under the fixture's
/// own launch and memory.
fn skippable_delta(fx: &fixtures::Fixture) -> (usize, usize) {
    let refined = refine(&fx.ck, fx.launch.block.z);
    let report = oracle::check(&refined.ck, &fx.launch, fx.memory.clone());
    assert!(report.is_clean(), "oracle rejected refined {}:\n{}", fx.name, report.render());
    let base = LaunchPlan::new(&fx.ck, &fx.launch).num_skippable();
    let after = LaunchPlan::new(&refined.ck, &fx.launch).num_skippable();
    (base, after)
}

#[test]
fn entry_uniform_refinement_wins_on_promoting_launch() {
    let (base, after) = skippable_delta(&fixtures::refine_entry_win());
    assert!(after > base, "expected a skippable win, got {base} -> {after}");
}

#[test]
fn entry_uniform_refinement_keeps_warpid_guard_vector() {
    let (base, after) = skippable_delta(&fixtures::refine_entry_negative());
    assert_eq!(base, after, "warpid-guarded mov must stay unskippable");
}

#[test]
fn branch_edge_refinement_wins_even_unpromoted() {
    let (base, after) = skippable_delta(&fixtures::refine_branch_win());
    assert!(after > base, "expected a skippable win, got {base} -> {after}");
}

#[test]
fn affine_closure_cancels_tid_terms() {
    let (base, after) = skippable_delta(&fixtures::refine_affine_win());
    assert!(after > base, "expected a skippable win, got {base} -> {after}");
}

#[test]
fn tid_y_refinement_wins_on_promoting_launch() {
    let (base, after) = skippable_delta(&fixtures::refine_tidy_win());
    assert!(after > base, "expected a skippable win, got {base} -> {after}");
}

#[test]
fn race_fixtures_are_untouched_by_perf_lints() {
    for fx in fixtures::racy() {
        for code in lint_codes(&fx) {
            assert!(
                code != LintCode::SharedBankConflict.code()
                    && code != LintCode::GlobalUncoalesced.code(),
                "{} unexpectedly lints {code}",
                fx.name
            );
        }
    }
}
