//! Differential validation of the static cost model (`cost.rs`): the
//! measured simulator cycles of every catalog workload must fall inside
//! the static `[min, max]` bracket under both Base and DARSIE (zero
//! `E202`), the bracket must stay usefully tight on average, and the trip
//! inference behind it must agree with pinned fixture counts and with the
//! symbolic prover's `S402` verdicts on the loop fixtures.

use gpu_sim::{GlobalMemory, Gpu, GpuConfig, Technique};
use proptest::prelude::*;
use simt_compiler::{compile, CompiledKernel};
use simt_isa::{CmpOp, Dim3, Guard, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};
use simt_verify::cost::{check, estimate, validate};
use workloads::{catalog, fixtures, Scale};

/// Measured simulator cycles for one fixture under one technique.
fn measure(fx: &fixtures::Fixture, technique: &Technique) -> u64 {
    Gpu::new(GpuConfig::test_small(), technique.clone())
        .launch(&fx.ck, &fx.launch, fx.memory.clone())
        .stats
        .cycles
}

/// The trip verdicts of one fixture's loops, in loop-discovery order.
fn trips_of(fx: &fixtures::Fixture) -> Vec<Result<(u64, u64), String>> {
    let gc = GpuConfig::test_small();
    estimate(&fx.ck, &fx.launch, &gc, &Technique::Base).loops.into_iter().map(|l| l.trips).collect()
}

/// Every catalog workload, Base and DARSIE: measured cycles inside the
/// bracket, and mean bracket width at most 4x the measured cycles.
#[test]
fn catalog_cycles_inside_bracket() {
    let gc = GpuConfig::test_small();
    let mut widths: Vec<f64> = Vec::new();
    let mut failures = Vec::new();
    for technique in [Technique::Base, Technique::darsie()] {
        for w in catalog(Scale::Test) {
            let est = estimate(&w.ck, &w.launch, &gc, &technique);
            let measured = w.run_unchecked(&gc, technique.clone()).stats.cycles;
            let hi = est.max_cycles;
            if let Some(d) = validate(&est, measured) {
                failures.push(format!("{} {}: {}", w.abbr, technique.label(), d.message));
            }
            match hi {
                Some(hi) => {
                    #[allow(clippy::cast_precision_loss)]
                    widths.push((hi - est.min_cycles) as f64 / measured as f64);
                }
                None => failures.push(format!(
                    "{} {}: unexpected unbounded upper bound",
                    w.abbr,
                    technique.label()
                )),
            }
        }
    }
    assert!(failures.is_empty(), "E202 violations:\n{}", failures.join("\n"));
    let mean = widths.iter().sum::<f64>() / widths.len() as f64;
    assert!(mean <= 4.0, "mean bracket width {mean:.2}x exceeds 4x measured");
}

/// The estimator fixtures have hand-computable trip counts, and the
/// solver must pin them exactly — constant, launch-parameter, nested and
/// geometric (doubling) induction.
#[test]
fn fixture_trip_counts_are_pinned() {
    assert!(trips_of(&fixtures::cost_straight_line()).is_empty());
    assert_eq!(trips_of(&fixtures::cost_const_loop()), vec![Ok((8, 8))]);
    assert_eq!(trips_of(&fixtures::cost_param_loop()), vec![Ok((6, 6))]);
    let mut nested: Vec<(u64, u64)> = trips_of(&fixtures::cost_nested_loop())
        .into_iter()
        .map(|t| t.expect("nested loops are bounded"))
        .collect();
    nested.sort_unstable();
    assert_eq!(nested, vec![(2, 2), (4, 4)]);
    assert_eq!(trips_of(&fixtures::cost_geometric_loop()), vec![Ok((4, 4))]);
}

/// The deliberately unboundable control: `E201` from both `estimate` and
/// the standalone `check` lint pass, no upper bound, and a minimum that
/// still holds against the measured run.
#[test]
fn unbounded_control_is_one_sided_with_e201() {
    let fx = fixtures::cost_unbounded_control();
    let gc = GpuConfig::test_small();
    let est = estimate(&fx.ck, &fx.launch, &gc, &Technique::Base);
    assert!(est.loops.iter().any(|l| l.trips.is_err()), "loop must be unbounded");
    assert!(est.max_cycles.is_none(), "unbounded loop must leave the bracket one-sided");
    assert!(est.report.items.iter().any(|d| d.code.code() == "E201"));
    assert!(check(&fx.ck, &fx.launch).items.iter().any(|d| d.code.code() == "E201"));
    let measured = measure(&fx, &Technique::Base);
    assert!(validate(&est, measured).is_none(), "one-sided bracket must still contain {measured}");
}

/// Every estimator fixture's measured cycles sit inside the static
/// bracket under both techniques — the same differential invariant the
/// catalog test holds, on kernels small enough to audit by hand.
#[test]
fn fixture_cycles_inside_bracket() {
    let gc = GpuConfig::test_small();
    for technique in [Technique::Base, Technique::darsie()] {
        for fx in fixtures::cost() {
            let est = estimate(&fx.ck, &fx.launch, &gc, &technique);
            let measured = measure(&fx, &technique);
            assert!(
                validate(&est, measured).is_none(),
                "{}: measured {measured} outside [{}, {:?}]",
                fx.name,
                est.min_cycles,
                est.max_cycles
            );
        }
    }
}

/// Trip handling agrees with the symbolic prover's summarizer on the
/// `tests/symex.rs` loop fixtures: where the warp-dependent trip count
/// keeps the prover at an honest `S402`, the cost model owes an `E201`;
/// where summarization proves the launch-parameter reduction, the cost
/// model pins the same loop exactly once the parameter is in the launch.
#[test]
fn trip_verdicts_agree_with_the_symex_summarizer() {
    let gc = GpuConfig::test_small();

    let fx = fixtures::symex_warp_trip_control();
    let est = estimate(&fx.ck, &fx.launch, &gc, &Technique::Base);
    assert!(est.report.items.iter().any(|d| d.code.code() == "E201"));
    let p = simt_verify::symex::prove(&fx.ck, Some((&fx.launch, &fx.memory)));
    assert!(p.report.items.iter().any(|d| d.code.code() == "S402"));

    let mut fx = fixtures::symex_loop_reduction();
    fx.launch.params.push(Value(5));
    let est = estimate(&fx.ck, &fx.launch, &gc, &Technique::Base);
    assert_eq!(
        est.loops.iter().map(|l| l.trips.clone()).collect::<Vec<_>>(),
        vec![Ok((5, 5))],
        "launch-parameter bound must resolve exactly"
    );
    let p = simt_verify::symex::prove(&fx.ck, Some((&fx.launch, &fx.memory)));
    assert_eq!(p.stats.disproved, 0);
    assert!(p.report.items.iter().all(|d| d.code.code() != "S402"));
}

/// One generated statement for the random-kernel soundness property.
/// Register operands index the value pool modulo its length.
#[derive(Debug, Clone)]
enum Stmt {
    /// `pool.push(pool[a] + pool[b])`
    Add(usize, usize),
    /// `pool.push(pool[a] + imm)`
    AddImm(usize, u32),
    /// `pool.push(pool[a] & mask)` — deliberately non-affine.
    And(usize, u32),
    /// `pool.push(pool[a] << n)`, `n < 4`.
    Shl(usize, u32),
    /// `if (pool[c] cmp imm) { pool[d] += pool[a] }` — a possibly
    /// divergent diamond the estimator must cover on both legs.
    IfAdd { c: usize, lt: bool, imm: u32, d: usize, a: usize },
}

/// Builds a kernel from a recipe: a global load seeds the pool, the
/// statements run either straight-line or wrapped in a `trips`-bounded
/// do-while, and the last pool value is stored to `out[linear tid]`.
fn build(stmts: &[Stmt], trips: Option<u32>, block: Dim3) -> CompiledKernel {
    let mut b = KernelBuilder::new("random_cost");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let inp = b.param(1);
    let off = b.shl_imm(tx, 2);
    let laddr = b.iadd(inp, off);
    let ld = b.load(MemSpace::Global, laddr, 0);
    let mut pool = vec![tx, ty, ld];
    let apply = |b: &mut KernelBuilder, pool: &mut Vec<simt_isa::Reg>| {
        let pick = |pool: &Vec<simt_isa::Reg>, i: usize| pool[i % pool.len()];
        for s in stmts {
            match *s {
                Stmt::Add(a, c) => {
                    let r = b.iadd(pick(pool, a), pick(pool, c));
                    pool.push(r);
                }
                Stmt::AddImm(a, imm) => {
                    let r = b.iadd(pick(pool, a), imm);
                    pool.push(r);
                }
                Stmt::And(a, mask) => {
                    let r = b.and(pick(pool, a), mask);
                    pool.push(r);
                }
                Stmt::Shl(a, n) => {
                    let r = b.shl_imm(pick(pool, a), n % 4);
                    pool.push(r);
                }
                Stmt::IfAdd { c, lt, imm, d, a } => {
                    let cmp = if lt { CmpOp::Lt } else { CmpOp::Eq };
                    let p = b.setp(cmp, pick(pool, c), imm);
                    let dst = pick(pool, d);
                    let src = pick(pool, a);
                    b.if_then(Guard::if_true(p), |b| {
                        b.iadd_to(dst, src, 1u32);
                    });
                }
            }
        }
    };
    if let Some(n) = trips {
        let i = b.alloc();
        b.mov_to(i, 0u32);
        b.do_while(|b| {
            apply(b, &mut pool);
            b.iadd_to(i, i, 1u32);
            let p = b.setp(CmpOp::Lt, i, n);
            Guard::if_true(p)
        });
    } else {
        apply(&mut b, &mut pool);
    }
    let last = *pool.last().unwrap();
    let lin = b.imad(ty, block.x, tx);
    let soff = b.shl_imm(lin, 2);
    let out = b.param(0);
    let saddr = b.iadd(out, soff);
    b.store(MemSpace::Global, saddr, last, 0);
    compile(b.finish())
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let ix = || 0usize..8;
    prop_oneof![
        (ix(), ix()).prop_map(|(a, c)| Stmt::Add(a, c)),
        (ix(), 0u32..64).prop_map(|(a, imm)| Stmt::AddImm(a, imm)),
        (ix(), 1u32..16).prop_map(|(a, mask)| Stmt::And(a, mask)),
        (ix(), 0u32..4).prop_map(|(a, n)| Stmt::Shl(a, n)),
        (ix(), any::<bool>(), 0u32..64, ix(), ix()).prop_map(|(c, lt, imm, d, a)| Stmt::IfAdd {
            c,
            lt,
            imm,
            d,
            a
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random structured kernels (divergent diamonds, non-affine values,
    /// optional constant-trip loops, promoting and non-promoting blocks):
    /// the measured cycles always land inside the static bracket, and a
    /// loop-free or constant-trip kernel is never unbounded.
    #[test]
    fn random_kernel_cycles_inside_bracket(
        stmts in prop::collection::vec(stmt_strategy(), 1..10),
        raw_trips in 0u32..6,
        two_d in any::<bool>(),
        input in prop::collection::vec(0u32..1000, 64),
    ) {
        // 0 means "no loop"; 1..6 wraps the statements in a do-while.
        let trips = (raw_trips > 0).then_some(raw_trips);
        let block = if two_d { Dim3::two_d(16, 4) } else { Dim3::one_d(64) };
        let ck = build(&stmts, trips, block);
        let gc = GpuConfig::test_small();
        for technique in [Technique::Base, Technique::darsie()] {
            let mut memory = GlobalMemory::new();
            let out = memory.alloc(64 * 4);
            let inp = memory.alloc(64 * 4);
            memory.write_slice_u32(inp, &input);
            let launch = LaunchConfig::new(1u32, block)
                .with_params(vec![Value(out as u32), Value(inp as u32)]);
            let est = estimate(&ck, &launch, &gc, &technique);
            prop_assert!(
                est.max_cycles.is_some(),
                "constant-trip kernel reported unbounded: {:?}",
                est.loops
            );
            let measured = Gpu::new(gc.clone(), technique.clone())
                .launch(&ck, &launch, memory)
                .stats
                .cycles;
            prop_assert!(
                validate(&est, measured).is_none(),
                "{} measured {measured} outside [{}, {:?}] (trips {trips:?})",
                technique.label(),
                est.min_cycles,
                est.max_cycles
            );
        }
    }
}
