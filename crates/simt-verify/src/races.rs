//! Pass 4: static shared-memory race detection (`V301` / `V302`).
//!
//! DARSIE's value sharing assumes every TB-redundant instruction computes
//! the same result no matter how the warps of a threadblock interleave. A
//! shared-memory race breaks that assumption silently: the differential
//! oracle only ever observes one interleaving. This pass proves race
//! freedom — or reports a race — *statically*, in three steps:
//!
//! 1. **Affine-interval dataflow.** Every register is abstracted as
//!    [`AffineVal`]: `a*tid.x + b*tid.y + c` with a TB-uniform constant
//!    `c ∈ [lo, hi]` (see [`simt_compiler::affine`]). Predicates carry the
//!    comparison that defined them, so guards stay symbolically
//!    evaluable. Branch edges refine uniform loop counters against their
//!    exact bounds (`i < 8` caps `i`'s interval on the taken edge), which
//!    keeps barrier-free tap loops like DCT's row pass precise; bounds
//!    that keep growing are widened to infinity after a few sweeps.
//! 2. **Barrier-epoch segmentation.** Basic blocks are split at
//!    `bar.sync` into *segments*; segment edges follow CFG edges but
//!    never cross a barrier. Two accesses can execute in the same epoch
//!    (same barrier interval, hence unordered across warps) iff one's
//!    segment reaches the other's — including around back edges, so a
//!    loop whose body lacks a barrier pairs an iteration's accesses with
//!    the next iteration's.
//! 3. **Footprint overlap.** For every same-epoch pair with at least one
//!    store, the pass intersects thread footprints. Exact affine
//!    addresses are evaluated concretely over the launch's block,
//!    restricted to the threads that provably execute the access (its
//!    guard plus the conditions of every dominating divergent branch);
//!    a provable overlap across two distinct threads is a `V301` error.
//!    Interval-valued footprints fall back to byte-range disjointness;
//!    non-affine addresses escalate conservatively to a `V302` warning,
//!    as do overlaps the pass cannot decide either way.
//!
//! The pass needs the launch's block shape (footprints and guard
//! evaluation are per-thread), so it runs from `verify_full` — the race
//! verdict for one shape says nothing about another.

use crate::{Diagnostic, Diagnostics, LintCode};
use simt_compiler::affine::{fixpoint, resolve, transfer, Affine, AffineVal, FlowState, PredVal};
use simt_compiler::{BlockId, CompiledKernel};
use simt_isa::{LaunchConfig, MemSpace, Op};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One shared-memory access with its converged abstract address.
struct SharedAccess {
    pc: usize,
    block: BlockId,
    is_store: bool,
    /// Byte address including the instruction offset.
    addr: AffineVal,
    /// The instruction's own guard: predicate snapshot and required truth.
    guard: Option<(PredVal, bool)>,
}

/// Barrier-delimited segments: CFG granularity below basic blocks whose
/// edges never cross a `bar.sync`.
struct Epochs {
    seg_of_pc: Vec<usize>,
    seg_succs: Vec<Vec<usize>>,
    count: usize,
}

impl Epochs {
    fn build(ck: &CompiledKernel) -> Epochs {
        let cfg = &ck.cfg;
        let n = ck.kernel.instrs.len();
        let mut seg_of_pc = vec![usize::MAX; n];
        let nb = cfg.blocks.len();
        let (mut first_seg, mut last_seg) = (vec![0usize; nb], vec![0usize; nb]);
        let mut count = 0usize;
        for (b, block) in cfg.blocks.iter().enumerate() {
            first_seg[b] = count;
            let mut cur = count;
            count += 1;
            for pc in block.range() {
                seg_of_pc[pc] = cur;
                if matches!(ck.kernel.instrs[pc].op, Op::Bar) && pc + 1 < block.end {
                    cur = count;
                    count += 1;
                }
            }
            // A block ending in a barrier still needs a post-barrier
            // segment to carry its successor edges.
            if block.range().last().is_some_and(|pc| matches!(ck.kernel.instrs[pc].op, Op::Bar)) {
                cur = count;
                count += 1;
            }
            last_seg[b] = cur;
        }
        let mut seg_succs = vec![Vec::new(); count];
        for (b, block) in cfg.blocks.iter().enumerate() {
            for &s in &block.succs {
                seg_succs[last_seg[b]].push(first_seg[s]);
            }
        }
        Epochs { seg_of_pc, seg_succs, count }
    }

    /// Segments reachable from `seed` via one or more edges.
    fn reach_after(&self, seed: usize) -> Vec<bool> {
        let mut seen = vec![false; self.count];
        let mut work: Vec<usize> = self.seg_succs[seed].clone();
        while let Some(s) = work.pop() {
            if !seen[s] {
                seen[s] = true;
                work.extend(self.seg_succs[s].iter().copied());
            }
        }
        seen
    }
}

/// Blocks reachable from `seed`, inclusive.
fn reachable_blocks(ck: &CompiledKernel, seed: BlockId) -> Vec<bool> {
    let mut seen = vec![false; ck.cfg.blocks.len()];
    let mut work = vec![seed];
    while let Some(b) = work.pop() {
        if !seen[b] {
            seen[b] = true;
            work.extend(ck.cfg.blocks[b].succs.iter().copied());
        }
    }
    seen
}

/// Iterative dominator sets over the CFG (entry is block 0).
fn dominators(ck: &CompiledKernel) -> Vec<Vec<bool>> {
    let nb = ck.cfg.blocks.len();
    let mut dom: Vec<Vec<bool>> = vec![vec![true; nb]; nb];
    dom[0] = vec![false; nb];
    dom[0][0] = true;
    let rpo = ck.cfg.reverse_post_order();
    loop {
        let mut changed = false;
        for &b in &rpo {
            if b == 0 {
                continue;
            }
            let mut new = vec![true; nb];
            let mut any_pred = false;
            for &p in &ck.cfg.blocks[b].preds {
                if !rpo.contains(&p) {
                    continue; // unreachable predecessor
                }
                any_pred = true;
                for (n, d) in new.iter_mut().zip(&dom[p]) {
                    *n = *n && *d;
                }
            }
            if !any_pred {
                new = vec![false; nb];
            }
            new[b] = true;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dom
}

/// Per-block execution conditions from dominating divergent branches:
/// for each block, the `(predicate, required polarity)` pairs of every
/// dominating two-way branch whose chosen side exclusively reaches it.
/// Shared by the race pass and the memory-performance predictor.
pub(crate) fn block_conditions(
    ck: &CompiledKernel,
    in_states: &[FlowState],
    block_z: u32,
) -> Vec<Vec<(PredVal, bool)>> {
    let nb = ck.cfg.blocks.len();
    let mut branch_info: HashMap<BlockId, (PredVal, bool)> = HashMap::new();
    for (b, block) in ck.cfg.blocks.iter().enumerate() {
        if !in_states[b].reachable {
            continue;
        }
        let mut st = in_states[b].clone();
        for pc in block.range() {
            let instr = &ck.kernel.instrs[pc];
            if let (Op::Bra { .. }, Some(g)) = (instr.op, instr.guard) {
                branch_info.insert(b, (st.preds[usize::from(g.pred.0)], !g.negate));
            }
            transfer(&mut st, instr, block_z);
        }
    }
    let dom = dominators(ck);
    let mut block_conds: Vec<Vec<(PredVal, bool)>> = vec![Vec::new(); nb];
    for (&b, &(pv, taken_polarity)) in &branch_info {
        let succs = &ck.cfg.blocks[b].succs;
        if succs.len() != 2 || succs[0] == succs[1] {
            continue;
        }
        let rt = reachable_blocks(ck, succs[0]);
        let rf = reachable_blocks(ck, succs[1]);
        for x in 0..nb {
            if x == b || !dom[x][b] {
                continue;
            }
            if rt[x] && !rf[x] {
                block_conds[x].push((pv, taken_polarity));
            } else if rf[x] && !rt[x] {
                block_conds[x].push((pv, !taken_polarity));
            }
        }
    }
    block_conds
}

/// Per-thread execution evidence for one access.
struct ThreadSets {
    /// Linear thread ids that provably execute the access.
    definite: Vec<u32>,
    /// Linear thread ids that may execute it.
    may: Vec<u32>,
    /// True when every guard/branch condition was exactly evaluable, so
    /// `definite == may` and "no overlap" is a proof.
    conclusive: bool,
}

fn cmp_polarity_holds(pv: PredVal, polarity: bool, tx: i64, ty: i64) -> Option<bool> {
    pv.eval(tx, ty).map(|v| v == polarity)
}

fn thread_sets(constraints: &[(PredVal, bool)], bx: u32, by: u32, threads: u32) -> ThreadSets {
    let evaluable: Vec<bool> = constraints
        .iter()
        .map(|&(pv, _)| {
            matches!(pv, PredVal::Cmp { lhs, rhs, .. }
            if lhs.affine().is_some_and(Affine::is_exact)
            && rhs.affine().is_some_and(Affine::is_exact))
        })
        .collect();
    let conclusive = evaluable.iter().all(|&e| e);
    let mut definite = Vec::new();
    let mut may = Vec::new();
    for t in 0..threads {
        let tx = i64::from(t % bx);
        let ty = i64::from((t / bx) % by);
        let mut inc_def = true;
        let mut inc_may = true;
        for ((pv, pol), &ev) in constraints.iter().zip(&evaluable) {
            if ev {
                if cmp_polarity_holds(*pv, *pol, tx, ty) != Some(true) {
                    inc_def = false;
                    inc_may = false;
                    break;
                }
            } else {
                inc_def = false;
            }
        }
        if inc_def {
            definite.push(t);
        }
        if inc_may {
            may.push(t);
        }
    }
    ThreadSets { definite, may, conclusive }
}

/// Word-granularity footprint: shared word index → accessing threads.
fn footprint(f: Affine, threads: &[u32], bx: u32, by: u32) -> BTreeMap<i64, Vec<u32>> {
    let mut words: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
    for &t in threads {
        let tx = i64::from(t % bx);
        let ty = i64::from((t / bx) % by);
        if let Some(byte) = f.eval(tx, ty) {
            words.entry(byte.div_euclid(4)).or_default().push(t);
        }
    }
    words
}

/// A pair of distinct threads touching one common word, if any.
fn cross_collision(
    a: &BTreeMap<i64, Vec<u32>>,
    b: &BTreeMap<i64, Vec<u32>>,
) -> Option<(i64, u32, u32)> {
    for (w, ta) in a {
        let Some(tb) = b.get(w) else { continue };
        if ta.is_empty() || tb.is_empty() {
            continue;
        }
        if ta[0] != tb[0] {
            return Some((*w, ta[0], tb[0]));
        }
        if ta.len() > 1 {
            return Some((*w, ta[1], tb[0]));
        }
        if tb.len() > 1 {
            return Some((*w, ta[0], tb[1]));
        }
    }
    None
}

/// Two distinct threads of one access colliding on one word (write-write
/// within a single dynamic instance), if any.
fn self_collision(a: &BTreeMap<i64, Vec<u32>>) -> Option<(i64, u32, u32)> {
    a.iter().find(|(_, t)| t.len() >= 2).map(|(w, t)| (*w, t[0], t[1]))
}

/// Static shared-memory race check for one kernel under one launch's
/// block shape. Reports `V301` for provable races and `V302` where race
/// freedom cannot be established.
#[must_use]
pub fn check(ck: &CompiledKernel, launch: &LaunchConfig) -> Diagnostics {
    let mut report = Diagnostics::new(ck.kernel.name.clone());
    let instrs = &ck.kernel.instrs;
    let has_shared =
        instrs.iter().any(|i| matches!(i.op, Op::Ld(MemSpace::Shared) | Op::St(MemSpace::Shared)));
    if !has_shared {
        return report;
    }

    let (bx, by, bz) = (launch.block.x.max(1), launch.block.y.max(1), launch.block.z.max(1));
    let threads = launch.threads_per_block();

    // ---- 1. affine-interval fixed point over the CFG -------------------
    let in_states = fixpoint(&ck.kernel, &ck.cfg, bz, false);
    let rpo = ck.cfg.reverse_post_order();

    // ---- 2. collect accesses -------------------------------------------
    let mut accesses: Vec<SharedAccess> = Vec::new();
    for &b in &rpo {
        if !in_states[b].reachable {
            continue;
        }
        let mut st = in_states[b].clone();
        for pc in ck.cfg.blocks[b].range() {
            let instr = &instrs[pc];
            let is_shared_ld = matches!(instr.op, Op::Ld(MemSpace::Shared));
            let is_shared_st = matches!(instr.op, Op::St(MemSpace::Shared));
            if is_shared_ld || is_shared_st {
                let addr =
                    resolve(&st, instr.srcs[0]) + AffineVal::constant(i64::from(instr.offset));
                let guard = instr.guard.map(|g| (st.preds[usize::from(g.pred.0)], !g.negate));
                accesses.push(SharedAccess { pc, block: b, is_store: is_shared_st, addr, guard });
            }
            transfer(&mut st, instr, bz);
        }
    }

    // ---- 3. per-block execution conditions from dominating branches ----
    let block_conds = block_conditions(ck, &in_states, bz);

    // ---- 4. same-epoch overlap checking --------------------------------
    let epochs = Epochs::build(ck);
    let reach: HashMap<usize, Vec<bool>> = accesses
        .iter()
        .map(|a| epochs.seg_of_pc[a.pc])
        .collect::<HashSet<_>>()
        .into_iter()
        .map(|s| (s, epochs.reach_after(s)))
        .collect();

    let sets: Vec<ThreadSets> = accesses
        .iter()
        .map(|a| {
            let mut cs = block_conds[a.block].clone();
            if let Some(g) = a.guard {
                cs.push(g);
            }
            thread_sets(&cs, bx, by, threads)
        })
        .collect();

    let mut v301: BTreeMap<(usize, usize), String> = BTreeMap::new();
    let mut v302: BTreeMap<usize, String> = BTreeMap::new();
    let kind = |s: &SharedAccess| if s.is_store { "store" } else { "load" };

    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if !a.is_store && !b.is_store {
                continue;
            }
            let (sa, sb) = (epochs.seg_of_pc[a.pc], epochs.seg_of_pc[b.pc]);
            let cycle = reach[&sa][sa];
            let same_epoch = if i == j {
                true // one dynamic instance always races with itself
            } else {
                sa == sb || reach[&sa][sb] || reach[&sb][sa]
            };
            if !same_epoch {
                continue;
            }
            // Non-affine address: conservatively escalate.
            let (fa, fb) = (a.addr.affine(), b.addr.affine());
            if fa.is_none() || fb.is_none() {
                for acc in [a, b] {
                    if acc.addr.affine().is_none() {
                        v302.entry(acc.pc).or_insert_with(|| {
                            format!(
                                "shared {} `{}` has a non-affine address; cannot prove it \
                                 race-free against the same-epoch {} at pc {}",
                                kind(acc),
                                instrs[acc.pc],
                                kind(if acc.pc == a.pc { b } else { a }),
                                if acc.pc == a.pc { b.pc } else { a.pc },
                            )
                        });
                    }
                }
                continue;
            }
            let (fa, fb) = (fa.unwrap(), fb.unwrap());

            if i == j {
                // Self pair: within one dynamic instance the uniform
                // constant cancels, so collisions depend only on (a, b)
                // coefficients — evaluable even for interval constants.
                let phase = Affine { lo: 0, hi: 0, ..fa };
                let def = footprint(phase, &sets[i].definite, bx, by);
                if let Some((_, t1, t2)) = self_collision(&def) {
                    v301.entry((a.pc, b.pc)).or_insert_with(|| {
                        format!(
                            "shared {} `{}` collides with itself across threads: threads {t1} \
                             and {t2} address the same word within one barrier interval",
                            kind(a),
                            instrs[a.pc],
                        )
                    });
                    continue;
                }
                let may = footprint(phase, &sets[i].may, bx, by);
                let unproven_self = !sets[i].conclusive && self_collision(&may).is_some();
                // A barrier-free cycle lets different instances (with
                // different constants) of this access share an epoch.
                let unproven_cycle = cycle && !fa.is_exact();
                if unproven_self || unproven_cycle {
                    v302.entry(a.pc).or_insert_with(|| {
                        format!(
                            "shared {} `{}` may collide across threads within one barrier \
                             interval; race freedom is not provable",
                            kind(a),
                            instrs[a.pc],
                        )
                    });
                }
                continue;
            }

            if fa.is_exact() && fb.is_exact() {
                let (fpa, fpb) = (
                    footprint(fa, &sets[i].definite, bx, by),
                    footprint(fb, &sets[j].definite, bx, by),
                );
                if let Some((w, t1, t2)) = cross_collision(&fpa, &fpb) {
                    v301.entry((a.pc, b.pc)).or_insert_with(|| {
                        format!(
                            "shared-memory race within one barrier interval: {} `{}` at pc {} \
                             (thread {t1}) and {} `{}` at pc {} (thread {t2}) overlap on \
                             shared word {w}",
                            kind(a),
                            instrs[a.pc],
                            a.pc,
                            kind(b),
                            instrs[b.pc],
                            b.pc,
                        )
                    });
                    continue;
                }
                if sets[i].conclusive && sets[j].conclusive {
                    continue; // proven disjoint across distinct threads
                }
                let (ma, mb) =
                    (footprint(fa, &sets[i].may, bx, by), footprint(fb, &sets[j].may, bx, by));
                if cross_collision(&ma, &mb).is_some() {
                    v302.entry(a.pc.max(b.pc)).or_insert_with(|| {
                        format!(
                            "shared {} at pc {} and {} at pc {} may overlap in one barrier \
                             interval under conditions the analysis cannot evaluate",
                            kind(a),
                            a.pc,
                            kind(b),
                            b.pc,
                        )
                    });
                }
                continue;
            }

            // Interval-valued footprints: byte-range disjointness.
            let (ra, rb) =
                (fa.range(i64::from(bx), i64::from(by)), fb.range(i64::from(bx), i64::from(by)));
            let disjoint = ra.1.saturating_add(3) < rb.0 || rb.1.saturating_add(3) < ra.0;
            if !disjoint {
                v302.entry(a.pc.max(b.pc)).or_insert_with(|| {
                    format!(
                        "shared {} at pc {} and {} at pc {} have interval-valued affine \
                         footprints that may overlap in one barrier interval",
                        kind(a),
                        a.pc,
                        kind(b),
                        b.pc,
                    )
                });
            }
        }
    }

    let mut items: Vec<(usize, Diagnostic)> = Vec::new();
    for ((pa, _), msg) in v301 {
        items.push((pa, Diagnostic::new(LintCode::SharedRaceStatic, Some(pa), msg)));
    }
    for (pc, msg) in v302 {
        items.push((pc, Diagnostic::new(LintCode::SharedAddrUnknown, Some(pc), msg)));
    }
    items.sort_by_key(|(pc, d)| (*pc, d.code.code()));
    for (_, d) in items {
        report.push(d);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_compiler::compile;
    use simt_isa::{CmpOp, Dim3, Guard, KernelBuilder, SpecialReg};

    fn launch_1d(n: u32) -> LaunchConfig {
        LaunchConfig::new(1u32, Dim3::one_d(n))
    }

    #[test]
    fn missing_barrier_write_read_overlap_is_v301() {
        let mut b = KernelBuilder::new("racy_rw");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 4);
        let off = b.shl_imm(t, 2);
        let addr = b.iadd(off, smem);
        b.store(MemSpace::Shared, addr, t, 0);
        // Every thread reads word 0 with no barrier after the write.
        let _v = b.load(MemSpace::Shared, smem, 0);
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(64));
        assert_eq!(d.with_code(LintCode::SharedRaceStatic).len(), 1, "{}", d.render());
        assert!(d.with_code(LintCode::SharedAddrUnknown).is_empty(), "{}", d.render());
    }

    #[test]
    fn barrier_between_phases_is_clean() {
        let mut b = KernelBuilder::new("clean_rw");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 4);
        let off = b.shl_imm(t, 2);
        let addr = b.iadd(off, smem);
        b.store(MemSpace::Shared, addr, t, 0);
        b.barrier();
        let _v = b.load(MemSpace::Shared, smem, 0);
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(64));
        assert!(d.items.is_empty(), "{}", d.render());
    }

    #[test]
    fn same_word_store_by_all_threads_is_v301() {
        let mut b = KernelBuilder::new("racy_ww");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(16);
        b.store(MemSpace::Shared, smem, t, 0);
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(32));
        assert_eq!(d.with_code(LintCode::SharedRaceStatic).len(), 1, "{}", d.render());
    }

    #[test]
    fn non_affine_address_escalates_to_v302() {
        let mut b = KernelBuilder::new("nonaffine");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(16);
        let bit = b.and(t, 1u32);
        let off = b.shl_imm(bit, 2);
        let addr = b.iadd(off, smem);
        b.store(MemSpace::Shared, addr, t, 0);
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(32));
        assert!(d.with_code(LintCode::SharedRaceStatic).is_empty(), "{}", d.render());
        assert_eq!(d.with_code(LintCode::SharedAddrUnknown).len(), 1, "{}", d.render());
    }

    #[test]
    fn loop_counter_refinement_proves_disjoint_regions() {
        // Threads write bytes [32, 287]; a uniform tap loop reads bytes
        // [0, 31]. Only the branch-edge refinement of `k < 8` bounds the
        // read region away from the written one.
        let mut b = KernelBuilder::new("refine");
        let t = b.special(SpecialReg::TidX);
        let sm_taps = b.alloc_shared(32);
        let sm_data = b.alloc_shared(256);
        let off = b.shl_imm(t, 2);
        let waddr = b.iadd(off, sm_data);
        b.store(MemSpace::Shared, waddr, t, 0);
        b.for_count(8u32, |b, k| {
            let ko = b.shl_imm(k, 2);
            let raddr = b.iadd(ko, sm_taps);
            let _tap = b.load(MemSpace::Shared, raddr, 0);
        });
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(64));
        assert!(d.items.is_empty(), "{}", d.render());
    }

    #[test]
    fn barrier_on_both_sides_inside_loop_is_clean() {
        // Mirrored exchange: thread t writes word t, reads word 63-t.
        // Barriers before AND after the read separate it from the writes
        // of both the same and the next iteration.
        let mut b = KernelBuilder::new("loop_bar");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 4);
        let off = b.shl_imm(t, 2);
        let waddr = b.iadd(off, smem);
        let neg = b.isub(252u32, off);
        let raddr = b.iadd(neg, smem);
        b.for_count(4u32, |b, _k| {
            b.store(MemSpace::Shared, waddr, t, 0);
            b.barrier();
            let _v = b.load(MemSpace::Shared, raddr, 0);
            b.barrier();
        });
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(64));
        assert!(d.items.is_empty(), "{}", d.render());
    }

    #[test]
    fn loop_carried_race_around_back_edge_is_v301() {
        // Same exchange but without the trailing barrier: the read of
        // iteration k races with the write of iteration k+1 via the back
        // edge.
        let mut b = KernelBuilder::new("loop_race");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 4);
        let off = b.shl_imm(t, 2);
        let waddr = b.iadd(off, smem);
        let neg = b.isub(252u32, off);
        let raddr = b.iadd(neg, smem);
        b.for_count(4u32, |b, _k| {
            b.store(MemSpace::Shared, waddr, t, 0);
            b.barrier();
            let _v = b.load(MemSpace::Shared, raddr, 0);
        });
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(64));
        assert_eq!(d.with_code(LintCode::SharedRaceStatic).len(), 1, "{}", d.render());
    }

    #[test]
    fn conditional_blocks_limit_executing_threads() {
        // Only thread 0 writes and only thread 0 reads word 0 — both
        // accesses are unguarded instructions inside `if (tid.x == 0)`
        // bodies, so the proof needs the dominating branch condition.
        let mut b = KernelBuilder::new("cond_single");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(16);
        let q = b.setp(CmpOp::Eq, t, 0u32);
        b.if_then(Guard { pred: q, negate: false }, |b| {
            b.store(MemSpace::Shared, smem, 7u32, 0);
        });
        b.if_then(Guard { pred: q, negate: false }, |b| {
            let _v = b.load(MemSpace::Shared, smem, 0);
        });
        let ck = compile(b.finish());
        let d = check(&ck, &launch_1d(64));
        assert!(d.items.is_empty(), "{}", d.render());
    }

    #[test]
    fn third_dimension_threads_collide_on_tidx_addresses() {
        // Block (4, 1, 4): threads differing only in tid.z share every
        // tid.x-derived address.
        let mut b = KernelBuilder::new("z_collide");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(16);
        let off = b.shl_imm(t, 2);
        let addr = b.iadd(off, smem);
        b.store(MemSpace::Shared, addr, t, 0);
        let ck = compile(b.finish());
        let d = check(&ck, &LaunchConfig::new(1u32, Dim3::three_d(4, 1, 4)));
        assert_eq!(d.with_code(LintCode::SharedRaceStatic).len(), 1, "{}", d.render());
    }

    #[test]
    fn tidz_derived_address_is_conservatively_v302() {
        let mut b = KernelBuilder::new("z_addr");
        let z = b.special(SpecialReg::TidZ);
        let smem = b.alloc_shared(16);
        let off = b.shl_imm(z, 2);
        let addr = b.iadd(off, smem);
        b.store(MemSpace::Shared, addr, z, 0);
        let ck = compile(b.finish());
        let d = check(&ck, &LaunchConfig::new(1u32, Dim3::three_d(1, 1, 4)));
        assert_eq!(d.with_code(LintCode::SharedAddrUnknown).len(), 1, "{}", d.render());
    }
}
