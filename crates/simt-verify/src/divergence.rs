//! Pass 2: divergence-safety linting for barriers.
//!
//! `bar.sync` counts arriving *warps*; a barrier reached by only part of a
//! threadblock hangs or silently mis-synchronizes the rest. Two shapes are
//! flagged:
//!
//! * **V101** — a barrier located between a potentially divergent guarded
//!   branch and that branch's reconvergence point (from the compiler's
//!   [`ReconvergenceTable`](simt_compiler::ReconvergenceTable)). A branch
//!   counts as divergent unless its abstract class proves the guard
//!   TB-uniform — `Red::Redundant` with `Pat::Uniform`. With a
//!   [`LaunchConfig`], the launch's dimensionality promotion is applied
//!   first, so a `tid.y`-derived guard in a promoted launch still counts
//!   as divergent (promotion equalizes warps, not lanes) while truly
//!   uniform loop guards never fire the lint.
//! * **V102** — a guarded barrier. [`Kernel::validate`](simt_isa::Kernel)
//!   also rejects these; the lint keeps the verifier self-contained for
//!   kernels built without validation.

use crate::{Diagnostic, Diagnostics, LintCode};
use simt_compiler::{promotes_tid_y, CompiledKernel, RECONVERGE_AT_EXIT};
use simt_isa::{LaunchConfig, Op};

/// Runs the divergence-safety lint. Without a launch config, no promotion
/// is applied: conditionally redundant guards count as potentially
/// divergent (the conservative answer).
#[must_use]
pub fn check(ck: &CompiledKernel, launch: Option<&LaunchConfig>) -> Diagnostics {
    let kernel = &ck.kernel;
    let cfg = &ck.cfg;
    let mut report = Diagnostics::new(kernel.name.clone());
    let (px, py) = match launch {
        Some(l) => (l.promotes_conditional_redundancy(), promotes_tid_y(l)),
        None => (false, false),
    };

    for (pc, instr) in kernel.instrs.iter().enumerate() {
        if matches!(instr.op, Op::Bar) {
            if let Some(g) = instr.guard {
                report.push(Diagnostic::new(
                    LintCode::PredicatedBarrier,
                    Some(pc),
                    format!("barrier guarded by {g}: arrival would be thread-dependent"),
                ));
            }
            continue;
        }
        if !matches!(instr.op, Op::Bra { .. }) || instr.guard.is_none() {
            continue;
        }
        // The instruction class already folds the guard predicate's class
        // in, so it describes how uniformly this branch resolves.
        let class = ck.classes[pc].finalize(px, py);
        if class.is_uv_uniform() {
            continue;
        }

        // Scan the divergent region: every block reachable from the branch
        // without passing through its reconvergence point.
        let recon_block = match ck.recon.recon[pc] {
            Some(RECONVERGE_AT_EXIT) | None => cfg.exit_block(),
            Some(r) => cfg.block_of[r],
        };
        let branch_block = cfg.block_of[pc];
        let mut visited = vec![false; cfg.blocks.len()];
        let mut stack: Vec<usize> = cfg.blocks[branch_block].succs.clone();
        while let Some(b) = stack.pop() {
            if b == recon_block || std::mem::replace(&mut visited[b], true) {
                continue;
            }
            for bar_pc in cfg.blocks[b].range() {
                if matches!(kernel.instrs[bar_pc].op, Op::Bar) {
                    report.push(Diagnostic::new(
                        LintCode::BarrierUnderDivergence,
                        Some(bar_pc),
                        format!(
                            "barrier is reachable under the potentially divergent branch \
                             `{}` at pc {} before its reconvergence point{}",
                            kernel.instrs[pc],
                            pc,
                            match ck.recon.recon[pc] {
                                Some(RECONVERGE_AT_EXIT) => " (thread exit)".to_string(),
                                Some(r) => format!(" (pc {r})"),
                                None => String::new(),
                            }
                        ),
                    ));
                }
            }
            stack.extend(cfg.blocks[b].succs.iter().copied());
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{
        CmpOp, Dim3, Guard, Instruction, Kernel, MemSpace, Operand, Pred, Reg, SpecialReg,
    };

    fn compile(instrs: Vec<Instruction>) -> CompiledKernel {
        let mut k = Kernel::new("t", instrs);
        k.shared_mem_bytes = 64;
        simt_compiler::compile(k)
    }

    fn exit() -> Instruction {
        Instruction::new(Op::Exit, None, None, vec![])
    }

    /// The acceptance-criteria kernel: a barrier inside a `tid.x`-dependent
    /// branch body. With `hoisted`, the barrier instead sits after the
    /// reconvergence point.
    fn tid_branch_kernel(hoisted: bool) -> CompiledKernel {
        let mut instrs = vec![
            // 0: R0 = tid.x
            Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]),
            // 1: P0 = tid.x < 16
            Instruction::new(
                Op::Setp(CmpOp::Lt),
                None,
                Some(Pred(0)),
                vec![Reg(0).into(), Operand::Imm(16)],
            ),
            // 2: @!P0 bra 5 (skip the then-body)
            Instruction::new(Op::Bra { target: 5 }, None, None, vec![])
                .with_guard(Guard::if_false(Pred(0))),
            // 3: then-body store (or barrier when not hoisted)
            // 4: barrier or nop-ish store
            // 5: reconvergence point: store, then exit
        ];
        if hoisted {
            instrs.push(Instruction::new(
                Op::St(MemSpace::Shared),
                None,
                None,
                vec![Operand::Imm(0), Reg(0).into()],
            ));
            instrs.push(Instruction::new(
                Op::St(MemSpace::Shared),
                None,
                None,
                vec![Operand::Imm(4), Reg(0).into()],
            ));
            instrs.push(Instruction::new(Op::Bar, None, None, vec![])); // pc 5: past recon
        } else {
            instrs.push(Instruction::new(
                Op::St(MemSpace::Shared),
                None,
                None,
                vec![Operand::Imm(0), Reg(0).into()],
            ));
            instrs.push(Instruction::new(Op::Bar, None, None, vec![])); // pc 4: divergent!
            instrs.push(Instruction::new(
                Op::St(MemSpace::Shared),
                None,
                None,
                vec![Operand::Imm(4), Reg(0).into()],
            ));
        }
        instrs.push(exit());
        compile(instrs)
    }

    #[test]
    fn barrier_in_tid_dependent_branch_is_flagged() {
        let ck = tid_branch_kernel(false);
        let r = check(&ck, None);
        let hits = r.with_code(LintCode::BarrierUnderDivergence);
        assert_eq!(hits.len(), 1, "{}", r.render());
        assert_eq!(hits[0].pc, Some(4));
        assert!(!r.is_clean());
    }

    #[test]
    fn hoisting_the_barrier_past_reconvergence_clears_the_lint() {
        let ck = tid_branch_kernel(true);
        let r = check(&ck, None);
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn promotion_does_not_make_a_tid_branch_barrier_safe() {
        // Even in a launch that promotes conditional redundancy, a tid.x
        // guard is affine (lane-varying), so the branch still diverges.
        let ck = tid_branch_kernel(false);
        let launch = LaunchConfig::new(1u32, Dim3::two_d(16, 16));
        assert!(launch.promotes_conditional_redundancy());
        let r = check(&ck, Some(&launch));
        assert_eq!(r.with_code(LintCode::BarrierUnderDivergence).len(), 1, "{}", r.render());
    }

    #[test]
    fn uniform_loop_with_barrier_is_clean() {
        // A do-while loop on a TB-uniform counter with a barrier in its
        // body (the BIN / do-across-tiles shape) must not fire.
        let ck = compile(vec![
            // 0: R0 = 0 (uniform counter)
            Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(0)]),
            // 1: barrier in the loop body
            Instruction::new(Op::Bar, None, None, vec![]),
            // 2: R0 += 1
            Instruction::new(Op::IAdd, Some(Reg(0)), None, vec![Reg(0).into(), Operand::Imm(1)]),
            // 3: P0 = R0 < 4
            Instruction::new(
                Op::Setp(CmpOp::Lt),
                None,
                Some(Pred(0)),
                vec![Reg(0).into(), Operand::Imm(4)],
            ),
            // 4: @P0 bra 1
            Instruction::new(Op::Bra { target: 1 }, None, None, vec![])
                .with_guard(Guard::if_true(Pred(0))),
            exit(),
        ]);
        let r = check(&ck, None);
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn divergent_loop_with_barrier_is_flagged() {
        // Same loop but the trip count depends on tid.x: warps exit the
        // loop at different iterations, so the barrier is unsafe.
        let ck = compile(vec![
            Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(1)), None, vec![]),
            Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(0)]),
            Instruction::new(Op::Bar, None, None, vec![]),
            Instruction::new(Op::IAdd, Some(Reg(0)), None, vec![Reg(0).into(), Operand::Imm(1)]),
            Instruction::new(
                Op::Setp(CmpOp::Lt),
                None,
                Some(Pred(0)),
                vec![Reg(0).into(), Reg(1).into()],
            ),
            Instruction::new(Op::Bra { target: 2 }, None, None, vec![])
                .with_guard(Guard::if_true(Pred(0))),
            exit(),
        ]);
        let r = check(&ck, None);
        let hits = r.with_code(LintCode::BarrierUnderDivergence);
        assert_eq!(hits.len(), 1, "{}", r.render());
        assert_eq!(hits[0].pc, Some(2));
    }

    #[test]
    fn guarded_barrier_is_flagged() {
        // Kernel::validate (and therefore compile) rejects this shape, so
        // assemble the CompiledKernel by hand to exercise the lint path
        // for kernels built without validation.
        let k = Kernel::new(
            "guarded-bar",
            vec![
                Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]),
                Instruction::new(
                    Op::Setp(CmpOp::Lt),
                    None,
                    Some(Pred(0)),
                    vec![Reg(0).into(), Operand::Imm(16)],
                ),
                Instruction::new(Op::Bar, None, None, vec![]).with_guard(Guard::if_true(Pred(0))),
                exit(),
            ],
        );
        assert!(k.validate().is_err(), "validate should also reject this");
        let cfg = simt_compiler::Cfg::build(&k);
        let pdoms = simt_compiler::PostDoms::compute(&cfg);
        let recon = simt_compiler::ReconvergenceTable::compute(&k, &cfg, &pdoms);
        let analysis = simt_compiler::analyze(&k, &cfg, simt_compiler::AnalysisOptions::default());
        let markings = analysis.instr_class.iter().map(|c| c.marking()).collect();
        let ck = CompiledKernel { kernel: k, classes: analysis.instr_class, markings, recon, cfg };
        let r = check(&ck, None);
        assert_eq!(r.with_code(LintCode::PredicatedBarrier).len(), 1, "{}", r.render());
    }
}
