//! Symbolic translation validation: dimension-parametric proofs that the
//! compiler's redundancy markings and branch-sync assumptions are sound
//! for *every* launch the paper's promotion predicate admits, not just
//! the one configuration the differential oracle replays.
//!
//! The engine executes the compiled kernel once over symbolic
//! `tid.*`/`ntid.*` and symbolic initial memory (terms from
//! [`simt_compiler::term`]). Control flow follows the compiler's own
//! reconvergence table: a branch whose predicate folds to a constant is
//! followed directly; otherwise both arms run to the immediate
//! postdominator and the states merge pointwise with `ite` terms, so
//! loops with symbolic trip counts unroll up to the fork budget. From the
//! merged state every marked instruction and skippable branch yields
//! proof obligations over the term's dependency set:
//!
//! | claim | quantified over | obligation |
//! |---|---|---|
//! | DR (`Marking::Redundant` / `Red::Redundant`) | every launch | deps ⊆ {laneid} |
//! | CR via `px` | 2D TBs, `ntid.x` = 2^k ≤ warp size | deps ⊆ {tid.x, laneid} |
//! | CR via `px && py` | whole TB inside one warp | vacuous (single warp) |
//! | skippable branch | family of its class | deps = ∅ |
//!
//! The `px` row is the paper's promotion theorem: when `ntid.x` divides
//! the warp size, `tid.x = laneid mod ntid.x` is a pure *lane* function,
//! so per-lane values agree across warps. The `py` row is vacuous because
//! `ntid.x * ntid.y ≤ warp size` leaves a single warp per threadblock and
//! cross-warp redundancy has nothing to compare.
//!
//! Claims the term domain cannot discharge fall back to the affine
//! fixpoint ([`affine::fixpoint`]), which is already launch-generic —
//! but only its *exact* verdicts are trusted: the interval meet hulls
//! different per-path constants at control-flow joins, so a non-exact
//! "uniform" interval may still hide warp-divergent values and proves
//! nothing here. Guarded writes likewise fall to the term domain, which
//! models the unwritten lanes explicitly.
//! Claims neither prover discharges are *attacked*: the recorded terms
//! are evaluated concretely over a small family of two-warp candidate
//! blocks, and any cross-warp mismatch is replayed through the
//! differential oracle (the functional executor) before `S401` is
//! emitted — a counterexample the executor does not confirm is never
//! reported. Unresolved claims degrade to the conservative `S402`
//! warning; concrete divergence of a skippable branch predicate is
//! `S403`.

use crate::{oracle, Diagnostic, Diagnostics, LintCode};
use gpu_sim::GlobalMemory;
use simt_compiler::affine::{self, AffineVal};
use simt_compiler::{CompiledKernel, Deps, EvalCtx, Red, TermArena, TermId, RECONVERGE_AT_EXIT};
use simt_isa::{Instruction, LaunchConfig, Marking, MemSpace, Op, Operand, Value};
use std::collections::HashMap;

/// Total instructions the symbolic executor may retire (loops unroll).
const FUEL: usize = 1 << 16;
/// Maximum nesting of unresolved branch forks (also bounds unrolling).
const MAX_FORK_DEPTH: usize = 64;
/// Term-arena ceiling; blowing past it aborts to the affine fallback.
const MAX_TERMS: usize = 1 << 20;
/// Candidate `(ntid.x, ntid.y)` shapes for disproving claims quantified
/// over *every* launch: two full warps each, 1D and promoted 2D.
const DIMS_ALL: [(u32, u32); 4] = [(64, 1), (32, 2), (16, 4), (8, 8)];
/// Candidate shapes for claims quantified over the `px` promotion family
/// (2D, `ntid.x` a power of two ≤ warp size): two full warps each.
const DIMS_PX: [(u32, u32); 4] = [(32, 2), (16, 4), (8, 8), (4, 16)];

/// How a claim quantifies over launch configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Claimed for every launch (DR markings, `Red::Redundant` classes).
    All,
    /// Claimed whenever the x-dimension promotion check passes.
    PromotedX,
    /// Claimed only when both x- and y-checks pass (single-warp TBs).
    PromotedXY,
}

impl Family {
    /// Dependency sources a sound *value* claim of this family may have.
    fn allowed_value_deps(self) -> Deps {
        match self {
            Family::All => Deps::LANE,
            Family::PromotedX => Deps::TIDX.union(Deps::LANE),
            // Single warp per TB: cross-warp redundancy is vacuous.
            Family::PromotedXY => {
                Deps::TIDX.union(Deps::TIDY).union(Deps::LANE).union(Deps::WARP).union(Deps::OTHER)
            }
        }
    }

    /// Candidate block shapes used to hunt counterexamples.
    fn candidate_dims(self) -> &'static [(u32, u32)] {
        match self {
            Family::All => &DIMS_ALL,
            Family::PromotedX => &DIMS_PX,
            Family::PromotedXY => &[],
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Family::All => "every launch",
            Family::PromotedX => "every x-promoted launch",
            Family::PromotedXY => "every xy-promoted launch",
        }
    }
}

/// The strongest launch family under which `pc`'s marking or class claims
/// its result is shared across warps. Mirrors the differential oracle's
/// claim predicate, but quantified over the family instead of one launch.
fn value_claim(ck: &CompiledKernel, pc: usize) -> Option<Family> {
    let instr = &ck.kernel.instrs[pc];
    if !instr.op.writes_dst() || instr.dst.is_none() || matches!(instr.op, Op::Atom(_)) {
        return None;
    }
    let class = ck.classes[pc];
    let marking = ck.markings[pc];
    let claims = |px: bool, py: bool| {
        let marking_claims = match marking {
            Marking::Redundant => true,
            Marking::ConditionallyRedundant => match class.red {
                Red::CondRedundantXY => px && py,
                _ => px,
            },
            Marking::Vector => false,
        };
        marking_claims || class.finalize(px, py).taxonomy().is_redundant()
    };
    if claims(false, false) {
        Some(Family::All)
    } else if claims(true, false) {
        Some(Family::PromotedX)
    } else if claims(true, true) {
        Some(Family::PromotedXY)
    } else {
        None
    }
}

/// The strongest family under which the guarded branch at `pc` is
/// skippable (its class finalizes to uniform-redundant, the condition
/// DARSIE's fetch-skip and the divergence pass rely on).
fn branch_claim(ck: &CompiledKernel, pc: usize) -> Option<Family> {
    let instr = &ck.kernel.instrs[pc];
    if !matches!(instr.op, Op::Bra { .. }) || instr.guard.is_none() {
        return None;
    }
    let class = ck.classes[pc];
    if class.finalize(false, false).is_uv_uniform() {
        Some(Family::All)
    } else if class.finalize(true, false).is_uv_uniform() {
        Some(Family::PromotedX)
    } else if class.finalize(true, true).is_uv_uniform() {
        Some(Family::PromotedXY)
    } else {
        None
    }
}

/// One recorded execution of an obligation site: the term the site
/// produced and the path condition under which this visit happens.
#[derive(Clone, Copy)]
struct Visit {
    path: TermId,
    term: TermId,
}

/// Register/predicate file over terms; one per explored path segment.
#[derive(Clone)]
struct SymState {
    regs: Vec<TermId>,
    preds: Vec<TermId>,
}

enum Flow {
    /// Reached the stop pc (a reconvergence point).
    Fell,
    /// Executed `exit` (or both arms of a fork did).
    Exited,
}

/// Budget exhaustion: fuel, fork depth, arena size, or an unmodeled
/// construct (thread-partial `exit`). The run so far remains usable for
/// counterexample hunting, but proofs require completion.
struct Exhausted;

struct Engine<'a> {
    ck: &'a CompiledKernel,
    t: TermArena,
    /// Store generation per space: [global, shared]. Monotonic across
    /// paths, so a generation-0 load provably precedes every store.
    gens: [u32; 2],
    fuel: usize,
    value_sites: Vec<bool>,
    branch_sites: Vec<bool>,
    value_visits: HashMap<usize, Vec<Visit>>,
    branch_visits: HashMap<usize, Vec<Visit>>,
}

impl<'a> Engine<'a> {
    fn new(ck: &'a CompiledKernel, value_sites: Vec<bool>, branch_sites: Vec<bool>) -> Engine<'a> {
        Engine {
            ck,
            t: TermArena::new(),
            gens: [0, 0],
            fuel: FUEL,
            value_sites,
            branch_sites,
            value_visits: HashMap::new(),
            branch_visits: HashMap::new(),
        }
    }

    fn gen_of(&self, space: MemSpace) -> u32 {
        match space {
            MemSpace::Global => self.gens[0],
            MemSpace::Shared => self.gens[1],
            MemSpace::Param => 0,
        }
    }

    fn bump_gen(&mut self, space: MemSpace) {
        match space {
            MemSpace::Global => self.gens[0] += 1,
            MemSpace::Shared => self.gens[1] += 1,
            MemSpace::Param => {}
        }
    }

    fn operand(&mut self, st: &SymState, op: Operand) -> TermId {
        match op {
            Operand::Reg(r) => st.regs[r.index()],
            Operand::Imm(v) => self.t.constant(v),
        }
    }

    /// The value the instruction writes to its destination register, in
    /// lockstep with the functional executor's per-lane semantics.
    fn dst_value(&mut self, st: &SymState, instr: &Instruction) -> TermId {
        let src = |i: usize| instr.srcs.get(i).copied();
        match instr.op {
            Op::S2R(s) => self.t.special(s),
            Op::Sel(p) => {
                let pv = st.preds[p.index()];
                let a = src(0).map(|o| self.operand(st, o));
                let b = src(1).map(|o| self.operand(st, o));
                let zero = self.t.constant(0);
                self.t.ite(pv, a.unwrap_or(zero), b.unwrap_or(zero))
            }
            Op::Ld(space) => {
                let zero = self.t.constant(0);
                let base = src(0).map_or(zero, |o| self.operand(st, o));
                let gen = self.gen_of(space);
                self.t.load(space, base, instr.offset, gen)
            }
            Op::Atom(_) => self.t.havoc(),
            _ => {
                // Plain ALU: absent operands read as zero, as in `exec`.
                let a = src(0).map(|o| self.operand(st, o));
                let b = src(1).map(|o| self.operand(st, o));
                let c = src(2).map(|o| self.operand(st, o));
                let zero = self.t.constant(0);
                self.t.alu(instr.op, a.unwrap_or(zero), b, c)
            }
        }
    }

    /// Runs from `pc` until `stop` (or `exit`), mutating `st` in place.
    /// `stop == RECONVERGE_AT_EXIT` means run until the kernel exits.
    fn run(
        &mut self,
        st: &mut SymState,
        mut pc: usize,
        stop: usize,
        path: TermId,
        depth: usize,
    ) -> Result<Flow, Exhausted> {
        loop {
            if pc == stop {
                return Ok(Flow::Fell);
            }
            if pc >= self.ck.kernel.instrs.len() {
                return Ok(Flow::Exited);
            }
            if self.fuel == 0 || self.t.len() > MAX_TERMS {
                return Err(Exhausted);
            }
            self.fuel -= 1;
            let instr = self.ck.kernel.instrs[pc].clone();
            let cond = instr.guard.map(|g| {
                let p = st.preds[g.pred.index()];
                if g.negate {
                    self.t.not(p)
                } else {
                    p
                }
            });
            match instr.op {
                Op::Bra { target } => {
                    let one = self.t.constant(1);
                    let c = cond.unwrap_or(one);
                    if instr.guard.is_some() && self.branch_sites[pc] {
                        self.branch_visits.entry(pc).or_default().push(Visit { path, term: c });
                    }
                    match self.t.as_const(c) {
                        Some(0) => pc += 1,
                        Some(_) => pc = target,
                        None => {
                            if depth >= MAX_FORK_DEPTH {
                                return Err(Exhausted);
                            }
                            let join = match self.ck.recon.recon[pc] {
                                Some(j) => j,
                                None => RECONVERGE_AT_EXIT,
                            };
                            let not_c = self.t.not(c);
                            let path_t = self.t.alu(Op::And, path, Some(c), None);
                            let path_e = self.t.alu(Op::And, path, Some(not_c), None);
                            let mut taken = st.clone();
                            let ft = self.run(&mut taken, target, join, path_t, depth + 1)?;
                            let fe = self.run(st, pc + 1, join, path_e, depth + 1)?;
                            match (ft, fe) {
                                (Flow::Exited, Flow::Exited) => return Ok(Flow::Exited),
                                (Flow::Exited, Flow::Fell) => {}
                                (Flow::Fell, Flow::Exited) => *st = taken,
                                (Flow::Fell, Flow::Fell) => {
                                    for i in 0..st.regs.len() {
                                        if taken.regs[i] != st.regs[i] {
                                            st.regs[i] = self.t.ite(c, taken.regs[i], st.regs[i]);
                                        }
                                    }
                                    for i in 0..st.preds.len() {
                                        if taken.preds[i] != st.preds[i] {
                                            st.preds[i] =
                                                self.t.ite(c, taken.preds[i], st.preds[i]);
                                        }
                                    }
                                }
                            }
                            // Both arms reconverged strictly before the
                            // exit, so the join is a real pc.
                            pc = join;
                        }
                    }
                    continue;
                }
                Op::Exit => match cond.map(|c| self.t.as_const(c)) {
                    None | Some(Some(1..)) => return Ok(Flow::Exited),
                    Some(Some(0)) => {
                        pc += 1;
                        continue;
                    }
                    // A thread-partial exit tears the warp apart; the
                    // term domain has no mask concept, so give up.
                    Some(None) => return Err(Exhausted),
                },
                Op::Bar => {
                    pc += 1;
                    continue;
                }
                Op::St(space) => {
                    self.bump_gen(space);
                    pc += 1;
                    continue;
                }
                _ => {}
            }
            if matches!(instr.op, Op::Atom(_)) {
                self.bump_gen(MemSpace::Global);
            }
            if instr.op.writes_pdst() {
                if let Some(p) = instr.pdst {
                    let (a, b) = match (instr.srcs.first(), instr.srcs.get(1)) {
                        (Some(&a), Some(&b)) => (self.operand(st, a), self.operand(st, b)),
                        _ => {
                            let z = self.t.constant(0);
                            (z, z)
                        }
                    };
                    let v = match instr.op {
                        Op::Setp(cmp) => self.t.cmp(cmp, false, a, b),
                        Op::SetpF(cmp) => self.t.cmp(cmp, true, a, b),
                        _ => self.t.havoc(),
                    };
                    let old = st.preds[p.index()];
                    st.preds[p.index()] = match cond {
                        None => v,
                        Some(c) => self.t.ite(c, v, old),
                    };
                }
            }
            if instr.op.writes_dst() {
                if let Some(d) = instr.dst {
                    let v = self.dst_value(st, &instr);
                    let old = st.regs[d.index()];
                    st.regs[d.index()] = match cond {
                        None => v,
                        Some(c) => self.t.ite(c, v, old),
                    };
                    // Record the post-instruction register, exactly what
                    // the oracle's observer snapshots (a false guard
                    // leaves the old value, and so does the `ite`).
                    if self.value_sites[pc] {
                        self.value_visits
                            .entry(pc)
                            .or_default()
                            .push(Visit { path, term: st.regs[d.index()] });
                    }
                }
            }
            pc += 1;
        }
    }
}

/// Per-obligation outcome of [`prove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Sound for the whole quantified family.
    Proved,
    /// A replay-confirmed counterexample exists (`S401` / `S403`).
    Disproved,
    /// Neither proved nor disproved within budget (`S402`).
    Unknown,
}

/// Aggregate counts from one [`prove`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProveStats {
    /// Marked-instruction obligations examined.
    pub value_claims: usize,
    /// Skippable-branch obligations examined.
    pub branch_claims: usize,
    /// Obligations proved for their whole launch family.
    pub proved: usize,
    /// Obligations with replay-confirmed counterexamples.
    pub disproved: usize,
    /// Obligations left open (budget / term-domain escape).
    pub unknown: usize,
    /// True when symbolic execution covered every path within budget.
    pub complete: bool,
}

/// Result of [`prove`]: the lint report plus the proof ledger.
pub struct Prove {
    /// `S401`/`S402`/`S403` diagnostics.
    pub report: Diagnostics,
    /// Proved / disproved / unknown counts.
    pub stats: ProveStats,
}

/// Proves (or refutes) every redundancy marking and branch-sync claim of
/// `ck` over its whole quantified launch family. When a reference launch
/// and memory image are supplied, counterexample hunting evaluates loads
/// against that initial image and replays candidates with its parameters;
/// otherwise a zeroed memory and empty parameter list are used.
#[must_use]
pub fn prove(ck: &CompiledKernel, reference: Option<(&LaunchConfig, &GlobalMemory)>) -> Prove {
    let n = ck.kernel.instrs.len();
    let vclaims: Vec<Option<Family>> = (0..n).map(|pc| value_claim(ck, pc)).collect();
    let bclaims: Vec<Option<Family>> = (0..n).map(|pc| branch_claim(ck, pc)).collect();

    // Pass 1: the symbolic engine.
    let mut eng = Engine::new(
        ck,
        vclaims.iter().map(Option::is_some).collect(),
        bclaims.iter().map(Option::is_some).collect(),
    );
    let zero = eng.t.constant(0);
    let one = eng.t.constant(1);
    let mut st = SymState {
        regs: vec![zero; ck.kernel.num_regs as usize],
        preds: vec![zero; affine::num_preds(&ck.kernel.instrs)],
    };
    let complete = eng.run(&mut st, 0, RECONVERGE_AT_EXIT, one, 0).is_ok();
    let Engine { mut t, value_visits, branch_visits, .. } = eng;

    // Pass 2: the launch-generic affine fixpoint as a fallback prover.
    let flows = affine::fixpoint(&ck.kernel, &ck.cfg, 1, true);
    let mut aff_val: Vec<Option<AffineVal>> = vec![None; n];
    let mut aff_guard_uniform = vec![false; n];
    let mut reachable = vec![false; n];
    for (b, block) in ck.cfg.blocks.iter().enumerate() {
        let mut fs = flows[b].clone();
        if !fs.reachable {
            continue;
        }
        for pc in block.range() {
            reachable[pc] = true;
            let instr = &ck.kernel.instrs[pc];
            if let Some(g) = instr.guard {
                aff_guard_uniform[pc] = pred_exact_uniform(fs.preds[g.pred.index()]);
            }
            // Guarded writes mix old and new bits per thread; only the
            // term domain models the unwritten lanes, so the affine
            // prover is restricted to unconditional definitions.
            if instr.op.writes_dst() && instr.dst.is_some() && instr.guard.is_none() {
                aff_val[pc] = Some(affine::value_of(&fs, instr, 1));
            }
            affine::transfer(&mut fs, instr, 1);
        }
    }

    let (ref_params, ref_memory);
    match reference {
        Some((launch, memory)) => {
            ref_params = launch.params.iter().map(|v| v.as_u32()).collect::<Vec<u32>>();
            ref_memory = memory.clone();
        }
        None => {
            ref_params = Vec::new();
            ref_memory = GlobalMemory::new();
        }
    }

    let mut report = Diagnostics::new(ck.kernel.name.clone());
    let mut stats = ProveStats { complete, ..ProveStats::default() };

    for pc in 0..n {
        if let Some(family) = vclaims[pc] {
            stats.value_claims += 1;
            let verdict = judge_value(
                ck,
                pc,
                family,
                complete,
                &mut t,
                &value_visits,
                &aff_val,
                &reachable,
                &ref_params,
                &ref_memory,
                &mut report,
            );
            count(&mut stats, verdict);
        }
        if let Some(family) = bclaims[pc] {
            stats.branch_claims += 1;
            let verdict = judge_branch(
                pc,
                family,
                complete,
                &mut t,
                &branch_visits,
                &aff_guard_uniform,
                &reachable,
                &ref_params,
                &ref_memory,
                &mut report,
            );
            count(&mut stats, verdict);
        }
    }
    Prove { report, stats }
}

fn count(stats: &mut ProveStats, v: Verdict) {
    match v {
        Verdict::Proved => stats.proved += 1,
        Verdict::Disproved => stats.disproved += 1,
        Verdict::Unknown => stats.unknown += 1,
    }
}

/// A cross-warp mismatch found by concrete evaluation of a visit's term.
struct Witness {
    block: (u32, u32),
    lane: u32,
    values: (u32, u32),
    term: TermId,
}

/// Evaluates each failing visit over two-warp candidate blocks, looking
/// for a lane whose value differs between the warps (for branch claims,
/// any two threads that disagree). Only threads satisfying the visit's
/// path condition count.
fn hunt(
    t: &TermArena,
    visits: &[Visit],
    failing: &[bool],
    dims: &[(u32, u32)],
    params: &[u32],
    memory: &GlobalMemory,
    cross_warp_only: bool,
) -> Option<Witness> {
    let read = |addr: u64| memory.read_u32(addr);
    for &(bx, by) in dims {
        for (visit, fail) in visits.iter().zip(failing) {
            if !fail {
                continue;
            }
            let eval_at = |warp: u32, lane: u32| -> Option<u32> {
                let ctx = EvalCtx {
                    block: (bx, by),
                    warp_size: 32,
                    warp,
                    lane,
                    params,
                    read_global: &read,
                };
                if t.eval(visit.path, &ctx)? == 0 {
                    return None;
                }
                t.eval(visit.term, &ctx)
            };
            if cross_warp_only {
                for lane in 0..32 {
                    if let (Some(a), Some(b)) = (eval_at(0, lane), eval_at(1, lane)) {
                        if a != b {
                            return Some(Witness {
                                block: (bx, by),
                                lane,
                                values: (a, b),
                                term: visit.term,
                            });
                        }
                    }
                }
            } else {
                // Branch uniformity: any two threads of the TB disagreeing
                // is divergence, including within one warp.
                let mut first: Option<(u32, u32)> = None;
                for warp in 0..2 {
                    for lane in 0..32 {
                        if let Some(v) = eval_at(warp, lane) {
                            match first {
                                None => first = Some((lane, v)),
                                Some((l0, v0)) if v0 != v => {
                                    return Some(Witness {
                                        block: (bx, by),
                                        lane: l0,
                                        values: (v0, v),
                                        term: visit.term,
                                    });
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// True when the affine abstraction pins a *single concrete constant*
/// for every thread. Plain `is_uniform` is not enough for a proof: the
/// interval meet hulls different per-path constants at control-flow
/// joins, so a non-exact "uniform" interval may still differ across
/// warps that took different paths.
fn exact_uniform(v: AffineVal) -> bool {
    v.affine().is_some_and(|f| f.is_uniform() && f.is_exact())
}

/// True when the predicate's truth value is pinned by exact uniform
/// operands — the same concrete comparison in every thread of every
/// family launch.
fn pred_exact_uniform(pv: affine::PredVal) -> bool {
    match pv {
        affine::PredVal::Cmp { lhs, rhs, .. } => exact_uniform(lhs) && exact_uniform(rhs),
        _ => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn judge_value(
    ck: &CompiledKernel,
    pc: usize,
    family: Family,
    complete: bool,
    t: &mut TermArena,
    visits: &HashMap<usize, Vec<Visit>>,
    aff_val: &[Option<AffineVal>],
    reachable: &[bool],
    ref_params: &[u32],
    ref_memory: &GlobalMemory,
    report: &mut Diagnostics,
) -> Verdict {
    if !reachable[pc] || family == Family::PromotedXY {
        // Dead code proves anything; single-warp TBs have no second warp
        // to diverge from.
        return Verdict::Proved;
    }
    // Affine prover: launch-generic by construction. Only *exact*
    // constants are proofs — the interval meet hulls different per-path
    // constants at joins, so a non-exact a = b = 0 interval can still
    // hide a warp-divergent value (e.g. a counter after a warp-dependent
    // loop exit).
    if let Some(av) = aff_val[pc] {
        let affine_proof = match family {
            Family::All => exact_uniform(av),
            // a*tid.x + c with a pinned c is a lane function under the
            // px promotion.
            Family::PromotedX => av.affine().is_some_and(|f| f.b == 0 && f.is_exact()),
            Family::PromotedXY => true,
        };
        if affine_proof {
            return Verdict::Proved;
        }
    }
    let allowed = family.allowed_value_deps();
    let empty = Vec::new();
    let vs = visits.get(&pc).unwrap_or(&empty);
    let failing: Vec<bool> = vs.iter().map(|v| !t.deps(v.term).subset_of(allowed)).collect();
    if complete && !failing.iter().any(|&f| f) {
        // Every dynamic instance of this pc, on every path, is a function
        // of the allowed sources only (or the pc never executes).
        return Verdict::Proved;
    }
    // Attack: concrete candidate dims, then confirm through the oracle.
    if let Some(w) = hunt(t, vs, &failing, family.candidate_dims(), ref_params, ref_memory, true) {
        if let Some(confirming) = replay(ck, pc, w.block, ref_params, ref_memory) {
            report.push(Diagnostic::new(
                LintCode::DisprovedMarking,
                Some(pc),
                format!(
                    "{} marking disproved for block ({},{}): lane {} sees {:#x} in warp 0 \
                     but {:#x} in warp 1; value {}; counterexample confirmed by functional \
                     replay ({confirming})",
                    marking_name(ck, pc),
                    w.block.0,
                    w.block.1,
                    w.lane,
                    w.values.0,
                    w.values.1,
                    t.render(w.term),
                ),
            ));
            return Verdict::Disproved;
        }
    }
    let why = if complete {
        let d = vs
            .iter()
            .zip(&failing)
            .filter(|&(_, &f)| f)
            .map(|(v, _)| t.deps(v.term))
            .fold(Deps::NONE, Deps::union);
        format!("value depends on {d} (allowed {})", allowed)
    } else {
        "symbolic execution budget exhausted before covering every path".to_string()
    };
    report.push(Diagnostic::new(
        LintCode::UnprovableMarking,
        Some(pc),
        format!("{} marking not provable for {}: {why}", marking_name(ck, pc), family.describe(),),
    ));
    Verdict::Unknown
}

#[allow(clippy::too_many_arguments)]
fn judge_branch(
    pc: usize,
    family: Family,
    complete: bool,
    t: &mut TermArena,
    visits: &HashMap<usize, Vec<Visit>>,
    aff_guard_uniform: &[bool],
    reachable: &[bool],
    ref_params: &[u32],
    ref_memory: &GlobalMemory,
    report: &mut Diagnostics,
) -> Verdict {
    if !reachable[pc] || family == Family::PromotedXY {
        return Verdict::Proved;
    }
    if aff_guard_uniform[pc] {
        return Verdict::Proved;
    }
    let empty = Vec::new();
    let vs = visits.get(&pc).unwrap_or(&empty);
    let failing: Vec<bool> = vs.iter().map(|v| !t.deps(v.term).is_empty()).collect();
    if complete && !failing.iter().any(|&f| f) {
        return Verdict::Proved;
    }
    let dims = family.candidate_dims();
    if let Some(w) = hunt(t, vs, &failing, dims, ref_params, ref_memory, false) {
        report.push(Diagnostic::new(
            LintCode::BranchSyncViolation,
            Some(pc),
            format!(
                "skippable branch diverges for block ({},{}): threads disagree on the \
                 predicate ({} vs {}); condition {}",
                w.block.0,
                w.block.1,
                w.values.0,
                w.values.1,
                t.render(w.term),
            ),
        ));
        return Verdict::Disproved;
    }
    let why = if complete {
        let d = vs
            .iter()
            .zip(&failing)
            .filter(|&(_, &f)| f)
            .map(|(v, _)| t.deps(v.term))
            .fold(Deps::NONE, Deps::union);
        format!("predicate depends on {d}")
    } else {
        "symbolic execution budget exhausted before covering every path".to_string()
    };
    report.push(Diagnostic::new(
        LintCode::UnprovableMarking,
        Some(pc),
        format!("branch uniformity not provable for {}: {why}", family.describe()),
    ));
    Verdict::Unknown
}

/// Replays a candidate block shape through the differential oracle (the
/// functional executor) and returns the confirming lint code when the
/// oracle observes the same unsoundness at `pc`. This is the no-false-
/// witness guarantee: an `S401` is only emitted for counterexamples the
/// executor reproduces.
fn replay(
    ck: &CompiledKernel,
    pc: usize,
    block: (u32, u32),
    params: &[u32],
    memory: &GlobalMemory,
) -> Option<&'static str> {
    let launch = LaunchConfig::new(1u32, block)
        .with_params(params.iter().map(|&w| Value(w)).collect::<Vec<Value>>());
    let diags = oracle::check(ck, &launch, memory.clone());
    for code in [LintCode::UnsoundMarking, LintCode::UnsoundPromotion] {
        if diags.with_code(code).iter().any(|d| d.pc == Some(pc)) {
            return Some(code.code());
        }
    }
    None
}

fn marking_name(ck: &CompiledKernel, pc: usize) -> String {
    match ck.markings[pc] {
        Marking::Redundant => "DR".to_string(),
        Marking::ConditionallyRedundant => "CR".to_string(),
        Marking::Vector => format!("class {:?}/{:?}", ck.classes[pc].red, ck.classes[pc].pat),
    }
}

/// [`prove`] specialized for the `verify_full` pipeline: validates the
/// kernel's claims over the whole family of the given reference launch,
/// using its memory image for counterexample evaluation.
#[must_use]
pub fn check(ck: &CompiledKernel, launch: &LaunchConfig, memory: &GlobalMemory) -> Diagnostics {
    prove(ck, Some((launch, memory))).report
}
