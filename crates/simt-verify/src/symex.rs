//! Symbolic translation validation: dimension-parametric proofs that the
//! compiler's redundancy markings and branch-sync assumptions are sound
//! for *every* launch the paper's promotion predicate admits, not just
//! the one configuration the differential oracle replays.
//!
//! The engine executes the compiled kernel once over symbolic
//! `tid.*`/`ntid.*` and symbolic initial memory (terms from
//! [`simt_compiler::term`]). Control flow follows the compiler's own
//! reconvergence table: a branch whose predicate folds to a constant is
//! followed directly; otherwise both arms run to the immediate
//! postdominator and the states merge pointwise with `ite` terms. A
//! back-edge of a *natural loop* whose trip count stays symbolic is
//! summarized instead of unrolled: a havoc-and-invariant fixpoint over
//! the loop body finds the registers the loop may modify and the
//! dependency closure they settle into, the exit state replaces them
//! with opaque summary terms carrying that closure (plus the trip
//! condition's own deps — the iteration count is data), and visits
//! recorded inside the body are retroactively tainted the same way.
//! Loops the summarizer declines (irreducible, side exit, no
//! convergence) still fork-unroll up to the budget. From the merged
//! state every marked instruction and skippable branch yields proof
//! obligations over the term's dependency set:
//!
//! | claim | quantified over | obligation |
//! |---|---|---|
//! | DR (`Marking::Redundant` / `Red::Redundant`) | every launch | deps ⊆ {laneid} |
//! | CR via `px` | 2D TBs, `ntid.x` = 2^k ≤ warp size | deps ⊆ {tid.x, laneid} |
//! | CR via `px && py` | whole TB inside one warp | vacuous (single warp) |
//! | skippable branch | family of its class | deps = ∅ |
//!
//! The `px` row is the paper's promotion theorem: when `ntid.x` divides
//! the warp size, `tid.x = laneid mod ntid.x` is a pure *lane* function,
//! so per-lane values agree across warps. The `py` row is vacuous because
//! `ntid.x * ntid.y ≤ warp size` leaves a single warp per threadblock and
//! cross-warp redundancy has nothing to compare.
//!
//! Claims the term domain cannot discharge fall back to the
//! divergence-aware affine fixpoint
//! ([`affine::fixpoint_with_divergence`]), which is already
//! launch-generic. The interval meet hulls different per-path constants
//! at control-flow joins, so a non-exact interval alone proves nothing —
//! but the domain's TB-uniform *bit* does: it is set only on values
//! whose constant is one shared pick per dynamic instance, writes inside
//! divergent regions and merges under non-uniform guards clear it, and
//! joins AND it. A structurally-uniform value with the bit set is
//! thread-invariant by construction, so the fallback discharges
//! `Family::All` claims from uniformity alone, exact or not. Guarded
//! writes likewise fall to the term domain, which models the unwritten
//! lanes explicitly.
//! Claims neither prover discharges are *attacked*: the recorded terms
//! are evaluated concretely over a small family of two-warp candidate
//! blocks, and any cross-warp mismatch is replayed through the
//! differential oracle (the functional executor) before `S401` is
//! emitted — a counterexample the executor does not confirm is never
//! reported. Unresolved claims degrade to the conservative `S402`
//! warning; concrete divergence of a skippable branch predicate is
//! `S403`.
//!
//! Discharge is embarrassingly parallel: obligations are judged against
//! the *frozen* post-run state (term arena, visits, affine flows), so
//! [`prove_with_threads`] shards them across a scoped thread pool in
//! contiguous chunks and re-assembles results in claim order — the
//! report, stats and per-claim ledger are byte-identical for any thread
//! count. Each [`ClaimRecord`] carries its verdict, the reason an
//! unknown stayed open ([`UnknownReason`]), and the deterministic count
//! of concrete evaluations counterexample hunting spent on it.

use crate::{oracle, Diagnostic, Diagnostics, LintCode};
use gpu_sim::GlobalMemory;
use simt_compiler::affine::{self, AffineVal};
use simt_compiler::{
    CompiledKernel, Deps, Doms, EvalCtx, NaturalLoops, Red, TermArena, TermId, RECONVERGE_AT_EXIT,
};
use simt_isa::{Instruction, LaunchConfig, Marking, MemSpace, Op, Operand, Value};
use std::collections::HashMap;

/// Total instructions the symbolic executor may retire (loops unroll).
const FUEL: usize = 1 << 16;
/// Maximum nesting of unresolved branch forks (also bounds unrolling).
const MAX_FORK_DEPTH: usize = 64;
/// Term-arena ceiling; blowing past it aborts to the affine fallback.
const MAX_TERMS: usize = 1 << 20;
/// Candidate `(ntid.x, ntid.y)` shapes for disproving claims quantified
/// over *every* launch: two full warps each, 1D and promoted 2D.
const DIMS_ALL: [(u32, u32); 4] = [(64, 1), (32, 2), (16, 4), (8, 8)];
/// Candidate shapes for claims quantified over the `px` promotion family
/// (2D, `ntid.x` a power of two ≤ warp size): two full warps each.
const DIMS_PX: [(u32, u32); 4] = [(32, 2), (16, 4), (8, 8), (4, 16)];

/// How a claim quantifies over launch configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Claimed for every launch (DR markings, `Red::Redundant` classes).
    All,
    /// Claimed whenever the x-dimension promotion check passes.
    PromotedX,
    /// Claimed only when both x- and y-checks pass (single-warp TBs).
    PromotedXY,
}

impl Family {
    /// Dependency sources a sound *value* claim of this family may have.
    fn allowed_value_deps(self) -> Deps {
        match self {
            Family::All => Deps::LANE,
            Family::PromotedX => Deps::TIDX.union(Deps::LANE),
            // Single warp per TB: cross-warp redundancy is vacuous.
            Family::PromotedXY => {
                Deps::TIDX.union(Deps::TIDY).union(Deps::LANE).union(Deps::WARP).union(Deps::OTHER)
            }
        }
    }

    /// Candidate block shapes used to hunt counterexamples.
    fn candidate_dims(self) -> &'static [(u32, u32)] {
        match self {
            Family::All => &DIMS_ALL,
            Family::PromotedX => &DIMS_PX,
            Family::PromotedXY => &[],
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Family::All => "every launch",
            Family::PromotedX => "every x-promoted launch",
            Family::PromotedXY => "every xy-promoted launch",
        }
    }
}

/// The strongest launch family under which `pc`'s marking or class claims
/// its result is shared across warps. Mirrors the differential oracle's
/// claim predicate, but quantified over the family instead of one launch.
fn value_claim(ck: &CompiledKernel, pc: usize) -> Option<Family> {
    let instr = &ck.kernel.instrs[pc];
    if !instr.op.writes_dst() || instr.dst.is_none() || matches!(instr.op, Op::Atom(_)) {
        return None;
    }
    let class = ck.classes[pc];
    let marking = ck.markings[pc];
    let claims = |px: bool, py: bool| {
        let marking_claims = match marking {
            Marking::Redundant => true,
            Marking::ConditionallyRedundant => match class.red {
                Red::CondRedundantXY => px && py,
                _ => px,
            },
            Marking::Vector => false,
        };
        marking_claims || class.finalize(px, py).taxonomy().is_redundant()
    };
    if claims(false, false) {
        Some(Family::All)
    } else if claims(true, false) {
        Some(Family::PromotedX)
    } else if claims(true, true) {
        Some(Family::PromotedXY)
    } else {
        None
    }
}

/// The strongest family under which the guarded branch at `pc` is
/// skippable (its class finalizes to uniform-redundant, the condition
/// DARSIE's fetch-skip and the divergence pass rely on).
fn branch_claim(ck: &CompiledKernel, pc: usize) -> Option<Family> {
    let instr = &ck.kernel.instrs[pc];
    if !matches!(instr.op, Op::Bra { .. }) || instr.guard.is_none() {
        return None;
    }
    let class = ck.classes[pc];
    if class.finalize(false, false).is_uv_uniform() {
        Some(Family::All)
    } else if class.finalize(true, false).is_uv_uniform() {
        Some(Family::PromotedX)
    } else if class.finalize(true, true).is_uv_uniform() {
        Some(Family::PromotedXY)
    } else {
        None
    }
}

/// One recorded execution of an obligation site: the term the site
/// produced and the path condition under which this visit happens.
/// `extra` is dependency taint added after the fact — when a loop the
/// visit sits inside is summarized, the loop's closed-over sources and
/// trip-condition deps are unioned in, because the recorded term only
/// describes the first unrolled iteration.
#[derive(Clone, Copy)]
struct Visit {
    path: TermId,
    term: TermId,
    extra: Deps,
}

/// Register/predicate file over terms; one per explored path segment.
#[derive(Clone)]
struct SymState {
    regs: Vec<TermId>,
    preds: Vec<TermId>,
}

enum Flow {
    /// Reached the stop pc (a reconvergence point).
    Fell,
    /// Executed `exit` (or both arms of a fork did).
    Exited,
}

/// Why a claim (or the whole symbolic run) stayed open. Reported
/// per-claim so regressions in prover power are diagnosable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The instruction-retirement or term-arena budget ran out.
    FuelExhausted,
    /// Branch-fork nesting exceeded [`MAX_FORK_DEPTH`].
    ForkBudget,
    /// The run completed (or hit an unmodeled construct), but the term
    /// and affine domains could not discharge the obligation.
    TermEscape,
}

impl UnknownReason {
    /// Stable machine-readable label, used by `prove --json`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            UnknownReason::FuelExhausted => "fuel-exhausted",
            UnknownReason::ForkBudget => "fork-budget",
            UnknownReason::TermEscape => "term-domain-escape",
        }
    }
}

/// Budget exhaustion: fuel, fork depth, arena size, or an unmodeled
/// construct (thread-partial `exit`). The run so far remains usable for
/// counterexample hunting, but proofs require completion.
struct Exhausted(UnknownReason);

struct Engine<'a> {
    ck: &'a CompiledKernel,
    t: TermArena,
    /// Store generation per space: [global, shared]. Monotonic across
    /// paths, so a generation-0 load provably precedes every store.
    gens: [u32; 2],
    fuel: usize,
    value_sites: Vec<bool>,
    branch_sites: Vec<bool>,
    value_visits: HashMap<usize, Vec<Visit>>,
    branch_visits: HashMap<usize, Vec<Visit>>,
    /// Summarizable natural loops, keyed by their back-edge branch.
    loops: NaturalLoops,
    /// `is_header[pc]` marks the first instruction of a loop header.
    is_header: Vec<bool>,
    /// Register/predicate state observed at each loop header, used as
    /// the base frame for the havoc-and-invariant summary.
    header_snap: HashMap<usize, SymState>,
    /// False during summary trial runs, which must not record visits.
    recording: bool,
}

impl<'a> Engine<'a> {
    fn new(ck: &'a CompiledKernel, value_sites: Vec<bool>, branch_sites: Vec<bool>) -> Engine<'a> {
        let doms = Doms::compute(&ck.cfg);
        let loops = NaturalLoops::compute(&ck.kernel, &ck.cfg, &doms);
        let mut is_header = vec![false; ck.kernel.instrs.len()];
        for l in &loops.loops {
            is_header[l.header_pc] = true;
        }
        Engine {
            ck,
            t: TermArena::new(),
            gens: [0, 0],
            fuel: FUEL,
            value_sites,
            branch_sites,
            value_visits: HashMap::new(),
            branch_visits: HashMap::new(),
            loops,
            is_header,
            header_snap: HashMap::new(),
            recording: true,
        }
    }

    fn gen_of(&self, space: MemSpace) -> u32 {
        match space {
            MemSpace::Global => self.gens[0],
            MemSpace::Shared => self.gens[1],
            MemSpace::Param => 0,
        }
    }

    fn bump_gen(&mut self, space: MemSpace) {
        match space {
            MemSpace::Global => self.gens[0] += 1,
            MemSpace::Shared => self.gens[1] += 1,
            MemSpace::Param => {}
        }
    }

    fn operand(&mut self, st: &SymState, op: Operand) -> TermId {
        match op {
            Operand::Reg(r) => st.regs[r.index()],
            Operand::Imm(v) => self.t.constant(v),
        }
    }

    /// The value the instruction writes to its destination register, in
    /// lockstep with the functional executor's per-lane semantics.
    fn dst_value(&mut self, st: &SymState, instr: &Instruction) -> TermId {
        let src = |i: usize| instr.srcs.get(i).copied();
        match instr.op {
            Op::S2R(s) => self.t.special(s),
            Op::Sel(p) => {
                let pv = st.preds[p.index()];
                let a = src(0).map(|o| self.operand(st, o));
                let b = src(1).map(|o| self.operand(st, o));
                let zero = self.t.constant(0);
                self.t.ite(pv, a.unwrap_or(zero), b.unwrap_or(zero))
            }
            Op::Ld(space) => {
                let zero = self.t.constant(0);
                let base = src(0).map_or(zero, |o| self.operand(st, o));
                let gen = self.gen_of(space);
                self.t.load(space, base, instr.offset, gen)
            }
            Op::Atom(_) => self.t.havoc(),
            _ => {
                // Plain ALU: absent operands read as zero, as in `exec`.
                let a = src(0).map(|o| self.operand(st, o));
                let b = src(1).map(|o| self.operand(st, o));
                let c = src(2).map(|o| self.operand(st, o));
                let zero = self.t.constant(0);
                self.t.alu(instr.op, a.unwrap_or(zero), b, c)
            }
        }
    }

    /// Runs from `pc` until `stop` (or `exit`), mutating `st` in place.
    /// `stop == RECONVERGE_AT_EXIT` means run until the kernel exits.
    fn run(
        &mut self,
        st: &mut SymState,
        mut pc: usize,
        stop: usize,
        path: TermId,
        depth: usize,
    ) -> Result<Flow, Exhausted> {
        loop {
            if pc == stop {
                return Ok(Flow::Fell);
            }
            if pc >= self.ck.kernel.instrs.len() {
                return Ok(Flow::Exited);
            }
            if self.fuel == 0 || self.t.len() > MAX_TERMS {
                return Err(Exhausted(UnknownReason::FuelExhausted));
            }
            self.fuel -= 1;
            if self.is_header[pc] {
                self.header_snap.insert(pc, st.clone());
            }
            let instr = self.ck.kernel.instrs[pc].clone();
            let cond = instr.guard.map(|g| {
                let p = st.preds[g.pred.index()];
                if g.negate {
                    self.t.not(p)
                } else {
                    p
                }
            });
            match instr.op {
                Op::Bra { target } => {
                    let one = self.t.constant(1);
                    let c = cond.unwrap_or(one);
                    if instr.guard.is_some() && self.branch_sites[pc] && self.recording {
                        self.branch_visits.entry(pc).or_default().push(Visit {
                            path,
                            term: c,
                            extra: Deps::NONE,
                        });
                    }
                    match self.t.as_const(c) {
                        Some(0) => pc += 1,
                        Some(_) => pc = target,
                        None => {
                            if let Some(exit) = self.try_summarize(st, pc, c, path, depth)? {
                                pc = exit;
                                continue;
                            }
                            if depth >= MAX_FORK_DEPTH {
                                return Err(Exhausted(UnknownReason::ForkBudget));
                            }
                            let join = match self.ck.recon.recon[pc] {
                                Some(j) => j,
                                None => RECONVERGE_AT_EXIT,
                            };
                            let not_c = self.t.not(c);
                            let path_t = self.t.alu(Op::And, path, Some(c), None);
                            let path_e = self.t.alu(Op::And, path, Some(not_c), None);
                            let mut taken = st.clone();
                            let ft = self.run(&mut taken, target, join, path_t, depth + 1)?;
                            let fe = self.run(st, pc + 1, join, path_e, depth + 1)?;
                            match (ft, fe) {
                                (Flow::Exited, Flow::Exited) => return Ok(Flow::Exited),
                                (Flow::Exited, Flow::Fell) => {}
                                (Flow::Fell, Flow::Exited) => *st = taken,
                                (Flow::Fell, Flow::Fell) => {
                                    for i in 0..st.regs.len() {
                                        if taken.regs[i] != st.regs[i] {
                                            st.regs[i] = self.t.ite(c, taken.regs[i], st.regs[i]);
                                        }
                                    }
                                    for i in 0..st.preds.len() {
                                        if taken.preds[i] != st.preds[i] {
                                            st.preds[i] =
                                                self.t.ite(c, taken.preds[i], st.preds[i]);
                                        }
                                    }
                                }
                            }
                            // Both arms reconverged strictly before the
                            // exit, so the join is a real pc.
                            pc = join;
                        }
                    }
                    continue;
                }
                Op::Exit => match cond.map(|c| self.t.as_const(c)) {
                    None | Some(Some(1..)) => return Ok(Flow::Exited),
                    Some(Some(0)) => {
                        pc += 1;
                        continue;
                    }
                    // A thread-partial exit tears the warp apart; the
                    // term domain has no mask concept, so give up.
                    Some(None) => return Err(Exhausted(UnknownReason::TermEscape)),
                },
                Op::Bar => {
                    pc += 1;
                    continue;
                }
                Op::St(space) => {
                    self.bump_gen(space);
                    pc += 1;
                    continue;
                }
                _ => {}
            }
            if matches!(instr.op, Op::Atom(_)) {
                self.bump_gen(MemSpace::Global);
            }
            if instr.op.writes_pdst() {
                if let Some(p) = instr.pdst {
                    let (a, b) = match (instr.srcs.first(), instr.srcs.get(1)) {
                        (Some(&a), Some(&b)) => (self.operand(st, a), self.operand(st, b)),
                        _ => {
                            let z = self.t.constant(0);
                            (z, z)
                        }
                    };
                    let v = match instr.op {
                        Op::Setp(cmp) => self.t.cmp(cmp, false, a, b),
                        Op::SetpF(cmp) => self.t.cmp(cmp, true, a, b),
                        _ => self.t.havoc(),
                    };
                    let old = st.preds[p.index()];
                    st.preds[p.index()] = match cond {
                        None => v,
                        Some(c) => self.t.ite(c, v, old),
                    };
                }
            }
            if instr.op.writes_dst() {
                if let Some(d) = instr.dst {
                    let v = self.dst_value(st, &instr);
                    let old = st.regs[d.index()];
                    st.regs[d.index()] = match cond {
                        None => v,
                        Some(c) => self.t.ite(c, v, old),
                    };
                    // Record the post-instruction register, exactly what
                    // the oracle's observer snapshots (a false guard
                    // leaves the old value, and so does the `ite`).
                    if self.value_sites[pc] && self.recording {
                        self.value_visits.entry(pc).or_default().push(Visit {
                            path,
                            term: st.regs[d.index()],
                            extra: Deps::NONE,
                        });
                    }
                }
            }
            pc += 1;
        }
    }

    /// Attempts to replace the natural loop whose back edge is the
    /// symbolic branch at `pc` with a havoc-and-invariant summary, so a
    /// symbolic trip count no longer forces bounded unrolling.
    ///
    /// The dependency sets of everything the body modifies are closed by
    /// iterating havocked trial runs of the body (visit recording
    /// suppressed): each modified register/predicate is replaced by a
    /// fresh [`TermArena::summary`] symbol carrying its current set, the
    /// body is re-run from the header, and any new sources the run
    /// surfaces widen the sets until they are inductive. The live state
    /// then gets fresh summary symbols tagged with the closed sets plus
    /// the trip-condition deps (the iteration count a value was left at
    /// depends on who kept looping), and every visit recorded inside the
    /// body is tainted the same way — its term only described the first
    /// iteration. Returns the loop's unique exit pc on success; `None`
    /// declines (irreducible shape, side exit) and the caller falls back
    /// to fork-based unrolling.
    // Indices walk four parallel state vectors in lockstep; iterator
    // chains would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn try_summarize(
        &mut self,
        st: &mut SymState,
        pc: usize,
        cond: TermId,
        path: TermId,
        depth: usize,
    ) -> Result<Option<usize>, Exhausted> {
        let Some(lp) = self.loops.at_back_edge(pc) else {
            return Ok(None);
        };
        let lp = lp.clone();
        let Some(snap) = self.header_snap.get(&lp.header_pc).cloned() else {
            return Ok(None);
        };
        let guard = self.ck.kernel.instrs[pc].guard.expect("back edge is guarded");

        // Seed the modified sets from the concrete iteration just run
        // (snapshot at the header -> `st` at the back edge).
        let (nregs, npreds) = (st.regs.len(), st.preds.len());
        let mut reg_d: Vec<Option<Deps>> = vec![None; nregs];
        let mut pred_d: Vec<Option<Deps>> = vec![None; npreds];
        for r in 0..nregs {
            if snap.regs[r] != st.regs[r] {
                reg_d[r] = Some(self.t.deps(snap.regs[r]).union(self.t.deps(st.regs[r])));
            }
        }
        for p in 0..npreds {
            if snap.preds[p] != st.preds[p] {
                pred_d[p] = Some(self.t.deps(snap.preds[p]).union(self.t.deps(st.preds[p])));
            }
        }
        let mut cond_d = self.t.deps(cond);

        let was_recording = self.recording;
        self.recording = false;
        let mut converged = false;
        let mut outcome = Ok(());
        // The deps lattice is tiny, so the widening loop converges in a
        // handful of passes; the cap only guards against a logic bug.
        for _ in 0..64 {
            let mut trial = snap.clone();
            for r in 0..nregs {
                if let Some(d) = reg_d[r] {
                    trial.regs[r] = self.t.summary(d);
                }
            }
            for p in 0..npreds {
                if let Some(d) = pred_d[p] {
                    trial.preds[p] = self.t.summary(d);
                }
            }
            let init = trial.clone();
            match self.run(&mut trial, lp.header_pc, pc, path, depth + 1) {
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
                // A guarded `exit` escaped the body: not a single-exit
                // loop after all, so decline.
                Ok(Flow::Exited) => break,
                Ok(Flow::Fell) => {}
            }
            let mut changed = false;
            for r in 0..nregs {
                if trial.regs[r] != init.regs[r] || reg_d[r].is_some() {
                    let nd = self.t.deps(trial.regs[r]).union(reg_d[r].unwrap_or(Deps::NONE));
                    if reg_d[r] != Some(nd) {
                        reg_d[r] = Some(nd);
                        changed = true;
                    }
                }
            }
            for p in 0..npreds {
                if trial.preds[p] != init.preds[p] || pred_d[p].is_some() {
                    let nd = self.t.deps(trial.preds[p]).union(pred_d[p].unwrap_or(Deps::NONE));
                    if pred_d[p] != Some(nd) {
                        pred_d[p] = Some(nd);
                        changed = true;
                    }
                }
            }
            let pv = trial.preds[guard.pred.index()];
            let nc = cond_d.union(self.t.deps(pv));
            if nc != cond_d {
                cond_d = nc;
                changed = true;
            }
            if !changed {
                converged = true;
                break;
            }
        }
        self.recording = was_recording;
        outcome?;
        if !converged {
            return Ok(None);
        }

        // Install the summary exit state: every value the loop touches
        // becomes a fresh symbol over its closed sources plus the trip
        // condition's (how many iterations ran is itself data).
        let mut taint = cond_d;
        for d in reg_d.iter().chain(pred_d.iter()).flatten() {
            taint = taint.union(*d);
        }
        for r in 0..nregs {
            if let Some(d) = reg_d[r] {
                st.regs[r] = self.t.summary(d.union(cond_d));
            }
        }
        for p in 0..npreds {
            if let Some(d) = pred_d[p] {
                st.preds[p] = self.t.summary(d.union(cond_d));
            }
        }
        // Retroactively taint in-body visits: their recorded terms came
        // from the first unrolled iteration only.
        for &b in &lp.body {
            for vpc in self.ck.cfg.blocks[b].range() {
                for vs in [&mut self.value_visits, &mut self.branch_visits] {
                    if let Some(visits) = vs.get_mut(&vpc) {
                        for v in visits {
                            v.extra = v.extra.union(taint);
                        }
                    }
                }
            }
        }
        Ok(Some(pc + 1))
    }
}

/// Per-obligation outcome of [`prove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Sound for the whole quantified family.
    Proved,
    /// A replay-confirmed counterexample exists (`S401` / `S403`).
    Disproved,
    /// Neither proved nor disproved within budget (`S402`).
    Unknown,
}

/// Aggregate counts from one [`prove`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProveStats {
    /// Marked-instruction obligations examined.
    pub value_claims: usize,
    /// Skippable-branch obligations examined.
    pub branch_claims: usize,
    /// Obligations proved for their whole launch family.
    pub proved: usize,
    /// Obligations with replay-confirmed counterexamples.
    pub disproved: usize,
    /// Obligations left open (budget / term-domain escape).
    pub unknown: usize,
    /// True when symbolic execution covered every path within budget.
    pub complete: bool,
    /// Instructions the symbolic engine retired (deterministic cost).
    pub fuel_used: usize,
    /// Terms interned by the symbolic engine (deterministic cost).
    pub terms: usize,
}

/// One obligation's entry in the proof ledger: where it sits, how it
/// quantifies, what happened to it, and — when it stayed open — why.
/// `evals` counts the concrete term evaluations counterexample hunting
/// spent on it, a deterministic per-claim cost measure.
#[derive(Debug, Clone, Copy)]
pub struct ClaimRecord {
    /// Instruction the claim is attached to.
    pub pc: usize,
    /// `"value"` (marked instruction) or `"branch"` (skippable branch).
    pub kind: &'static str,
    /// Launch family the claim quantifies over.
    pub family: &'static str,
    /// Outcome of the discharge attempt.
    pub verdict: Verdict,
    /// Why the claim stayed open; `None` unless `verdict` is `Unknown`.
    pub unknown_reason: Option<UnknownReason>,
    /// Concrete term evaluations spent hunting a counterexample.
    pub evals: usize,
}

/// Result of [`prove`]: the lint report plus the proof ledger.
pub struct Prove {
    /// `S401`/`S402`/`S403` diagnostics.
    pub report: Diagnostics,
    /// Proved / disproved / unknown counts.
    pub stats: ProveStats,
    /// Per-claim outcomes, in instruction order (value before branch).
    pub claims: Vec<ClaimRecord>,
}

/// Proves (or refutes) every redundancy marking and branch-sync claim of
/// `ck` over its whole quantified launch family. When a reference launch
/// and memory image are supplied, counterexample hunting evaluates loads
/// against that initial image and replays candidates with its parameters;
/// otherwise a zeroed memory and empty parameter list are used.
#[must_use]
pub fn prove(ck: &CompiledKernel, reference: Option<(&LaunchConfig, &GlobalMemory)>) -> Prove {
    prove_with_threads(ck, reference, 1)
}

/// What kind of obligation a [`ClaimTask`] discharges.
#[derive(Clone, Copy)]
enum ClaimKind {
    Value,
    Branch,
}

/// One obligation queued for discharge.
#[derive(Clone, Copy)]
struct ClaimTask {
    pc: usize,
    kind: ClaimKind,
    family: Family,
}

/// What one discharge attempt produced, before merging into the report.
struct ClaimOutcome {
    verdict: Verdict,
    diag: Option<Diagnostic>,
    evals: usize,
}

/// Everything a discharge worker needs, shared read-only across the
/// [`std::thread::scope`] pool.
struct JudgeCtx<'a> {
    ck: &'a CompiledKernel,
    t: &'a TermArena,
    value_visits: &'a HashMap<usize, Vec<Visit>>,
    branch_visits: &'a HashMap<usize, Vec<Visit>>,
    aff_val: &'a [Option<AffineVal>],
    aff_guard_uniform: &'a [bool],
    reachable: &'a [bool],
    ref_params: &'a [u32],
    ref_memory: &'a GlobalMemory,
    complete: bool,
}

/// [`prove`] with the claim-discharge stage sharded over `threads`
/// worker threads. Claims are independent of one another, so the work
/// splits into contiguous chunks whose results are re-joined in claim
/// order — the report, stats and ledger are byte-identical for every
/// thread count.
#[must_use]
pub fn prove_with_threads(
    ck: &CompiledKernel,
    reference: Option<(&LaunchConfig, &GlobalMemory)>,
    threads: usize,
) -> Prove {
    let n = ck.kernel.instrs.len();
    let vclaims: Vec<Option<Family>> = (0..n).map(|pc| value_claim(ck, pc)).collect();
    let bclaims: Vec<Option<Family>> = (0..n).map(|pc| branch_claim(ck, pc)).collect();

    // Pass 1: the symbolic engine.
    let mut eng = Engine::new(
        ck,
        vclaims.iter().map(Option::is_some).collect(),
        bclaims.iter().map(Option::is_some).collect(),
    );
    let zero = eng.t.constant(0);
    let one = eng.t.constant(1);
    let mut st = SymState {
        regs: vec![zero; ck.kernel.num_regs as usize],
        preds: vec![zero; affine::num_preds(&ck.kernel.instrs)],
    };
    let run_res = eng.run(&mut st, 0, RECONVERGE_AT_EXIT, one, 0);
    let complete = run_res.is_ok();
    let incomplete_reason = run_res.err().map(|Exhausted(r)| r);
    let fuel_used = FUEL - eng.fuel;
    let Engine { t, value_visits, branch_visits, .. } = eng;

    // Pass 2: the launch-generic, divergence-aware affine fixpoint as a
    // fallback prover.
    let (flows, divergent) = affine::fixpoint_with_divergence(&ck.kernel, &ck.cfg, 1, true);
    let mut aff_val: Vec<Option<AffineVal>> = vec![None; n];
    let mut aff_guard_uniform = vec![false; n];
    let mut reachable = vec![false; n];
    for (b, block) in ck.cfg.blocks.iter().enumerate() {
        let mut fs = flows[b].clone();
        if !fs.reachable {
            continue;
        }
        for pc in block.range() {
            reachable[pc] = true;
            let instr = &ck.kernel.instrs[pc];
            if let Some(g) = instr.guard {
                aff_guard_uniform[pc] = fs.preds[g.pred.index()].is_tb_uniform();
            }
            // Guarded writes mix old and new bits per thread; only the
            // term domain models the unwritten lanes, so the affine
            // prover is restricted to unconditional definitions.
            if instr.op.writes_dst() && instr.dst.is_some() && instr.guard.is_none() {
                aff_val[pc] = Some(affine::value_of(&fs, instr, 1));
            }
            affine::transfer_divergent(&mut fs, instr, 1, divergent[b]);
        }
    }

    let (ref_params, ref_memory);
    match reference {
        Some((launch, memory)) => {
            ref_params = launch.params.iter().map(|v| v.as_u32()).collect::<Vec<u32>>();
            ref_memory = memory.clone();
        }
        None => {
            ref_params = Vec::new();
            ref_memory = GlobalMemory::new();
        }
    }

    let mut tasks: Vec<ClaimTask> = Vec::new();
    for pc in 0..n {
        if let Some(family) = vclaims[pc] {
            tasks.push(ClaimTask { pc, kind: ClaimKind::Value, family });
        }
        if let Some(family) = bclaims[pc] {
            tasks.push(ClaimTask { pc, kind: ClaimKind::Branch, family });
        }
    }

    let ctx = JudgeCtx {
        ck,
        t: &t,
        value_visits: &value_visits,
        branch_visits: &branch_visits,
        aff_val: &aff_val,
        aff_guard_uniform: &aff_guard_uniform,
        reachable: &reachable,
        ref_params: &ref_params,
        ref_memory: &ref_memory,
        complete,
    };
    let workers = threads.clamp(1, tasks.len().max(1));
    let outcomes: Vec<ClaimOutcome> = if workers <= 1 {
        tasks.iter().map(|c| judge_claim(&ctx, c)).collect()
    } else {
        let chunk = tasks.len().div_ceil(workers);
        let mut shards: Vec<Vec<ClaimOutcome>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = tasks
                .chunks(chunk)
                .map(|part| {
                    let ctx = &ctx;
                    s.spawn(move || part.iter().map(|c| judge_claim(ctx, c)).collect::<Vec<_>>())
                })
                .collect();
            shards = handles.into_iter().map(|h| h.join().expect("judge worker")).collect();
        });
        shards.into_iter().flatten().collect()
    };

    let mut report = Diagnostics::new(ck.kernel.name.clone());
    let mut stats = ProveStats { complete, fuel_used, terms: t.len(), ..ProveStats::default() };
    let mut claims = Vec::with_capacity(tasks.len());
    for (task, out) in tasks.iter().zip(outcomes) {
        let kind = match task.kind {
            ClaimKind::Value => {
                stats.value_claims += 1;
                "value"
            }
            ClaimKind::Branch => {
                stats.branch_claims += 1;
                "branch"
            }
        };
        match out.verdict {
            Verdict::Proved => stats.proved += 1,
            Verdict::Disproved => stats.disproved += 1,
            Verdict::Unknown => stats.unknown += 1,
        }
        if let Some(d) = out.diag {
            report.push(d);
        }
        let unknown_reason = (out.verdict == Verdict::Unknown).then(|| {
            if complete {
                UnknownReason::TermEscape
            } else {
                incomplete_reason.unwrap_or(UnknownReason::TermEscape)
            }
        });
        claims.push(ClaimRecord {
            pc: task.pc,
            kind,
            family: task.family.describe(),
            verdict: out.verdict,
            unknown_reason,
            evals: out.evals,
        });
    }
    Prove { report, stats, claims }
}

/// Discharges one obligation against the shared proof context.
fn judge_claim(ctx: &JudgeCtx<'_>, task: &ClaimTask) -> ClaimOutcome {
    match task.kind {
        ClaimKind::Value => judge_value(ctx, task.pc, task.family),
        ClaimKind::Branch => judge_branch(ctx, task.pc, task.family),
    }
}

/// A cross-warp mismatch found by concrete evaluation of a visit's term.
struct Witness {
    block: (u32, u32),
    lane: u32,
    values: (u32, u32),
    term: TermId,
}

/// Evaluates each failing visit over two-warp candidate blocks, looking
/// for a lane whose value differs between the warps (for branch claims,
/// any two threads that disagree). Only threads satisfying the visit's
/// path condition count. `evals` accumulates the number of per-thread
/// term evaluations attempted — a deterministic cost measure.
#[allow(clippy::too_many_arguments)]
fn hunt(
    t: &TermArena,
    visits: &[Visit],
    failing: &[bool],
    dims: &[(u32, u32)],
    params: &[u32],
    memory: &GlobalMemory,
    cross_warp_only: bool,
    evals: &mut usize,
) -> Option<Witness> {
    let read = |addr: u64| memory.read_u32(addr);
    for &(bx, by) in dims {
        for (visit, fail) in visits.iter().zip(failing) {
            if !fail {
                continue;
            }
            let mut eval_at = |warp: u32, lane: u32| -> Option<u32> {
                *evals += 1;
                let ctx = EvalCtx {
                    block: (bx, by),
                    warp_size: 32,
                    warp,
                    lane,
                    params,
                    read_global: &read,
                };
                if t.eval(visit.path, &ctx)? == 0 {
                    return None;
                }
                t.eval(visit.term, &ctx)
            };
            if cross_warp_only {
                for lane in 0..32 {
                    if let (Some(a), Some(b)) = (eval_at(0, lane), eval_at(1, lane)) {
                        if a != b {
                            return Some(Witness {
                                block: (bx, by),
                                lane,
                                values: (a, b),
                                term: visit.term,
                            });
                        }
                    }
                }
            } else {
                // Branch uniformity: any two threads of the TB disagreeing
                // is divergence, including within one warp.
                let mut first: Option<(u32, u32)> = None;
                for warp in 0..2 {
                    for lane in 0..32 {
                        if let Some(v) = eval_at(warp, lane) {
                            match first {
                                None => first = Some((lane, v)),
                                Some((l0, v0)) if v0 != v => {
                                    return Some(Witness {
                                        block: (bx, by),
                                        lane: l0,
                                        values: (v0, v),
                                        term: visit.term,
                                    });
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// True when the affine abstraction pins a *single shared value* for
/// every thread of the dynamic instance: either an exact constant, or a
/// non-exact interval whose TB-uniformity bit survived every join and
/// transfer (so whatever the value is, all threads hold the same one).
fn shared_uniform(v: AffineVal) -> bool {
    v.affine().is_some_and(simt_compiler::Affine::is_tb_uniform)
}

fn judge_value(ctx: &JudgeCtx<'_>, pc: usize, family: Family) -> ClaimOutcome {
    let JudgeCtx { ck, t, ref_params, ref_memory, complete, .. } = *ctx;
    let mut evals = 0usize;
    let proved = |evals| ClaimOutcome { verdict: Verdict::Proved, diag: None, evals };
    if !ctx.reachable[pc] || family == Family::PromotedXY {
        // Dead code proves anything; single-warp TBs have no second warp
        // to diverge from.
        return proved(evals);
    }
    // Affine prover: launch-generic by construction. A proof needs the
    // value *shared*: exact, or carrying the TB-uniformity bit — a bare
    // non-exact interval may still hide warp-divergent values hulled at
    // a join.
    if let Some(av) = ctx.aff_val[pc] {
        let affine_proof = match family {
            Family::All => shared_uniform(av),
            // a*tid.x + c with a shared c is a lane function under the
            // px promotion.
            Family::PromotedX => av.affine().is_some_and(|f| f.b == 0 && f.c_uniform()),
            Family::PromotedXY => true,
        };
        if affine_proof {
            return proved(evals);
        }
    }
    let allowed = family.allowed_value_deps();
    let empty = Vec::new();
    let vs = ctx.value_visits.get(&pc).unwrap_or(&empty);
    let failing: Vec<bool> =
        vs.iter().map(|v| !t.deps(v.term).union(v.extra).subset_of(allowed)).collect();
    if complete && !failing.iter().any(|&f| f) {
        // Every dynamic instance of this pc, on every path, is a function
        // of the allowed sources only (or the pc never executes).
        return proved(evals);
    }
    // Attack: concrete candidate dims, then confirm through the oracle.
    if let Some(w) =
        hunt(t, vs, &failing, family.candidate_dims(), ref_params, ref_memory, true, &mut evals)
    {
        if let Some(confirming) = replay(ck, pc, w.block, ref_params, ref_memory) {
            let diag = Diagnostic::new(
                LintCode::DisprovedMarking,
                Some(pc),
                format!(
                    "{} marking disproved for block ({},{}): lane {} sees {:#x} in warp 0 \
                     but {:#x} in warp 1; value {}; counterexample confirmed by functional \
                     replay ({confirming})",
                    marking_name(ck, pc),
                    w.block.0,
                    w.block.1,
                    w.lane,
                    w.values.0,
                    w.values.1,
                    t.render(w.term),
                ),
            );
            return ClaimOutcome { verdict: Verdict::Disproved, diag: Some(diag), evals };
        }
    }
    let why = if complete {
        let d = vs
            .iter()
            .zip(&failing)
            .filter(|&(_, &f)| f)
            .map(|(v, _)| t.deps(v.term).union(v.extra))
            .fold(Deps::NONE, Deps::union);
        format!("value depends on {d} (allowed {})", allowed)
    } else {
        "symbolic execution budget exhausted before covering every path".to_string()
    };
    let diag = Diagnostic::new(
        LintCode::UnprovableMarking,
        Some(pc),
        format!("{} marking not provable for {}: {why}", marking_name(ck, pc), family.describe(),),
    );
    ClaimOutcome { verdict: Verdict::Unknown, diag: Some(diag), evals }
}

fn judge_branch(ctx: &JudgeCtx<'_>, pc: usize, family: Family) -> ClaimOutcome {
    let JudgeCtx { t, ref_params, ref_memory, complete, .. } = *ctx;
    let mut evals = 0usize;
    let proved = |evals| ClaimOutcome { verdict: Verdict::Proved, diag: None, evals };
    if !ctx.reachable[pc] || family == Family::PromotedXY {
        return proved(evals);
    }
    if ctx.aff_guard_uniform[pc] {
        return proved(evals);
    }
    let empty = Vec::new();
    let vs = ctx.branch_visits.get(&pc).unwrap_or(&empty);
    let failing: Vec<bool> = vs.iter().map(|v| !t.deps(v.term).union(v.extra).is_empty()).collect();
    if complete && !failing.iter().any(|&f| f) {
        return proved(evals);
    }
    let dims = family.candidate_dims();
    if let Some(w) = hunt(t, vs, &failing, dims, ref_params, ref_memory, false, &mut evals) {
        let diag = Diagnostic::new(
            LintCode::BranchSyncViolation,
            Some(pc),
            format!(
                "skippable branch diverges for block ({},{}): threads disagree on the \
                 predicate ({} vs {}); condition {}",
                w.block.0,
                w.block.1,
                w.values.0,
                w.values.1,
                t.render(w.term),
            ),
        );
        return ClaimOutcome { verdict: Verdict::Disproved, diag: Some(diag), evals };
    }
    let why = if complete {
        let d = vs
            .iter()
            .zip(&failing)
            .filter(|&(_, &f)| f)
            .map(|(v, _)| t.deps(v.term).union(v.extra))
            .fold(Deps::NONE, Deps::union);
        format!("predicate depends on {d}")
    } else {
        "symbolic execution budget exhausted before covering every path".to_string()
    };
    let diag = Diagnostic::new(
        LintCode::UnprovableMarking,
        Some(pc),
        format!("branch uniformity not provable for {}: {why}", family.describe()),
    );
    ClaimOutcome { verdict: Verdict::Unknown, diag: Some(diag), evals }
}

/// Replays a candidate block shape through the differential oracle (the
/// functional executor) and returns the confirming lint code when the
/// oracle observes the same unsoundness at `pc`. This is the no-false-
/// witness guarantee: an `S401` is only emitted for counterexamples the
/// executor reproduces.
fn replay(
    ck: &CompiledKernel,
    pc: usize,
    block: (u32, u32),
    params: &[u32],
    memory: &GlobalMemory,
) -> Option<&'static str> {
    let launch = LaunchConfig::new(1u32, block)
        .with_params(params.iter().map(|&w| Value(w)).collect::<Vec<Value>>());
    let diags = oracle::check(ck, &launch, memory.clone());
    for code in [LintCode::UnsoundMarking, LintCode::UnsoundPromotion] {
        if diags.with_code(code).iter().any(|d| d.pc == Some(pc)) {
            return Some(code.code());
        }
    }
    None
}

fn marking_name(ck: &CompiledKernel, pc: usize) -> String {
    match ck.markings[pc] {
        Marking::Redundant => "DR".to_string(),
        Marking::ConditionallyRedundant => "CR".to_string(),
        Marking::Vector => format!("class {:?}/{:?}", ck.classes[pc].red, ck.classes[pc].pat),
    }
}

/// [`prove`] specialized for the `verify_full` pipeline: validates the
/// kernel's claims over the whole family of the given reference launch,
/// using its memory image for counterexample evaluation.
#[must_use]
pub fn check(ck: &CompiledKernel, launch: &LaunchConfig, memory: &GlobalMemory) -> Diagnostics {
    prove(ck, Some((launch, memory))).report
}
