//! WCET-style static cycle-bound cost model: sound `[min, max]` cycle
//! brackets and a predicted DARSIE savings fraction per kernel/launch,
//! without running the simulator.
//!
//! The estimator is an abstract interpreter over the kernel CFG that
//! composes machinery other passes already provide:
//!
//! * [`simt_compiler::dom::NaturalLoops`] + [`simt_compiler::trip`] give
//!   per-loop trip brackets (`E201` when a loop is unboundable, which
//!   widens the upper bound to "unbounded");
//! * per-instruction issue/latency/occupancy figures come from
//!   [`gpu_sim::timing`] — the *same* shared table the SM model executes,
//!   pinned by `gpu-sim/tests/timing_parity.rs`, never copied constants;
//! * memory-op cost scales with the `P1xx` bank-conflict/coalescing
//!   degree brackets of [`crate::perf`];
//! * serialized divergent branch legs fall out of the visit model (every
//!   leg counted per iteration), while the affine TB-uniform bit
//!   ([`simt_compiler::affine`]) proves simple diamonds *exclusive*, so
//!   the upper bound takes the per-term maximum of the two legs instead
//!   of their sum;
//! * the DARSIE side subtracts the launch plan's skippable set from the
//!   lower bound (follower skips bypass fetch and issue) and adds a
//!   bounded leader-wait slack (`max_leader_stall`) to the upper bound.
//!
//! ## The bracket
//!
//! The lower bound is the strongest of four structural throughput limits
//! no schedule can beat: fetch bandwidth (`fetch_width x
//! instrs_per_fetch` instructions/cycle SM-wide), issue bandwidth
//! (`schedulers x issue_width`), total LSU occupancy (one shared unit),
//! and the single-warp issue chain. The upper bound is a sum of fully
//! serialized shared resources — every fetch burst, every issue slot as
//! if all warps shared one scheduler, every LSU/SFU busy cycle, DRAM
//! bandwidth service, I-cache cold misses — plus a dependence-exposure
//! term (per-wave solo critical path of one warp under worst-case
//! latencies) and a final drain. Every cycle the simulator spends either
//! serves one of those resources or burns exposed latency, so the sum
//! dominates the schedule; `DESIGN.md` states the model assumptions and
//! the `E202` differential gate (plus a random-kernel proptest) enforces
//! the bracket against measured [`gpu_sim::SimStats::cycles`] on every
//! catalog workload under Base and DARSIE.

use crate::perf::{predict_envelope, MemPredKind};
use crate::{Diagnostic, Diagnostics, LintCode};
use gpu_sim::config::{GpuConfig, Technique};
use gpu_sim::occupancy::occupancy;
use gpu_sim::timing;
use simt_compiler::affine::{fixpoint_with_divergence, PredVal};
use simt_compiler::dom::{Doms, NaturalLoops, PostDoms};
use simt_compiler::trip::{infer_trips, TripCounts};
use simt_compiler::{CompiledKernel, LaunchPlan};
use simt_isa::{LaunchConfig, MemSpace, Op, OpKind};
use std::collections::BTreeMap;

/// One loop's inferred trip bracket, for reports.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Back-edge branch pc (loop identity).
    pub back_edge_pc: usize,
    /// `[min, max]` body executions per entry, or the E201 reason.
    pub trips: Result<(u64, u64), String>,
}

/// Additive/limiting terms of the bracket, for `--json` and debugging.
#[derive(Debug, Clone, Copy, Default)]
pub struct Breakdown {
    /// Lower bound: fetch-bandwidth limit.
    pub fetch_bound: u64,
    /// Lower bound: issue-bandwidth limit.
    pub issue_bound: u64,
    /// Lower bound: total LSU occupancy.
    pub lsu_bound: u64,
    /// Lower bound: single-warp issue/fetch chain.
    pub chain_bound: u64,
    /// Upper bound: serialized fetch bursts (I-cache misses included).
    pub fetch_serial: u64,
    /// Upper bound: serialized issue slots (one-scheduler worst case).
    pub issue_serial: u64,
    /// Upper bound: serialized LSU occupancy.
    pub lsu_serial: u64,
    /// Upper bound: serialized SFU issue intervals.
    pub sfu_serial: u64,
    /// Upper bound: DRAM bandwidth service.
    pub dram_serial: u64,
    /// Upper bound: per-wave dependence exposure.
    pub exposed: u64,
    /// Upper bound: DARSIE leader-wait slack.
    pub darsie_slack: u64,
    /// Threadblocks modeled on the busiest SM.
    pub tbs_per_sm: u64,
    /// Residency waves on the busiest SM.
    pub waves: u64,
}

/// The static estimate for one kernel/launch/technique.
#[derive(Debug, Clone)]
pub struct CostEstimate {
    /// Technique label the estimate models (`Base` or a DARSIE variant).
    pub technique: String,
    /// Sound lower cycle bound.
    pub min_cycles: u64,
    /// Sound upper cycle bound; `None` when a loop is unboundable (E201).
    pub max_cycles: Option<u64>,
    /// Predicted fraction of baseline instruction work DARSIE skips
    /// (0 for Base). Mirrors [`gpu_sim::SimStats::skip_fraction`].
    pub predicted_skip_fraction: f64,
    /// Per-loop trip brackets.
    pub loops: Vec<LoopReport>,
    /// E201 findings (one per unboundable loop).
    pub report: Diagnostics,
    /// Term-by-term breakdown.
    pub breakdown: Breakdown,
}

impl CostEstimate {
    /// True when `measured` lies inside the bracket.
    #[must_use]
    pub fn contains(&self, measured: u64) -> bool {
        measured >= self.min_cycles && self.max_cycles.is_none_or(|hi| measured <= hi)
    }
}

/// Per-visit cost vector of one block, one warp (upper-bound side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Terms {
    /// Fetch bursts to deliver the block.
    bursts: u64,
    /// Issue slots (= instructions).
    issue: u64,
    /// LSU busy cycles (worst degrees/lines).
    lsu: u64,
    /// SFU issue-interval cycles.
    sfu: u64,
    /// Global memory lines (DRAM service).
    lines: u64,
    /// Solo dependence exposure beyond pure issue.
    exposed: u64,
}

impl Terms {
    fn add(&mut self, o: Terms) {
        self.bursts += o.bursts;
        self.issue += o.issue;
        self.lsu += o.lsu;
        self.sfu += o.sfu;
        self.lines += o.lines;
        self.exposed += o.exposed;
    }

    fn scaled(self, k: u64) -> Terms {
        Terms {
            bursts: self.bursts.saturating_mul(k),
            issue: self.issue.saturating_mul(k),
            lsu: self.lsu.saturating_mul(k),
            sfu: self.sfu.saturating_mul(k),
            lines: self.lines.saturating_mul(k),
            exposed: self.exposed.saturating_mul(k),
        }
    }

    /// Component-wise minimum — the sound exclusive-diamond credit: for
    /// any leg actually taken, each term is bounded by the per-term max
    /// of the two legs, i.e. the sum minus the per-term min.
    fn component_min(a: Terms, b: Terms) -> Terms {
        Terms {
            bursts: a.bursts.min(b.bursts),
            issue: a.issue.min(b.issue),
            lsu: a.lsu.min(b.lsu),
            sfu: a.sfu.min(b.sfu),
            lines: a.lines.min(b.lines),
            exposed: a.exposed.min(b.exposed),
        }
    }

    fn saturating_sub(&mut self, o: Terms) {
        self.bursts = self.bursts.saturating_sub(o.bursts);
        self.issue = self.issue.saturating_sub(o.issue);
        self.lsu = self.lsu.saturating_sub(o.lsu);
        self.sfu = self.sfu.saturating_sub(o.sfu);
        self.lines = self.lines.saturating_sub(o.lines);
        self.exposed = self.exposed.saturating_sub(o.exposed);
    }
}

/// Per-execution LSU occupancy and completion-latency bounds of one
/// static memory instruction.
#[derive(Debug, Clone, Copy)]
struct MemCost {
    occ_min: u64,
    occ_max: u64,
    latency_max: u64,
}

/// Worst-case conflict degree / line count for one warp.
///
/// `shared_words` is the kernel's shared allocation in words: the bank
/// model counts *distinct words* per bank (broadcasts are free), so even
/// an unanalyzable address cannot conflict worse than
/// `ceil(shared_words / 32)`.
fn mem_cost(
    gc: &GpuConfig,
    op: Op,
    guarded: bool,
    pred: Option<&MemPredKind>,
    shared_words: u64,
) -> MemCost {
    let lanes = u64::from(simt_isa::WARP_SIZE);
    match op {
        Op::Ld(MemSpace::Param) => MemCost {
            occ_min: if guarded { 0 } else { timing::PARAM_OCCUPANCY },
            occ_max: timing::PARAM_OCCUPANCY,
            latency_max: timing::param_latency(gc),
        },
        Op::Ld(MemSpace::Shared) | Op::St(MemSpace::Shared) => {
            let word_cap =
                if shared_words > 0 { shared_words.div_ceil(32).min(lanes) } else { lanes };
            let (dmin, dmax) = match pred {
                Some(&MemPredKind::SharedConflict { min_degree, max_degree }) => {
                    (u64::from(min_degree), u64::from(max_degree))
                }
                _ => (0, word_cap),
            };
            MemCost {
                occ_min: if guarded { 0 } else { dmin },
                occ_max: dmax,
                latency_max: timing::smem_latency(gc, u32::try_from(dmax).unwrap_or(32).max(1)),
            }
        }
        Op::Ld(MemSpace::Global) | Op::St(MemSpace::Global) | Op::Atom(_) => {
            let (lmin, lmax) = match pred {
                Some(&MemPredKind::GlobalCoalesce { min_lines, max_lines, .. }) => {
                    (u64::from(min_lines), u64::from(max_lines))
                }
                _ => (0, lanes),
            };
            let atom_ser =
                if matches!(op, Op::Atom(_)) { timing::atomic_serialization(32) } else { 0 };
            MemCost {
                occ_min: if guarded { 0 } else { lmin },
                occ_max: lmax,
                latency_max: timing::dram_line_latency(gc) + atom_ser,
            }
        }
        _ => MemCost { occ_min: 0, occ_max: 0, latency_max: 0 },
    }
}

/// Worst-case completion latency of one instruction (for the solo model).
fn worst_latency(gc: &GpuConfig, op: Op, mc: &MemCost) -> u64 {
    match op.kind() {
        OpKind::Load | OpKind::Store | OpKind::Atomic => mc.latency_max,
        k => timing::exec_latency(gc, k),
    }
}

/// Static per-visit profile of one basic block for one warp.
#[derive(Debug, Clone, Default)]
struct BlockProfile {
    /// Instructions.
    n: u64,
    /// DARSIE-skippable instructions.
    n_skip: u64,
    /// Per-visit upper-bound terms (Base semantics).
    max: Terms,
    /// Lower-bound LSU occupancy (all instructions).
    lsu_min: u64,
    /// Lower-bound LSU occupancy excluding skippable instructions.
    lsu_min_nonskip: u64,
    /// Per-visit follower wait: worst completion latency of each
    /// skippable instruction (waiters are released at leader writeback).
    skip_wait: u64,
}

/// Solo in-order execution of one block by one warp under worst-case
/// latencies: one issue per cycle, unit occupancies respected, every
/// source dependence waited out, all writes drained at block end (sound
/// for loop-carried dependences). Returns total cycles; the exposure is
/// the excess over the instruction count.
fn solo_cycles(
    gc: &GpuConfig,
    ck: &CompiledKernel,
    pcs: std::ops::Range<usize>,
    costs: &BTreeMap<usize, MemCost>,
) -> u64 {
    let mut ready: BTreeMap<u8, u64> = BTreeMap::new();
    let mut pready: BTreeMap<u8, u64> = BTreeMap::new();
    let mut lsu_free = 0u64;
    let mut sfu_free = 0u64;
    let mut t = 0u64;
    let mut drain = 0u64;
    for pc in pcs {
        let i = &ck.kernel.instrs[pc];
        let mut at = t;
        for s in &i.srcs {
            if let simt_isa::Operand::Reg(r) = s {
                at = at.max(ready.get(&r.0).copied().unwrap_or(0));
            }
        }
        if let Some(g) = i.guard {
            at = at.max(pready.get(&g.pred.0).copied().unwrap_or(0));
        }
        if let Op::Sel(p) = i.op {
            at = at.max(pready.get(&p.0).copied().unwrap_or(0));
        }
        let kind = i.op.kind();
        match timing::exec_unit(kind) {
            timing::ExecUnit::Lsu => at = at.max(lsu_free),
            timing::ExecUnit::Sfu => at = at.max(sfu_free),
            _ => {}
        }
        let mc = costs.get(&pc);
        let lat = match mc {
            Some(c) => worst_latency(gc, i.op, c),
            None => timing::exec_latency(gc, kind),
        };
        match timing::exec_unit(kind) {
            timing::ExecUnit::Lsu => lsu_free = at + mc.map_or(1, |c| c.occ_max.max(1)),
            timing::ExecUnit::Sfu => sfu_free = at + timing::unit_issue_interval(gc, kind),
            _ => {}
        }
        let done = at + lat;
        if let Some(d) = i.dst {
            ready.insert(d.0, done);
            drain = drain.max(done);
        }
        if let Some(p) = i.pdst {
            pready.insert(p.0, done);
            drain = drain.max(done);
        }
        t = at + 1;
    }
    t.max(drain)
}

/// Statically estimates the `[min, max]` cycle bracket of `ck` under
/// `launch` on `gc`, executing with `technique` (`Base` and
/// `Darsie` variants are modeled; other techniques fall back to the Base
/// model, whose bracket is sound for them except `SiliconSync`).
#[must_use]
pub fn estimate(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    gc: &GpuConfig,
    technique: &Technique,
) -> CostEstimate {
    let kernel = &ck.kernel;
    let cfg = &ck.cfg;
    let plan = LaunchPlan::new(ck, launch);
    let darsie = match technique {
        Technique::Darsie(d) => Some(d),
        _ => None,
    };
    let doms = Doms::compute(cfg);
    let pdoms = PostDoms::compute(cfg);
    let nloops = NaturalLoops::compute(kernel, cfg, &doms);
    let (in_states, _divergent) = fixpoint_with_divergence(kernel, cfg, launch.block.z, true);
    let trips = infer_trips(kernel, cfg, &doms, &nloops, launch, &in_states);
    let mempred: BTreeMap<usize, MemPredKind> = predict_envelope(ck, launch, launch.warp_size)
        .into_iter()
        .map(|p| (p.pc, p.kind))
        .collect();

    let mut report = Diagnostics::new(kernel.name.clone());
    let mut loops = Vec::new();
    for lt in &trips.loops {
        loops.push(LoopReport { back_edge_pc: lt.back_edge_pc, trips: lt.bound.clone() });
        if let Err(reason) = &lt.bound {
            report.push(Diagnostic::new(
                LintCode::TripUnbounded,
                Some(lt.back_edge_pc),
                format!("loop trip count is unboundable: {reason}"),
            ));
        }
    }

    // Per-block visit brackets and per-visit cost profiles (one warp).
    let exit = cfg.exit_block();
    let nb = cfg.len();
    let mut bounded = true;
    let mut vmin = vec![0u64; nb];
    let mut vmax = vec![0u64; nb];
    let mut profiles: Vec<BlockProfile> = Vec::with_capacity(nb);
    let mut mem_costs: BTreeMap<usize, MemCost> = BTreeMap::new();
    let shared_words = u64::from(kernel.shared_mem_bytes.div_ceil(4));
    for (pc, i) in kernel.instrs.iter().enumerate() {
        if matches!(i.op.kind(), OpKind::Load | OpKind::Store | OpKind::Atomic) {
            mem_costs
                .insert(pc, mem_cost(gc, i.op, i.guard.is_some(), mempred.get(&pc), shared_words));
        }
    }
    for b in 0..nb {
        let (pmin, pmax) = match trips.enclosing_product(b) {
            Ok(p) => p,
            Err(_) => {
                bounded = false;
                (min_product_fallback(&trips, b), 0)
            }
        };
        // A block's visits hit the loop-nest minimum only when nothing can
        // route around it: it dominates the kernel exit and the latch of
        // every enclosing loop (every completed iteration passes through).
        let always = doms.dominates(b, exit)
            && trips.loops.iter().filter(|l| l.body.contains(&b)).all(|l| {
                nloops
                    .loops
                    .iter()
                    .find(|nl| nl.back_edge_pc == l.back_edge_pc)
                    .is_some_and(|nl| doms.dominates(b, nl.latch))
            });
        vmin[b] = if always { pmin } else { 0 };
        vmax[b] = pmax;

        let mut p = BlockProfile::default();
        let range = cfg.blocks[b].range();
        for pc in range.clone() {
            let i = &kernel.instrs[pc];
            p.n += 1;
            let skippable = plan.skippable[pc];
            if skippable {
                p.n_skip += 1;
                p.skip_wait += match mem_costs.get(&pc) {
                    Some(mc) => worst_latency(gc, i.op, mc),
                    None => timing::exec_latency(gc, i.op.kind()),
                };
            }
            p.max.issue += 1;
            if let Some(mc) = mem_costs.get(&pc) {
                p.max.lsu += mc.occ_max;
                p.lsu_min += mc.occ_min;
                if !skippable {
                    p.lsu_min_nonskip += mc.occ_min;
                }
                if matches!(i.op, Op::Ld(MemSpace::Global) | Op::St(MemSpace::Global) | Op::Atom(_))
                {
                    p.max.lines += mc.occ_max;
                }
            }
            if i.op.kind() == OpKind::Sfu {
                p.max.sfu += timing::unit_issue_interval(gc, OpKind::Sfu);
            }
        }
        // Fetch bursts: instrs_per_fetch per burst, plus one slack burst
        // per visit for wrong-path refetch after a flush, plus (DARSIE)
        // one burst break per skippable pc.
        let ipf = (gc.instrs_per_fetch as u64).max(1);
        p.max.bursts = p.n.div_ceil(ipf) + u64::from(p.n > 0);
        if darsie.is_some() {
            p.max.bursts += p.n_skip;
        }
        let solo = solo_cycles(gc, ck, range, &mem_costs);
        p.max.exposed = solo.saturating_sub(p.n);
        profiles.push(p);
    }

    // Exclusive-diamond credit from the TB-uniform affine bit.
    let mut credit = Terms::default();
    let mut claimed = vec![false; nb];
    #[allow(clippy::needless_range_loop)] // b is a block id indexing several parallel arrays
    for b in 0..nb {
        if let Some((la, lb)) = uniform_diamond(kernel, cfg, &pdoms, &in_states, b) {
            if la.iter().chain(&lb).any(|&x| claimed[x]) {
                continue;
            }
            // Same loop nest on every leg block: per-visit exclusivity.
            let pb = trips.enclosing_product(b);
            let same = |blocks: &[usize]| {
                blocks.iter().all(|&x| {
                    trips.enclosing_product(x).as_ref().ok() == pb.as_ref().ok()
                        && pb.is_ok()
                        && vmin[x] == 0
                })
            };
            if !same(&la) || !same(&lb) {
                continue;
            }
            let sum = |blocks: &[usize]| {
                let mut t = Terms::default();
                for &x in blocks {
                    t.add(profiles[x].max);
                }
                t
            };
            let per_visit = Terms::component_min(sum(&la), sum(&lb));
            credit.add(per_visit.scaled(vmax[b]));
            for &x in la.iter().chain(&lb) {
                claimed[x] = true;
            }
        }
    }

    // One warp, whole kernel.
    let mut n_max_w = 0u64;
    let mut n_min_w = 0u64;
    let mut skip_min_w = 0u64;
    let mut skip_max_w = 0u64;
    let mut lsu_min_w = 0u64;
    let mut lsu_min_nonskip_w = 0u64;
    let mut skip_wait_w = 0u64;
    let mut terms_w = Terms::default();
    for b in 0..nb {
        let p = &profiles[b];
        n_max_w = n_max_w.saturating_add(vmax[b].saturating_mul(p.n));
        n_min_w += vmin[b] * p.n;
        skip_min_w += vmin[b] * p.n_skip;
        skip_max_w = skip_max_w.saturating_add(vmax[b].saturating_mul(p.n_skip));
        skip_wait_w = skip_wait_w.saturating_add(vmax[b].saturating_mul(p.skip_wait));
        lsu_min_w += vmin[b] * p.lsu_min;
        lsu_min_nonskip_w += vmin[b] * p.lsu_min_nonskip;
        terms_w.add(p.max.scaled(vmax[b]));
    }
    terms_w.saturating_sub(credit);

    // SM aggregation: the busiest SM runs `tbs_sm` threadblocks of
    // `wpb` warps, `waves` residency generations deep.
    let total_tbs = u64::from(launch.grid.x) * u64::from(launch.grid.y) * u64::from(launch.grid.z);
    let tbs_sm = total_tbs.div_ceil(gc.num_sms as u64).max(1);
    let wpb = u64::from(launch.warps_per_block()).max(1);
    let wi = tbs_sm * wpb;
    let occ = occupancy(kernel, launch, gc);
    let waves = tbs_sm.div_ceil(u64::from(occ.tbs_per_sm).max(1));

    // Lower bound: structural throughput limits.
    let n_eff_min_w = if darsie.is_some() { n_min_w - skip_min_w } else { n_min_w };
    let lsu_eff_min_w = if darsie.is_some() { lsu_min_nonskip_w } else { lsu_min_w };
    let fetch_bound = (wi * n_eff_min_w).div_ceil(timing::fetch_bandwidth(gc).max(1));
    let issue_bound = (wi * n_eff_min_w).div_ceil(timing::issue_bandwidth(gc).max(1));
    let lsu_bound = wi * lsu_eff_min_w;
    let width = (gc.issue_width as u64).max(1);
    let ipf = (gc.instrs_per_fetch as u64).max(1);
    let chain_bound = (n_eff_min_w.div_ceil(width)).max(n_eff_min_w.div_ceil(ipf));
    let min_cycles = fetch_bound.max(issue_bound).max(lsu_bound).max(chain_bound).max(1);

    // Upper bound: serialized shared resources + exposure + drain.
    let mut breakdown = Breakdown {
        fetch_bound,
        issue_bound,
        lsu_bound,
        chain_bound,
        tbs_per_sm: tbs_sm,
        waves,
        ..Breakdown::default()
    };
    let max_cycles = if bounded {
        let icache = icache_miss_cost(gc, kernel.len(), wi.saturating_mul(terms_w.bursts));
        let fetch_serial = wi.saturating_mul(terms_w.bursts).saturating_add(icache);
        let issue_serial = wi.saturating_mul(terms_w.issue.div_ceil(width));
        let lsu_serial = wi.saturating_mul(terms_w.lsu);
        let sfu_serial = wi.saturating_mul(terms_w.sfu);
        let dram_serial =
            wi.saturating_mul(terms_w.lines).div_ceil((gc.dram_bandwidth as u64).max(1));
        let exposed = waves.saturating_mul(terms_w.exposed);
        // Followers parked in `WaitLeader` are all released at the
        // leader's writeback, so the waits on one skip-table entry
        // overlap: the exposed wall-clock per entry version is at most
        // the leader instruction's worst completion latency, once per TB
        // (leaders of distinct TBs publish independently). The would-be
        // leader's own resource stalls (`max_leader_stall` cap) occur
        // only under skip-table/freelist exhaustion, which requires other
        // warps to be draining entries (issuing, hence counted); one cap
        // per TB covers the final drain.
        let darsie_slack = darsie.map_or(0, |d| {
            tbs_sm
                .saturating_mul(skip_wait_w)
                .saturating_add(tbs_sm.saturating_mul(u64::from(d.max_leader_stall)))
        });
        let drain = timing::dram_line_latency(gc);
        breakdown.fetch_serial = fetch_serial;
        breakdown.issue_serial = issue_serial;
        breakdown.lsu_serial = lsu_serial;
        breakdown.sfu_serial = sfu_serial;
        breakdown.dram_serial = dram_serial;
        breakdown.exposed = exposed;
        breakdown.darsie_slack = darsie_slack;
        Some(
            fetch_serial
                .saturating_add(issue_serial)
                .saturating_add(lsu_serial)
                .saturating_add(sfu_serial)
                .saturating_add(dram_serial)
                .saturating_add(exposed)
                .saturating_add(darsie_slack)
                .saturating_add(drain)
                .max(min_cycles),
        )
    } else {
        None
    };

    // Predicted savings: followers of every TB skip the skippable work.
    let predicted_skip_fraction = if darsie.is_some() {
        let (s, n) = if bounded { (skip_max_w, n_max_w) } else { (skip_min_w, n_min_w) };
        if n == 0 || wpb == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                (wpb - 1) as f64 / wpb as f64 * s as f64 / n as f64
            }
        }
    } else {
        0.0
    };

    CostEstimate {
        technique: technique.label().to_string(),
        min_cycles,
        max_cycles,
        predicted_skip_fraction,
        loops,
        report,
        breakdown,
    }
}

/// Minimum visit product when some enclosing loop is unboundable: every
/// bounded enclosing loop contributes its minimum, unbounded ones
/// contribute the do-while floor of one iteration.
fn min_product_fallback(trips: &TripCounts, block: usize) -> u64 {
    let mut p = 1u64;
    for l in &trips.loops {
        if l.body.contains(&block) {
            p = p.saturating_mul(l.bound.as_ref().map_or(1, |&(lo, _)| lo));
        }
    }
    p
}

/// Worst-case I-cache cost: cold-only when the kernel fits every set
/// (misses = code lines), otherwise every burst may miss.
fn icache_miss_cost(gc: &GpuConfig, kernel_len: usize, total_bursts: u64) -> u64 {
    let line_bytes = GpuConfig::LINE_BYTES;
    let lines = (simt_isa::Kernel::byte_pc(kernel_len).max(1)).div_ceil(line_bytes);
    let sets = ((gc.icache_lines / gc.icache_assoc) as u64).max(1);
    let per_set = lines.div_ceil(sets);
    let misses = if per_set <= gc.icache_assoc as u64 { lines } else { total_bursts };
    misses.saturating_mul(timing::fetch_miss_penalty(gc) + 1)
}

/// Detects a TB-uniform two-way diamond at block `b`: both legs are
/// single-entry regions meeting at the branch's immediate post-dominator
/// and sharing no block. Returns the two leg block sets.
fn uniform_diamond(
    kernel: &simt_isa::Kernel,
    cfg: &simt_compiler::Cfg,
    pdoms: &PostDoms,
    in_states: &[simt_compiler::affine::FlowState],
    b: usize,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let block = &cfg.blocks[b];
    if block.succs.len() != 2 || block.succs[0] == block.succs[1] {
        return None;
    }
    let term = block.range().last()?;
    let i = &kernel.instrs[term];
    let g = match i.op {
        Op::Bra { .. } => i.guard?,
        _ => return None,
    };
    // Uniformity at the branch point: replay the block body.
    let mut st = in_states[b].clone();
    if !st.reachable {
        return None;
    }
    for pc in block.range() {
        simt_compiler::affine::transfer(&mut st, &kernel.instrs[pc], 1);
    }
    let pv = st.preds[usize::from(g.pred.0)];
    let uniform = matches!(pv, PredVal::Top) || pv.is_tb_uniform();
    if !uniform {
        return None;
    }
    let join = pdoms.ipdom[b];
    let leg = |entry: usize| -> Option<Vec<usize>> {
        if entry == join {
            return Some(Vec::new());
        }
        let mut seen = vec![false; cfg.len()];
        seen[join] = true;
        let mut stack = vec![entry];
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            if seen[x] {
                continue;
            }
            seen[x] = true;
            out.push(x);
            for &s in &cfg.blocks[x].succs {
                stack.push(s);
            }
        }
        // Single entry: no edges into the leg from outside except from b.
        for &x in &out {
            for &p in &cfg.blocks[x].preds {
                if p != b && !out.contains(&p) {
                    return None;
                }
            }
        }
        Some(out)
    };
    let la = leg(block.succs[0])?;
    let lb = leg(block.succs[1])?;
    if la.iter().any(|x| lb.contains(x)) {
        return None;
    }
    if la.is_empty() && lb.is_empty() {
        return None;
    }
    Some((la, lb))
}

/// The `E201` lint pass: trip-count boundability of every natural loop,
/// independent of any GPU configuration.
#[must_use]
pub fn check(ck: &CompiledKernel, launch: &LaunchConfig) -> Diagnostics {
    let doms = Doms::compute(&ck.cfg);
    let nloops = NaturalLoops::compute(&ck.kernel, &ck.cfg, &doms);
    let (in_states, _) = fixpoint_with_divergence(&ck.kernel, &ck.cfg, launch.block.z, true);
    let trips = infer_trips(&ck.kernel, &ck.cfg, &doms, &nloops, launch, &in_states);
    let mut report = Diagnostics::new(ck.kernel.name.clone());
    for lt in &trips.loops {
        if let Err(reason) = &lt.bound {
            report.push(Diagnostic::new(
                LintCode::TripUnbounded,
                Some(lt.back_edge_pc),
                format!("loop trip count is unboundable: {reason}"),
            ));
        }
    }
    report
}

/// Differential validation: `E202` when the measured cycle count falls
/// outside the static bracket.
#[must_use]
pub fn validate(est: &CostEstimate, measured_cycles: u64) -> Option<Diagnostic> {
    if est.contains(measured_cycles) {
        return None;
    }
    let hi = est.max_cycles.map_or("unbounded".to_string(), |h| h.to_string());
    Some(Diagnostic::new(
        LintCode::CycleBoundViolation,
        None,
        format!(
            "measured {} cycles outside static bracket [{}, {}] ({})",
            measured_cycles, est.min_cycles, hi, est.technique
        ),
    ))
}
