//! Static memory-performance prediction: per-access shared-memory
//! bank-conflict degree and global-memory coalescing efficiency.
//!
//! The affine-interval domain of [`simt_compiler::affine`] describes each
//! address as `a*tid.x + b*tid.y + c` with a TB-uniform `c ∈ [lo, hi]`.
//! Because every lane shares the same `c`, the *relative* addresses of a
//! warp are fixed, and both the bank-conflict degree (32 four-byte banks)
//! and the 128-byte coalescing line count are periodic in `c` with period
//! 128. Enumerating the feasible residues of `c` therefore yields exact
//! per-execution bounds `[min, max]` for every statically affine access —
//! using the *same* [`gpu_sim::mem::smem_conflict_degree`] and
//! [`gpu_sim::mem::coalesce_lines`] functions the cycle simulator applies,
//! so [`validate`] is a genuine differential check against the measured
//! [`gpu_sim::SimStats::mem_by_pc`] counters.
//!
//! Execution masks come from the dominating-branch conditions shared with
//! the race pass ([`crate::races`]); a mask or address the domain cannot
//! pin down exactly is reported as [`MemPredKind::Unpredictable`], never
//! silently guessed. Lane-set recovery assumes the structured,
//! IPDOM-reconverging control flow produced by `KernelBuilder`;
//! unstructured flow can under-constrain the mask, which the differential
//! validation then surfaces.
//!
//! Findings surface as `P1xx` lints: `P101` guaranteed bank conflicts,
//! `P102` guaranteed uncoalesced global access, `P103` statically
//! unpredictable access.

use crate::races::block_conditions;
use crate::{Diagnostic, Diagnostics, LintCode};
use gpu_sim::mem::{coalesce_lines, smem_conflict_degree};
use gpu_sim::SimStats;
use simt_compiler::affine::{fixpoint, resolve, transfer, Affine, AffineVal, PredVal};
use simt_compiler::CompiledKernel;
use simt_isa::{LaunchConfig, MemSpace, Op};
use std::collections::BTreeSet;

/// Bias added before reusing the simulator's unsigned address helpers;
/// a multiple of 128 so it changes neither bank nor line structure.
const BIAS: i64 = 1 << 40;

/// What the predictor can say about one static memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemPredKind {
    /// A shared access: per-execution bank-conflict degree bounds.
    SharedConflict {
        /// Minimum serialized bank passes over feasible constants.
        min_degree: u32,
        /// Maximum serialized bank passes over feasible constants.
        max_degree: u32,
    },
    /// A global access: per-execution 128-byte line-count bounds, plus
    /// the ideal count for the widest executing lane set.
    GlobalCoalesce {
        /// Minimum distinct lines over feasible constants.
        min_lines: u32,
        /// Maximum distinct lines over feasible constants.
        max_lines: u32,
        /// Lines a perfectly coalesced access of the same width needs.
        ideal_lines: u32,
    },
    /// The address or execution mask is not exactly thread-affine.
    Unpredictable {
        /// Why no bound can be given.
        reason: String,
    },
}

/// Prediction for one static load/store/atomic.
#[derive(Debug, Clone)]
pub struct MemPrediction {
    /// Instruction index.
    pub pc: usize,
    /// True for stores and atomics.
    pub is_store: bool,
    /// The accessed space (`Shared` or `Global`).
    pub space: MemSpace,
    /// The bound, or why there is none.
    pub kind: MemPredKind,
}

/// Outcome of checking one prediction against measured counters.
#[derive(Debug, Clone)]
pub struct Validation {
    /// Instruction index.
    pub pc: usize,
    /// True when the measured counters fall inside the predicted bounds.
    pub ok: bool,
    /// Human-readable predicted-vs-measured evidence.
    pub detail: String,
}

/// One access site collected from the CFG replay.
struct Access {
    pc: usize,
    block: usize,
    space: MemSpace,
    is_store: bool,
    addr: AffineVal,
    guard: Option<(PredVal, bool)>,
}

/// Threads that provably execute under `constraints`, or `None` when some
/// constraint is not exactly evaluable per-thread.
fn executing_threads(
    constraints: &[(PredVal, bool)],
    bx: u32,
    by: u32,
    threads: u32,
) -> Option<Vec<u32>> {
    let exact = |v: AffineVal| v.affine().is_some_and(Affine::is_exact);
    if !constraints
        .iter()
        .all(|&(pv, _)| matches!(pv, PredVal::Cmp { lhs, rhs, .. } if exact(lhs) && exact(rhs)))
    {
        return None;
    }
    let mut out = Vec::new();
    for t in 0..threads {
        let tx = i64::from(t % bx);
        let ty = i64::from((t / bx) % by);
        if constraints.iter().all(|&(pv, pol)| pv.eval(tx, ty) == Some(pol)) {
            out.push(t);
        }
    }
    Some(out)
}

/// Feasible residues of the uniform constant modulo the 128-byte period.
fn residues(f: Affine) -> Vec<i64> {
    let unbounded = f.lo == simt_compiler::affine::NEG_INF
        || f.hi == simt_compiler::affine::POS_INF
        || i128::from(f.hi) - i128::from(f.lo) >= 127;
    if unbounded {
        return (0..128).collect();
    }
    let set: BTreeSet<i64> = (f.lo..=f.hi).map(|c| c.rem_euclid(128)).collect();
    set.into_iter().collect()
}

/// Per-execution degree/line bounds for one access, over every executing
/// warp and every feasible constant residue.
fn bound_access(
    f: Affine,
    lanes: &[u32],
    bx: u32,
    by: u32,
    warp_size: u32,
    shared: bool,
) -> Result<(u32, u32, u32), String> {
    let nwarps = lanes.iter().map(|&t| t / warp_size).max().unwrap_or(0) + 1;
    let mut min_v = u32::MAX;
    let mut max_v = 0u32;
    let mut widest = 0u32;
    for w in 0..nwarps {
        let offs: Vec<i64> = lanes
            .iter()
            .filter(|&&t| t / warp_size == w)
            .map(|&t| {
                let tx = i64::from(t % bx);
                let ty = i64::from((t / bx) % by);
                f.a.checked_mul(tx)
                    .and_then(|x| f.b.checked_mul(ty).and_then(|y| x.checked_add(y)))
                    .ok_or_else(|| "address coefficients overflow the model".to_string())
            })
            .collect::<Result<_, _>>()?;
        if offs.is_empty() {
            continue;
        }
        widest = widest.max(offs.len() as u32);
        for r in residues(f) {
            let addrs: Vec<u64> = offs
                .iter()
                .map(|&o| {
                    let a = o + r + BIAS;
                    if a < 0 {
                        Err("address below the model range".to_string())
                    } else {
                        Ok(a as u64)
                    }
                })
                .collect::<Result<_, _>>()?;
            let v = if shared {
                smem_conflict_degree(addrs.into_iter())
            } else {
                coalesce_lines(addrs.into_iter()).len() as u32
            };
            min_v = min_v.min(v);
            max_v = max_v.max(v);
        }
    }
    if max_v == 0 {
        return Err("no thread provably executes this access".to_string());
    }
    Ok((min_v, max_v, widest))
}

/// Predicts bank-conflict degrees and coalescing line counts for every
/// shared/global load, store and atomic of `ck` under `launch`, with
/// per-warp lane grouping by `warp_size`.
#[must_use]
pub fn predict(ck: &CompiledKernel, launch: &LaunchConfig, warp_size: u32) -> Vec<MemPrediction> {
    predict_inner(ck, launch, warp_size, false)
}

/// Like [`predict`], but when the execution mask is not exactly
/// thread-affine (and only then) the access is bounded over the *full*
/// thread block instead of reported unpredictable: any executing subset
/// touches at most the lines (conflicts at most the degree) of the whole
/// warp, so the returned maximum is a sound mask-agnostic envelope. The
/// minimum is widened to 0 (the mask may be empty). The cost model's
/// upper bound consumes this; the `P1xx` lints keep the exact
/// [`predict`].
#[must_use]
pub fn predict_envelope(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    warp_size: u32,
) -> Vec<MemPrediction> {
    predict_inner(ck, launch, warp_size, true)
}

fn predict_inner(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    warp_size: u32,
    mask_free: bool,
) -> Vec<MemPrediction> {
    let (bx, by, bz) = (launch.block.x.max(1), launch.block.y.max(1), launch.block.z.max(1));
    let threads = launch.threads_per_block();
    let instrs = &ck.kernel.instrs;

    let in_states = fixpoint(&ck.kernel, &ck.cfg, bz, true);
    let block_conds = block_conditions(ck, &in_states, bz);

    let mut accesses: Vec<Access> = Vec::new();
    for (b, block) in ck.cfg.blocks.iter().enumerate() {
        if !in_states[b].reachable {
            continue;
        }
        let mut st = in_states[b].clone();
        for pc in block.range() {
            let instr = &instrs[pc];
            let classified = match instr.op {
                Op::Ld(s @ (MemSpace::Shared | MemSpace::Global)) => Some((s, false)),
                Op::St(s @ (MemSpace::Shared | MemSpace::Global)) => Some((s, true)),
                Op::Atom(_) => Some((MemSpace::Global, true)),
                _ => None,
            };
            if let Some((space, is_store)) = classified {
                let addr =
                    resolve(&st, instr.srcs[0]) + AffineVal::constant(i64::from(instr.offset));
                let guard = instr.guard.map(|g| (st.preds[usize::from(g.pred.0)], !g.negate));
                accesses.push(Access { pc, block: b, space, is_store, addr, guard });
            }
            transfer(&mut st, instr, bz);
        }
    }

    accesses
        .into_iter()
        .map(|a| {
            let mut constraints = block_conds[a.block].clone();
            if let Some(g) = a.guard {
                constraints.push(g);
            }
            // Mask-free envelope: an unknown mask executes some subset of
            // the block's threads, and any subset's degree/lines are
            // bounded by the full warp's — min widens to 0 (empty mask).
            let (lanes, masked) = match executing_threads(&constraints, bx, by, threads) {
                Some(lanes) => (Some(lanes), false),
                None if mask_free => (Some((0..threads).collect()), true),
                None => (None, false),
            };
            let kind = match (lanes, a.addr) {
                (None, _) => MemPredKind::Unpredictable {
                    reason: "execution mask depends on a predicate that is not exactly \
                             thread-affine"
                        .to_string(),
                },
                (_, AffineVal::Top | AffineVal::Unknown) => MemPredKind::Unpredictable {
                    reason: "address is not thread-affine".to_string(),
                },
                (Some(lanes), AffineVal::Aff(f)) => {
                    let shared = a.space == MemSpace::Shared;
                    match bound_access(f, &lanes, bx, by, warp_size, shared) {
                        Err(reason) => MemPredKind::Unpredictable { reason },
                        Ok((min_v, max_v, widest)) if shared => {
                            let _ = widest;
                            MemPredKind::SharedConflict {
                                min_degree: if masked { 0 } else { min_v },
                                max_degree: max_v,
                            }
                        }
                        Ok((min_v, max_v, widest)) => MemPredKind::GlobalCoalesce {
                            min_lines: if masked { 0 } else { min_v },
                            max_lines: max_v,
                            ideal_lines: (widest * 4).div_ceil(128).max(1),
                        },
                    }
                }
            };
            MemPrediction { pc: a.pc, is_store: a.is_store, space: a.space, kind }
        })
        .collect()
}

/// Turns predictions into `P1xx` diagnostics.
#[must_use]
pub fn lint(ck: &CompiledKernel, predictions: &[MemPrediction]) -> Diagnostics {
    let mut report = Diagnostics::new(ck.kernel.name.clone());
    for p in predictions {
        let what = if p.is_store { "store" } else { "load" };
        match &p.kind {
            MemPredKind::SharedConflict { min_degree, max_degree } if *min_degree > 1 => {
                report.push(Diagnostic::new(
                    LintCode::SharedBankConflict,
                    Some(p.pc),
                    format!(
                        "shared {what} serializes over {min_degree}..={max_degree} bank passes \
                         in every execution"
                    ),
                ));
            }
            MemPredKind::GlobalCoalesce { min_lines, max_lines, ideal_lines }
                if *min_lines > *ideal_lines =>
            {
                report.push(Diagnostic::new(
                    LintCode::GlobalUncoalesced,
                    Some(p.pc),
                    format!(
                        "global {what} touches {min_lines}..={max_lines} 128-byte lines per \
                         execution where {ideal_lines} would suffice"
                    ),
                ));
            }
            MemPredKind::Unpredictable { reason } => {
                report.push(Diagnostic::new(
                    LintCode::MemUnpredictable,
                    Some(p.pc),
                    format!("{} {what} has no static performance bound: {reason}", p.space),
                ));
            }
            _ => {}
        }
    }
    report
}

/// Checks every bounded prediction against the simulator's measured
/// per-pc counters: with `n` measured executions of an access bounded by
/// `[min, max]`, the accumulated counter must lie in `[n*min, n*max]`.
#[must_use]
pub fn validate(predictions: &[MemPrediction], stats: &SimStats) -> Vec<Validation> {
    let zero = gpu_sim::PcMemStat::default();
    predictions
        .iter()
        .filter_map(|p| {
            let m = stats.mem_by_pc.get(&p.pc).unwrap_or(&zero);
            match p.kind {
                MemPredKind::SharedConflict { min_degree, max_degree } => {
                    let (lo, hi) = (
                        m.smem_accesses * u64::from(min_degree - 1),
                        m.smem_accesses * u64::from(max_degree - 1),
                    );
                    let ok = (lo..=hi).contains(&m.smem_conflict_extra);
                    Some(Validation {
                        pc: p.pc,
                        ok,
                        detail: format!(
                            "pc {}: predicted conflict-extra in [{lo}, {hi}] over {} accesses, \
                             measured {}",
                            p.pc, m.smem_accesses, m.smem_conflict_extra
                        ),
                    })
                }
                MemPredKind::GlobalCoalesce { min_lines, max_lines, .. } => {
                    let (lo, hi) = (
                        m.global_accesses * u64::from(min_lines),
                        m.global_accesses * u64::from(max_lines),
                    );
                    let ok = (lo..=hi).contains(&m.global_transactions);
                    Some(Validation {
                        pc: p.pc,
                        ok,
                        detail: format!(
                            "pc {}: predicted transactions in [{lo}, {hi}] over {} accesses, \
                             measured {}",
                            p.pc, m.global_accesses, m.global_transactions
                        ),
                    })
                }
                MemPredKind::Unpredictable { .. } => None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_compiler::compile;
    use simt_isa::{KernelBuilder, SpecialReg};

    fn launch_1d() -> LaunchConfig {
        LaunchConfig::new(1u32, 64u32)
    }

    /// out[tid.x] with a 4-byte stride: conflict-free, fully coalesced.
    fn unit_stride() -> CompiledKernel {
        let mut b = KernelBuilder::new("unit");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 4);
        let off = b.shl_imm(t, 2);
        let sa = b.iadd(off, smem);
        b.store(MemSpace::Shared, sa, t, 0);
        b.store(MemSpace::Global, off, t, 0);
        compile(b.finish())
    }

    #[test]
    fn unit_stride_is_clean() {
        let ck = unit_stride();
        let preds = predict(&ck, &launch_1d(), 32);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].kind, MemPredKind::SharedConflict { min_degree: 1, max_degree: 1 });
        // The global base is the exact constant 0 here, so one residue.
        assert_eq!(
            preds[1].kind,
            MemPredKind::GlobalCoalesce { min_lines: 1, max_lines: 1, ideal_lines: 1 }
        );
        assert!(lint(&ck, &preds).items.is_empty());
    }

    #[test]
    fn stride_128_shared_maximally_conflicts() {
        let mut b = KernelBuilder::new("conflict");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 128);
        let off = b.shl_imm(t, 7);
        let sa = b.iadd(off, smem);
        b.store(MemSpace::Shared, sa, t, 0);
        let ck = compile(b.finish());
        let preds = predict(&ck, &launch_1d(), 32);
        assert_eq!(preds[0].kind, MemPredKind::SharedConflict { min_degree: 32, max_degree: 32 });
        let report = lint(&ck, &preds);
        assert_eq!(report.items[0].code, LintCode::SharedBankConflict);
    }

    #[test]
    fn param_base_widens_to_residue_interval() {
        // base comes from a parameter: uniform but unknown, so the bound
        // must cover every 128-byte alignment.
        let mut b = KernelBuilder::new("parambase");
        let t = b.special(SpecialReg::TidX);
        let base = b.param(0);
        let off = b.shl_imm(t, 2);
        let a = b.iadd(base, off);
        b.store(MemSpace::Global, a, t, 0);
        let ck = compile(b.finish());
        let preds = predict(&ck, &launch_1d(), 32);
        assert_eq!(
            preds[0].kind,
            MemPredKind::GlobalCoalesce { min_lines: 1, max_lines: 2, ideal_lines: 1 }
        );
        // Not guaranteed uncoalesced: no lint.
        assert!(lint(&ck, &preds).items.is_empty());
    }

    #[test]
    fn non_affine_address_is_reported_not_guessed() {
        let mut b = KernelBuilder::new("nonaffine");
        let t = b.special(SpecialReg::TidX);
        let masked = b.and(t, 1u32);
        let off = b.shl_imm(masked, 2);
        b.store(MemSpace::Global, off, t, 0);
        let ck = compile(b.finish());
        let preds = predict(&ck, &launch_1d(), 32);
        assert!(matches!(preds[0].kind, MemPredKind::Unpredictable { .. }));
        let report = lint(&ck, &preds);
        assert_eq!(report.items[0].code, LintCode::MemUnpredictable);
        assert_eq!(report.items[0].severity, crate::Severity::Note);
    }

    #[test]
    fn guarded_access_masks_lanes() {
        // Only tid.x < 8 store: one warp, 8 lanes, still one line when
        // the base is exact.
        let mut b = KernelBuilder::new("guarded");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(simt_isa::CmpOp::Lt, t, 8u32);
        let off = b.shl_imm(t, 2);
        let st = simt_isa::Instruction::new(
            Op::St(MemSpace::Global),
            None,
            None,
            vec![off.into(), t.into()],
        )
        .with_guard(simt_isa::Guard::if_true(p));
        b.emit(st);
        let ck = compile(b.finish());
        let preds = predict(&ck, &launch_1d(), 32);
        assert_eq!(
            preds[0].kind,
            MemPredKind::GlobalCoalesce { min_lines: 1, max_lines: 1, ideal_lines: 1 }
        );
    }
}
