//! Pass 3: the marking-soundness sanitizer — a differential oracle over
//! the headless functional executor.
//!
//! DARSIE's hardware shares the leader warp's renamed result with every
//! follower warp for instructions the compiler marked redundant. That is
//! only sound if each such instruction really produces a bit-identical
//! result vector in every warp of the threadblock. This pass replays the
//! kernel per-warp with [`run_tb_functional`] and compares, for every
//! *checked* instruction, the destination vectors of all warps at the same
//! dynamic occurrence (the DARSIE instance number).
//!
//! An instruction is checked when it writes a general register, is not an
//! atomic, and either its static marking or its (launch-finalized)
//! abstract class claims TB-redundancy. Consulting the markings — not
//! just the classes — matters: the markings are what the hardware decodes
//! from the binary, so a tampered or stale `Marking::Redundant` must be
//! caught even when the analysis classes disagree.
//!
//! Only *aligned occurrence groups* are compared: every warp of the TB
//! executed the occurrence with its full lane mask. Divergent or partial
//! executions never form a sharing group in the hardware either (the skip
//! table requires full-warp execution), so skipping them is not a
//! soundness hole.
//!
//! The replay additionally carries the dynamic shared-memory race
//! sanitizer ([`gpu_sim::RaceSanitizer`]): every observed race is a
//! `V303` error, and a checked redundancy claim that *read* a race-tainted
//! shared word is downgraded (reported as `V201`/`V202`) even when its
//! result vectors matched — the oracle only ever sees one interleaving, so
//! value agreement under a race proves nothing.

use crate::{Diagnostic, Diagnostics, LintCode};
use gpu_sim::{ctaid_at, run_tb_functional, FunctionalObserver, GlobalMemory, RaceSanitizer};
use simt_compiler::{promotes_tid_y, CompiledKernel, Red};
use simt_isa::{Dim3, Instruction, LaunchConfig, Marking, MemSpace, Op};
use std::collections::{HashMap, HashSet};

/// Which lint a mismatch at this instruction raises, or `None` when the
/// instruction is not subject to value sharing under this launch.
fn checked_kind(ck: &CompiledKernel, pc: usize, px: bool, py: bool) -> Option<LintCode> {
    let instr = &ck.kernel.instrs[pc];
    if !instr.op.writes_dst() || instr.dst.is_none() || matches!(instr.op, Op::Atom(_)) {
        return None;
    }
    let class = ck.classes[pc];
    let marking = ck.markings[pc];
    // What the decoded binary claims: DR shares unconditionally, CR shares
    // when the launch-time dimensionality check passes.
    let marking_claims = match marking {
        Marking::Redundant => true,
        Marking::ConditionallyRedundant => match class.red {
            Red::CondRedundantXY => px && py,
            _ => px,
        },
        Marking::Vector => false,
    };
    // What the analysis classes claim after launch finalization.
    let class_claims = class.finalize(px, py).taxonomy().is_redundant();
    if !marking_claims && !class_claims {
        return None;
    }
    if marking == Marking::Redundant || class.red == Red::Redundant {
        Some(LintCode::UnsoundMarking)
    } else {
        Some(LintCode::UnsoundPromotion)
    }
}

/// One warp's execution of a checked `(pc, occurrence)`.
struct Rec {
    full: bool,
    dst: Vec<u32>,
}

/// Records destination vectors of checked instructions for one TB, and
/// runs the dynamic race sanitizer alongside.
struct OracleObserver<'a> {
    checked: &'a [Option<LintCode>],
    ws: u32,
    num_warps: usize,
    records: HashMap<(usize, u32), Vec<Option<Rec>>>,
    sanitizer: RaceSanitizer,
    /// Shared words each *checked* load pc read during this TB.
    shared_reads: HashMap<usize, HashSet<u64>>,
}

impl FunctionalObserver for OracleObserver<'_> {
    fn after_instruction(
        &mut self,
        w: usize,
        pc: usize,
        occurrence: u32,
        instr: &Instruction,
        warp: &gpu_sim::Warp,
    ) {
        if self.checked[pc].is_none() {
            return;
        }
        let Some(dst) = instr.dst else { return };
        let full = warp.active_mask() == warp.full_mask && warp.full_mask.count_ones() == self.ws;
        let slot = &mut self
            .records
            .entry((pc, occurrence))
            .or_insert_with(|| (0..self.num_warps).map(|_| None).collect())[w];
        *slot = Some(Rec { full, dst: warp.reg_vector(dst) });
    }

    fn shared_access(
        &mut self,
        w: usize,
        pc: usize,
        occurrence: u32,
        addrs: &[(u32, u64)],
        is_store: bool,
    ) {
        self.sanitizer.shared_access(w, pc, occurrence, addrs, is_store);
        if !is_store && self.checked[pc].is_some() {
            self.shared_reads.entry(pc).or_default().extend(addrs.iter().map(|&(_, a)| a / 4));
        }
    }

    fn barrier_release(&mut self) {
        self.sanitizer.barrier_release();
    }
}

/// Accumulated evidence against one static instruction.
struct Mismatch {
    code: LintCode,
    count: u64,
    example: String,
}

/// Runs the differential oracle over every threadblock of `launch`,
/// evolving `memory` exactly as a real launch would.
#[must_use]
pub fn check(ck: &CompiledKernel, launch: &LaunchConfig, mut memory: GlobalMemory) -> Diagnostics {
    let mut report = Diagnostics::new(ck.kernel.name.clone());
    let px = launch.promotes_conditional_redundancy();
    let py = promotes_tid_y(launch);
    let checked: Vec<Option<LintCode>> =
        (0..ck.kernel.instrs.len()).map(|pc| checked_kind(ck, pc, px, py)).collect();
    let has_shared = ck
        .kernel
        .instrs
        .iter()
        .any(|i| matches!(i.op, Op::Ld(MemSpace::Shared) | Op::St(MemSpace::Shared)));
    if checked.iter().all(Option::is_none) && !has_shared {
        return report;
    }
    let num_warps = launch.warps_per_block() as usize;
    let mut mismatches: HashMap<usize, Mismatch> = HashMap::new();
    // Dynamic races deduplicated by static pc pair across all TBs, with
    // the first observing TB kept for the message.
    let mut races: Vec<(Dim3, gpu_sim::SharedRace)> = Vec::new();
    let mut race_pairs: HashSet<(usize, usize)> = HashSet::new();
    // Checked pcs whose loads read a race-tainted shared word.
    let mut tainted_claims: HashMap<usize, (LintCode, u64)> = HashMap::new();

    for i in 0..launch.num_blocks() {
        let ctaid = ctaid_at(launch.grid, i);
        let mut obs = OracleObserver {
            checked: &checked,
            ws: launch.warp_size,
            num_warps,
            records: HashMap::new(),
            sanitizer: RaceSanitizer::new(launch.warp_size),
            shared_reads: HashMap::new(),
        };
        run_tb_functional(ck, launch, ctaid, &mut memory, &mut obs);

        for race in obs.sanitizer.races() {
            if race_pairs.insert((race.first_pc, race.second_pc)) {
                races.push((ctaid, *race));
            }
        }
        for (&pc, words) in &obs.shared_reads {
            if let Some(&w) = words.iter().find(|&&w| obs.sanitizer.is_tainted(w)) {
                tainted_claims.entry(pc).or_insert((checked[pc].expect("pc is checked"), w));
            }
        }

        for ((pc, occurrence), recs) in obs.records {
            // Only aligned occurrence groups: every warp, full masks.
            if !recs.iter().all(|r| r.as_ref().is_some_and(|r| r.full)) {
                continue;
            }
            let leader = recs[0].as_ref().expect("aligned group has a leader warp");
            for (w, rec) in recs.iter().enumerate().skip(1) {
                let rec = rec.as_ref().expect("aligned group checked above");
                if rec.dst == leader.dst {
                    continue;
                }
                let lane = rec
                    .dst
                    .iter()
                    .zip(&leader.dst)
                    .position(|(a, b)| a != b)
                    .expect("vectors differ");
                let entry = mismatches.entry(pc).or_insert_with(|| Mismatch {
                    code: checked[pc].expect("pc is checked"),
                    count: 0,
                    example: format!(
                        "TB ({},{},{}) occurrence {}: warp {} lane {} produced {:#x}, \
                         leader warp 0 produced {:#x}",
                        ctaid.x,
                        ctaid.y,
                        ctaid.z,
                        occurrence,
                        w,
                        lane,
                        rec.dst[lane],
                        leader.dst[lane],
                    ),
                });
                entry.count += 1;
            }
        }
    }

    let mut pcs: Vec<usize> = mismatches.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        let m = &mismatches[&pc];
        let claim = match m.code {
            LintCode::UnsoundMarking => "is marked definitely redundant",
            _ => "was promoted by this launch's dimensionality check",
        };
        report.push(Diagnostic::new(
            m.code,
            Some(pc),
            format!(
                "`{}` {claim} but produced warp-divergent results ({} mismatching \
                 warp-occurrence pair(s); first: {})",
                ck.kernel.instrs[pc], m.count, m.example,
            ),
        ));
    }

    // Downgrade redundancy claims that read race-tainted words: matching
    // result vectors under a race only describe this replay's
    // interleaving, so the claim is unsound even without a mismatch.
    let mut pcs: Vec<usize> = tainted_claims.keys().copied().collect();
    pcs.sort_unstable();
    for pc in pcs {
        if mismatches.contains_key(&pc) {
            continue;
        }
        let (code, word) = tainted_claims[&pc];
        let claim = match code {
            LintCode::UnsoundMarking => "is marked definitely redundant",
            _ => "was promoted by this launch's dimensionality check",
        };
        report.push(Diagnostic::new(
            code,
            Some(pc),
            format!(
                "`{}` {claim} but reads shared word {word}, which a data race tainted; \
                 its value is interleaving-dependent and must not be shared across warps",
                ck.kernel.instrs[pc],
            ),
        ));
    }

    races.sort_by_key(|(_, r)| (r.first_pc, r.second_pc));
    for (ctaid, r) in races {
        let kinds = if r.write_write { "both storing" } else { "store racing a load" };
        report.push(Diagnostic::new(
            LintCode::SharedRaceDynamic,
            Some(r.second_pc),
            format!(
                "dynamic shared-memory race in TB ({},{},{}): thread {} at pc {} and \
                 thread {} at pc {} touched shared word {} in the same barrier epoch ({kinds})",
                ctaid.x,
                ctaid.y,
                ctaid.z,
                r.first_thread,
                r.first_pc,
                r.second_thread,
                r.second_pc,
                r.word,
            ),
        ));
    }
    report
}

/// How much dynamic TB-redundancy the static `skippable` set leaves on the
/// table under one launch.
#[derive(Debug, Clone, Default)]
pub struct Headroom {
    /// Register-writing, non-atomic pcs the static plan does *not* skip
    /// whose destination vectors nevertheless matched across all warps in
    /// every aligned occurrence group of every TB — candidates a sharper
    /// (still sound) analysis could reclaim.
    pub dynamically_redundant: Vec<usize>,
    /// Register-writing, non-atomic, unskipped pcs that never executed as
    /// an aligned group: the sharing hardware could not have skipped them
    /// regardless of marking, so they bound no analysis improvement.
    pub never_aligned: Vec<usize>,
}

/// Records destination vectors of *every* register-writing instruction
/// (the oracle's observer only records claimed-redundant ones).
struct HeadroomObserver {
    ws: u32,
    num_warps: usize,
    records: HashMap<(usize, u32), Vec<Option<Rec>>>,
}

impl FunctionalObserver for HeadroomObserver {
    fn after_instruction(
        &mut self,
        w: usize,
        pc: usize,
        occurrence: u32,
        instr: &Instruction,
        warp: &gpu_sim::Warp,
    ) {
        let Some(dst) = instr.dst else { return };
        let full = warp.active_mask() == warp.full_mask && warp.full_mask.count_ones() == self.ws;
        let slot = &mut self
            .records
            .entry((pc, occurrence))
            .or_insert_with(|| (0..self.num_warps).map(|_| None).collect())[w];
        *slot = Some(Rec { full, dst: warp.reg_vector(dst) });
    }
}

/// Measures the dynamic-redundancy headroom of the static skip plan:
/// replays every TB of `launch` and classifies each unskipped
/// register-writing pc by whether its aligned occurrence groups were in
/// fact warp-identical. `skippable` is the per-pc static plan (e.g.
/// `simt_compiler::LaunchPlan::skippable`); `memory` is consumed by the
/// replay.
///
/// # Panics
///
/// Panics if `skippable` is shorter than the kernel's instruction count.
#[must_use]
pub fn dynamic_headroom(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    skippable: &[bool],
    mut memory: GlobalMemory,
) -> Headroom {
    let n = ck.kernel.instrs.len();
    assert!(skippable.len() >= n, "one skippable flag per instruction required");
    // dyn_red[pc]: Some(true) while every aligned group matched so far.
    let mut dyn_red: Vec<Option<bool>> = vec![None; n];
    for i in 0..launch.num_blocks() {
        let ctaid = ctaid_at(launch.grid, i);
        let mut obs = HeadroomObserver {
            ws: launch.warp_size,
            num_warps: launch.warps_per_block() as usize,
            records: HashMap::new(),
        };
        run_tb_functional(ck, launch, ctaid, &mut memory, &mut obs);
        for ((pc, _occ), recs) in obs.records {
            if !recs.iter().all(|r| r.as_ref().is_some_and(|r| r.full)) {
                continue;
            }
            let leader = recs[0].as_ref().expect("aligned group has a leader warp");
            let all_match = recs
                .iter()
                .all(|r| r.as_ref().expect("aligned group checked above").dst == leader.dst);
            let e = dyn_red[pc].get_or_insert(true);
            *e = *e && all_match;
        }
    }
    let mut headroom = Headroom::default();
    for pc in 0..n {
        let op = ck.kernel.instrs[pc].op;
        if !op.writes_dst() || matches!(op, Op::Atom(_)) || skippable[pc] {
            continue;
        }
        match dyn_red[pc] {
            Some(true) => headroom.dynamically_redundant.push(pc),
            None => headroom.never_aligned.push(pc),
            Some(false) => {}
        }
    }
    headroom
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_compiler::{AbsClass, Pat};
    use simt_isa::{Dim3, KernelBuilder, MemSpace, SpecialReg, Value};

    /// tid-indexed copy kernel: every marking the compiler emits is sound.
    fn copy_kernel() -> CompiledKernel {
        let mut b = KernelBuilder::new("copy");
        let tx = b.special(SpecialReg::TidX);
        let ty = b.special(SpecialReg::TidY);
        let bx = b.param(2);
        let row = b.imul(ty, bx);
        let idx = b.iadd(row, tx);
        let off = b.shl_imm(idx, 2);
        let src = b.param(0);
        let dst = b.param(1);
        let a0 = b.iadd(src, off);
        let a1 = b.iadd(dst, off);
        let v = b.load(MemSpace::Global, a0, 0);
        b.store(MemSpace::Global, a1, v, 0);
        simt_compiler::compile(b.finish())
    }

    fn copy_launch(ck: &CompiledKernel) -> (LaunchConfig, GlobalMemory, u64, u64) {
        let block = Dim3::two_d(16, 16);
        let n: u32 = 16 * 16;
        let mut mem = GlobalMemory::new();
        let src = mem.alloc(u64::from(n) * 4);
        let dst = mem.alloc(u64::from(n) * 4);
        for i in 0..n {
            mem.write_u32(src + u64::from(i) * 4, i.wrapping_mul(2654435761));
        }
        let launch = LaunchConfig::new(1u32, block).with_params(vec![
            Value(src as u32),
            Value(dst as u32),
            Value(16),
        ]);
        assert!(launch.promotes_conditional_redundancy());
        let _ = ck;
        (launch, mem, src, dst)
    }

    #[test]
    fn honest_markings_pass_the_oracle() {
        let ck = copy_kernel();
        let (launch, mem, _, _) = copy_launch(&ck);
        // The tid chain is conditionally redundant and promoted here, so
        // the oracle really exercises the comparison path.
        assert!(ck.markings.contains(&Marking::ConditionallyRedundant), "{:?}", ck.markings);
        let r = check(&ck, &launch, mem);
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn oracle_still_executes_the_kernel_faithfully() {
        let ck = copy_kernel();
        let (launch, mem, src, dst) = copy_launch(&ck);
        // check() consumes the memory, so re-run and inspect via a fresh
        // copy it returns nothing from; instead run the oracle on a clone
        // and the plain executor on the original to compare one cell.
        let r = check(&ck, &launch, mem.clone());
        assert!(r.is_clean(), "{}", r.render());
        let mut mem2 = mem;
        gpu_sim::run_tb_functional(
            &ck,
            &launch,
            Dim3::three_d(0, 0, 0),
            &mut mem2,
            &mut gpu_sim::NullObserver,
        );
        assert_eq!(mem2.read_u32(dst + 4 * 37), mem2.read_u32(src + 4 * 37));
    }

    /// The acceptance-criteria fixture: a genuinely warp-varying
    /// instruction whose marking is flipped from `Vector` to `Redundant`.
    #[test]
    fn mis_marked_vector_instruction_is_caught() {
        let mut b = KernelBuilder::new("mis-marked");
        let ctr = b.param(0);
        let out = b.param(1);
        // Atomic old values differ per lane and per warp.
        let old = b.atom(simt_isa::AtomOp::Add, ctr, 1u32);
        let biased = b.iadd(old, 100u32); // honest marking: Vector
        let tx = b.special(SpecialReg::TidX);
        let off = b.shl_imm(tx, 2);
        let addr = b.iadd(out, off);
        b.store(MemSpace::Global, addr, biased, 0);
        let mut ck = simt_compiler::compile(b.finish());

        // pc 0/1 are the param loads, pc 2 the atomic, pc 3 the add.
        let biased_pc = 3;
        assert_eq!(
            ck.markings[biased_pc],
            Marking::Vector,
            "fixture expects the atomic-derived add to be a vector marking\n{}",
            ck.annotated_disassembly()
        );

        let mut mem = GlobalMemory::new();
        let ctr_buf = mem.alloc(4);
        let out_buf = mem.alloc(64 * 4);
        let launch = LaunchConfig::new(1u32, Dim3::one_d(64))
            .with_params(vec![Value(ctr_buf as u32), Value(out_buf as u32)]);

        // Honest binary: clean.
        let r = check(&ck, &launch, mem.clone());
        assert!(r.items.is_empty(), "{}", r.render());

        // Tampered binary: the sanitizer must fail it.
        ck.markings[biased_pc] = Marking::Redundant;
        let r = check(&ck, &launch, mem);
        let hits = r.with_code(LintCode::UnsoundMarking);
        assert_eq!(hits.len(), 1, "{}", r.render());
        assert_eq!(hits[0].pc, Some(biased_pc));
        assert!(!r.is_clean());
    }

    #[test]
    fn unsound_promotion_is_caught_as_v202() {
        // tid.y varies across warps of a 16x16 block (each warp covers one
        // row). Tamper its class and marking to conditionally redundant:
        // the 2D launch check passes, the promotion is unsound.
        let mut b = KernelBuilder::new("bad-promo");
        let ty = b.special(SpecialReg::TidY);
        let out = b.param(0);
        let tx = b.special(SpecialReg::TidX);
        let off = b.shl_imm(tx, 2);
        let addr = b.iadd(out, off);
        b.store(MemSpace::Global, addr, ty, 0);
        let mut ck = simt_compiler::compile(b.finish());

        let ty_pc = 0;
        ck.classes[ty_pc] = AbsClass { red: Red::CondRedundant, pat: Pat::Uniform };
        ck.markings[ty_pc] = Marking::ConditionallyRedundant;

        let mut mem = GlobalMemory::new();
        let out_buf = mem.alloc(16 * 4);
        let launch =
            LaunchConfig::new(1u32, Dim3::two_d(16, 16)).with_params(vec![Value(out_buf as u32)]);
        assert!(launch.promotes_conditional_redundancy());
        assert!(!promotes_tid_y(&launch));

        let r = check(&ck, &launch, mem);
        let hits = r.with_code(LintCode::UnsoundPromotion);
        assert_eq!(hits.len(), 1, "{}", r.render());
        assert_eq!(hits[0].pc, Some(ty_pc));
    }

    #[test]
    fn dynamic_race_fires_v303_and_downgrades_the_tainted_redundant_load() {
        // Every thread stores tid.x to shared word 0 (a write/write race),
        // then after a barrier every thread loads word 0. The load has a
        // uniform address, so the compiler honestly marks it definitely
        // redundant — and indeed every warp reads the same value in this
        // replay. The sanitizer must still fail it: the value depends on
        // which thread's store won.
        let mut b = KernelBuilder::new("racy_reduce");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(16);
        b.store(MemSpace::Shared, smem, t, 0);
        b.barrier();
        let v = b.load(MemSpace::Shared, smem, 0);
        let out = b.param(0);
        let off = b.shl_imm(t, 2);
        let addr = b.iadd(out, off);
        b.store(MemSpace::Global, addr, v, 0);
        let ck = simt_compiler::compile(b.finish());

        let load_pc = ck
            .kernel
            .instrs
            .iter()
            .position(|i| matches!(i.op, Op::Ld(MemSpace::Shared)))
            .expect("kernel has a shared load");
        assert_eq!(
            ck.markings[load_pc],
            Marking::Redundant,
            "fixture expects the uniform shared load to be marked redundant\n{}",
            ck.annotated_disassembly()
        );

        let mut mem = GlobalMemory::new();
        let out_buf = mem.alloc(64 * 4);
        let launch =
            LaunchConfig::new(1u32, Dim3::one_d(64)).with_params(vec![Value(out_buf as u32)]);
        let r = check(&ck, &launch, mem);

        let v303 = r.with_code(LintCode::SharedRaceDynamic);
        assert_eq!(v303.len(), 1, "{}", r.render());
        let downgrades = r.with_code(LintCode::UnsoundMarking);
        assert!(
            downgrades.iter().any(|d| d.pc == Some(load_pc)),
            "tainted redundant load was not downgraded:\n{}",
            r.render()
        );
    }

    #[test]
    fn race_free_shared_exchange_reports_no_v30x() {
        // Thread t writes word t, barrier, reads word 63-t: disjoint
        // footprints per epoch, so the sanitizer must stay silent.
        let mut b = KernelBuilder::new("clean_exchange");
        let t = b.special(SpecialReg::TidX);
        let smem = b.alloc_shared(64 * 4);
        let off = b.shl_imm(t, 2);
        let waddr = b.iadd(off, smem);
        b.store(MemSpace::Shared, waddr, t, 0);
        b.barrier();
        let neg = b.isub(252u32, off);
        let raddr = b.iadd(neg, smem);
        let v = b.load(MemSpace::Shared, raddr, 0);
        let out = b.param(0);
        let gaddr = b.iadd(out, off);
        b.store(MemSpace::Global, gaddr, v, 0);
        let ck = simt_compiler::compile(b.finish());

        let mut mem = GlobalMemory::new();
        let out_buf = mem.alloc(64 * 4);
        let launch =
            LaunchConfig::new(1u32, Dim3::one_d(64)).with_params(vec![Value(out_buf as u32)]);
        let r = check(&ck, &launch, mem);
        assert!(r.with_code(LintCode::SharedRaceDynamic).is_empty(), "{}", r.render());
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn headroom_counts_dynamically_uniform_unskipped_pcs() {
        // A guarded mov into a never-written register under a uniform
        // guard: the baseline analysis folds in the entry-undef contents
        // and marks the chain vector (unskippable), but every warp
        // computes identical vectors — measurable headroom.
        let mut b = KernelBuilder::new("headroom");
        let c = b.param(0);
        let p = b.setp(simt_isa::CmpOp::Lt, c, 100u32);
        let dst = b.alloc();
        b.emit(
            Instruction::new(Op::Mov, Some(dst), None, vec![simt_isa::Operand::Imm(7)])
                .with_guard(simt_isa::Guard::if_true(p)),
        );
        let y = b.iadd(dst, 5u32);
        let t = b.special(SpecialReg::TidX);
        let off = b.shl_imm(t, 2);
        let out = b.param(1);
        let addr = b.iadd(out, off);
        b.store(MemSpace::Global, addr, y, 0);
        let ck = simt_compiler::compile(b.finish());

        let add_pc = 3;
        assert_eq!(ck.markings[add_pc], Marking::Vector, "{}", ck.annotated_disassembly());

        let mut mem = GlobalMemory::new();
        let out_buf = mem.alloc(64 * 4);
        let launch = LaunchConfig::new(1u32, Dim3::one_d(64))
            .with_params(vec![Value(5), Value(out_buf as u32)]);
        let plan = simt_compiler::LaunchPlan::new(&ck, &launch);
        let h = dynamic_headroom(&ck, &launch, &plan.skippable, mem);
        assert!(h.dynamically_redundant.contains(&add_pc), "{h:?}");
        assert!(h.never_aligned.is_empty(), "{h:?}");
    }

    #[test]
    fn headroom_is_zero_when_the_plan_already_skips_everything_uniform() {
        let ck = copy_kernel();
        let (launch, mem, _, _) = copy_launch(&ck);
        let plan = simt_compiler::LaunchPlan::new(&ck, &launch);
        let h = dynamic_headroom(&ck, &launch, &plan.skippable, mem);
        assert!(h.dynamically_redundant.is_empty(), "{h:?}");
    }

    #[test]
    fn unpromoted_conditional_marking_is_not_checked() {
        // In a 1D 256-thread block the launch check fails: conditionally
        // redundant instructions execute per-warp, so warp-varying results
        // are expected and must not be reported.
        let ck = copy_kernel();
        let mut mem = GlobalMemory::new();
        let src = mem.alloc(256 * 4);
        let dst = mem.alloc(256 * 4);
        let launch = LaunchConfig::new(1u32, Dim3::one_d(256)).with_params(vec![
            Value(src as u32),
            Value(dst as u32),
            Value(256),
        ]);
        assert!(!launch.promotes_conditional_redundancy());
        let r = check(&ck, &launch, mem);
        assert!(r.items.is_empty(), "{}", r.render());
    }
}
