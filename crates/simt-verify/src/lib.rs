//! `simt-verify`: a static kernel verifier and marking-soundness
//! sanitizer for the DARSIE toolchain.
//!
//! DARSIE's correctness hinges on the compiler's *definitely /
//! conditionally redundant* markings being sound: a wrongly marked
//! instruction silently corrupts follower warps through the
//! rename-sharing hardware. This crate makes every kernel, workload and
//! compiler change self-checking with three independent analysis passes
//! over [`simt_compiler::CompiledKernel`]:
//!
//! 1. **Dataflow checking** ([`dataflow`]) — definite and potential
//!    reads of uninitialized registers / predicates on any path,
//!    unreachable basic blocks, and register / predicate writes no path
//!    ever observes.
//! 2. **Divergence-safety linting** ([`divergence`]) — `bar.sync`
//!    instructions reachable between a potentially divergent branch and
//!    its reconvergence point, where barrier arrival becomes
//!    thread-dependent, plus guarded barriers. Reuses the compiler's
//!    reconvergence table and predicate-uniformity classes.
//! 3. **Marking-soundness sanitizing** ([`oracle`]) — a differential
//!    oracle that replays the kernel per-warp on the headless functional
//!    executor and demands that every instruction marked
//!    `Marking::Redundant` (and every launch-promoted `CondRedundant`)
//!    produced bit-identical result vectors in all warps of every
//!    threadblock — the analog of a race detector for DARSIE's
//!    value sharing.
//! 4. **Shared-memory race detection** ([`races`] + the dynamic sanitizer
//!    wired into [`oracle`]) — a static affine-interval pass proving
//!    barrier-epoch race freedom of shared accesses, backed by a
//!    shadow-memory sanitizer during the oracle's functional replay.
//!    Races make TB-redundancy interleaving-dependent, so the oracle also
//!    downgrades redundancy claims that read race-tainted words.
//!
//! Every finding is a [`Diagnostic`] with a stable lint code (`V0xx`
//! dataflow, `V1xx` divergence, `V2xx` marking soundness, `V3xx` shared
//! memory races, `P1xx` memory performance — see [`perf`]) and a severity;
//! [`Diagnostics`] aggregates them into a report. The `darsie-sim verify`
//! subcommand runs all three passes over the shipped workloads.

pub mod cost;
pub mod dataflow;
pub mod divergence;
pub mod oracle;
pub mod perf;
pub mod races;
pub mod symex;

use gpu_sim::GlobalMemory;
use simt_compiler::CompiledKernel;
use simt_isa::LaunchConfig;
use std::fmt;

/// How bad a finding is. `Error` findings fail verification; warnings and
/// notes are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational observation.
    Note,
    /// Suspicious but not provably wrong (e.g. a value defined on only
    /// some paths — the undefined path reads architectural zero).
    Warning,
    /// Provably inconsistent kernel or unsound marking.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable lint codes. The numeric bands group the passes: `V0xx`
/// dataflow, `V1xx` divergence safety, `V2xx` marking soundness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// `V001` — a register or predicate is read but no path from entry
    /// defines it.
    UninitRead,
    /// `V002` — a register or predicate is read but only some paths from
    /// entry define it.
    MaybeUninitRead,
    /// `V003` — a basic block is unreachable from the kernel entry.
    UnreachableBlock,
    /// `V004` — a register or predicate write is never observed by any
    /// subsequent read on any path.
    DeadWrite,
    /// `V101` — a `bar.sync` sits between a potentially divergent branch
    /// and its reconvergence point.
    BarrierUnderDivergence,
    /// `V102` — a `bar.sync` carries a guard predicate.
    PredicatedBarrier,
    /// `V201` — an instruction marked definitely redundant produced
    /// different result vectors across warps of one TB.
    UnsoundMarking,
    /// `V202` — a conditionally redundant instruction, promoted by this
    /// launch's dimensionality check, produced different result vectors
    /// across warps of one TB.
    UnsoundPromotion,
    /// `V301` — two shared-memory accesses (at least one store) provably
    /// overlap across distinct threads within one barrier interval.
    SharedRaceStatic,
    /// `V302` — a shared-memory access's address is not thread-affine (or
    /// an overlap is undecidable), so race freedom cannot be established
    /// statically.
    SharedAddrUnknown,
    /// `V303` — the dynamic sanitizer observed two threads touching one
    /// shared word in the same barrier epoch, at least one a write.
    SharedRaceDynamic,
    /// `P101` — a shared-memory access provably serializes over more than
    /// one bank pass in every execution.
    SharedBankConflict,
    /// `P102` — a global access provably touches more 128-byte lines per
    /// execution than a perfectly coalesced access of the same width.
    GlobalUncoalesced,
    /// `P103` — a memory access has no static performance bound (address
    /// or execution mask is not exactly thread-affine).
    MemUnpredictable,
    /// `S401` — symbolic execution disproved a redundancy marking for
    /// some launch of the 2D family, with a replay-confirmed concrete
    /// counterexample (TB dimensions plus inputs).
    DisprovedMarking,
    /// `S402` — a redundancy or uniformity claim could not be proved for
    /// the whole launch family (symbolic budget exhausted or the value
    /// escapes the term domain); conservative warning.
    UnprovableMarking,
    /// `S403` — a branch the classes declare skippable (TB-uniform) has a
    /// predicate that provably diverges across threads for some launch of
    /// the promotion family, breaking the single-control-flow-history
    /// requirement.
    BranchSyncViolation,
    /// `E201` — a natural loop's trip count has no static bound under
    /// this launch (non-affine counter, data-dependent exit, or no exit
    /// within the search cap), so the cycle upper bound is unbounded.
    TripUnbounded,
    /// `E202` — differential validation found a measured cycle count
    /// outside the static `[min, max]` bracket: the cost model or the
    /// simulator is wrong.
    CycleBoundViolation,
}

impl LintCode {
    /// The stable code string used in reports and tests.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UninitRead => "V001",
            LintCode::MaybeUninitRead => "V002",
            LintCode::UnreachableBlock => "V003",
            LintCode::DeadWrite => "V004",
            LintCode::BarrierUnderDivergence => "V101",
            LintCode::PredicatedBarrier => "V102",
            LintCode::UnsoundMarking => "V201",
            LintCode::UnsoundPromotion => "V202",
            LintCode::SharedRaceStatic => "V301",
            LintCode::SharedAddrUnknown => "V302",
            LintCode::SharedRaceDynamic => "V303",
            LintCode::SharedBankConflict => "P101",
            LintCode::GlobalUncoalesced => "P102",
            LintCode::MemUnpredictable => "P103",
            LintCode::DisprovedMarking => "S401",
            LintCode::UnprovableMarking => "S402",
            LintCode::BranchSyncViolation => "S403",
            LintCode::TripUnbounded => "E201",
            LintCode::CycleBoundViolation => "E202",
        }
    }

    /// Fixed severity of this lint.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UninitRead
            | LintCode::BarrierUnderDivergence
            | LintCode::PredicatedBarrier
            | LintCode::UnsoundMarking
            | LintCode::UnsoundPromotion
            | LintCode::SharedRaceStatic
            | LintCode::SharedRaceDynamic
            | LintCode::DisprovedMarking
            | LintCode::BranchSyncViolation
            | LintCode::CycleBoundViolation => Severity::Error,
            LintCode::MaybeUninitRead | LintCode::UnreachableBlock => Severity::Warning,
            LintCode::DeadWrite | LintCode::SharedAddrUnknown => Severity::Warning,
            LintCode::SharedBankConflict | LintCode::GlobalUncoalesced => Severity::Warning,
            LintCode::UnprovableMarking | LintCode::TripUnbounded => Severity::Warning,
            LintCode::MemUnpredictable => Severity::Note,
        }
    }

    /// Every lint, in report order. The `darsie-sim lints` registry and
    /// the README-drift test iterate this, so adding a variant without
    /// extending it is a compile error (the length is checked too).
    pub const ALL: [LintCode; 19] = [
        LintCode::UninitRead,
        LintCode::MaybeUninitRead,
        LintCode::UnreachableBlock,
        LintCode::DeadWrite,
        LintCode::BarrierUnderDivergence,
        LintCode::PredicatedBarrier,
        LintCode::UnsoundMarking,
        LintCode::UnsoundPromotion,
        LintCode::SharedRaceStatic,
        LintCode::SharedAddrUnknown,
        LintCode::SharedRaceDynamic,
        LintCode::SharedBankConflict,
        LintCode::GlobalUncoalesced,
        LintCode::MemUnpredictable,
        LintCode::DisprovedMarking,
        LintCode::UnprovableMarking,
        LintCode::BranchSyncViolation,
        LintCode::TripUnbounded,
        LintCode::CycleBoundViolation,
    ];

    /// The pass that emits this lint (the README table's "Pass" column).
    #[must_use]
    pub fn pass(self) -> &'static str {
        match self {
            LintCode::UninitRead
            | LintCode::MaybeUninitRead
            | LintCode::UnreachableBlock
            | LintCode::DeadWrite => "dataflow",
            LintCode::BarrierUnderDivergence | LintCode::PredicatedBarrier => "divergence",
            LintCode::UnsoundMarking | LintCode::UnsoundPromotion => "oracle",
            LintCode::SharedRaceStatic
            | LintCode::SharedAddrUnknown
            | LintCode::SharedRaceDynamic => "races",
            LintCode::SharedBankConflict
            | LintCode::GlobalUncoalesced
            | LintCode::MemUnpredictable => "perf",
            LintCode::DisprovedMarking
            | LintCode::UnprovableMarking
            | LintCode::BranchSyncViolation => "symex",
            LintCode::TripUnbounded | LintCode::CycleBoundViolation => "cost",
        }
    }

    /// One-line documentation rendered by `darsie-sim lints`.
    #[must_use]
    pub fn doc(self) -> &'static str {
        match self {
            LintCode::UninitRead => "register or predicate read that no path defines",
            LintCode::MaybeUninitRead => "register or predicate defined on only some paths",
            LintCode::UnreachableBlock => "basic block unreachable from the kernel entry",
            LintCode::DeadWrite => "register or predicate write no path ever reads",
            LintCode::BarrierUnderDivergence => {
                "bar.sync between a potentially divergent branch and its reconvergence point"
            }
            LintCode::PredicatedBarrier => "bar.sync carries a guard predicate",
            LintCode::UnsoundMarking => {
                "definitely redundant instruction produced different vectors across warps"
            }
            LintCode::UnsoundPromotion => {
                "launch-promoted conditionally redundant instruction diverged across warps"
            }
            LintCode::SharedRaceStatic => {
                "shared-memory accesses provably overlap across threads in one barrier interval"
            }
            LintCode::SharedAddrUnknown => {
                "shared-memory race freedom undecidable (address not thread-affine)"
            }
            LintCode::SharedRaceDynamic => {
                "sanitizer observed two threads touching one shared word in one epoch"
            }
            LintCode::SharedBankConflict => "shared access provably serializes over bank passes",
            LintCode::GlobalUncoalesced => "global access touches more lines than a coalesced one",
            LintCode::MemUnpredictable => "memory access has no static performance bound",
            LintCode::DisprovedMarking => {
                "symbolic execution disproved a marking with a replay-confirmed counterexample"
            }
            LintCode::UnprovableMarking => {
                "claim not provable for the whole launch family (budget or non-affine escape)"
            }
            LintCode::BranchSyncViolation => {
                "skippable branch predicate provably diverges for some family launch"
            }
            LintCode::TripUnbounded => {
                "loop trip count has no static bound, so the cycle bracket is one-sided"
            }
            LintCode::CycleBoundViolation => {
                "measured cycles fall outside the static [min, max] bracket"
            }
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Static instruction index the finding anchors to, when applicable.
    pub pc: Option<usize>,
    /// Human-readable description with the evidence.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity is derived from the code.
    #[must_use]
    pub fn new(code: LintCode, pc: Option<usize>, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, severity: code.severity(), pc, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "{} [{}] pc {}: {}", self.severity, self.code, pc, self.message),
            None => write!(f, "{} [{}]: {}", self.severity, self.code, self.message),
        }
    }
}

/// Aggregated report of every pass run against one kernel.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// Name of the verified kernel.
    pub kernel: String,
    /// All findings, in pass order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Empty report for `kernel`.
    #[must_use]
    pub fn new(kernel: impl Into<String>) -> Diagnostics {
        Diagnostics { kernel: kernel.into(), items: Vec::new() }
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Appends every finding of `other` (same kernel, later pass).
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.items.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// True when no error-severity finding exists.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Findings with the given code, in order.
    #[must_use]
    pub fn with_code(&self, code: LintCode) -> Vec<&Diagnostic> {
        self.items.iter().filter(|d| d.code == code).collect()
    }

    /// Renders the report, one finding per line, with a totals footer.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "verify {}:", self.kernel);
        for d in &self.items {
            let _ = writeln!(out, "  {d}");
        }
        let _ =
            writeln!(out, "  {} error(s), {} warning(s)", self.error_count(), self.warning_count());
        out
    }
}

/// Runs the two static passes (dataflow + divergence lint) without launch
/// information: promotion is not applied, so conditionally redundant
/// guards count as potentially divergent.
#[must_use]
pub fn verify_static(ck: &CompiledKernel) -> Diagnostics {
    let mut report = Diagnostics::new(ck.kernel.name.clone());
    report.merge(dataflow::check(ck));
    report.merge(divergence::check(ck, None));
    report
}

/// Runs the two static passes with this launch's dimensionality promotion
/// applied to the uniformity classes.
#[must_use]
pub fn verify_launch(ck: &CompiledKernel, launch: &LaunchConfig) -> Diagnostics {
    let mut report = Diagnostics::new(ck.kernel.name.clone());
    report.merge(dataflow::check(ck));
    report.merge(divergence::check(ck, Some(launch)));
    report
}

/// Runs every pass: the static checks, the static shared-memory race
/// detector for this launch's block shape, and the differential marking
/// oracle (with its dynamic race sanitizer) over `memory` (consumed; the
/// oracle executes the kernel).
#[must_use]
pub fn verify_full(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    memory: GlobalMemory,
) -> Diagnostics {
    let mut report = verify_launch(ck, launch);
    report.merge(races::check(ck, launch));
    report.merge(cost::check(ck, launch));
    report.merge(symex::check(ck, launch, &memory));
    report.merge(oracle::check(ck, launch, memory));
    report
}
