//! Pass 1: def-before-use and dead-write checking over the compiler's
//! CFG.
//!
//! A forward must/may-initialization analysis finds reads of registers
//! and predicates that no path (V001, error) or only some paths (V002,
//! warning — the untaken path reads architectural zero) define before
//! use, plus unreachable basic blocks (V003). A backward liveness
//! analysis finds register and predicate writes that no path ever
//! observes (V004).
//!
//! Guarded (predicated) instructions merge with the old destination value
//! lane-wise, so a guarded write counts as a *may*-definition only and
//! never kills liveness of the previous value.

use crate::{Diagnostic, Diagnostics, LintCode};
use simt_compiler::CompiledKernel;
use simt_isa::{Op, Pred, Reg};

/// Dense bitset over `regs + preds` slots.
#[derive(Clone, PartialEq, Eq)]
struct Bits(Vec<u64>);

impl Bits {
    fn empty(n: usize) -> Bits {
        Bits(vec![0; n.div_ceil(64)])
    }
    fn full(n: usize) -> Bits {
        let mut b = Bits(vec![u64::MAX; n.div_ceil(64)]);
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = b.0.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        b
    }
    fn get(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    fn and_with(&mut self, other: &Bits) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a &= b;
        }
    }
    fn or_with(&mut self, other: &Bits) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// Slot index of a register in the combined reg+pred domain.
fn reg_slot(r: Reg) -> usize {
    usize::from(r.0)
}

/// What one instruction touches, in dataflow terms.
struct Access {
    reads: Vec<usize>,
    /// `(slot, guarded)` — guarded defs are may-only and don't kill.
    defs: Vec<(usize, bool)>,
}

fn access(instr: &simt_isa::Instruction, nregs: usize) -> Access {
    let mut reads: Vec<usize> = instr.src_regs().map(reg_slot).collect();
    if let Some(g) = instr.guard {
        reads.push(nregs + usize::from(g.pred.0));
    }
    if let Op::Sel(p) = instr.op {
        reads.push(nregs + usize::from(p.0));
    }
    let guarded = instr.guard.is_some();
    let mut defs = Vec::new();
    if let Some(d) = instr.dst {
        defs.push((reg_slot(d), guarded));
    }
    if let Some(p) = instr.pdst {
        defs.push((nregs + usize::from(p.0), guarded));
    }
    Access { reads, defs }
}

fn slot_name(slot: usize, nregs: usize) -> String {
    if slot < nregs {
        format!("R{slot}")
    } else {
        format!("P{}", slot - nregs)
    }
}

/// Runs the dataflow checks and returns their findings.
#[must_use]
pub fn check(ck: &CompiledKernel) -> Diagnostics {
    let kernel = &ck.kernel;
    let cfg = &ck.cfg;
    let nregs = usize::from(kernel.num_regs);
    let npreds = usize::from(simt_isa::reg::NUM_PREDS);
    let n = nregs + npreds;
    let nblocks = cfg.blocks.len();
    let mut report = Diagnostics::new(kernel.name.clone());

    // --- Reachability (V003) ---
    let mut reachable = vec![false; nblocks];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b], true) {
            continue;
        }
        stack.extend(cfg.blocks[b].succs.iter().copied());
    }
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reachable[b] && !block.is_empty() {
            report.push(Diagnostic::new(
                LintCode::UnreachableBlock,
                Some(block.start),
                format!(
                    "block {} (instructions {}..{}) is unreachable from the kernel entry",
                    b, block.start, block.end
                ),
            ));
        }
    }

    // --- Forward must/may-initialization (V001, V002) ---
    let rpo = cfg.reverse_post_order();
    let mut out_must: Vec<Bits> = vec![Bits::full(n); nblocks];
    let mut out_may: Vec<Bits> = vec![Bits::empty(n); nblocks];
    let entry = 0usize;
    let block_in = |b: usize,
                    out_must: &[Bits],
                    out_may: &[Bits],
                    reachable: &[bool],
                    cfg: &simt_compiler::Cfg| {
        let mut in_must = if b == entry { Bits::empty(n) } else { Bits::full(n) };
        let mut in_may = Bits::empty(n);
        for &p in &cfg.blocks[b].preds {
            if !reachable[p] {
                continue;
            }
            in_must.and_with(&out_must[p]);
            in_may.or_with(&out_may[p]);
        }
        if b == entry {
            // The entry has no initialized state even if a back-edge
            // targets instruction 0.
            in_must = Bits::empty(n);
        }
        (in_must, in_may)
    };
    loop {
        let mut changed = false;
        for &b in &rpo {
            if !reachable[b] {
                continue;
            }
            let (mut must, mut may) = block_in(b, &out_must, &out_may, &reachable, cfg);
            for pc in cfg.blocks[b].range() {
                for (slot, guarded) in access(&kernel.instrs[pc], nregs).defs {
                    may.set(slot);
                    if !guarded {
                        must.set(slot);
                    }
                }
            }
            if must != out_must[b] || may != out_may[b] {
                out_must[b] = must;
                out_may[b] = may;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Reporting pass with the converged in-sets.
    for &b in &rpo {
        if !reachable[b] {
            continue;
        }
        let (mut must, mut may) = block_in(b, &out_must, &out_may, &reachable, cfg);
        for pc in cfg.blocks[b].range() {
            let acc = access(&kernel.instrs[pc], nregs);
            for &slot in &acc.reads {
                if !may.get(slot) {
                    report.push(Diagnostic::new(
                        LintCode::UninitRead,
                        Some(pc),
                        format!(
                            "{} is read by `{}` but no path from entry defines it",
                            slot_name(slot, nregs),
                            kernel.instrs[pc]
                        ),
                    ));
                } else if !must.get(slot) {
                    report.push(Diagnostic::new(
                        LintCode::MaybeUninitRead,
                        Some(pc),
                        format!(
                            "{} is read by `{}` but only some paths from entry define it",
                            slot_name(slot, nregs),
                            kernel.instrs[pc]
                        ),
                    ));
                }
            }
            for (slot, guarded) in acc.defs {
                may.set(slot);
                if !guarded {
                    must.set(slot);
                }
            }
        }
    }

    // --- Backward liveness (V004) ---
    let mut in_live: Vec<Bits> = vec![Bits::empty(n); nblocks];
    let back_transfer = |b: usize, in_live: &[Bits], cfg: &simt_compiler::Cfg| {
        let mut live = Bits::empty(n);
        for &s in &cfg.blocks[b].succs {
            live.or_with(&in_live[s]);
        }
        for pc in cfg.blocks[b].range().rev() {
            let acc = access(&kernel.instrs[pc], nregs);
            for &(slot, guarded) in &acc.defs {
                if !guarded {
                    live.clear(slot);
                }
            }
            for &slot in &acc.reads {
                live.set(slot);
            }
        }
        live
    };
    loop {
        let mut changed = false;
        for &b in rpo.iter().rev() {
            if !reachable[b] {
                continue;
            }
            let live = back_transfer(b, &in_live, cfg);
            if live != in_live[b] {
                in_live[b] = live;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for &b in &rpo {
        if !reachable[b] {
            continue;
        }
        let mut live = Bits::empty(n);
        for &s in &cfg.blocks[b].succs {
            live.or_with(&in_live[s]);
        }
        // Reverse scan collecting dead defs against the live-after set.
        let mut dead: Vec<(usize, usize)> = Vec::new();
        for pc in cfg.blocks[b].range().rev() {
            let instr = &kernel.instrs[pc];
            let acc = access(instr, nregs);
            // An atomic's destination is its memory side effect's return
            // value; ignoring it is idiomatic, not a dead write.
            let side_effect_dst = matches!(instr.op, Op::Atom(_));
            for &(slot, guarded) in &acc.defs {
                if !live.get(slot) && !side_effect_dst {
                    dead.push((pc, slot));
                }
                if !guarded {
                    live.clear(slot);
                }
            }
            for &slot in &acc.reads {
                live.set(slot);
            }
        }
        dead.sort_unstable();
        for (pc, slot) in dead {
            report.push(Diagnostic::new(
                LintCode::DeadWrite,
                Some(pc),
                format!(
                    "{} written by `{}` is never observed on any path",
                    slot_name(slot, nregs),
                    kernel.instrs[pc]
                ),
            ));
        }
    }

    report
}

/// Convenience for tests: the slot of a predicate in diagnostics.
#[allow(dead_code)]
fn pred_slot(p: Pred, nregs: usize) -> usize {
    nregs + usize::from(p.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintCode;
    use simt_isa::{CmpOp, Guard, Instruction, Kernel, Operand, SpecialReg};

    fn compile(instrs: Vec<Instruction>) -> CompiledKernel {
        simt_compiler::compile(Kernel::new("t", instrs))
    }

    fn exit() -> Instruction {
        Instruction::new(Op::Exit, None, None, vec![])
    }

    #[test]
    fn clean_straightline_kernel_has_no_findings() {
        let ck = compile(vec![
            Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]),
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(0).into(), Operand::Imm(1)]),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(0).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn uninit_read_is_an_error() {
        let ck = compile(vec![
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(0).into(), Operand::Imm(1)]),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(1).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        let uninit = r.with_code(LintCode::UninitRead);
        assert_eq!(uninit.len(), 1, "{}", r.render());
        assert_eq!(uninit[0].pc, Some(0));
        assert!(!r.is_clean());
    }

    #[test]
    fn partial_path_definition_is_a_warning() {
        // R1 defined only when P0 holds (branch skips the def otherwise).
        let ck = compile(vec![
            Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]),
            Instruction::new(
                Op::Setp(CmpOp::Eq),
                None,
                Some(Pred(0)),
                vec![Reg(0).into(), Operand::Imm(0)],
            ),
            Instruction::new(Op::Bra { target: 4 }, None, None, vec![])
                .with_guard(Guard::if_false(Pred(0))),
            Instruction::new(Op::Mov, Some(Reg(1)), None, vec![Operand::Imm(7)]),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(0).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        assert!(r.is_clean(), "{}", r.render());
        let maybe = r.with_code(LintCode::MaybeUninitRead);
        assert_eq!(maybe.len(), 1, "{}", r.render());
        assert_eq!(maybe[0].pc, Some(4));
    }

    #[test]
    fn guarded_write_is_a_may_def_only() {
        // A guarded mov does not fully define R1: the subsequent read
        // warns, but is not an error.
        let ck = compile(vec![
            Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]),
            Instruction::new(
                Op::Setp(CmpOp::Eq),
                None,
                Some(Pred(0)),
                vec![Reg(0).into(), Operand::Imm(0)],
            ),
            Instruction::new(Op::Mov, Some(Reg(1)), None, vec![Operand::Imm(7)])
                .with_guard(Guard::if_true(Pred(0))),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(0).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.with_code(LintCode::MaybeUninitRead).len(), 1, "{}", r.render());
    }

    #[test]
    fn dead_write_is_reported() {
        let ck = compile(vec![
            Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]),
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(0).into(), Operand::Imm(1)]),
            exit(),
        ]);
        let r = check(&ck);
        let dead = r.with_code(LintCode::DeadWrite);
        // R1 (the iadd result) is never observed; R0 feeds the iadd.
        assert_eq!(dead.len(), 1, "{}", r.render());
        assert_eq!(dead[0].pc, Some(1));
    }

    #[test]
    fn overwritten_value_is_a_dead_write() {
        let ck = compile(vec![
            Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(1)]),
            Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(2)]),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(0).into(), Reg(0).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        let dead = r.with_code(LintCode::DeadWrite);
        assert_eq!(dead.len(), 1, "{}", r.render());
        assert_eq!(dead[0].pc, Some(0));
    }

    #[test]
    fn unreachable_block_is_reported() {
        let ck = compile(vec![
            Instruction::new(Op::Bra { target: 2 }, None, None, vec![]),
            Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(1)]),
            exit(),
        ]);
        let r = check(&ck);
        let unreachable = r.with_code(LintCode::UnreachableBlock);
        assert_eq!(unreachable.len(), 1, "{}", r.render());
        assert_eq!(unreachable[0].pc, Some(1));
    }

    #[test]
    fn loop_carried_value_is_not_flagged() {
        // R1 initialized before the loop, updated and read inside it.
        let ck = compile(vec![
            Instruction::new(Op::Mov, Some(Reg(1)), None, vec![Operand::Imm(0)]),
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(1).into(), Operand::Imm(1)]),
            Instruction::new(
                Op::Setp(CmpOp::Lt),
                None,
                Some(Pred(0)),
                vec![Reg(1).into(), Operand::Imm(8)],
            ),
            Instruction::new(Op::Bra { target: 1 }, None, None, vec![])
                .with_guard(Guard::if_true(Pred(0))),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(1).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn def_reaching_only_via_back_edge_is_maybe_uninit() {
        // R2 is read at the loop top but defined only later in the body:
        // the definition reaches the read around the back edge, yet the
        // first iteration sees it uninitialized.
        let ck = compile(vec![
            Instruction::new(Op::Mov, Some(Reg(1)), None, vec![Operand::Imm(0)]),
            // loop top: read R2 (defined below, reaches only via back edge)
            Instruction::new(Op::IAdd, Some(Reg(3)), None, vec![Reg(2).into(), Operand::Imm(1)]),
            Instruction::new(Op::Mov, Some(Reg(2)), None, vec![Reg(1).into()]),
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(1).into(), Operand::Imm(1)]),
            Instruction::new(
                Op::Setp(CmpOp::Lt),
                None,
                Some(Pred(0)),
                vec![Reg(1).into(), Operand::Imm(8)],
            ),
            Instruction::new(Op::Bra { target: 1 }, None, None, vec![])
                .with_guard(Guard::if_true(Pred(0))),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(1).into(), Reg(3).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        let maybe = r.with_code(LintCode::MaybeUninitRead);
        assert_eq!(maybe.len(), 1, "{}", r.render());
        assert_eq!(maybe[0].pc, Some(1));
        assert!(r.with_code(LintCode::UninitRead).is_empty(), "{}", r.render());
    }

    #[test]
    fn barrier_inside_loop_body_keeps_loop_carried_defs_clean() {
        // Same loop-carried accumulator shape, but with a `bar.sync`
        // splitting the body: the barrier must not perturb reaching
        // definitions or observability around the back edge.
        let ck = compile(vec![
            Instruction::new(Op::Mov, Some(Reg(1)), None, vec![Operand::Imm(0)]),
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(1).into(), Operand::Imm(1)]),
            Instruction::new(Op::Bar, None, None, vec![]),
            Instruction::new(Op::IAdd, Some(Reg(2)), None, vec![Reg(1).into(), Operand::Imm(4)]),
            Instruction::new(
                Op::Setp(CmpOp::Lt),
                None,
                Some(Pred(0)),
                vec![Reg(1).into(), Operand::Imm(8)],
            ),
            Instruction::new(Op::Bra { target: 1 }, None, None, vec![])
                .with_guard(Guard::if_true(Pred(0))),
            Instruction::new(
                Op::St(simt_isa::MemSpace::Global),
                None,
                None,
                vec![Reg(2).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        assert!(r.items.is_empty(), "{}", r.render());
    }

    #[test]
    fn atomic_result_may_be_ignored() {
        let ck = compile(vec![
            Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(64)]),
            Instruction::new(Op::Mov, Some(Reg(1)), None, vec![Operand::Imm(1)]),
            Instruction::new(
                Op::Atom(simt_isa::AtomOp::Add),
                Some(Reg(2)),
                None,
                vec![Reg(0).into(), Reg(1).into()],
            ),
            exit(),
        ]);
        let r = check(&ck);
        assert!(r.with_code(LintCode::DeadWrite).is_empty(), "{}", r.render());
    }
}
