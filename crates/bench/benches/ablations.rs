//! Design-choice ablations called out in DESIGN.md: register versioning
//! vs write-synchronization, skip-table sizing, coalescer ports, rename
//! pool size, and warp-scheduler policy.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie::DarsieConfig;
use darsie_bench::{eval_gpu, gmean};
use gpu_sim::{SchedulerPolicy, Technique};
use workloads::{catalog, Scale};

fn sweep(label: &str, cfg: &gpu_sim::GpuConfig, tech: Technique) {
    let speedups: Vec<f64> = catalog(Scale::Test)
        .iter()
        .filter(|w| w.is_2d)
        .map(|w| {
            let base = w.run_unchecked(cfg, Technique::Base).cycles as f64;
            let t = w.run_unchecked(cfg, tech.clone()).cycles as f64;
            base / t.max(1.0)
        })
        .collect();
    println!("ablation {label:28} gmean-2D speedup {:.3}", gmean(speedups));
}

fn bench(c: &mut Criterion) {
    let cfg = eval_gpu(2);
    // Versioning vs write-synchronization (paper Section 4.1 options).
    sweep("versioning (default)", &cfg, Technique::darsie());
    sweep("no-versioning", &cfg, Technique::Darsie(DarsieConfig::no_versioning()));
    // Skip-table entries per TB.
    for entries in [1usize, 2, 4, 8, 16] {
        let d = DarsieConfig { skip_entries_per_tb: entries, ..DarsieConfig::default() };
        sweep(&format!("skip_entries={entries}"), &cfg, Technique::Darsie(d));
    }
    // PC-coalescer / skip-table ports.
    for ports in [1usize, 2, 4] {
        let d = DarsieConfig { skip_table_ports: ports, ..DarsieConfig::default() };
        sweep(&format!("skip_ports={ports}"), &cfg, Technique::Darsie(d));
    }
    // Rename registers per TB.
    for regs in [8usize, 16, 32] {
        let d = DarsieConfig { rename_regs_per_tb: regs, ..DarsieConfig::default() };
        sweep(&format!("rename_regs={regs}"), &cfg, Technique::Darsie(d));
    }
    // Scheduler policy.
    let lrr = gpu_sim::GpuConfig { scheduler: SchedulerPolicy::Lrr, ..cfg.clone() };
    sweep("scheduler=GTO", &cfg, Technique::darsie());
    sweep("scheduler=LRR", &lrr, Technique::darsie());

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let w = workloads::by_abbr("BP", Scale::Test).expect("BP");
    g.bench_function("bp_darsie_8_entries", |b| {
        b.iter(|| w.run_unchecked(&cfg, Technique::darsie()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
