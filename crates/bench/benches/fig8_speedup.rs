//! Figure 8: speedup of UV / DAC-IDEAL / DARSIE / DARSIE-IGNORE-STORE.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{collect, eval_gpu, fig8_techniques};
use gpu_sim::Technique;
use workloads::Scale;

fn bench(c: &mut Criterion) {
    let cfg = eval_gpu(2);
    println!("{}", collect(Scale::Test, &cfg, &fig8_techniques()).render_fig8());
    let mut g = c.benchmark_group("fig8_speedup");
    g.sample_size(10);
    for tech in [Technique::Base, Technique::darsie()] {
        let w = workloads::by_abbr("MM", Scale::Test).expect("MM");
        g.bench_function(format!("mm_{}", tech.label()), |b| {
            b.iter(|| w.run_unchecked(&cfg, tech.clone()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
