//! Figure 12: synchronization effects (DARSIE-NO-CF-SYNC, SILICON-SYNC).

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{collect, eval_gpu, fig12_techniques};
use gpu_sim::Technique;
use workloads::Scale;

fn bench(c: &mut Criterion) {
    let cfg = eval_gpu(2);
    println!(
        "{}",
        collect(Scale::Test, &cfg, &fig12_techniques())
            .render_speedups("Figure 12: effect of synchronization (speedup over BASE)")
    );
    let mut g = c.benchmark_group("fig12_sync");
    g.sample_size(10);
    let w = workloads::by_abbr("HS", Scale::Test).expect("HS");
    g.bench_function("hs_silicon_sync", |b| {
        b.iter(|| w.run_unchecked(&cfg, Technique::SiliconSync));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
