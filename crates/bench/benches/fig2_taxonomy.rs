//! Figure 2: per-benchmark taxonomy breakdown of TB-redundant work.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{limit_study, render_fig2};
use workloads::Scale;

fn bench(c: &mut Criterion) {
    println!("{}", render_fig2(&limit_study(Scale::Test)));
    let mut g = c.benchmark_group("fig2_taxonomy");
    g.sample_size(10);
    // Per-workload tracing (MM dominates; bench it separately).
    g.bench_function("trace_mm", |b| {
        let w = workloads::by_abbr("MM", Scale::Test).expect("MM");
        b.iter(|| gpu_sim::trace_redundancy(&w.ck, &w.launch, w.memory.clone()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
