//! Figure 1: redundancy limit study at the grid / TB / warp levels.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{limit_study, render_fig1};
use workloads::Scale;

fn bench(c: &mut Criterion) {
    // Print the figure once so `cargo bench` output contains the artifact.
    println!("{}", render_fig1(&limit_study(Scale::Test)));
    let mut g = c.benchmark_group("fig1_limit_study");
    g.sample_size(10);
    g.bench_function("limit_study_test_scale", |b| {
        b.iter(|| limit_study(Scale::Test));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
