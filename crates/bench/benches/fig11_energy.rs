//! Figure 11: energy reduction vs the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{collect, eval_gpu, fig8_techniques};
use gpu_energy::EnergyModel;
use workloads::Scale;

fn bench(c: &mut Criterion) {
    let cfg = eval_gpu(2);
    let report = collect(Scale::Test, &cfg, &fig8_techniques());
    println!("{}", report.render_fig11());
    let mut g = c.benchmark_group("fig11_energy");
    g.sample_size(20);
    let model = EnergyModel::with_sms(cfg.num_sms);
    let base = report.rows[0].stats("BASE").expect("BASE").clone();
    g.bench_function("evaluate_model", |b| {
        b.iter(|| model.evaluate(&base));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
