//! Figure 9: instruction reduction on the 1D benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{collect, eval_gpu, fig8_techniques};
use gpu_sim::Technique;
use workloads::Scale;

fn bench(c: &mut Criterion) {
    let cfg = eval_gpu(2);
    println!("{}", collect(Scale::Test, &cfg, &fig8_techniques()).render_insn_reduction(false));
    let mut g = c.benchmark_group("fig9_insn_reduction_1d");
    g.sample_size(10);
    let w = workloads::by_abbr("LIB", Scale::Test).expect("LIB");
    g.bench_function("lib_darsie", |b| {
        b.iter(|| w.run_unchecked(&cfg, Technique::darsie()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
