//! Figure 10: instruction reduction on the 2D benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use darsie_bench::{collect, eval_gpu, fig8_techniques};
use gpu_sim::Technique;
use workloads::Scale;

fn bench(c: &mut Criterion) {
    let cfg = eval_gpu(2);
    println!("{}", collect(Scale::Test, &cfg, &fig8_techniques()).render_insn_reduction(true));
    let mut g = c.benchmark_group("fig10_insn_reduction_2d");
    g.sample_size(10);
    let w = workloads::by_abbr("CONVTEX", Scale::Test).expect("CONVTEX");
    g.bench_function("convtex_darsie", |b| {
        b.iter(|| w.run_unchecked(&cfg, Technique::darsie()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
