//! Integration tests for the `darsie-sim` CLI: workload-selection
//! robustness (unknown names must fail fast and list the valid ones) and
//! golden schemas for every `--json` document, parsed with a minimal
//! validating JSON reader so a malformed or restructured document fails
//! loudly rather than by substring accident.

use std::collections::BTreeMap;
use std::process::Command;

fn run(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_darsie-sim"))
        .args(args)
        .output()
        .expect("spawn darsie-sim");
    (
        out.status.code(),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

/// A minimal JSON value — the workspace deliberately has no serde, and
/// the CLI emits its documents by hand, so the test parses them by hand
/// too.
#[derive(Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn parse(text: &str) -> Json {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos);
        skip_ws(bytes, &mut pos);
        assert_eq!(pos, bytes.len(), "trailing garbage after JSON document");
        v
    }

    #[track_caller]
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key `{key}`")),
            other => panic!("expected object with `{key}`, got {other:?}"),
        }
    }

    #[track_caller]
    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[track_caller]
    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[track_caller]
    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[track_caller]
    fn bool(&self) -> bool {
        match self {
            Json::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) {
    assert!(b[*pos..].starts_with(lit.as_bytes()), "expected `{lit}` at byte {pos}");
    *pos += lit.len();
}

fn parse_value(b: &[u8], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Json::Obj(m);
            }
            loop {
                skip_ws(b, pos);
                let k = parse_string(b, pos);
                skip_ws(b, pos);
                expect(b, pos, ":");
                let v = parse_value(b, pos);
                assert!(m.insert(k.clone(), v).is_none(), "duplicate key `{k}`");
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Json::Obj(m);
                    }
                    other => panic!("expected `,` or `}}`, got {other:?}"),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut a = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Json::Arr(a);
            }
            loop {
                a.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Json::Arr(a);
                    }
                    other => panic!("expected `,` or `]`, got {other:?}"),
                }
            }
        }
        Some(b'"') => Json::Str(parse_string(b, pos)),
        Some(b't') => {
            expect(b, pos, "true");
            Json::Bool(true)
        }
        Some(b'f') => {
            expect(b, pos, "false");
            Json::Bool(false)
        }
        Some(b'n') => {
            expect(b, pos, "null");
            Json::Null
        }
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).unwrap();
            Json::Num(s.parse().unwrap_or_else(|_| panic!("bad number `{s}`")))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> String {
    expect(b, pos, "\"");
    let mut s = String::new();
    loop {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return s;
            }
            b'\\' => {
                *pos += 1;
                match b[*pos] {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).unwrap();
                        let c = u32::from_str_radix(hex, 16).unwrap();
                        s.push(char::from_u32(c).unwrap());
                        *pos += 4;
                    }
                    e => panic!("unsupported escape `\\{}`", e as char),
                }
                *pos += 1;
            }
            _ => {
                let start = *pos;
                while b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                s.push_str(std::str::from_utf8(&b[start..*pos]).unwrap());
            }
        }
    }
}

/// Every subcommand that selects workloads rejects an unknown
/// `--workload` name with a usage exit and the full list of valid
/// abbreviations so the caller never has to guess.
#[test]
fn unknown_workload_name_fails_and_lists_valid_names() {
    for sub in ["verify", "analyze", "prove", "profile", "estimate", "bench"] {
        let (code, _, err) = run(&[sub, "--workload", "nosuch"]);
        assert_eq!(code, Some(2), "{sub}: exit code");
        assert!(err.contains("unknown workload `nosuch`"), "{sub}: {err}");
        for abbr in ["BIN", "PT", "DCT8x8", "MM"] {
            assert!(err.contains(abbr), "{sub}: `{abbr}` missing from\n{err}");
        }
    }
}

/// Positional abbreviations get the same treatment.
#[test]
fn unknown_positional_abbr_fails_and_lists_valid_names() {
    for sub in ["verify", "analyze", "prove", "profile", "estimate", "bench"] {
        let (code, _, err) = run(&[sub, "NOSUCH"]);
        assert_eq!(code, Some(2), "{sub}: exit code");
        assert!(err.contains("unknown benchmark `NOSUCH`"), "{sub}: {err}");
        assert!(err.contains("BIN"), "{sub}: valid names missing from\n{err}");
    }
}

/// Golden schema for `verify --json`.
#[test]
fn verify_json_schema() {
    let (code, out, _) = run(&["verify", "BIN", "--scale", "test", "--json"]);
    assert_eq!(code, Some(0));
    let doc = Json::parse(out.trim());
    let ws = doc.get("workloads").arr();
    assert_eq!(ws.len(), 1);
    let w = &ws[0];
    assert_eq!(w.get("abbr").str(), "BIN");
    assert!(!w.get("kernel").str().is_empty());
    assert_eq!(w.get("block").arr().len(), 3);
    for d in w.get("diagnostics").arr() {
        d.get("code").str();
        d.get("severity").str();
        d.get("message").str();
        assert!(matches!(d.get("pc"), Json::Num(_) | Json::Null));
    }
    w.get("errors").num();
    w.get("warnings").num();
    assert!(matches!(doc.get("by_code"), Json::Obj(_)));
    assert_eq!(doc.get("total_errors").num(), 0.0);
    doc.get("total_warnings").num();
}

/// Golden schema for `analyze --json`.
#[test]
fn analyze_json_schema() {
    let (code, out, _) = run(&["analyze", "BIN", "--scale", "test", "--json"]);
    assert_eq!(code, Some(0));
    let doc = Json::parse(out.trim());
    let w = &doc.get("workloads").arr()[0];
    assert_eq!(w.get("abbr").str(), "BIN");
    for side in ["baseline", "refined"] {
        let s = w.get(side);
        s.get("vector").num();
        s.get("cond").num();
        s.get("def").num();
        s.get("skippable").num();
    }
    assert!(matches!(w.get("refined").get("upgrades"), Json::Obj(_)));
    assert_eq!(w.get("oracle_errors").num(), 0.0);
    w.get("headroom").get("dynamically_redundant").num();
    w.get("headroom").get("never_aligned").num();
    assert!(matches!(w.get("blame"), Json::Obj(_)));
    let mem = w.get("mem");
    mem.get("accesses").num();
    mem.get("unpredictable").num();
    mem.get("violations").num();
    mem.get("checks").arr();
    mem.get("lints").arr();
    let t = doc.get("totals");
    assert_eq!(t.get("oracle_errors").num(), 0.0);
    assert_eq!(t.get("mem_violations").num(), 0.0);
    t.get("coverage_wins").num();
    t.get("marking_wins").num();
}

/// Golden schema for `prove --json`, plus the headline property: the
/// catalog workload proves every claim with nothing left unknown.
#[test]
fn prove_json_schema() {
    let (code, out, _) = run(&["prove", "BIN", "--scale", "test", "--json"]);
    assert_eq!(code, Some(0));
    let doc = Json::parse(out.trim());
    let w = &doc.get("workloads").arr()[0];
    assert_eq!(w.get("abbr").str(), "BIN");
    assert!(!w.get("kernel").str().is_empty());
    assert_eq!(w.get("block").arr().len(), 3);
    let claims = w.get("value_claims").num() + w.get("branch_claims").num();
    assert!(claims > 0.0);
    assert_eq!(w.get("proved").num(), claims);
    assert_eq!(w.get("disproved").num(), 0.0);
    assert_eq!(w.get("unknown").num(), 0.0);
    assert!(w.get("complete").bool());
    assert_eq!(w.get("diagnostics").arr().len(), 0);
    assert!(matches!(doc.get("by_code"), Json::Obj(_)));
    assert!(doc.get("total_proved").num() > 0.0);
    assert_eq!(doc.get("total_disproved").num(), 0.0);
    assert_eq!(doc.get("total_unknown").num(), 0.0);
    // Per-claim ledger: one entry per obligation, every verdict proved on
    // this catalog workload, reasons null, with deterministic eval costs.
    assert!(w.get("fuel_used").num() > 0.0);
    assert!(w.get("terms").num() > 0.0);
    let ledger = w.get("claims").arr();
    assert_eq!(ledger.len() as f64, claims);
    for c in ledger {
        c.get("pc").num();
        assert!(matches!(c.get("kind").str(), "value" | "branch"));
        assert!(!c.get("family").str().is_empty());
        assert_eq!(c.get("verdict").str(), "proved");
        assert_eq!(*c.get("unknown_reason"), Json::Null);
        c.get("evals").num();
    }
    assert!(matches!(doc.get("unknown_reasons"), Json::Obj(_)));
}

/// `--threads N` must not change the document: the discharge engine
/// shards work but merges results in deterministic claim order, so the
/// JSON output is byte-identical for any thread count.
#[test]
fn prove_threads_output_is_byte_identical() {
    let (code1, base, _) = run(&["prove", "BIN", "MM", "--scale", "test", "--json"]);
    assert_eq!(code1, Some(0));
    for threads in ["1", "2", "7"] {
        let (code, out, err) =
            run(&["prove", "BIN", "MM", "--scale", "test", "--json", "--threads", threads]);
        assert_eq!(code, Some(0));
        assert_eq!(out, base, "--threads {threads} changed the JSON document");
        assert!(err.contains("prover wall time"), "wall time must go to stderr");
    }
}

/// Repeated single-valued flags are usage errors (exit 2), not
/// silently-take-the-last; `--threads` outside `prove` warns and is
/// ignored; a non-positive or malformed `--threads` value exits 2.
#[test]
fn flag_validation_rejects_duplicates_and_bad_thread_counts() {
    for args in [
        &["prove", "BIN", "--scale", "test", "--json", "--json"][..],
        &["prove", "BIN", "--scale", "test", "--scale", "test"][..],
        &["prove", "BIN", "--scale", "test", "--threads", "2", "--threads", "2"][..],
    ] {
        let (code, _, err) = run(args);
        assert_eq!(code, Some(2), "{args:?} must exit 2");
        assert!(err.contains("duplicate"), "{args:?}: {err}");
    }
    for bad in ["0", "-1", "many"] {
        let (code, _, err) = run(&["prove", "BIN", "--scale", "test", "--threads", bad]);
        assert_eq!(code, Some(2), "--threads {bad} must exit 2");
        assert!(err.contains("positive integer"), "--threads {bad}: {err}");
    }
    let (code, _, err) = run(&["verify", "BIN", "--scale", "test", "--threads", "4"]);
    assert_eq!(code, Some(0));
    assert!(err.contains("only used by `prove`"), "verify must warn: {err}");
}

/// Golden schema for `profile --json`, plus the headline invariant: the
/// slot counts sum to exactly `cycles × schedulers × issue_width` (the
/// accounting identity) and the document says so via `identity_ok`.
#[test]
fn profile_json_schema() {
    let (code, out, _) = run(&["profile", "BIN", "--scale", "test", "--json"]);
    assert_eq!(code, Some(0));
    let doc = Json::parse(out.trim());
    let ws = doc.get("workloads").arr();
    assert_eq!(ws.len(), 1);
    let w = &ws[0];
    assert_eq!(w.get("abbr").str(), "BIN");
    assert!(!w.get("kernel").str().is_empty());
    let techs = w.get("techniques").arr();
    assert_eq!(techs.len(), 2, "Base and DARSIE");
    let labels: Vec<&str> = techs.iter().map(|t| t.get("technique").str()).collect();
    assert_eq!(labels, ["BASE", "DARSIE"]);
    for t in techs {
        assert!(t.get("identity_ok").bool());
        let slots = match t.get("slots") {
            Json::Obj(m) => m,
            other => panic!("expected slots object, got {other:?}"),
        };
        assert_eq!(slots.len(), 12, "one key per stall cause");
        for key in [
            "issued",
            "skipped_by_darsie",
            "scoreboard",
            "operand_collector",
            "exec_unit_busy",
            "lsu_queue",
            "ibuffer_empty",
            "wait_leader",
            "branch_sync",
            "barrier",
            "majority_evict",
            "idle_no_warp",
        ] {
            assert!(slots.contains_key(key), "missing slot cause `{key}`");
        }
        let sum: f64 = slots.values().map(Json::num).sum();
        assert_eq!(sum, t.get("issue_slots").num(), "accounting identity in the document");
        assert_eq!(
            t.get("slots").get("issued").num(),
            t.get("executed").num() + t.get("reused").num(),
            "issued slots cross-check"
        );
        for h in t.get("hot_pcs").arr() {
            h.get("pc").num();
            h.get("issued").num();
            h.get("skipped").num();
            h.get("stall_slots").num();
            h.get("top_stall").str();
        }
        let lat = t.get("leader_latency");
        lat.get("count").num();
        assert_eq!(lat.get("buckets").arr().len(), 16);
        let occ = t.get("occupancy");
        occ.get("samples").num();
        occ.get("dropped").num();
        occ.get("peak_skip_entries").num();
        occ.get("peak_live_versions").num();
        occ.get("peak_waiting_warps").num();
        let d = t.get("darsie");
        d.get("leaders_elected").num();
        d.get("instructions_skipped").num();
        d.get("leader_giveups").num();
        t.get("trace_dropped").num();
    }
    // DARSIE actually skips on BIN: the slots and counters show it.
    let dars = &techs[1];
    assert!(dars.get("slots").get("skipped_by_darsie").num() > 0.0);
    assert!(dars.get("darsie").get("leaders_elected").num() > 0.0);
    let t = doc.get("totals");
    assert_eq!(t.get("workloads").num(), 1.0);
    assert_eq!(t.get("identity_violations").num(), 0.0);
}

/// `profile --perfetto` writes a valid Chrome trace-event document:
/// round-trip parse it and check the event structure Perfetto requires.
#[test]
fn profile_perfetto_trace_round_trips() {
    let dir = std::env::temp_dir().join("darsie-sim-perfetto-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("bin.trace.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let (code, _, err) =
        run(&["profile", "BIN", "--scale", "test", "--json", "--perfetto", path_str]);
    assert_eq!(code, Some(0), "{err}");
    let text = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let doc = Json::parse(text.trim());
    let evs = doc.get("traceEvents").arr();
    assert!(!evs.is_empty(), "trace has events");
    let mut complete = 0usize;
    let mut meta = 0usize;
    for e in evs {
        match e.get("ph").str() {
            "X" => {
                complete += 1;
                e.get("ts").num();
                e.get("dur").num();
                e.get("pid").num();
                e.get("tid").num();
                assert!(!e.get("name").str().is_empty());
                e.get("args").get("pc").num();
            }
            "M" => {
                meta += 1;
                assert!(!e.get("args").get("name").str().is_empty());
            }
            "C" => {
                e.get("args").get("skip_entries").num();
            }
            other => panic!("unexpected phase `{other}`"),
        }
    }
    assert!(complete > 0, "at least one complete event");
    assert!(meta > 0, "process/thread name metadata present");
    doc.get("otherData").get("dropped_events").num();
}

/// Golden schema for `lints --json`: one row per `LintCode` variant with
/// all four columns, including the symbolic-validator codes.
#[test]
fn lints_json_schema() {
    let (code, out, _) = run(&["lints", "--json"]);
    assert_eq!(code, Some(0));
    let doc = Json::parse(out.trim());
    let rows = doc.get("lints").arr();
    let codes: Vec<&str> = rows
        .iter()
        .map(|r| {
            r.get("severity").str();
            r.get("pass").str();
            assert!(!r.get("doc").str().is_empty());
            r.get("code").str()
        })
        .collect();
    for c in ["V001", "V201", "V301", "P101", "S401", "S402", "S403", "E201", "E202"] {
        assert!(codes.contains(&c), "lint registry is missing {c}");
    }
}

/// Golden schema for `estimate --json`, plus the headline invariant: the
/// measured cycles sit inside the static bracket for both techniques
/// (zero `E202`) and every catalog loop has a two-sided bound.
#[test]
fn estimate_json_schema() {
    let (code, out, _) = run(&["estimate", "BIN", "--scale", "test", "--json"]);
    assert_eq!(code, Some(0));
    let doc = Json::parse(out.trim());
    let ws = doc.get("workloads").arr();
    assert_eq!(ws.len(), 1);
    let w = &ws[0];
    assert_eq!(w.get("abbr").str(), "BIN");
    assert!(!w.get("kernel").str().is_empty());
    let techs = w.get("techniques").arr();
    assert_eq!(techs.len(), 2, "Base and DARSIE");
    let labels: Vec<&str> = techs.iter().map(|t| t.get("technique").str()).collect();
    assert_eq!(labels, ["BASE", "DARSIE"]);
    for t in techs {
        let min = t.get("min_cycles").num();
        let max = t.get("max_cycles").num();
        let measured = t.get("measured_cycles").num();
        assert!(t.get("in_bracket").bool());
        assert!(min <= measured && measured <= max, "{measured} outside [{min}, {max}]");
        let skip = t.get("predicted_skip_fraction").num();
        assert!((0.0..=1.0).contains(&skip));
        for l in t.get("loops").arr() {
            l.get("back_edge_pc").num();
            let lo = l.get("min_trips").num();
            let hi = l.get("max_trips").num();
            assert!(lo >= 1.0 && lo <= hi);
        }
        let b = t.get("breakdown");
        for key in [
            "fetch_bound",
            "issue_bound",
            "lsu_bound",
            "chain_bound",
            "fetch_serial",
            "issue_serial",
            "lsu_serial",
            "sfu_serial",
            "dram_serial",
            "exposed",
            "darsie_slack",
            "tbs_per_sm",
            "waves",
        ] {
            b.get(key).num();
        }
        assert_eq!(t.get("diagnostics").arr().len(), 0, "BIN estimates clean");
    }
    // DARSIE predicts actual savings on BIN.
    assert!(techs[1].get("predicted_skip_fraction").num() > 0.0);
    let t = doc.get("totals");
    assert_eq!(t.get("bound_violations").num(), 0.0);
    assert_eq!(t.get("unbounded_loops").num(), 0.0);
    assert!(t.get("mean_bracket_width").num() > 0.0);
}

/// Golden schema for `bench --json`, and the snapshot side effect: the
/// document on stdout is also written verbatim to `BENCH_<date>.json` in
/// the working directory.
#[test]
fn bench_json_schema_and_snapshot_file() {
    let dir = std::env::temp_dir().join("darsie-sim-bench-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_darsie-sim"))
        .args(["bench", "BIN", "--scale", "test", "--json"])
        .current_dir(&dir)
        .output()
        .expect("spawn darsie-sim");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let doc = Json::parse(stdout.trim());
    let date = doc.get("date").str().to_string();
    assert_eq!(date.len(), 10, "YYYY-MM-DD");
    assert_eq!(doc.get("scale").str(), "test");
    let ws = doc.get("workloads").arr();
    assert_eq!(ws.len(), 1);
    let w = &ws[0];
    assert_eq!(w.get("abbr").str(), "BIN");
    assert!(!w.get("kernel").str().is_empty());
    assert!(w.get("darsie_speedup").num() > 0.0);
    let techs = w.get("techniques").arr();
    assert_eq!(techs.len(), 2, "Base and DARSIE");
    let labels: Vec<&str> = techs.iter().map(|t| t.get("technique").str()).collect();
    assert_eq!(labels, ["BASE", "DARSIE"]);
    for t in techs {
        assert!(t.get("cycles").num() > 0.0);
        assert!(t.get("wall_seconds").num() >= 0.0);
        assert!(t.get("sim_cycles_per_sec").num() > 0.0);
        t.get("instructions_skipped").num();
        assert!(t.get("instructions_executed").num() > 0.0);
        let min = t.get("static_min_cycles").num();
        let max = t.get("static_max_cycles").num();
        assert!(min <= t.get("cycles").num() && t.get("cycles").num() <= max);
    }
    let snapshot = dir.join(format!("BENCH_{date}.json"));
    let text = std::fs::read_to_string(&snapshot).expect("snapshot file written");
    std::fs::remove_file(&snapshot).ok();
    assert_eq!(text.trim(), stdout.trim(), "snapshot must match stdout document");
}
