//! Shared experiment engine for the figure/table harness.
//!
//! Every paper artifact is regenerated from the same pipeline: run the 13
//! Table-1 workloads under each technique, then render the figure's
//! rows/series from the collected [`SimStats`]. The criterion benches and
//! the `figures` binary both call into this module, so
//! `cargo bench -p darsie-bench` and
//! `cargo run -p darsie-bench --bin figures` agree by construction.

use darsie::DarsieConfig;
use gpu_energy::EnergyModel;
use gpu_sim::{trace_redundancy, GpuConfig, SimStats, Technique};
use workloads::{catalog, Scale, Workload};

/// The evaluation machine: the Table-2 Pascal SM configuration with a
/// reduced SM count so the scaled-down workloads still fill the GPU (the
/// paper's absolute sizes would leave 28 SMs mostly idle and flatten every
/// technique to launch latency).
#[must_use]
pub fn eval_gpu(num_sms: usize) -> GpuConfig {
    GpuConfig { num_sms, shadow_check: false, ..GpuConfig::pascal_gtx1080ti() }
}

/// Geometric mean.
#[must_use]
pub fn gmean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        log_sum += x.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// The Figure-8 technique set.
#[must_use]
pub fn fig8_techniques() -> Vec<Technique> {
    vec![
        Technique::Base,
        Technique::Uv,
        Technique::DacIdeal,
        Technique::darsie(),
        Technique::Darsie(DarsieConfig::ignore_store()),
    ]
}

/// The Figure-12 technique set.
#[must_use]
pub fn fig12_techniques() -> Vec<Technique> {
    vec![
        Technique::Base,
        Technique::darsie(),
        Technique::Darsie(DarsieConfig::no_cf_sync()),
        Technique::SiliconSync,
    ]
}

/// Results of one workload under several techniques.
pub struct WorkloadRow {
    /// Figure abbreviation.
    pub abbr: &'static str,
    /// 2D-TB benchmark?
    pub is_2d: bool,
    /// `(technique label, stats)` in run order.
    pub per_tech: Vec<(&'static str, SimStats)>,
}

impl WorkloadRow {
    /// Stats for a given technique label.
    #[must_use]
    pub fn stats(&self, label: &str) -> Option<&SimStats> {
        self.per_tech.iter().find(|(l, _)| *l == label).map(|(_, s)| s)
    }

    /// Speedup of `label` over BASE (cycles ratio).
    #[must_use]
    pub fn speedup(&self, label: &str) -> f64 {
        let base = self.stats("BASE").expect("BASE was run").cycles as f64;
        let t = self.stats(label).expect("technique was run").cycles as f64;
        base / t.max(1.0)
    }

    /// Fraction (0..1) of baseline instruction work eliminated by `label`
    /// (skips before fetch plus issue-stage reuse), and its taxonomy split.
    #[must_use]
    pub fn insn_reduction(&self, label: &str) -> (f64, [f64; 3]) {
        let s = self.stats(label).expect("technique was run");
        let removed_counts = [
            s.instrs_skipped.uniform + s.instrs_reused.uniform,
            s.instrs_skipped.affine + s.instrs_reused.affine,
            s.instrs_skipped.unstructured + s.instrs_reused.unstructured,
        ];
        let removed: u64 = s.instrs_skipped.total() + s.instrs_reused.total();
        let total = s.instrs_executed + removed;
        if total == 0 {
            return (0.0, [0.0; 3]);
        }
        let f = removed as f64 / total as f64;
        let split = removed_counts.map(|c| c as f64 / total as f64);
        (f, split)
    }
}

/// All rows of one experiment sweep.
pub struct Report {
    /// One row per workload, in Table-1 order.
    pub rows: Vec<WorkloadRow>,
    /// SM count used (for the energy model).
    pub num_sms: usize,
}

/// Runs `techniques` over the full catalog.
#[must_use]
pub fn collect(scale: Scale, cfg: &GpuConfig, techniques: &[Technique]) -> Report {
    let mut rows = Vec::new();
    for w in catalog(scale) {
        let mut per_tech = Vec::new();
        for t in techniques {
            let res = w.run(cfg, t.clone());
            per_tech.push((t.label(), res.stats));
        }
        rows.push(WorkloadRow { abbr: w.abbr, is_2d: w.is_2d, per_tech });
    }
    Report { rows, num_sms: cfg.num_sms }
}

impl Report {
    /// Geometric-mean speedup of `label` over the 1D or 2D subset.
    #[must_use]
    pub fn gmean_speedup(&self, label: &str, two_d: bool) -> f64 {
        gmean(self.rows.iter().filter(|r| r.is_2d == two_d).map(|r| r.speedup(label)))
    }

    /// Renders the Figure-8 speedup table.
    #[must_use]
    pub fn render_fig8(&self) -> String {
        self.render_speedups("Figure 8: speedup over BASE")
    }

    /// Renders a speedup table under an arbitrary title (Figures 8 and 12
    /// share the format).
    #[must_use]
    pub fn render_speedups(&self, title: &str) -> String {
        let labels: Vec<&str> = self.rows[0].per_tech.iter().map(|(l, _)| *l).collect();
        let mut out = format!("{title}\n");
        out.push_str(&format!("{:10}", "bench"));
        for l in &labels {
            out.push_str(&format!(" {l:>20}"));
        }
        out.push('\n');
        let dump_subset = |out: &mut String, two_d: bool, tag: &str| {
            for r in self.rows.iter().filter(|r| r.is_2d == two_d) {
                out.push_str(&format!("{:10}", r.abbr));
                for l in &labels {
                    out.push_str(&format!(" {:>20.3}", r.speedup(l)));
                }
                out.push('\n');
            }
            out.push_str(&format!("{tag:10}"));
            for l in &labels {
                out.push_str(&format!(" {:>20.3}", self.gmean_speedup(l, two_d)));
            }
            out.push('\n');
        };
        dump_subset(&mut out, false, "GMEAN-1D");
        dump_subset(&mut out, true, "GMEAN-2D");
        out
    }

    /// Renders Figures 9/10 (instruction reduction by taxonomy class) for
    /// the 1D (`two_d = false`) or 2D subset.
    #[must_use]
    pub fn render_insn_reduction(&self, two_d: bool) -> String {
        let fig = if two_d { "Figure 10" } else { "Figure 9" };
        let labels: Vec<&str> =
            self.rows[0].per_tech.iter().map(|(l, _)| *l).filter(|l| *l != "BASE").collect();
        let mut out =
            format!("{fig}: % of warp instructions eliminated (uniform/affine/unstructured)\n");
        for r in self.rows.iter().filter(|r| r.is_2d == two_d) {
            for l in &labels {
                let (f, split) = r.insn_reduction(l);
                out.push_str(&format!(
                    "{:8} {:>20}  total {:5.1}%  = U {:4.1}% + A {:4.1}% + X {:4.1}%\n",
                    r.abbr,
                    l,
                    f * 100.0,
                    split[0] * 100.0,
                    split[1] * 100.0,
                    split[2] * 100.0
                ));
            }
        }
        for l in &labels {
            let g = gmean(
                self.rows.iter().filter(|r| r.is_2d == two_d).map(|r| 1.0 - r.insn_reduction(l).0),
            );
            out.push_str(&format!("GMEAN    {:>20}  total {:5.1}%\n", l, (1.0 - g) * 100.0));
        }
        out
    }

    /// Renders the Figure-11 energy-reduction table.
    #[must_use]
    pub fn render_fig11(&self) -> String {
        let model = EnergyModel::with_sms(self.num_sms);
        let labels: Vec<&str> =
            self.rows[0].per_tech.iter().map(|(l, _)| *l).filter(|l| *l != "BASE").collect();
        let mut out = String::from("Figure 11: % energy reduction vs BASE\n");
        out.push_str(&format!("{:10}", "bench"));
        for l in &labels {
            out.push_str(&format!(" {l:>20}"));
        }
        out.push('\n');
        for r in &self.rows {
            let base = r.stats("BASE").expect("BASE");
            out.push_str(&format!("{:10}", r.abbr));
            for l in &labels {
                let red = model.reduction_percent(base, r.stats(l).expect("tech"));
                out.push_str(&format!(" {red:>19.1}%"));
            }
            out.push('\n');
        }
        for (tag, two_d) in [("GMEAN-1D", false), ("GMEAN-2D", true)] {
            out.push_str(&format!("{tag:10}"));
            for l in &labels {
                let g = gmean(self.rows.iter().filter(|r| r.is_2d == two_d).map(|r| {
                    let base = r.stats("BASE").expect("BASE");
                    let frac =
                        1.0 - model.reduction_percent(base, r.stats(l).expect("tech")) / 100.0;
                    frac
                }));
                out.push_str(&format!(" {:>19.1}%", (1.0 - g) * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

/// The Figure-1 / Figure-2 limit study for one workload.
pub struct LimitRow {
    /// Abbreviation.
    pub abbr: &'static str,
    /// 2D?
    pub is_2d: bool,
    /// Fractions: grid-, TB-, warp-level redundancy.
    pub levels: [f64; 3],
    /// Taxonomy fractions: uniform, affine, unstructured, non-redundant.
    pub taxonomy: [f64; 4],
}

/// Runs the limit study (functional oracle) over the catalog.
#[must_use]
pub fn limit_study(scale: Scale) -> Vec<LimitRow> {
    catalog(scale)
        .into_iter()
        .map(|w: Workload| {
            let (t, mem) = trace_redundancy(&w.ck, &w.launch, w.memory.clone());
            (w.check)(&mem).expect("functional trace must validate");
            LimitRow {
                abbr: w.abbr,
                is_2d: w.is_2d,
                levels: [
                    t.frac(t.grid_redundant),
                    t.frac(t.tb_redundant),
                    t.frac(t.warp_redundant),
                ],
                taxonomy: t.taxonomy_fractions(),
            }
        })
        .collect()
}

/// Renders Figure 1 (average redundancy per thread-grouping level).
#[must_use]
pub fn render_fig1(rows: &[LimitRow]) -> String {
    let n = rows.len() as f64;
    let avg = |i: usize| rows.iter().map(|r| r.levels[i]).sum::<f64>() / n * 100.0;
    let mut out =
        String::from("Figure 1: redundant instructions per thread-grouping level (average)\n");
    out.push_str(&format!("Grid-wide redundant insn: {:5.1}%\n", avg(0)));
    out.push_str(&format!("TB-wide redundant insn:   {:5.1}%\n", avg(1)));
    out.push_str(&format!("Warp-wide redundant insn: {:5.1}%\n", avg(2)));
    out
}

/// Renders Figure 2 (per-benchmark taxonomy breakdown).
#[must_use]
pub fn render_fig2(rows: &[LimitRow]) -> String {
    let mut out = String::from(
        "Figure 2: TB-redundant instruction taxonomy (uniform/affine/unstructured/non-red)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:8} [{}]  U {:5.1}%  A {:5.1}%  X {:5.1}%  non-red {:5.1}%\n",
            r.abbr,
            if r.is_2d { "2D" } else { "1D" },
            r.taxonomy[0] * 100.0,
            r.taxonomy[1] * 100.0,
            r.taxonomy[2] * 100.0,
            r.taxonomy[3] * 100.0
        ));
    }
    out
}

/// Renders Table 1 (the application catalog).
#[must_use]
pub fn render_table1(scale: Scale) -> String {
    let mut out = String::from("Table 1: applications studied\n");
    for w in catalog(scale) {
        out.push_str(&format!(
            "{:8} {:24} TB=({},{})  grid=({},{})  [{}]\n",
            w.abbr,
            w.name,
            w.block.x,
            w.block.y,
            w.launch.grid.x,
            w.launch.grid.y,
            if w.is_2d { "2D" } else { "1D" }
        ));
    }
    out
}

/// Renders Table 2 (the baseline GPU configuration).
#[must_use]
pub fn render_table2(cfg: &GpuConfig) -> String {
    format!(
        "Table 2: baseline GPU\n\
         GPU:        Pascal-class, {} SMs, {} warps/SM, {} thread blocks/SM\n\
         SM:         {} SIMD width, {} vector registers per SM\n\
         Scheduler:  {} warp schedulers/SM, {:?} scheduling\n\
         L1/shared:  {} KB shared memory/SM\n\
         Register:   14.2 pJ/read, 25.9 pJ/write\n",
        cfg.num_sms,
        cfg.max_warps_per_sm,
        cfg.max_tbs_per_sm,
        cfg.warp_size,
        cfg.vector_regs_per_sm,
        cfg.schedulers_per_sm,
        cfg.scheduler,
        cfg.shared_mem_per_sm / 1024,
    )
}

/// Renders Table 3 (qualitative technique comparison).
#[must_use]
pub fn render_table3() -> String {
    String::from(
        "Table 3: comparison to related work\n\
         technique   uniform  affine  unstructured  min-pipeline-mods\n\
         UV          yes      no      no            yes\n\
         DAC         yes      yes     no            no\n\
         DARSIE      yes      yes     yes           yes\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean([3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(gmean(std::iter::empty()), 1.0);
    }

    #[test]
    fn collect_and_render_smoke() {
        let cfg = GpuConfig { shadow_check: false, ..GpuConfig::test_small() };
        let report = collect(Scale::Test, &cfg, &[Technique::Base, Technique::darsie()]);
        assert_eq!(report.rows.len(), 13);
        let fig8 = report.render_fig8();
        assert!(fig8.contains("GMEAN-2D"), "{fig8}");
        assert!(fig8.contains("MM"));
        let fig10 = report.render_insn_reduction(true);
        assert!(fig10.contains("DARSIE"));
        let fig11 = report.render_fig11();
        assert!(fig11.contains('%'));
        // DARSIE must eliminate instructions on the 2D subset.
        let g: f64 =
            report.rows.iter().filter(|r| r.is_2d).map(|r| r.insn_reduction("DARSIE").0).sum();
        assert!(g > 0.0, "no 2D skipping at all");
    }

    #[test]
    fn limit_study_smoke() {
        let rows = limit_study(Scale::Test);
        assert_eq!(rows.len(), 13);
        let fig1 = render_fig1(&rows);
        assert!(fig1.contains("TB-wide"));
        let fig2 = render_fig2(&rows);
        assert!(fig2.contains("MM"));
        // 2D benchmarks must show affine or unstructured redundancy.
        let mm = rows.iter().find(|r| r.abbr == "MM").expect("MM present");
        assert!(mm.taxonomy[1] + mm.taxonomy[2] > 0.05, "{:?}", mm.taxonomy);
    }

    #[test]
    fn tables_render() {
        assert!(render_table1(Scale::Test).contains("MatrixMul"));
        assert!(render_table2(&eval_gpu(4)).contains("Pascal"));
        assert!(render_table3().contains("DARSIE"));
    }
}
