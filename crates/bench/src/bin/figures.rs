//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p darsie-bench --bin figures -- all
//! cargo run --release -p darsie-bench --bin figures -- fig8 fig11
//! cargo run --release -p darsie-bench --bin figures -- --scale test fig2
//! ```

use darsie_bench::{
    collect, eval_gpu, fig12_techniques, fig8_techniques, limit_study, render_fig1, render_fig2,
    render_table1, render_table2, render_table3, Report,
};
use gpu_energy::{AreaEstimate, AreaParams};
use gpu_sim::trace_redundancy;
use simt_compiler::compile;
use simt_isa::{KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};
use workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: figures [--scale eval|test] [--sms N] <artifact>...\n\
         artifacts: fig1 fig2 fig3 fig6 fig8 fig9 fig10 fig11 fig12 \
         table1 table2 table3 area all"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Eval;
    let mut sms = 4usize;
    let mut artifacts: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("eval") => Scale::Eval,
                    Some("test") => Scale::Test,
                    _ => usage(),
                }
            }
            "--sms" => {
                sms = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "-h" | "--help" => usage(),
            other => artifacts.push(other.to_string()),
        }
    }
    if artifacts.is_empty() {
        usage();
    }
    if artifacts.iter().any(|a| a == "all") {
        artifacts = [
            "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig6", "fig8", "fig9", "fig10",
            "fig11", "fig12", "area",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let cfg = eval_gpu(sms);
    let mut fig8_report: Option<Report> = None;
    let mut fig12_report: Option<Report> = None;
    let mut limit: Option<Vec<darsie_bench::LimitRow>> = None;

    for artifact in &artifacts {
        match artifact.as_str() {
            "table1" => println!("{}", render_table1(scale)),
            "table2" => println!("{}", render_table2(&cfg)),
            "table3" => println!("{}", render_table3()),
            "area" => {
                println!("Section 6.3: area estimate");
                println!("{}\n", AreaEstimate::compute(&AreaParams::default()).report());
            }
            "fig1" => {
                let rows = limit.get_or_insert_with(|| limit_study(scale));
                println!("{}", render_fig1(rows));
            }
            "fig2" => {
                let rows = limit.get_or_insert_with(|| limit_study(scale));
                println!("{}", render_fig2(rows));
            }
            "fig3" => println!("{}", fig3_walkthrough()),
            "fig6" => println!("{}", fig6_markings()),
            "fig8" => {
                let r = fig8_report.get_or_insert_with(|| collect(scale, &cfg, &fig8_techniques()));
                println!("{}", r.render_fig8());
            }
            "fig9" => {
                let r = fig8_report.get_or_insert_with(|| collect(scale, &cfg, &fig8_techniques()));
                println!("{}", r.render_insn_reduction(false));
            }
            "fig10" => {
                let r = fig8_report.get_or_insert_with(|| collect(scale, &cfg, &fig8_techniques()));
                println!("{}", r.render_insn_reduction(true));
            }
            "fig11" => {
                let r = fig8_report.get_or_insert_with(|| collect(scale, &cfg, &fig8_techniques()));
                println!("{}", r.render_fig11());
            }
            "fig12" => {
                let r =
                    fig12_report.get_or_insert_with(|| collect(scale, &cfg, &fig12_techniques()));
                println!(
                    "{}",
                    r.render_speedups("Figure 12: effect of synchronization (speedup over BASE)")
                );
            }
            _ => usage(),
        }
    }
}

/// The paper's Figure-3 worked example: the same three-instruction kernel
/// under a 1D (8,1) and a 2D (4,2) threadblock with warp size 4, showing
/// the per-warp register patterns the taxonomy classifies.
fn fig3_walkthrough() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("Figure 3: tid.x chain under 1D and 2D threadblocks (warp=4)\n");
    for (label, block) in
        [("1D (8,1)", simt_isa::Dim3::one_d(8)), ("2D (4,2)", simt_isa::Dim3::two_d(4, 2))]
    {
        let mut b = KernelBuilder::new("fig3");
        let t = b.special(SpecialReg::TidX);
        let r1 = b.imul(t, 4u32);
        let r2 = b.iadd(r1, 16u32);
        let v = b.load(MemSpace::Global, r2, 0);
        b.store(MemSpace::Global, 0u32, v, 0);
        let ck = compile(b.finish());
        let mut mem = gpu_sim::GlobalMemory::new();
        // Array of "random" words at base 16.
        mem.write_slice_u32(16, &[7, 3, 0, 90, 55, 8, 22, 1]);
        let launch = LaunchConfig::new(1u32, block).with_warp_size(4).with_params(vec![Value(0)]);
        let (trace, _) = trace_redundancy(&ck, &launch, mem);
        let _ = writeln!(
            out,
            "{label:9} executed={:3}  TB-redundant={:3}  affine={}  unstructured={}",
            trace.executed, trace.tb_redundant, trace.affine, trace.unstructured
        );
    }
    out
}

/// Figure 6: the compiler's DR/CR/V markings on the MatrixMul kernel.
fn fig6_markings() -> String {
    let w = workloads::by_abbr("MM", Scale::Test).expect("MM exists");
    format!(
        "Figure 6: compiler markings for the MatrixMul kernel\n{}",
        w.ck.annotated_disassembly()
    )
}
