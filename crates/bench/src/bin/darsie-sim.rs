//! Command-line simulator driver: run one benchmark under one technique
//! and print the full statistics and energy breakdown.
//!
//! ```text
//! darsie-sim MM --technique darsie --sms 4 --scale eval
//! darsie-sim LIB --technique base --scheduler lrr
//! darsie-sim --list
//! darsie-sim verify [ABBR ...] [--workload NAME] [--scale test|eval] [--json]
//! darsie-sim analyze [ABBR ...] [--workload NAME] [--scale test|eval] [--json]
//! darsie-sim prove [ABBR ...] [--workload NAME] [--scale test|eval] [--json] [--threads N]
//! darsie-sim profile [ABBR ...] [--workload NAME] [--scale test|eval] [--json] [--perfetto PATH]
//! darsie-sim estimate [ABBR ...] [--workload NAME] [--scale test|eval] [--json]
//! darsie-sim bench [ABBR ...] [--workload NAME] [--scale test|eval] [--json]
//! darsie-sim lints [--json]
//! ```
//!
//! The `verify` subcommand runs the `simt-verify` static checks (including
//! the shared-memory race detector) and the differential marking-soundness
//! oracle over the selected workloads (all of them by default) and exits
//! non-zero on any error-severity finding. `--json` swaps the report for a
//! machine-readable document for CI consumption, including per-lint-code
//! totals.
//!
//! The `analyze` subcommand is the static performance analyzer: for each
//! workload it reports baseline vs refined marking counts and skip
//! coverage, the refinement upgrades by pass, blame-seed histograms for
//! the remaining vector markings, the measured dynamic-redundancy headroom
//! of the refined plan, and predicted-vs-measured shared-memory
//! bank-conflict and global-coalescing statistics (cross-validated against
//! a cycle-simulator run of the baseline technique). It exits non-zero if
//! the refined markings fail the soundness oracle or any memory prediction
//! bound excludes the measured counters.
//!
//! The `prove` subcommand runs the symbolic translation validator: for
//! each workload it discharges every redundancy-marking and branch-sync
//! claim over the whole launch family the marking quantifies over, and
//! reports per-workload proved/disproved/unknown counts plus a per-claim
//! ledger (`--json`) with verdicts, unknown reasons and evaluation costs.
//! `--threads N` shards the discharge across a thread pool with
//! byte-identical output; wall time is printed to stderr. It exits
//! non-zero on any disproof (`S401`) or branch-sync violation (`S403`).
//!
//! The `profile` subcommand runs each selected workload under the
//! baseline and DARSIE with cycle-accounted profiling: every issue slot
//! of every cycle is attributed to exactly one stall cause, and the
//! accounting identity (`Σ causes == cycles × schedulers × issue_width`)
//! is checked on every run — a violation exits non-zero. The report
//! breaks slots down by cause, lists the hottest PCs, and summarizes
//! leader-election latency and DARSIE structure occupancy. With
//! `--perfetto PATH` the DARSIE run's pipeline events are written as
//! Chrome trace-event JSON loadable in <https://ui.perfetto.dev>.
//!
//! The `estimate` subcommand is the differential gate for the static
//! cycle-bound cost model: for each selected workload it runs the
//! WCET-style estimator and the cycle simulator side by side, under both
//! the baseline and DARSIE, and exits non-zero if any measured cycle
//! count falls outside its static `[min, max]` bracket (`E202`).
//! Unboundable loop trip counts (`E201`) leave the upper bound open and
//! are reported as warnings, not failures.
//!
//! The `bench` subcommand takes one benchmark-trajectory snapshot:
//! per workload and technique it records simulated cycles, wall time,
//! simulated cycles per second, skip counts and the static cycle bracket,
//! plus the DARSIE-over-Base speedup. With `--json` the snapshot is also
//! written to `BENCH_<date>.json` for CI to archive as an artifact.
//!
//! The `lints` subcommand prints the registry of every lint the verifier
//! can emit — code, severity, producing pass and a one-line description —
//! generated from the `LintCode` enum itself so it can never go stale.

use darsie::DarsieConfig;
use gpu_energy::EnergyModel;
use gpu_sim::{GpuConfig, SchedulerPolicy, Technique};
use simt_compiler::LaunchPlan;
use simt_verify::perf::{MemPredKind, MemPrediction};
use std::collections::BTreeMap;
use workloads::{by_abbr, catalog, Scale, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: darsie-sim <ABBR> [options]   |   darsie-sim --list   |   \
         darsie-sim verify [ABBR ...] [--workload NAME] [--scale test|eval] [--json]   |   \
         darsie-sim analyze [ABBR ...] [--workload NAME] [--scale test|eval] [--json]   |   \
         darsie-sim prove [ABBR ...] [--workload NAME] [--scale test|eval] [--json] \
         [--threads N]   |   \
         darsie-sim profile [ABBR ...] [--workload NAME] [--scale test|eval] [--json] \
         [--perfetto PATH]   |   \
         darsie-sim estimate [ABBR ...] [--workload NAME] [--scale test|eval] [--json]   |   \
         darsie-sim bench [ABBR ...] [--workload NAME] [--scale test|eval] [--json]   |   \
         darsie-sim lints [--json]\n\
         options:\n\
           --technique base|uv|dac|darsie|darsie-ignore-store|darsie-no-cf-sync|silicon-sync\n\
           --scale test|eval        (default eval)\n\
           --sms N                  (default 4)\n\
           --scheduler gto|lrr      (default gto)\n\
           --skip-entries N         (default 8)\n\
           --rename-regs N          (default 32)\n\
           --skip-ports N           (default 2)\n\
           --max-leader-stall N     (default 64)\n\
           --trace N                print the first N pipeline events\n\
           --no-validate            skip the CPU-reference check"
    );
    std::process::exit(2);
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Comma-separated catalog abbreviations for "unknown workload" errors.
fn known_abbrs() -> String {
    catalog(Scale::Test).iter().map(|w| w.abbr).collect::<Vec<_>>().join(", ")
}

/// Rejects an unknown benchmark/workload name, listing the valid ones.
fn unknown_workload(kind: &str, name: &str) -> ! {
    eprintln!("unknown {kind} `{name}`; valid abbreviations: {}", known_abbrs());
    std::process::exit(2);
}

/// Shared subcommand options: scale, output mode and workload selection
/// (positional abbreviations and/or `--workload NAME` filters matching
/// the abbreviation or full name, case-insensitively). Every subcommand
/// goes through this one parser so unknown-abbreviation rejection (exit
/// 2, listing the valid names) and `--workload` semantics cannot drift
/// between them. `--threads` is parsed here too — only `prove` consumes
/// it; everything else warns and ignores it.
struct SubcommandArgs {
    json: bool,
    selected: Vec<Workload>,
    threads: Option<usize>,
    scale: Scale,
}

/// Rejects a repeated single-valued flag: taking the last occurrence
/// silently hides a typo in scripts, so it is a usage error instead.
fn duplicate_flag(flag: &str) -> ! {
    eprintln!("duplicate {flag}: each flag may be given at most once");
    std::process::exit(2);
}

fn parse_subcommand_args(args: &[String]) -> SubcommandArgs {
    parse_subcommand_args_with(args, |_, _| false)
}

/// The shared parser, with a hook for subcommand-specific flags: `extra`
/// sees every otherwise-unknown `--flag` (plus the argument iterator, so
/// it can consume a value) and returns whether it recognized it. Flags
/// the hook rejects are a usage error, same as everywhere else.
fn parse_subcommand_args_with(
    args: &[String],
    mut extra: impl FnMut(&str, &mut std::slice::Iter<String>) -> bool,
) -> SubcommandArgs {
    let mut scale: Option<Scale> = None;
    let mut json = false;
    let mut threads: Option<usize> = None;
    let mut abbrs: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                if scale.is_some() {
                    duplicate_flag("--scale");
                }
                scale = match it.next().map(String::as_str) {
                    Some("test") => Some(Scale::Test),
                    Some("eval") => Some(Scale::Eval),
                    _ => usage(),
                }
            }
            "--json" => {
                if json {
                    duplicate_flag("--json");
                }
                json = true;
            }
            "--threads" => {
                if threads.is_some() {
                    duplicate_flag("--threads");
                }
                match it.next().and_then(|n| n.parse::<usize>().ok()).filter(|&n| n >= 1) {
                    Some(n) => threads = Some(n),
                    None => {
                        eprintln!("--threads expects a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--workload" => names.push(it.next().cloned().unwrap_or_else(|| usage())),
            s if !s.starts_with("--") => abbrs.push(s.to_string()),
            s => {
                if !extra(s, &mut it) {
                    usage()
                }
            }
        }
    }
    let scale = scale.unwrap_or(Scale::Test);
    let mut selected: Vec<Workload> = abbrs
        .iter()
        .map(|a| by_abbr(a, scale).unwrap_or_else(|| unknown_workload("benchmark", a)))
        .collect();
    for n in &names {
        let nl = n.to_lowercase();
        let matched: Vec<Workload> = catalog(scale)
            .into_iter()
            .filter(|w| w.abbr.to_lowercase() == nl || w.name.to_lowercase() == nl)
            .collect();
        if matched.is_empty() {
            unknown_workload("workload", n);
        }
        selected.extend(matched);
    }
    if selected.is_empty() {
        selected = catalog(scale);
    }
    SubcommandArgs { json, selected, threads, scale }
}

/// Warns when `--threads` was passed to a subcommand that ignores it.
fn warn_threads_ignored(threads: Option<usize>, subcommand: &str) {
    if threads.is_some() {
        eprintln!("warning: --threads is only used by `prove`; `{subcommand}` ignores it");
    }
}

/// `darsie-sim verify`: run every `simt-verify` pass over the selected
/// workloads at their native launches and exit 1 on any error-severity
/// finding. With `--json`, print one machine-readable document instead of
/// the human report.
fn verify_command(args: &[String]) {
    let SubcommandArgs { json, selected, threads, .. } = parse_subcommand_args(args);
    warn_threads_ignored(threads, "verify");

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut by_code: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut records: Vec<String> = Vec::new();
    for w in &selected {
        let report = simt_verify::verify_full(&w.ck, &w.launch, w.memory.clone());
        errors += report.error_count();
        warnings += report.warning_count();
        for d in &report.items {
            *by_code.entry(d.code.code()).or_insert(0) += 1;
        }
        if json {
            let diags: Vec<String> = report
                .items
                .iter()
                .map(|d| {
                    format!(
                        "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
                        d.code,
                        d.severity,
                        d.pc.map_or_else(|| "null".to_string(), |pc| pc.to_string()),
                        json_escape(&d.message)
                    )
                })
                .collect();
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\"block\":[{},{},{}],\
                 \"diagnostics\":[{}],\"errors\":{},\"warnings\":{}}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                w.block.x,
                w.block.y,
                w.block.z,
                diags.join(","),
                report.error_count(),
                report.warning_count()
            ));
        } else if report.items.is_empty() {
            println!(
                "verify {:8} ({}, TB=({},{},{})): clean",
                w.abbr, w.name, w.block.x, w.block.y, w.block.z
            );
        } else {
            print!("{}", report.render());
        }
    }
    let code_totals: Vec<String> = by_code.iter().map(|(c, n)| format!("\"{c}\":{n}")).collect();
    if json {
        println!(
            "{{\"workloads\":[{}],\"by_code\":{{{}}},\"total_errors\":{errors},\
             \"total_warnings\":{warnings}}}",
            records.join(","),
            code_totals.join(",")
        );
    } else {
        println!(
            "verified {} workload(s): {errors} error(s), {warnings} warning(s)",
            selected.len()
        );
        if !by_code.is_empty() {
            let human: Vec<String> = by_code.iter().map(|(c, n)| format!("{c}\u{d7}{n}")).collect();
            println!("by code: {}", human.join(", "));
        }
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

/// `darsie-sim prove`: the symbolic translation validator. Discharges
/// every redundancy-marking and branch-sync claim of the selected
/// workloads over their full quantified launch families and exits 1 on
/// any `S401` disproof or `S403` branch-sync violation.
fn prove_command(args: &[String]) {
    let SubcommandArgs { json, selected, threads, .. } = parse_subcommand_args(args);
    let threads = threads.unwrap_or(1);

    let mut errors = 0usize;
    let mut by_code: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut unknown_reasons: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut totals = (0usize, 0usize, 0usize);
    let mut records: Vec<String> = Vec::new();
    let wall = std::time::Instant::now();
    for w in &selected {
        let p =
            simt_verify::symex::prove_with_threads(&w.ck, Some((&w.launch, &w.memory)), threads);
        let s = &p.stats;
        for c in &p.claims {
            if let Some(r) = c.unknown_reason {
                *unknown_reasons.entry(r.label()).or_insert(0) += 1;
            }
        }
        errors += p.report.error_count();
        totals.0 += s.proved;
        totals.1 += s.disproved;
        totals.2 += s.unknown;
        for d in &p.report.items {
            *by_code.entry(d.code.code()).or_insert(0) += 1;
        }
        if json {
            let diags: Vec<String> = p
                .report
                .items
                .iter()
                .map(|d| {
                    format!(
                        "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
                        d.code,
                        d.severity,
                        d.pc.map_or_else(|| "null".to_string(), |pc| pc.to_string()),
                        json_escape(&d.message)
                    )
                })
                .collect();
            let claims: Vec<String> = p
                .claims
                .iter()
                .map(|c| {
                    let verdict = match c.verdict {
                        simt_verify::symex::Verdict::Proved => "proved",
                        simt_verify::symex::Verdict::Disproved => "disproved",
                        simt_verify::symex::Verdict::Unknown => "unknown",
                    };
                    let reason = c
                        .unknown_reason
                        .map_or_else(|| "null".to_string(), |r| format!("\"{}\"", r.label()));
                    format!(
                        "{{\"pc\":{},\"kind\":\"{}\",\"family\":\"{}\",\"verdict\":\"{}\",\
                         \"unknown_reason\":{},\"evals\":{}}}",
                        c.pc, c.kind, c.family, verdict, reason, c.evals
                    )
                })
                .collect();
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\"block\":[{},{},{}],\
                 \"value_claims\":{},\"branch_claims\":{},\"proved\":{},\"disproved\":{},\
                 \"unknown\":{},\"complete\":{},\"fuel_used\":{},\"terms\":{},\
                 \"claims\":[{}],\"diagnostics\":[{}]}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                w.block.x,
                w.block.y,
                w.block.z,
                s.value_claims,
                s.branch_claims,
                s.proved,
                s.disproved,
                s.unknown,
                s.complete,
                s.fuel_used,
                s.terms,
                claims.join(","),
                diags.join(",")
            ));
        } else {
            println!(
                "prove {:8} ({}, TB=({},{},{})): {} claim(s): {} proved, {} disproved, \
                 {} unknown{}",
                w.abbr,
                w.name,
                w.block.x,
                w.block.y,
                w.block.z,
                s.value_claims + s.branch_claims,
                s.proved,
                s.disproved,
                s.unknown,
                if s.complete { "" } else { " (budget exhausted)" }
            );
            if !p.report.items.is_empty() {
                print!("{}", p.report.render());
            }
        }
    }
    let elapsed = wall.elapsed();
    let code_totals: Vec<String> = by_code.iter().map(|(c, n)| format!("\"{c}\":{n}")).collect();
    let reason_totals: Vec<String> =
        unknown_reasons.iter().map(|(r, n)| format!("\"{r}\":{n}")).collect();
    if json {
        println!(
            "{{\"workloads\":[{}],\"by_code\":{{{}}},\"unknown_reasons\":{{{}}},\
             \"total_proved\":{},\"total_disproved\":{},\"total_unknown\":{}}}",
            records.join(","),
            code_totals.join(","),
            reason_totals.join(","),
            totals.0,
            totals.1,
            totals.2
        );
    } else {
        println!(
            "proved {} workload(s): {} proved, {} disproved, {} unknown",
            selected.len(),
            totals.0,
            totals.1,
            totals.2
        );
        if !unknown_reasons.is_empty() {
            let mut ranked: Vec<(&str, usize)> =
                unknown_reasons.iter().map(|(r, n)| (*r, *n)).collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let human: Vec<String> = ranked.iter().map(|(r, n)| format!("{r}\u{d7}{n}")).collect();
            println!("top unknown reasons: {}", human.join(", "));
        }
    }
    // Wall time goes to stderr so `--json` stdout stays byte-identical
    // across `--threads N`.
    eprintln!("prover wall time: {:.3}s ({} thread(s))", elapsed.as_secs_f64(), threads);
    if errors > 0 {
        std::process::exit(1);
    }
}

/// `darsie-sim lints`: the lint registry, generated from [`LintCode`]
/// itself — code, severity, producing pass and one-line description.
fn lints_command(args: &[String]) {
    use simt_verify::LintCode;
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a != "--json") {
        usage();
    }
    if json {
        let rows: Vec<String> = LintCode::ALL
            .iter()
            .map(|l| {
                format!(
                    "{{\"code\":\"{}\",\"severity\":\"{}\",\"pass\":\"{}\",\"doc\":\"{}\"}}",
                    l.code(),
                    l.severity(),
                    l.pass(),
                    json_escape(l.doc())
                )
            })
            .collect();
        println!("{{\"lints\":[{}]}}", rows.join(","));
    } else {
        for l in LintCode::ALL {
            println!("{:5} {:7} {:10} {}", l.code(), l.severity().to_string(), l.pass(), l.doc());
        }
    }
}

/// Serializes one memory prediction plus its validation outcome.
fn mem_check_json(p: &MemPrediction, v: Option<&simt_verify::perf::Validation>) -> String {
    let kind = match &p.kind {
        MemPredKind::SharedConflict { min_degree, max_degree } => format!(
            "\"kind\":\"shared-conflict\",\"min_degree\":{min_degree},\"max_degree\":{max_degree}"
        ),
        MemPredKind::GlobalCoalesce { min_lines, max_lines, ideal_lines } => format!(
            "\"kind\":\"global-coalesce\",\"min_lines\":{min_lines},\"max_lines\":{max_lines},\
             \"ideal_lines\":{ideal_lines}"
        ),
        MemPredKind::Unpredictable { reason } => {
            format!("\"kind\":\"unpredictable\",\"reason\":\"{}\"", json_escape(reason))
        }
    };
    let check = v.map_or_else(String::new, |v| {
        format!(",\"ok\":{},\"measured\":\"{}\"", v.ok, json_escape(&v.detail))
    });
    format!("{{\"pc\":{},\"store\":{},{kind}{check}}}", p.pc, p.is_store)
}

/// `darsie-sim analyze`: the static skip-coverage and memory-performance
/// report. Exits 1 when refined markings fail the soundness oracle or a
/// measured memory counter falls outside its predicted bounds.
fn analyze_command(args: &[String]) {
    let SubcommandArgs { json, selected, threads, .. } = parse_subcommand_args(args);
    warn_threads_ignored(threads, "analyze");
    let cfg = GpuConfig::test_small();

    let mut total_oracle_errors = 0usize;
    let mut total_mem_violations = 0usize;
    let mut coverage_wins = 0usize;
    let mut marking_wins = 0usize;
    let mut records: Vec<String> = Vec::new();

    for w in &selected {
        let bz = w.launch.block.z.max(1);
        let refined = simt_compiler::refine(&w.ck, bz);
        let base_plan = LaunchPlan::new(&w.ck, &w.launch);
        let ref_plan = LaunchPlan::new(&refined.ck, &w.launch);
        let [bv, bc, bd] = w.ck.marking_counts();
        let [rv, rc, rd] = refined.ck.marking_counts();
        let (base_skip, ref_skip) = (base_plan.num_skippable(), ref_plan.num_skippable());
        if ref_skip > base_skip {
            coverage_wins += 1;
        }
        if rv < bv {
            marking_wins += 1;
        }

        let mut upgrades: BTreeMap<String, usize> = BTreeMap::new();
        for u in &refined.upgrades {
            *upgrades.entry(u.reason.to_string()).or_insert(0) += 1;
        }

        // Soundness gate: the refined markings must survive the
        // differential oracle on a real execution.
        let oracle = simt_verify::oracle::check(&refined.ck, &w.launch, w.memory.clone());
        let oracle_errors = oracle.error_count();
        total_oracle_errors += oracle_errors;

        // Blame the vector markings refinement could not recover.
        let blame = simt_compiler::blame(&refined.ck, &refined.ck.classes);
        let seeds = blame.seed_histogram();

        // Dynamic headroom left by the refined plan.
        let headroom = simt_verify::oracle::dynamic_headroom(
            &refined.ck,
            &w.launch,
            &ref_plan.skippable,
            w.memory.clone(),
        );

        // Memory performance: predict statically, measure on the cycle
        // simulator under the baseline technique, check the bounds.
        let predictions = simt_verify::perf::predict(&w.ck, &w.launch, cfg.warp_size);
        let result = w.run_unchecked(&cfg, Technique::Base);
        let checks = simt_verify::perf::validate(&predictions, &result.stats);
        let violations = checks.iter().filter(|c| !c.ok).count();
        total_mem_violations += violations;
        let unpredictable = predictions
            .iter()
            .filter(|p| matches!(p.kind, MemPredKind::Unpredictable { .. }))
            .count();
        let lints = simt_verify::perf::lint(&w.ck, &predictions);

        if json {
            let upgrade_fields: Vec<String> =
                upgrades.iter().map(|(r, n)| format!("\"{r}\":{n}")).collect();
            let seed_fields: Vec<String> =
                seeds.iter().map(|(s, n)| format!("\"{s}\":{n}")).collect();
            let mem_fields: Vec<String> = predictions
                .iter()
                .map(|p| mem_check_json(p, checks.iter().find(|c| c.pc == p.pc)))
                .collect();
            let lint_fields: Vec<String> = lints
                .items
                .iter()
                .map(|d| {
                    format!(
                        "{{\"code\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
                        d.code,
                        d.pc.map_or_else(|| "null".to_string(), |pc| pc.to_string()),
                        json_escape(&d.message)
                    )
                })
                .collect();
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\
                 \"baseline\":{{\"vector\":{bv},\"cond\":{bc},\"def\":{bd},\
                 \"skippable\":{base_skip}}},\
                 \"refined\":{{\"vector\":{rv},\"cond\":{rc},\"def\":{rd},\
                 \"skippable\":{ref_skip},\"upgrades\":{{{}}}}},\
                 \"oracle_errors\":{oracle_errors},\
                 \"headroom\":{{\"dynamically_redundant\":{},\"never_aligned\":{}}},\
                 \"blame\":{{{}}},\
                 \"mem\":{{\"accesses\":{},\"unpredictable\":{unpredictable},\
                 \"violations\":{violations},\"checks\":[{}],\"lints\":[{}]}}}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                upgrade_fields.join(","),
                headroom.dynamically_redundant.len(),
                headroom.never_aligned.len(),
                seed_fields.join(","),
                predictions.len(),
                mem_fields.join(","),
                lint_fields.join(",")
            ));
        } else {
            println!(
                "analyze {:8} ({}, TB=({},{},{}))",
                w.abbr, w.name, w.block.x, w.block.y, w.block.z
            );
            println!(
                "  markings V/CR/DR     {bv}/{bc}/{bd} -> {rv}/{rc}/{rd}   \
                 skippable {base_skip} -> {ref_skip}"
            );
            if !upgrades.is_empty() {
                let ups: Vec<String> =
                    upgrades.iter().map(|(r, n)| format!("{r}\u{d7}{n}")).collect();
                println!("  upgrades             {}", ups.join(", "));
            }
            println!("  oracle               {} error(s) on refined markings", oracle_errors);
            println!(
                "  dynamic headroom     {} redundant-unskipped, {} never-aligned",
                headroom.dynamically_redundant.len(),
                headroom.never_aligned.len()
            );
            if !seeds.is_empty() {
                let bl: Vec<String> = seeds.iter().map(|(s, n)| format!("{s}\u{d7}{n}")).collect();
                println!("  vector blame         {}", bl.join(", "));
            }
            println!(
                "  memory               {} access(es), {unpredictable} unpredictable, \
                 {violations} bound violation(s)",
                predictions.len()
            );
            for c in checks.iter().filter(|c| !c.ok) {
                println!("    VIOLATION {}", c.detail);
            }
            for d in &lints.items {
                println!("    {d}");
            }
        }
    }

    if json {
        println!(
            "{{\"workloads\":[{}],\"totals\":{{\"oracle_errors\":{total_oracle_errors},\
             \"mem_violations\":{total_mem_violations},\"coverage_wins\":{coverage_wins},\
             \"marking_wins\":{marking_wins}}}}}",
            records.join(",")
        );
    } else {
        println!(
            "analyzed {} workload(s): {total_oracle_errors} oracle error(s), \
             {total_mem_violations} memory-bound violation(s), {coverage_wins} skip-coverage \
             win(s), {marking_wins} marking-precision win(s)",
            selected.len()
        );
    }
    if total_oracle_errors > 0 || total_mem_violations > 0 {
        std::process::exit(1);
    }
}

/// Serializes one technique's profile (plus the run's headline stats) as
/// a JSON object; returns the record and whether the accounting identity
/// held.
fn profile_record_json(
    technique: &Technique,
    r: &gpu_sim::SimResult,
    prof: &gpu_sim::SimProfile,
) -> (String, bool) {
    let slots = prof.slots();
    let reused = r.stats.instrs_reused.total();
    let skipped = r.stats.instrs_skipped.total();
    // Two checks gate `identity_ok`: per-SM slot balance, and the
    // cross-check that `issued` slots equal the instructions the
    // simulator says it executed or reused.
    let balanced = prof.check_identity().is_ok();
    let crosscheck = slots.get(gpu_sim::StallCause::Issued) == r.stats.instrs_executed + reused;
    let ok = balanced && crosscheck;

    let slot_fields: Vec<String> =
        slots.iter().map(|(c, n)| format!("\"{}\":{n}", c.label())).collect();

    // Hot PCs: top 5 by total slot involvement (issued + skipped + blamed
    // stalls).
    let per_pc = prof.per_pc();
    let mut hot: Vec<(usize, &gpu_sim::PcProfile)> =
        per_pc.iter().map(|(&pc, p)| (pc, p)).collect();
    hot.sort_by_key(|(pc, p)| (std::cmp::Reverse(p.issued + p.skipped + p.stalls.total()), *pc));
    let hot_fields: Vec<String> = hot
        .iter()
        .take(5)
        .map(|(pc, p)| {
            let (top_cause, _) = p
                .stalls
                .iter()
                .filter(|&(c, _)| c != gpu_sim::StallCause::Issued)
                .max_by_key(|&(_, n)| n)
                .unwrap_or((gpu_sim::StallCause::IdleNoWarp, 0));
            format!(
                "{{\"pc\":{pc},\"issued\":{},\"skipped\":{},\"stall_slots\":{},\
                 \"top_stall\":\"{}\"}}",
                p.issued,
                p.skipped,
                p.stalls.total(),
                top_cause.label()
            )
        })
        .collect();

    let hist = prof.leader_latency();
    let buckets: Vec<String> = hist.buckets().iter().map(u64::to_string).collect();

    let (mut samples, mut dropped) = (0u64, 0u64);
    let (mut peak_skip, mut peak_vers, mut peak_wait) = (0u32, 0u32, 0u32);
    for sm in &prof.sms {
        samples += sm.samples.len() as u64;
        dropped += sm.samples_dropped;
        for s in &sm.samples {
            peak_skip = peak_skip.max(s.skip_entries);
            peak_vers = peak_vers.max(s.live_versions);
            peak_wait = peak_wait.max(s.waiting_warps);
        }
    }

    let d = &r.stats.darsie;
    let record = format!(
        "{{\"technique\":\"{}\",\"cycles\":{},\"issue_slots\":{},\"identity_ok\":{ok},\
         \"slots\":{{{}}},\"executed\":{},\"reused\":{reused},\"skipped\":{skipped},\
         \"hot_pcs\":[{}],\
         \"leader_latency\":{{\"count\":{},\"buckets\":[{}]}},\
         \"occupancy\":{{\"samples\":{samples},\"dropped\":{dropped},\
         \"peak_skip_entries\":{peak_skip},\"peak_live_versions\":{peak_vers},\
         \"peak_waiting_warps\":{peak_wait}}},\
         \"darsie\":{{\"leaders_elected\":{},\"instructions_skipped\":{},\
         \"leader_giveups\":{},\"wait_for_leader_cycles\":{},\"branch_sync_cycles\":{}}},\
         \"trace_dropped\":{}}}",
        technique.label(),
        r.cycles,
        prof.issue_slots(),
        slot_fields.join(","),
        r.stats.instrs_executed,
        hot_fields.join(","),
        hist.count(),
        buckets.join(","),
        d.leaders_elected,
        d.instructions_skipped,
        d.leader_giveups,
        d.wait_for_leader_cycles,
        d.branch_sync_cycles,
        r.events.dropped,
    );
    (record, ok)
}

/// The Perfetto output path for one workload: the user's path verbatim
/// for a single-workload run, `stem-ABBR.ext` otherwise.
fn perfetto_path(base: &str, abbr: &str, single: bool) -> String {
    if single {
        return base.to_string();
    }
    match base.rfind('.') {
        Some(dot) if dot > base.rfind('/').map_or(0, |s| s + 1) => {
            format!("{}-{}{}", &base[..dot], abbr, &base[dot..])
        }
        _ => format!("{base}-{abbr}"),
    }
}

/// `darsie-sim profile`: run each selected workload under Base and DARSIE
/// with cycle-accounted profiling on, and report where every issue slot
/// went. Exits 1 when any run violates the accounting identity
/// (`Σ slot causes == cycles × schedulers × issue_width`, and
/// `issued == executed + reused`). With `--perfetto PATH`, also writes a
/// Chrome trace-event JSON of the DARSIE run's pipeline events.
fn profile_command(args: &[String]) {
    let mut perfetto: Option<String> = None;
    let SubcommandArgs { json, selected, threads, .. } =
        parse_subcommand_args_with(args, |flag, it| {
            if flag != "--perfetto" {
                return false;
            }
            if perfetto.is_some() {
                duplicate_flag("--perfetto");
            }
            perfetto = Some(it.next().cloned().unwrap_or_else(|| usage()));
            true
        });
    warn_threads_ignored(threads, "profile");
    let single = selected.len() == 1;

    let mut violations = 0usize;
    let mut records: Vec<String> = Vec::new();
    for w in &selected {
        let mut tech_records: Vec<String> = Vec::new();
        for technique in [Technique::Base, Technique::darsie()] {
            let is_darsie = matches!(technique, Technique::Darsie(_));
            let trace = perfetto.is_some() && is_darsie;
            let cfg = GpuConfig {
                profile: true,
                shadow_check: false,
                trace_events: trace,
                ..GpuConfig::test_small()
            };
            let r = w.run_unchecked(&cfg, technique.clone());
            let prof = r.profile.as_ref().expect("profiling was enabled");
            let (record, ok) = profile_record_json(&technique, &r, prof);
            if !ok {
                violations += 1;
            }
            if json {
                tech_records.push(record);
            } else {
                let slots = prof.slots();
                let total = slots.total().max(1);
                println!(
                    "profile {:8} {:12} {:>9} cycles, {:>11} issue slots{}",
                    w.abbr,
                    technique.label(),
                    r.cycles,
                    prof.issue_slots(),
                    if ok { "" } else { "  IDENTITY VIOLATION" }
                );
                for (cause, n) in slots.iter().filter(|&(_, n)| n > 0) {
                    println!(
                        "    {:18} {:>11}  ({:5.1}%)",
                        cause.label(),
                        n,
                        100.0 * n as f64 / total as f64
                    );
                }
                let hist = prof.leader_latency();
                if hist.count() > 0 {
                    println!("    leader latency     {:>11} samples", hist.count());
                }
            }
            if trace {
                let path =
                    perfetto_path(perfetto.as_deref().expect("perfetto path set"), w.abbr, single);
                let json_trace = gpu_sim::chrome_trace_json(&r.events, Some(prof));
                if let Err(e) = std::fs::write(&path, json_trace) {
                    eprintln!("cannot write perfetto trace {path}: {e}");
                    std::process::exit(1);
                }
                if !json {
                    println!("    perfetto trace     {path}");
                }
            }
        }
        if json {
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\"techniques\":[{}]}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                tech_records.join(",")
            ));
        }
    }
    if json {
        println!(
            "{{\"workloads\":[{}],\"totals\":{{\"workloads\":{},\
             \"identity_violations\":{violations}}}}}",
            records.join(","),
            selected.len()
        );
    } else {
        println!("profiled {} workload(s): {violations} identity violation(s)", selected.len());
    }
    if violations > 0 {
        std::process::exit(1);
    }
}

/// Serializes one lint diagnostic the same way `verify --json` does.
fn diag_json(d: &simt_verify::Diagnostic) -> String {
    format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
        d.code,
        d.severity,
        d.pc.map_or_else(|| "null".to_string(), |pc| pc.to_string()),
        json_escape(&d.message)
    )
}

/// `darsie-sim estimate`: the differential gate for the static
/// cycle-bound cost model. Runs the estimator and the cycle simulator
/// side by side for each selected workload under Base and DARSIE, and
/// exits 1 if any measured cycle count escapes its static `[min, max]`
/// bracket (`E202`). Unboundable trip counts (`E201`) leave the bracket
/// one-sided and are reported but do not fail the gate.
fn estimate_command(args: &[String]) {
    let SubcommandArgs { json, selected, threads, .. } = parse_subcommand_args(args);
    warn_threads_ignored(threads, "estimate");
    let cfg = GpuConfig::test_small();

    let mut violations = 0usize;
    let mut unbounded = 0usize;
    let mut width_sum = 0f64;
    let mut width_n = 0usize;
    let mut records: Vec<String> = Vec::new();
    for w in &selected {
        let mut tech_records: Vec<String> = Vec::new();
        for technique in [Technique::Base, Technique::darsie()] {
            let est = simt_verify::cost::estimate(&w.ck, &w.launch, &cfg, &technique);
            let measured = w.run_unchecked(&cfg, technique.clone()).stats.cycles;
            let violation = simt_verify::cost::validate(&est, measured);
            if violation.is_some() {
                violations += 1;
            }
            unbounded += est.loops.iter().filter(|l| l.trips.is_err()).count();
            if let Some(hi) = est.max_cycles {
                width_sum += (hi - est.min_cycles) as f64 / measured.max(1) as f64;
                width_n += 1;
            }
            if json {
                let loops: Vec<String> = est
                    .loops
                    .iter()
                    .map(|l| match &l.trips {
                        Ok((lo, hi)) => format!(
                            "{{\"back_edge_pc\":{},\"min_trips\":{lo},\"max_trips\":{hi}}}",
                            l.back_edge_pc
                        ),
                        Err(e) => format!(
                            "{{\"back_edge_pc\":{},\"unbounded\":\"{}\"}}",
                            l.back_edge_pc,
                            json_escape(e)
                        ),
                    })
                    .collect();
                let diags: Vec<String> =
                    est.report.items.iter().chain(violation.iter()).map(diag_json).collect();
                let b = est.breakdown;
                tech_records.push(format!(
                    "{{\"technique\":\"{}\",\"min_cycles\":{},\"max_cycles\":{},\
                     \"measured_cycles\":{measured},\"in_bracket\":{},\
                     \"predicted_skip_fraction\":{:.4},\"loops\":[{}],\
                     \"breakdown\":{{\"fetch_bound\":{},\"issue_bound\":{},\"lsu_bound\":{},\
                     \"chain_bound\":{},\"fetch_serial\":{},\"issue_serial\":{},\
                     \"lsu_serial\":{},\"sfu_serial\":{},\"dram_serial\":{},\"exposed\":{},\
                     \"darsie_slack\":{},\"tbs_per_sm\":{},\"waves\":{}}},\
                     \"diagnostics\":[{}]}}",
                    technique.label(),
                    est.min_cycles,
                    est.max_cycles.map_or_else(|| "null".to_string(), |h| h.to_string()),
                    est.contains(measured),
                    est.predicted_skip_fraction,
                    loops.join(","),
                    b.fetch_bound,
                    b.issue_bound,
                    b.lsu_bound,
                    b.chain_bound,
                    b.fetch_serial,
                    b.issue_serial,
                    b.lsu_serial,
                    b.sfu_serial,
                    b.dram_serial,
                    b.exposed,
                    b.darsie_slack,
                    b.tbs_per_sm,
                    b.waves,
                    diags.join(",")
                ));
            } else {
                let bracket = est.max_cycles.map_or_else(
                    || format!("[{}, unbounded)", est.min_cycles),
                    |hi| format!("[{}, {}]", est.min_cycles, hi),
                );
                let width = est.max_cycles.map_or_else(String::new, |hi| {
                    format!("  width {:.1}x", (hi - est.min_cycles) as f64 / measured.max(1) as f64)
                });
                println!(
                    "estimate {:8} {:12} {:>8} cycles in {:20}{}  skip {:4.1}%{}",
                    w.abbr,
                    technique.label(),
                    measured,
                    bracket,
                    width,
                    100.0 * est.predicted_skip_fraction,
                    if est.contains(measured) { "" } else { "  BOUND VIOLATION" }
                );
                if !est.report.items.is_empty() {
                    print!("{}", est.report.render());
                }
                if let Some(v) = &violation {
                    println!("  {v}");
                }
            }
        }
        if json {
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\"techniques\":[{}]}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                tech_records.join(",")
            ));
        }
    }
    let mean_width = if width_n > 0 { width_sum / width_n as f64 } else { 0.0 };
    if json {
        println!(
            "{{\"workloads\":[{}],\"totals\":{{\"bound_violations\":{violations},\
             \"unbounded_loops\":{unbounded},\"mean_bracket_width\":{mean_width:.3}}}}}",
            records.join(",")
        );
    } else {
        println!(
            "estimated {} workload(s) x 2 technique(s): {violations} bound violation(s), \
             {unbounded} unbounded loop(s), mean bracket width {mean_width:.1}x measured",
            selected.len()
        );
    }
    if violations > 0 {
        std::process::exit(1);
    }
}

/// The current UTC date as `YYYY-MM-DD`, from the system clock via the
/// standard civil-from-days conversion (no date-crate dependency).
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `darsie-sim bench`: one point on the benchmark trajectory. Runs each
/// selected workload under Base and DARSIE, recording simulated cycles,
/// wall time, simulated cycles per second, skip counts and the static
/// cycle bracket, plus the DARSIE speedup. With `--json` the snapshot is
/// printed to stdout *and* written to `BENCH_<date>.json` so CI can
/// archive it as an artifact.
fn bench_command(args: &[String]) {
    let SubcommandArgs { json, selected, threads, scale } = parse_subcommand_args(args);
    warn_threads_ignored(threads, "bench");
    let cfg = GpuConfig::test_small();

    let mut records: Vec<String> = Vec::new();
    for w in &selected {
        let mut cycles_by_tech = [0u64; 2];
        let mut tech_records: Vec<String> = Vec::new();
        for (i, technique) in [Technique::Base, Technique::darsie()].into_iter().enumerate() {
            let est = simt_verify::cost::estimate(&w.ck, &w.launch, &cfg, &technique);
            let start = std::time::Instant::now();
            let r = w.run_unchecked(&cfg, technique.clone());
            let wall = start.elapsed().as_secs_f64();
            let cycles = r.stats.cycles;
            cycles_by_tech[i] = cycles;
            let rate = cycles as f64 / wall.max(1e-9);
            if json {
                tech_records.push(format!(
                    "{{\"technique\":\"{}\",\"cycles\":{cycles},\"wall_seconds\":{wall:.6},\
                     \"sim_cycles_per_sec\":{rate:.0},\"instructions_skipped\":{},\
                     \"instructions_executed\":{},\"static_min_cycles\":{},\
                     \"static_max_cycles\":{}}}",
                    technique.label(),
                    r.stats.instrs_skipped.total(),
                    r.stats.instrs_executed,
                    est.min_cycles,
                    est.max_cycles.map_or_else(|| "null".to_string(), |h| h.to_string()),
                ));
            } else {
                println!(
                    "bench {:8} {:12} {:>8} cycles  {:>8.3}s wall  {:>10.0} cyc/s  \
                     bracket [{}, {}]",
                    w.abbr,
                    technique.label(),
                    cycles,
                    wall,
                    rate,
                    est.min_cycles,
                    est.max_cycles.map_or_else(|| "?".to_string(), |h| h.to_string()),
                );
            }
        }
        let speedup = cycles_by_tech[0] as f64 / cycles_by_tech[1].max(1) as f64;
        if json {
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\"techniques\":[{}],\
                 \"darsie_speedup\":{speedup:.4}}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                tech_records.join(",")
            ));
        } else {
            println!("bench {:8} {:12} speedup {speedup:.2}x", w.abbr, "darsie/base");
        }
    }
    if json {
        let date = utc_date();
        let doc = format!(
            "{{\"date\":\"{date}\",\"scale\":\"{}\",\"workloads\":[{}]}}",
            if matches!(scale, Scale::Test) { "test" } else { "eval" },
            records.join(",")
        );
        let path = format!("BENCH_{date}.json");
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("cannot write benchmark snapshot {path}: {e}");
            std::process::exit(1);
        }
        println!("{doc}");
        eprintln!("benchmark snapshot written to {path}");
    } else {
        println!("benchmarked {} workload(s)", selected.len());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for w in catalog(Scale::Test) {
            println!(
                "{:8} {:24} TB=({},{}) [{}]",
                w.abbr,
                w.name,
                w.block.x,
                w.block.y,
                if w.is_2d { "2D" } else { "1D" }
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("verify") {
        verify_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("analyze") {
        analyze_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("prove") {
        prove_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("profile") {
        profile_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("estimate") {
        estimate_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        bench_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("lints") {
        lints_command(&args[1..]);
        return;
    }
    let Some(abbr) = args.first().filter(|a| !a.starts_with("--")) else { usage() };

    let mut scale = Scale::Eval;
    let mut sms = 4usize;
    let mut scheduler = SchedulerPolicy::Gto;
    let mut tech_name = "darsie".to_string();
    let mut dcfg = DarsieConfig::default();
    let mut validate = true;
    let mut trace = 0usize;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--technique" => tech_name = next(),
            "--scale" => {
                scale = match next().as_str() {
                    "test" => Scale::Test,
                    "eval" => Scale::Eval,
                    _ => usage(),
                }
            }
            "--sms" => sms = next().parse().unwrap_or_else(|_| usage()),
            "--scheduler" => {
                scheduler = match next().as_str() {
                    "gto" => SchedulerPolicy::Gto,
                    "lrr" => SchedulerPolicy::Lrr,
                    _ => usage(),
                }
            }
            "--skip-entries" => {
                dcfg.skip_entries_per_tb = next().parse().unwrap_or_else(|_| usage());
            }
            "--rename-regs" => {
                dcfg.rename_regs_per_tb = next().parse().unwrap_or_else(|_| usage());
            }
            "--skip-ports" => dcfg.skip_table_ports = next().parse().unwrap_or_else(|_| usage()),
            "--max-leader-stall" => {
                dcfg.max_leader_stall = next().parse().unwrap_or_else(|_| usage());
            }
            "--no-validate" => validate = false,
            "--trace" => trace = next().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let technique = match tech_name.as_str() {
        "base" => Technique::Base,
        "uv" => Technique::Uv,
        "dac" | "dac-ideal" => Technique::DacIdeal,
        "darsie" => Technique::Darsie(dcfg),
        "darsie-ignore-store" => Technique::Darsie(DarsieConfig { ignore_store: true, ..dcfg }),
        "darsie-no-cf-sync" => Technique::Darsie(DarsieConfig { no_cf_sync: true, ..dcfg }),
        "silicon-sync" => Technique::SiliconSync,
        _ => usage(),
    };

    let Some(w) = by_abbr(abbr, scale) else { unknown_workload("benchmark", abbr) };
    let cfg = GpuConfig {
        num_sms: sms,
        scheduler,
        shadow_check: false,
        trace_events: trace > 0,
        ..GpuConfig::pascal_gtx1080ti()
    };

    let start = std::time::Instant::now();
    let mut r = if validate {
        w.run(&cfg, technique.clone())
    } else {
        w.run_unchecked(&cfg, technique.clone())
    };
    let wall = start.elapsed();
    let s = &r.stats;

    println!("{} under {} ({} SMs, {:?}):", w.name, technique.label(), sms, scheduler);
    println!("  cycles               {:>12}", r.cycles);
    println!("  instructions fetched {:>12}", s.instrs_fetched);
    println!("  instructions executed{:>12}", s.instrs_executed);
    println!(
        "  eliminated           {:>12}  (U {} / A {} / X {})",
        s.instrs_skipped.total() + s.instrs_reused.total(),
        s.instrs_skipped.uniform + s.instrs_reused.uniform,
        s.instrs_skipped.affine + s.instrs_reused.affine,
        s.instrs_skipped.unstructured + s.instrs_reused.unstructured,
    );
    println!("  i-cache accesses     {:>12}  ({} misses)", s.icache_accesses, s.icache_misses);
    println!("  RF reads / writes    {:>12} / {}", s.rf_reads, s.rf_writes);
    println!("  ALU / SFU ops        {:>12} / {}", s.alu_ops, s.sfu_ops);
    println!(
        "  global transactions  {:>12}  (L1 {}/{}, L2 {}/{})",
        s.global_transactions,
        s.l1_hits,
        s.l1_hits + s.l1_misses,
        s.l2_hits,
        s.l2_hits + s.l2_misses
    );
    println!(
        "  shared ops           {:>12}  ({} bank conflicts)",
        s.smem_ops, s.smem_bank_conflicts
    );
    println!("  barrier waits        {:>12}", s.barrier_waits);
    if s.darsie.skip_table_probes > 0 {
        println!("  -- DARSIE --");
        println!("  skip-table probes    {:>12}", s.darsie.skip_table_probes);
        println!(
            "  leaders / skips      {:>12} / {}",
            s.darsie.leaders_elected, s.darsie.instructions_skipped
        );
        println!("  load invalidations   {:>12}", s.darsie.load_invalidations);
        println!("  wait-for-leader cyc  {:>12}", s.darsie.wait_for_leader_cycles);
        println!("  branch-sync cyc      {:>12}", s.darsie.branch_sync_cycles);
        println!("  freelist stalls      {:>12}", s.darsie.freelist_stalls);
        println!("  leader give-ups      {:>12}", s.darsie.leader_giveups);
    }
    let e = EnergyModel::with_sms(sms).evaluate(s);
    println!(
        "  energy (pJ)          {:>12.0}  (dynamic {:.0}, darsie overhead {:.0})",
        e.total(),
        e.dynamic(),
        e.darsie_overhead
    );
    println!("  wall time            {wall:>12.2?}");
    if trace > 0 {
        println!("  -- first {} pipeline events --", trace.min(r.events.len()));
        for e in r.events.events().iter().take(trace) {
            println!("  {e}");
        }
        if r.events.dropped > 0 {
            println!("  ... ({} further events dropped)", r.events.dropped);
        }
    }
    if validate {
        println!("  validation           OK (matches CPU reference)");
    }
}
