//! Command-line simulator driver: run one benchmark under one technique
//! and print the full statistics and energy breakdown.
//!
//! ```text
//! darsie-sim MM --technique darsie --sms 4 --scale eval
//! darsie-sim LIB --technique base --scheduler lrr
//! darsie-sim --list
//! darsie-sim verify [ABBR ...] [--scale test|eval] [--json]
//! ```
//!
//! The `verify` subcommand runs the `simt-verify` static checks (including
//! the shared-memory race detector) and the differential marking-soundness
//! oracle over the selected workloads (all of them by default) and exits
//! non-zero on any error-severity finding. `--json` swaps the report for a
//! machine-readable document for CI consumption.

use darsie::DarsieConfig;
use gpu_energy::EnergyModel;
use gpu_sim::{GpuConfig, SchedulerPolicy, Technique};
use workloads::{by_abbr, catalog, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: darsie-sim <ABBR> [options]   |   darsie-sim --list   |   \
         darsie-sim verify [ABBR ...] [--scale test|eval] [--json]\n\
         options:\n\
           --technique base|uv|dac|darsie|darsie-ignore-store|darsie-no-cf-sync|silicon-sync\n\
           --scale test|eval        (default eval)\n\
           --sms N                  (default 4)\n\
           --scheduler gto|lrr      (default gto)\n\
           --skip-entries N         (default 8)\n\
           --rename-regs N          (default 32)\n\
           --skip-ports N           (default 2)\n\
           --trace N                print the first N pipeline events\n\
           --no-validate            skip the CPU-reference check"
    );
    std::process::exit(2);
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `darsie-sim verify`: run every `simt-verify` pass over the selected
/// workloads at their native launches and exit 1 on any error-severity
/// finding. With `--json`, print one machine-readable document instead of
/// the human report.
fn verify_command(args: &[String]) {
    let mut scale = Scale::Test;
    let mut json = false;
    let mut abbrs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("eval") => Scale::Eval,
                    _ => usage(),
                }
            }
            "--json" => json = true,
            s if !s.starts_with("--") => abbrs.push(s.to_string()),
            _ => usage(),
        }
    }
    let selected: Vec<workloads::Workload> = if abbrs.is_empty() {
        catalog(scale)
    } else {
        abbrs
            .iter()
            .map(|a| {
                by_abbr(a, scale).unwrap_or_else(|| {
                    eprintln!("unknown benchmark `{a}` (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut records: Vec<String> = Vec::new();
    for w in &selected {
        let report = simt_verify::verify_full(&w.ck, &w.launch, w.memory.clone());
        errors += report.error_count();
        warnings += report.warning_count();
        if json {
            let diags: Vec<String> = report
                .items
                .iter()
                .map(|d| {
                    format!(
                        "{{\"code\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"message\":\"{}\"}}",
                        d.code,
                        d.severity,
                        d.pc.map_or_else(|| "null".to_string(), |pc| pc.to_string()),
                        json_escape(&d.message)
                    )
                })
                .collect();
            records.push(format!(
                "{{\"abbr\":\"{}\",\"kernel\":\"{}\",\"block\":[{},{},{}],\
                 \"diagnostics\":[{}],\"errors\":{},\"warnings\":{}}}",
                json_escape(w.abbr),
                json_escape(&w.ck.kernel.name),
                w.block.x,
                w.block.y,
                w.block.z,
                diags.join(","),
                report.error_count(),
                report.warning_count()
            ));
        } else if report.items.is_empty() {
            println!(
                "verify {:8} ({}, TB=({},{},{})): clean",
                w.abbr, w.name, w.block.x, w.block.y, w.block.z
            );
        } else {
            print!("{}", report.render());
        }
    }
    if json {
        println!(
            "{{\"workloads\":[{}],\"total_errors\":{errors},\"total_warnings\":{warnings}}}",
            records.join(",")
        );
    } else {
        println!(
            "verified {} workload(s): {errors} error(s), {warnings} warning(s)",
            selected.len()
        );
    }
    if errors > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for w in catalog(Scale::Test) {
            println!(
                "{:8} {:24} TB=({},{}) [{}]",
                w.abbr,
                w.name,
                w.block.x,
                w.block.y,
                if w.is_2d { "2D" } else { "1D" }
            );
        }
        return;
    }
    if args.first().map(String::as_str) == Some("verify") {
        verify_command(&args[1..]);
        return;
    }
    let Some(abbr) = args.first().filter(|a| !a.starts_with("--")) else { usage() };

    let mut scale = Scale::Eval;
    let mut sms = 4usize;
    let mut scheduler = SchedulerPolicy::Gto;
    let mut tech_name = "darsie".to_string();
    let mut dcfg = DarsieConfig::default();
    let mut validate = true;
    let mut trace = 0usize;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        let mut next = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--technique" => tech_name = next(),
            "--scale" => {
                scale = match next().as_str() {
                    "test" => Scale::Test,
                    "eval" => Scale::Eval,
                    _ => usage(),
                }
            }
            "--sms" => sms = next().parse().unwrap_or_else(|_| usage()),
            "--scheduler" => {
                scheduler = match next().as_str() {
                    "gto" => SchedulerPolicy::Gto,
                    "lrr" => SchedulerPolicy::Lrr,
                    _ => usage(),
                }
            }
            "--skip-entries" => {
                dcfg.skip_entries_per_tb = next().parse().unwrap_or_else(|_| usage());
            }
            "--rename-regs" => {
                dcfg.rename_regs_per_tb = next().parse().unwrap_or_else(|_| usage());
            }
            "--skip-ports" => dcfg.skip_table_ports = next().parse().unwrap_or_else(|_| usage()),
            "--no-validate" => validate = false,
            "--trace" => trace = next().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let technique = match tech_name.as_str() {
        "base" => Technique::Base,
        "uv" => Technique::Uv,
        "dac" | "dac-ideal" => Technique::DacIdeal,
        "darsie" => Technique::Darsie(dcfg),
        "darsie-ignore-store" => Technique::Darsie(DarsieConfig { ignore_store: true, ..dcfg }),
        "darsie-no-cf-sync" => Technique::Darsie(DarsieConfig { no_cf_sync: true, ..dcfg }),
        "silicon-sync" => Technique::SiliconSync,
        _ => usage(),
    };

    let Some(w) = by_abbr(abbr, scale) else {
        eprintln!("unknown benchmark `{abbr}` (try --list)");
        std::process::exit(2);
    };
    let cfg = GpuConfig {
        num_sms: sms,
        scheduler,
        shadow_check: false,
        trace_events: trace > 0,
        ..GpuConfig::pascal_gtx1080ti()
    };

    let start = std::time::Instant::now();
    let r = if validate {
        w.run(&cfg, technique.clone())
    } else {
        w.run_unchecked(&cfg, technique.clone())
    };
    let wall = start.elapsed();
    let s = &r.stats;

    println!("{} under {} ({} SMs, {:?}):", w.name, technique.label(), sms, scheduler);
    println!("  cycles               {:>12}", r.cycles);
    println!("  instructions fetched {:>12}", s.instrs_fetched);
    println!("  instructions executed{:>12}", s.instrs_executed);
    println!(
        "  eliminated           {:>12}  (U {} / A {} / X {})",
        s.instrs_skipped.total() + s.instrs_reused.total(),
        s.instrs_skipped.uniform + s.instrs_reused.uniform,
        s.instrs_skipped.affine + s.instrs_reused.affine,
        s.instrs_skipped.unstructured + s.instrs_reused.unstructured,
    );
    println!("  i-cache accesses     {:>12}  ({} misses)", s.icache_accesses, s.icache_misses);
    println!("  RF reads / writes    {:>12} / {}", s.rf_reads, s.rf_writes);
    println!("  ALU / SFU ops        {:>12} / {}", s.alu_ops, s.sfu_ops);
    println!(
        "  global transactions  {:>12}  (L1 {}/{}, L2 {}/{})",
        s.global_transactions,
        s.l1_hits,
        s.l1_hits + s.l1_misses,
        s.l2_hits,
        s.l2_hits + s.l2_misses
    );
    println!(
        "  shared ops           {:>12}  ({} bank conflicts)",
        s.smem_ops, s.smem_bank_conflicts
    );
    println!("  barrier waits        {:>12}", s.barrier_waits);
    if s.darsie.skip_table_probes > 0 {
        println!("  -- DARSIE --");
        println!("  skip-table probes    {:>12}", s.darsie.skip_table_probes);
        println!(
            "  leaders / skips      {:>12} / {}",
            s.darsie.leaders_elected, s.darsie.instructions_skipped
        );
        println!("  load invalidations   {:>12}", s.darsie.load_invalidations);
        println!("  wait-for-leader cyc  {:>12}", s.darsie.wait_for_leader_cycles);
        println!("  branch-sync cyc      {:>12}", s.darsie.branch_sync_cycles);
        println!("  freelist stalls      {:>12}", s.darsie.freelist_stalls);
    }
    let e = EnergyModel::with_sms(sms).evaluate(s);
    println!(
        "  energy (pJ)          {:>12.0}  (dynamic {:.0}, darsie overhead {:.0})",
        e.total(),
        e.dynamic(),
        e.darsie_overhead
    );
    println!("  wall time            {wall:>12.2?}");
    if trace > 0 {
        println!("  -- first {} pipeline events --", trace.min(r.events.len()));
        for e in r.events.events().iter().take(trace) {
            println!("  {e}");
        }
        if r.events.dropped > 0 {
            println!("  ... ({} further events dropped)", r.events.dropped);
        }
    }
    if validate {
        println!("  validation           OK (matches CPU reference)");
    }
}
