//! Property-based tests of the DARSIE hardware protocol: arbitrary event
//! sequences against the skip table, rename state and majority mask must
//! preserve the structural invariants the SM integration relies on.

use darsie::{DarsieStats, MajorityMask, ProbeOutcome, RenameState, SkipTable};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Event {
    Probe { pc: u8, instance: u8, warp: u8 },
    Writeback { pc: u8, instance: u8, warp: u8 },
    Wait { pc: u8, instance: u8, warp: u8 },
    Pass { pc: u8, instance: u8, warp: u8 },
    InvalidateLoads,
    Diverge { warp: u8 },
    Barrier,
    AllocVersion { warp: u8, reg: u8 },
    Bind { warp: u8, reg: u8, version: u8 },
    Unbind { warp: u8, reg: u8 },
    ReleaseWarp { warp: u8 },
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..6, 1u8..4, 0u8..8).prop_map(|(pc, i, w)| Event::Probe { pc, instance: i, warp: w }),
        (0u8..6, 1u8..4, 0u8..8).prop_map(|(pc, i, w)| Event::Writeback {
            pc,
            instance: i,
            warp: w
        }),
        (0u8..6, 1u8..4, 0u8..8).prop_map(|(pc, i, w)| Event::Wait { pc, instance: i, warp: w }),
        (0u8..6, 1u8..4, 0u8..8).prop_map(|(pc, i, w)| Event::Pass { pc, instance: i, warp: w }),
        Just(Event::InvalidateLoads),
        (0u8..8).prop_map(|w| Event::Diverge { warp: w }),
        Just(Event::Barrier),
        (0u8..8, 0u8..5).prop_map(|(w, r)| Event::AllocVersion { warp: w, reg: r }),
        (0u8..8, 0u8..5, 1u8..6).prop_map(|(w, r, v)| Event::Bind { warp: w, reg: r, version: v }),
        (0u8..8, 0u8..5).prop_map(|(w, r)| Event::Unbind { warp: w, reg: r }),
        (0u8..8).prop_map(|w| Event::ReleaseWarp { warp: w }),
    ]
}

const CAPACITY: usize = 4;
const RENAME: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn protocol_invariants_hold(events in prop::collection::vec(arb_event(), 0..120)) {
        let mut table = SkipTable::new(CAPACITY);
        let mut rename = RenameState::new(RENAME);
        let mut majority = MajorityMask::new(8);
        let mut stats = DarsieStats::default();
        let mut now = 0u64;

        for e in events {
            now += 1;
            match e {
                Event::Probe { pc, instance, warp } => {
                    let pc = usize::from(pc);
                    let outcome = table.probe(pc, u32::from(instance), &mut stats);
                    if outcome == ProbeOutcome::BecomeLeader && majority.contains(u32::from(warp))
                    {
                        let _ = table.insert_leader(
                            pc,
                            u32::from(instance),
                            u32::from(warp),
                            pc % 2 == 0, // half the PCs are loads
                            now,
                            &mut stats,
                        );
                    }
                }
                Event::Writeback { pc, instance, warp } => {
                    let released = table.leader_writeback(
                        usize::from(pc),
                        u32::from(instance),
                        u32::from(warp),
                        now,
                    );
                    // Released warps must have been registered as waiting.
                    prop_assert_eq!(released & !0xFF, 0, "release outside warp range");
                }
                Event::Wait { pc, instance, warp } => {
                    table.record_wait(usize::from(pc), u32::from(instance), u32::from(warp), now);
                }
                Event::Pass { pc, instance, warp } => {
                    let must = majority.mask();
                    let _ = table.record_pass(
                        usize::from(pc),
                        u32::from(instance),
                        u32::from(warp),
                        must,
                        now,
                    );
                }
                Event::InvalidateLoads => {
                    let (_, waiting) = table.invalidate_loads(&mut stats);
                    prop_assert_eq!(waiting & !0xFF, 0);
                    // No load entries survive.
                    prop_assert!(table.iter().all(|e| !e.is_load));
                }
                Event::Diverge { warp } => {
                    majority.remove(u32::from(warp));
                    rename.release_warp(u32::from(warp));
                    let _ = table.sweep(majority.mask());
                }
                Event::Barrier => majority.reset(),
                Event::AllocVersion { warp, reg } => {
                    let _ = rename.allocate_version(u32::from(warp), reg, &mut stats);
                }
                Event::Bind { warp, reg, version } => {
                    let _ = rename.bind(u32::from(warp), reg, u32::from(version), &mut stats);
                }
                Event::Unbind { warp, reg } => rename.unbind(u32::from(warp), reg),
                Event::ReleaseWarp { warp } => rename.release_warp(u32::from(warp)),
            }

            // --- invariants after every event ---
            prop_assert!(table.len() <= CAPACITY, "table overflows capacity");
            let keys: HashSet<(usize, u32)> =
                table.iter().map(|e| (e.pc, e.instance)).collect();
            prop_assert_eq!(keys.len(), table.len(), "duplicate (pc, instance) entries");
            for e in table.iter() {
                prop_assert_eq!(
                    e.waiting_mask & e.passed_mask & !(1 << e.leader),
                    0,
                    "a non-leader warp cannot both wait and have passed"
                );
            }
            // Physical-register conservation: every live version holds
            // exactly one preg; the rest are free.
            prop_assert_eq!(
                rename.free_regs() + rename.live_versions(),
                RENAME,
                "physical registers leaked or double-freed"
            );
        }
    }

    #[test]
    fn leader_writeback_releases_exactly_the_waiters(
        waiters in prop::collection::hash_set(0u8..8, 0..6)
    ) {
        let mut table = SkipTable::new(4);
        let mut stats = DarsieStats::default();
        prop_assume!(!waiters.contains(&0));
        assert!(table.insert_leader(8, 1, 0, false, 1, &mut stats));
        let mut expect = 0u32;
        for &w in &waiters {
            table.record_wait(8, 1, u32::from(w), 2);
            expect |= 1 << w;
        }
        let released = table.leader_writeback(8, 1, 0, 3);
        prop_assert_eq!(released, expect);
        // Idempotent: a second writeback releases nobody.
        prop_assert_eq!(table.leader_writeback(8, 1, 0, 4), 0);
    }

    #[test]
    fn entry_removal_requires_every_must_pass_warp(
        warps in prop::collection::vec(0u8..6, 1..12)
    ) {
        let mut table = SkipTable::new(4);
        let mut stats = DarsieStats::default();
        let must: u32 = 0b111111;
        assert!(table.insert_leader(0, 1, 0, false, 1, &mut stats));
        let mut passed = 1u32; // leader
        let mut removed = false;
        for w in warps {
            removed = table.record_pass(0, 1, u32::from(w), must, 2);
            passed |= 1 << w;
            if removed {
                break;
            }
        }
        prop_assert_eq!(removed, passed & must == must);
    }
}
