//! Multithreaded register renaming state (paper Section 4.3.1).
//!
//! Three cooperating structures, banked per threadblock:
//!
//! * the **register rename table** maps `<warp, reg#>` to `<reg#, version#>`
//!   (32 entries per TB in the paper's sizing);
//! * the **version table** maps `<reg#, version#>` to a physical register;
//! * the **freelist** hands out physical vector registers from the pool the
//!   kernel launch reserved for renaming.
//!
//! The simulator keeps the actual 32-lane values alongside (it snapshots a
//! leader's result when a follower skips), so this module models
//! *occupancy and accounting*: versions in flight, freelist pressure, and
//! the access counts the energy model charges.

use crate::stats::DarsieStats;
use std::collections::HashMap;

/// A `<reg#, version#>` pair naming one live renamed value.
pub type RegVersion = (u8, u32);

/// Per-threadblock renaming state.
#[derive(Debug, Clone)]
pub struct RenameState {
    /// Physical registers still free for renaming.
    free: Vec<u16>,
    /// Live versions: `<reg, version>` -> (physical register, reference
    /// mask of warps still bound to this version).
    versions: HashMap<RegVersion, (u16, u32)>,
    /// Rename table: per warp, per named register, the bound version.
    bindings: HashMap<(u32, u8), u32>,
    /// Next version number per named register.
    next_version: HashMap<u8, u32>,
    capacity: usize,
}

impl RenameState {
    /// Creates the state with `capacity` physical registers reserved for
    /// renaming (paper: up to 32 per TB). Physical register ids are
    /// allocated `0..capacity` and, in the real design, strided across the
    /// vector RF banks; [`RenameState::bank_of`] reproduces that stride for
    /// the bank-conflict model.
    #[must_use]
    pub fn new(capacity: usize) -> RenameState {
        RenameState {
            free: (0..capacity as u16).rev().collect(),
            versions: HashMap::new(),
            bindings: HashMap::new(),
            next_version: HashMap::new(),
            capacity,
        }
    }

    /// Number of free physical registers.
    #[must_use]
    pub fn free_regs(&self) -> usize {
        self.free.len()
    }

    /// Number of live versions.
    #[must_use]
    pub fn live_versions(&self) -> usize {
        self.versions.len()
    }

    /// Allocates a new version of `reg` for a leader warp. Returns the
    /// `(version, physical register)` pair, or `None` when the freelist is
    /// empty (the caller falls back to normal execution, or synchronizes —
    /// paper Section 4.3.5).
    pub fn allocate_version(
        &mut self,
        leader: u32,
        reg: u8,
        stats: &mut DarsieStats,
    ) -> Option<(u32, u16)> {
        let preg = self.free.pop()?;
        let v = self.next_version.entry(reg).or_insert(0);
        *v += 1;
        let version = *v;
        self.versions.insert((reg, version), (preg, 1 << leader));
        let _ = self.bind(leader, reg, version, stats);
        stats.version_allocations += 1;
        Some((version, preg))
    }

    /// Binds `warp`'s view of `reg` to `version` (a follower skipping the
    /// producing instruction). Unbinds any previous version, possibly
    /// freeing it. Returns the physical register now bound, or `None` when
    /// the version is no longer live (the leader has already moved on and
    /// every reference was dropped; the follower keeps its private copy,
    /// which the simulator materialized from the value snapshot).
    pub fn bind(
        &mut self,
        warp: u32,
        reg: u8,
        version: u32,
        stats: &mut DarsieStats,
    ) -> Option<u16> {
        stats.rename_writes += 1;
        if !self.versions.contains_key(&(reg, version)) {
            // Stale version: drop any previous binding, bind nothing.
            self.unbind(warp, reg);
            return None;
        }
        if let Some(old) = self.bindings.insert((warp, reg), version) {
            if old != version {
                self.unref(reg, old, warp);
            }
        }
        let e = self.versions.get_mut(&(reg, version)).expect("checked live above");
        e.1 |= 1 << warp;
        Some(e.0)
    }

    fn unref(&mut self, reg: u8, version: u32, warp: u32) {
        if let Some(e) = self.versions.get_mut(&(reg, version)) {
            e.1 &= !(1 << warp);
            if e.1 == 0 {
                let (preg, _) = self.versions.remove(&(reg, version)).expect("present");
                self.free.push(preg);
            }
        }
    }

    /// Looks up `warp`'s binding for `reg`, counting the rename-table probe
    /// the DARSIE pipeline performs on every register read.
    pub fn lookup(&self, warp: u32, reg: u8, stats: &mut DarsieStats) -> Option<(u32, u16)> {
        stats.rename_reads += 1;
        let version = *self.bindings.get(&(warp, reg))?;
        let (preg, _) = self.versions.get(&(reg, version))?;
        Some((version, *preg))
    }

    /// Drops `warp`'s binding for `reg` (the warp wrote the register
    /// privately, superseding the shared version). Frees the version when
    /// the last reference goes.
    pub fn unbind(&mut self, warp: u32, reg: u8) {
        if let Some(version) = self.bindings.remove(&(warp, reg)) {
            self.unref(reg, version, warp);
        }
    }

    /// Force-releases a version (undo of a failed leader election).
    /// Removes every warp binding to it and returns the physical register
    /// to the freelist.
    pub fn free_version(&mut self, reg: u8, version: u32) {
        if let Some((preg, _)) = self.versions.remove(&(reg, version)) {
            self.free.push(preg);
        }
        self.bindings.retain(|(_, r), v| !(*r == reg && *v == version));
    }

    /// Releases every binding `warp` holds (the warp diverged off the
    /// majority path — it first copies values to its private space — or
    /// exited). Frees versions that lose their last reference.
    pub fn release_warp(&mut self, warp: u32) {
        let owned: Vec<(u8, u32)> = self
            .bindings
            .iter()
            .filter(|((w, _), _)| *w == warp)
            .map(|((_, r), v)| (*r, *v))
            .collect();
        for (reg, version) in owned {
            self.bindings.remove(&(warp, reg));
            self.unref(reg, version, warp);
        }
    }

    /// The vector-RF bank a renamed physical register lives in, given the
    /// strided allocation of Section 4.3.1.
    #[must_use]
    pub fn bank_of(preg: u16, num_banks: usize) -> usize {
        usize::from(preg) % num_banks
    }

    /// Total capacity of the renaming pool.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> DarsieStats {
        DarsieStats::default()
    }

    #[test]
    fn allocate_bind_free_cycle() {
        let mut r = RenameState::new(4);
        let mut s = stats();
        let (v1, p1) =
            r.allocate_version(0, 5, &mut s).expect("freelist still holds free physical registers");
        assert_eq!(v1, 1);
        assert_eq!(r.free_regs(), 3);
        // Followers bind the same version.
        assert_eq!(r.bind(1, 5, v1, &mut s), Some(p1));
        assert_eq!(r.bind(2, 5, v1, &mut s), Some(p1));
        assert_eq!(r.lookup(1, 5, &mut s), Some((v1, p1)));
        // Second write to the same register creates version 2.
        let (v2, _p2) =
            r.allocate_version(0, 5, &mut s).expect("freelist still holds free physical registers");
        assert_eq!(v2, 2);
        assert_eq!(r.live_versions(), 2, "v1 still referenced by warps 1,2");
        // Warps 1 and 2 move on to v2; v1 is freed.
        r.bind(1, 5, v2, &mut s);
        r.bind(2, 5, v2, &mut s);
        assert_eq!(r.live_versions(), 1);
        assert_eq!(r.free_regs(), 3);
    }

    #[test]
    fn freelist_exhaustion_returns_none() {
        let mut r = RenameState::new(2);
        let mut s = stats();
        assert!(r.allocate_version(0, 1, &mut s).is_some());
        assert!(r.allocate_version(0, 2, &mut s).is_some());
        assert!(r.allocate_version(0, 3, &mut s).is_none(), "pool exhausted");
        assert_eq!(r.free_regs(), 0);
    }

    #[test]
    fn release_warp_frees_orphaned_versions() {
        let mut r = RenameState::new(4);
        let mut s = stats();
        let (v1, _) =
            r.allocate_version(0, 7, &mut s).expect("freelist still holds free physical registers");
        r.bind(1, 7, v1, &mut s);
        r.release_warp(0);
        assert_eq!(r.live_versions(), 1, "warp 1 still holds v1");
        r.release_warp(1);
        assert_eq!(r.live_versions(), 0);
        assert_eq!(r.free_regs(), 4);
        assert_eq!(r.lookup(1, 7, &mut s), None);
    }

    #[test]
    fn rebinding_same_version_does_not_double_free() {
        let mut r = RenameState::new(4);
        let mut s = stats();
        let (v1, _) =
            r.allocate_version(0, 7, &mut s).expect("freelist still holds free physical registers");
        r.bind(1, 7, v1, &mut s);
        r.bind(1, 7, v1, &mut s);
        assert_eq!(r.live_versions(), 1);
        r.release_warp(1);
        assert_eq!(r.live_versions(), 1, "leader still bound");
    }

    #[test]
    fn distinct_registers_version_independently() {
        let mut r = RenameState::new(8);
        let mut s = stats();
        let (va, _) =
            r.allocate_version(0, 1, &mut s).expect("freelist still holds free physical registers");
        let (vb, _) =
            r.allocate_version(0, 2, &mut s).expect("freelist still holds free physical registers");
        assert_eq!(va, 1);
        assert_eq!(vb, 1, "versions are per register name");
        assert_eq!(r.live_versions(), 2);
    }

    #[test]
    fn accounting_counts_reads_and_writes() {
        let mut r = RenameState::new(4);
        let mut s = stats();
        let (v, _) =
            r.allocate_version(0, 3, &mut s).expect("freelist still holds free physical registers");
        r.bind(1, 3, v, &mut s);
        let _ = r.lookup(1, 3, &mut s);
        let _ = r.lookup(2, 3, &mut s);
        assert_eq!(s.version_allocations, 1);
        assert!(s.rename_writes >= 2, "leader bind + follower bind");
        assert_eq!(s.rename_reads, 2);
    }

    #[test]
    fn binding_a_dead_version_is_harmless() {
        let mut r = RenameState::new(2);
        let mut s = stats();
        let (v1, _) =
            r.allocate_version(0, 5, &mut s).expect("freelist still holds free physical registers");
        // Leader moves on; v1 loses its last reference and is freed.
        let (_v2, _) =
            r.allocate_version(0, 5, &mut s).expect("freelist still holds free physical registers");
        assert_eq!(r.live_versions(), 1);
        // A late follower tries to bind the dead version.
        assert_eq!(r.bind(3, 5, v1, &mut s), None);
        assert_eq!(r.lookup(3, 5, &mut s), None);
    }

    #[test]
    fn unbind_releases_single_binding() {
        let mut r = RenameState::new(2);
        let mut s = stats();
        let (v, _) =
            r.allocate_version(0, 3, &mut s).expect("freelist still holds free physical registers");
        r.bind(1, 3, v, &mut s);
        r.unbind(0, 3);
        assert_eq!(r.live_versions(), 1, "warp 1 still bound");
        r.unbind(1, 3);
        assert_eq!(r.live_versions(), 0);
        assert_eq!(r.free_regs(), 2);
        r.unbind(1, 3); // idempotent
    }

    #[test]
    fn free_version_undoes_allocation() {
        let mut r = RenameState::new(2);
        let mut s = stats();
        let (v, _) =
            r.allocate_version(0, 9, &mut s).expect("freelist still holds free physical registers");
        r.free_version(9, v);
        assert_eq!(r.free_regs(), 2);
        assert_eq!(r.live_versions(), 0);
        assert_eq!(r.lookup(0, 9, &mut s), None);
    }

    #[test]
    fn strided_bank_mapping() {
        assert_eq!(RenameState::bank_of(0, 16), 0);
        assert_eq!(RenameState::bank_of(17, 16), 1);
        assert_eq!(RenameState::bank_of(31, 16), 15);
    }
}
