//! Majority-path tracking (paper Section 4.3.3).
//!
//! One bit per warp in the TB indicates whether the warp is still executing
//! on the TB-majority control-flow path. Bits are cleared when a warp
//! deviates from the majority at a synchronized branch (or diverges within
//! itself), and all bits are restored by `__syncthreads()`.

use crate::WarpMask;

/// Majority-path mask for one threadblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityMask {
    mask: WarpMask,
    all: WarpMask,
}

impl MajorityMask {
    /// Creates the mask for a TB with `num_warps` warps, all initially on
    /// the majority path.
    ///
    /// # Panics
    ///
    /// Panics if `num_warps` exceeds 32 (the paper's per-TB warp limit).
    #[must_use]
    pub fn new(num_warps: u32) -> MajorityMask {
        assert!(num_warps <= crate::MAX_WARPS_PER_TB, "at most 32 warps per TB");
        let all = if num_warps == 32 { WarpMask::MAX } else { (1 << num_warps) - 1 };
        MajorityMask { mask: all, all }
    }

    /// The current majority mask.
    #[must_use]
    pub fn mask(&self) -> WarpMask {
        self.mask
    }

    /// True when `warp` is on the majority path.
    #[must_use]
    pub fn contains(&self, warp: u32) -> bool {
        self.mask & (1 << warp) != 0
    }

    /// Removes `warp` from the majority path (divergence).
    pub fn remove(&mut self, warp: u32) {
        self.mask &= !(1 << warp);
    }

    /// Restores every warp to the majority path (`__syncthreads()`,
    /// Section 4.3.3: "These bits are all set back to one upon the
    /// execution of syncthreads instructions").
    pub fn reset(&mut self) {
        self.mask = self.all;
    }

    /// Restricts the full-TB mask after warps exit (so `reset` no longer
    /// revives them).
    pub fn retire(&mut self, warp: u32) {
        self.all &= !(1 << warp);
        self.mask &= !(1 << warp);
    }

    /// Number of warps currently on the majority path.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.mask.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_on_path() {
        let m = MajorityMask::new(4);
        assert_eq!(m.mask(), 0b1111);
        assert_eq!(m.count(), 4);
        assert!(m.contains(3));
    }

    #[test]
    fn thirty_two_warps_do_not_overflow() {
        let m = MajorityMask::new(32);
        assert_eq!(m.mask(), u32::MAX);
    }

    #[test]
    fn remove_and_reset() {
        let mut m = MajorityMask::new(4);
        m.remove(1);
        m.remove(3);
        assert_eq!(m.mask(), 0b0101);
        assert!(!m.contains(1));
        m.reset();
        assert_eq!(m.mask(), 0b1111, "syncthreads restores everyone");
    }

    #[test]
    fn retired_warps_stay_out_after_reset() {
        let mut m = MajorityMask::new(4);
        m.retire(2);
        m.remove(0);
        m.reset();
        assert_eq!(m.mask(), 0b1011, "warp 2 exited; others restored");
    }
}
