//! Activity counters for the DARSIE structures, consumed by the energy
//! model (each counter corresponds to a per-event energy charge).

/// Counters accumulated while DARSIE hardware is active.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DarsieStats {
    /// Skip-table probes issued (after coalescing).
    pub skip_table_probes: u64,
    /// Entries evicted under capacity pressure.
    pub skip_table_evictions: u64,
    /// Leader warps elected (entries created).
    pub leaders_elected: u64,
    /// Instructions skipped by follower warps.
    pub instructions_skipped: u64,
    /// Load entries flushed by stores / global communication (Section 4.4).
    pub load_invalidations: u64,
    /// Rename-table writes (leader allocations and follower rebinds).
    pub rename_writes: u64,
    /// Rename-table read probes (every register read checks it).
    pub rename_reads: u64,
    /// Versions allocated from the freelist.
    pub version_allocations: u64,
    /// Leader elections that failed because the freelist was empty.
    pub freelist_stalls: u64,
    /// Would-be leaders that exhausted the bounded stall
    /// (`max_leader_stall`) and executed the redundant instruction
    /// normally instead of leading.
    pub leader_giveups: u64,
    /// Probes coalesced onto an already-granted PC this cycle.
    pub coalesced_probes: u64,
    /// Probes rejected for lack of skip-table ports (retried next cycle).
    pub coalescer_rejections: u64,
    /// Cycles warps spent stalled waiting for a leader writeback.
    pub wait_for_leader_cycles: u64,
    /// Cycles warps spent stalled at DARSIE branch synchronization.
    pub branch_sync_cycles: u64,
    /// Warps removed from the majority path at branches.
    pub majority_evictions: u64,
    /// Extra register-bank conflicts induced by follower reads of renamed
    /// registers.
    pub rename_bank_conflicts: u64,
}

impl DarsieStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &DarsieStats) {
        self.skip_table_probes += other.skip_table_probes;
        self.skip_table_evictions += other.skip_table_evictions;
        self.leaders_elected += other.leaders_elected;
        self.instructions_skipped += other.instructions_skipped;
        self.load_invalidations += other.load_invalidations;
        self.rename_writes += other.rename_writes;
        self.rename_reads += other.rename_reads;
        self.version_allocations += other.version_allocations;
        self.freelist_stalls += other.freelist_stalls;
        self.leader_giveups += other.leader_giveups;
        self.coalesced_probes += other.coalesced_probes;
        self.coalescer_rejections += other.coalescer_rejections;
        self.wait_for_leader_cycles += other.wait_for_leader_cycles;
        self.branch_sync_cycles += other.branch_sync_cycles;
        self.majority_evictions += other.majority_evictions;
        self.rename_bank_conflicts += other.rename_bank_conflicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = DarsieStats { instructions_skipped: 3, rename_reads: 5, ..Default::default() };
        let b = DarsieStats { instructions_skipped: 4, leaders_elected: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.instructions_skipped, 7);
        assert_eq!(a.leaders_elected, 2);
        assert_eq!(a.rename_reads, 5);
    }
}
