//! The PC skip table (paper Section 4.3.2).
//!
//! One bank per threadblock; each entry tracks a program counter currently
//! being skipped. The paper's five fields map as follows:
//!
//! 1. *PC* — [`SkipEntry::pc`] plus [`SkipEntry::instance`], the dynamic
//!    occurrence number of this PC in the warp's stream (our encoding of
//!    the paper's register version numbers: a PC inside a loop is skipped
//!    once per iteration, and slow warps must match the iteration they are
//!    on);
//! 2. *warps waiting bitmask* — [`SkipEntry::waiting_mask`];
//! 3. *majority-path bitmask* — kept per-TB in
//!    [`MajorityMask`](crate::MajorityMask), not per entry;
//! 4. *IsLoad* — [`SkipEntry::is_load`], cleared entries on stores/atomics
//!    via [`SkipTable::invalidate_loads`];
//! 5. *LeaderWB* — [`SkipEntry::leader_wb`].
//!
//! Entries are removed when every live majority-path warp has passed the
//! instruction, or recycled LRU under capacity pressure (always safe: a
//! warp that misses its skip window simply executes the instruction, which
//! is redundant, hence produces the same value).

use crate::stats::DarsieStats;
use crate::WarpMask;

/// One skip table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkipEntry {
    /// Static instruction index being skipped.
    pub pc: usize,
    /// Dynamic occurrence number (1-based): warps only match entries for
    /// the occurrence they are about to execute.
    pub instance: u32,
    /// Warp slot (within the TB) elected leader.
    pub leader: u32,
    /// True when the instruction is a load from mutable memory; such
    /// entries are flushed by stores and global atomics (Section 4.4).
    pub is_load: bool,
    /// Set once the leader has written the redundant value back; followers
    /// may only skip afterwards.
    pub leader_wb: bool,
    /// Warps currently stalled at this PC waiting for the leader.
    pub waiting_mask: WarpMask,
    /// Warps (leader included) that have passed this occurrence.
    pub passed_mask: WarpMask,
    /// LRU timestamp.
    pub last_use: u64,
    /// Cycle the entry was created (leader elected); the profiler's
    /// leader-election latency is writeback time minus this.
    pub created: u64,
}

/// Result of probing the table when a warp's next fetch PC is skippable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// No entry for this occurrence: the probing warp becomes the leader
    /// and must execute the instruction.
    BecomeLeader,
    /// Entry exists and the leader has written back: skip the instruction.
    Skip,
    /// Entry exists but the leader has not written back yet: stall.
    WaitForLeader,
}

/// A per-threadblock PC skip table bank.
#[derive(Debug, Clone)]
pub struct SkipTable {
    capacity: usize,
    entries: Vec<SkipEntry>,
}

impl SkipTable {
    /// Creates a bank with room for `capacity` entries (paper: 8 per TB).
    #[must_use]
    pub fn new(capacity: usize) -> SkipTable {
        SkipTable { capacity, entries: Vec::with_capacity(capacity) }
    }

    /// The configured capacity of this bank.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over live entries.
    pub fn iter(&self) -> impl Iterator<Item = &SkipEntry> {
        self.entries.iter()
    }

    /// Finds the entry for `(pc, instance)`.
    #[must_use]
    pub fn find(&self, pc: usize, instance: u32) -> Option<&SkipEntry> {
        self.entries.iter().find(|e| e.pc == pc && e.instance == instance)
    }

    fn find_mut(&mut self, pc: usize, instance: u32) -> Option<&mut SkipEntry> {
        self.entries.iter_mut().find(|e| e.pc == pc && e.instance == instance)
    }

    /// Probes the table for warp `warp` about to execute occurrence
    /// `instance` of `pc`. Does not mutate state; the caller follows up
    /// with [`SkipTable::insert_leader`], [`SkipTable::record_pass`] or
    /// [`SkipTable::record_wait`] according to the outcome.
    #[must_use]
    pub fn probe(&self, pc: usize, instance: u32, stats: &mut DarsieStats) -> ProbeOutcome {
        stats.skip_table_probes += 1;
        match self.find(pc, instance) {
            None => ProbeOutcome::BecomeLeader,
            Some(e) if e.leader_wb => ProbeOutcome::Skip,
            Some(_) => ProbeOutcome::WaitForLeader,
        }
    }

    /// Installs a new entry with `warp` as leader, evicting the LRU entry
    /// if the bank is full. Returns false (and installs nothing) when the
    /// bank is full and every entry was used this very cycle.
    pub fn insert_leader(
        &mut self,
        pc: usize,
        instance: u32,
        warp: u32,
        is_load: bool,
        now: u64,
        stats: &mut DarsieStats,
    ) -> bool {
        debug_assert!(self.find(pc, instance).is_none(), "duplicate skip entry");
        if self.entries.len() >= self.capacity {
            // Recycle the least recently used entry. Warps that lose their
            // window will execute the (redundant) instruction themselves.
            // Entries with stalled followers are pinned: evicting them
            // would strand the waiters.
            let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.last_use < now && e.waiting_mask == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
            else {
                return false;
            };
            self.entries.swap_remove(lru);
            stats.skip_table_evictions += 1;
        }
        self.entries.push(SkipEntry {
            pc,
            instance,
            leader: warp,
            is_load,
            leader_wb: false,
            waiting_mask: 0,
            passed_mask: 1 << warp,
            last_use: now,
            created: now,
        });
        stats.leaders_elected += 1;
        true
    }

    /// Marks the leader's writeback complete, releasing waiting followers.
    /// Returns the mask of warps that were waiting (now free to skip).
    ///
    /// The writeback is ignored unless `warp` still matches the entry's
    /// leader: after a load entry is flushed by a store and re-created, a
    /// stale writeback from the original leader must not unlock followers
    /// before the new leader produced a fresh value.
    pub fn leader_writeback(&mut self, pc: usize, instance: u32, warp: u32, now: u64) -> WarpMask {
        if let Some(e) = self.find_mut(pc, instance) {
            if e.leader != warp {
                return 0;
            }
            e.leader_wb = true;
            e.last_use = now;
            std::mem::take(&mut e.waiting_mask)
        } else {
            0
        }
    }

    /// Records that `warp` is stalled at this entry waiting for the leader.
    /// A warp that already passed this occurrence cannot be waiting on it;
    /// such requests are ignored (defensive hardware).
    pub fn record_wait(&mut self, pc: usize, instance: u32, warp: u32, now: u64) {
        if let Some(e) = self.find_mut(pc, instance) {
            if e.passed_mask & (1 << warp) == 0 {
                e.waiting_mask |= 1 << warp;
            }
            e.last_use = now;
        }
    }

    /// Records that `warp` skipped (or redundantly executed) this
    /// occurrence; removes the entry once every warp in `must_pass` has
    /// passed. Returns true if the entry was removed.
    pub fn record_pass(
        &mut self,
        pc: usize,
        instance: u32,
        warp: u32,
        must_pass: WarpMask,
        now: u64,
    ) -> bool {
        let Some(idx) = self.entries.iter().position(|e| e.pc == pc && e.instance == instance)
        else {
            return false;
        };
        let e = &mut self.entries[idx];
        e.passed_mask |= 1 << warp;
        e.waiting_mask &= !(1 << warp);
        e.last_use = now;
        if e.passed_mask & must_pass == must_pass {
            self.entries.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// Re-evaluates entry liveness after the majority mask shrank (a warp
    /// diverged or exited): entries everyone remaining has passed are
    /// dropped. Returns how many entries were removed.
    pub fn sweep(&mut self, must_pass: WarpMask) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.passed_mask & must_pass != must_pass);
        before - self.entries.len()
    }

    /// Removes load entries (paper Section 4.4): on a store by this TB, or
    /// on a global communication primitive anywhere on the SM. Returns the
    /// number of entries flushed, and the mask of warps that were waiting
    /// on them (they resume and execute the loads themselves).
    pub fn invalidate_loads(&mut self, stats: &mut DarsieStats) -> (usize, WarpMask) {
        let mut released = 0;
        let mut waiting = 0;
        self.entries.retain(|e| {
            if e.is_load {
                released += 1;
                waiting |= e.waiting_mask;
                false
            } else {
                true
            }
        });
        stats.load_invalidations += released as u64;
        (released, waiting)
    }

    /// Drops every entry (TB completion). Returns waiting warps.
    pub fn clear(&mut self) -> WarpMask {
        let waiting = self.entries.iter().fold(0, |m, e| m | e.waiting_mask);
        self.entries.clear();
        waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> DarsieStats {
        DarsieStats::default()
    }

    #[test]
    fn leader_then_followers_protocol() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        // Warp 0 probes first: becomes leader.
        assert_eq!(t.probe(4, 1, &mut s), ProbeOutcome::BecomeLeader);
        assert!(t.insert_leader(4, 1, 0, false, 10, &mut s));
        // Warp 1 arrives before writeback: must wait.
        assert_eq!(t.probe(4, 1, &mut s), ProbeOutcome::WaitForLeader);
        t.record_wait(4, 1, 1, 11);
        // Leader writes back; warp 1 is released.
        let released = t.leader_writeback(4, 1, 0, 12);
        assert_eq!(released, 0b10);
        // Warp 1 and 2 now skip.
        assert_eq!(t.probe(4, 1, &mut s), ProbeOutcome::Skip);
        assert!(!t.record_pass(4, 1, 1, 0b111, 13));
        assert!(t.record_pass(4, 1, 2, 0b111, 14), "last warp removes entry");
        assert!(t.is_empty());
        assert_eq!(s.leaders_elected, 1);
        assert_eq!(s.skip_table_probes, 3);
    }

    #[test]
    fn instances_distinguish_loop_iterations() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        assert!(t.insert_leader(4, 1, 0, false, 1, &mut s));
        t.leader_writeback(4, 1, 0, 1);
        // A fast warp 0 on iteration 2 creates a second instance while
        // iteration 1's entry is still live for slow warps.
        assert_eq!(t.probe(4, 2, &mut s), ProbeOutcome::BecomeLeader);
        assert!(t.insert_leader(4, 2, 0, false, 2, &mut s));
        assert_eq!(t.len(), 2);
        // A slow warp on iteration 1 still skips the right version.
        assert_eq!(t.probe(4, 1, &mut s), ProbeOutcome::Skip);
    }

    #[test]
    fn entries_with_waiters_are_never_evicted() {
        let mut t = SkipTable::new(1);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, false, 1, &mut s));
        t.record_wait(0, 1, 2, 2);
        assert!(!t.insert_leader(8, 1, 1, false, 9, &mut s), "pinned by waiter");
        assert!(t.find(0, 1).is_some());
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        let mut t = SkipTable::new(2);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, false, 1, &mut s));
        assert!(t.insert_leader(8, 1, 0, false, 2, &mut s));
        // Third entry evicts pc=0 (older use).
        assert!(t.insert_leader(16, 1, 0, false, 3, &mut s));
        assert_eq!(t.len(), 2);
        assert!(t.find(0, 1).is_none());
        assert!(t.find(8, 1).is_some());
        assert_eq!(s.skip_table_evictions, 1);
    }

    #[test]
    fn insert_fails_when_all_entries_are_current() {
        let mut t = SkipTable::new(1);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, false, 5, &mut s));
        // Same-cycle insert cannot evict the entry just used.
        assert!(!t.insert_leader(8, 1, 1, false, 5, &mut s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn store_invalidation_flushes_loads_only() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, true, 1, &mut s));
        assert!(t.insert_leader(8, 1, 0, false, 1, &mut s));
        assert!(t.insert_leader(16, 1, 0, true, 1, &mut s));
        t.record_wait(16, 1, 3, 2);
        let (flushed, waiting) = t.invalidate_loads(&mut s);
        assert_eq!(flushed, 2);
        assert_eq!(waiting, 0b1000, "warp 3 resumes to execute the load itself");
        assert_eq!(t.len(), 1);
        assert!(t.find(8, 1).is_some());
        assert_eq!(s.load_invalidations, 2);
    }

    #[test]
    fn sweep_drops_entries_after_divergence() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, false, 1, &mut s));
        t.leader_writeback(0, 1, 0, 1);
        assert!(!t.record_pass(0, 1, 1, 0b111, 2));
        // Warp 2 diverges off the majority path; remaining warps {0,1}
        // have both passed.
        assert_eq!(t.sweep(0b011), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn clear_reports_waiting_warps() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, false, 1, &mut s));
        t.record_wait(0, 1, 2, 2);
        t.record_wait(0, 1, 3, 2);
        assert_eq!(t.clear(), 0b1100);
        assert!(t.is_empty());
    }

    #[test]
    fn stale_leader_writeback_is_ignored() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, true, 1, &mut s));
        // Store flushes the load entry; warp 2 re-leads the same instance.
        let _ = t.invalidate_loads(&mut s);
        assert!(t.insert_leader(0, 1, 2, true, 2, &mut s));
        t.record_wait(0, 1, 3, 3);
        // The original leader's writeback arrives late: must not unlock.
        assert_eq!(t.leader_writeback(0, 1, 0, 4), 0);
        assert_eq!(t.probe(0, 1, &mut s), ProbeOutcome::WaitForLeader);
        // The new leader's writeback does.
        assert_eq!(t.leader_writeback(0, 1, 2, 5), 0b1000);
    }

    #[test]
    fn waiting_warp_released_by_record_pass() {
        let mut t = SkipTable::new(8);
        let mut s = stats();
        assert!(t.insert_leader(0, 1, 0, false, 1, &mut s));
        t.record_wait(0, 1, 1, 2);
        t.leader_writeback(0, 1, 0, 3);
        assert!(t.record_pass(0, 1, 1, 0b011, 4), "entry removed once all pass");
    }
}
