//! The PC coalescer (paper Section 4.3.4).
//!
//! Multiple warps of a TB typically reach the same skippable PC in the same
//! cycle. Like the global-memory coalescer merges addresses into cache
//! lines, the PC coalescer merges exact-PC matches into one skip-table
//! access, keeping the table's read-port requirement at two.

use crate::stats::DarsieStats;

/// Port-limited coalescer for skip-table probes.
///
/// Each cycle, call [`PcCoalescer::begin_cycle`], then [`PcCoalescer::request`]
/// for every warp that wants to probe a PC. A request is granted when its
/// PC already holds a port this cycle (coalesced) or a free port remains.
#[derive(Debug, Clone)]
pub struct PcCoalescer {
    ports: usize,
    granted_pcs: Vec<usize>,
}

impl PcCoalescer {
    /// A coalescer in front of a table with `ports` read ports (paper: 2).
    #[must_use]
    pub fn new(ports: usize) -> PcCoalescer {
        PcCoalescer { ports, granted_pcs: Vec::with_capacity(ports) }
    }

    /// Resets the per-cycle port allocation.
    pub fn begin_cycle(&mut self) {
        self.granted_pcs.clear();
    }

    /// Requests a probe of `pc`; returns true when granted this cycle.
    pub fn request(&mut self, pc: usize, stats: &mut DarsieStats) -> bool {
        if self.granted_pcs.contains(&pc) {
            stats.coalesced_probes += 1;
            return true;
        }
        if self.granted_pcs.len() < self.ports {
            self.granted_pcs.push(pc);
            true
        } else {
            stats.coalescer_rejections += 1;
            false
        }
    }

    /// Number of distinct PCs served this cycle.
    #[must_use]
    pub fn distinct_pcs(&self) -> usize {
        self.granted_pcs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pc_coalesces_beyond_port_count() {
        let mut c = PcCoalescer::new(2);
        let mut s = DarsieStats::default();
        c.begin_cycle();
        for _ in 0..8 {
            assert!(c.request(64, &mut s));
        }
        assert_eq!(c.distinct_pcs(), 1);
        assert_eq!(s.coalesced_probes, 7);
        assert_eq!(s.coalescer_rejections, 0);
    }

    #[test]
    fn distinct_pcs_limited_by_ports() {
        let mut c = PcCoalescer::new(2);
        let mut s = DarsieStats::default();
        c.begin_cycle();
        assert!(c.request(0, &mut s));
        assert!(c.request(8, &mut s));
        assert!(!c.request(16, &mut s), "third distinct PC rejected");
        assert!(c.request(8, &mut s), "but coalescing still works");
        assert_eq!(s.coalescer_rejections, 1);
    }

    #[test]
    fn begin_cycle_resets_ports() {
        let mut c = PcCoalescer::new(1);
        let mut s = DarsieStats::default();
        c.begin_cycle();
        assert!(c.request(0, &mut s));
        assert!(!c.request(8, &mut s));
        c.begin_cycle();
        assert!(c.request(8, &mut s), "fresh cycle, fresh ports");
    }
}
