//! The DARSIE microarchitecture structures (paper Section 4.3).
//!
//! These are the hardware blocks Figure 7 adds to the baseline SM:
//!
//! * [`SkipTable`] — the PC skip table that tracks the program counters
//!   currently being skipped, one bank per threadblock (Section 4.3.2);
//! * [`PcCoalescer`] — merges same-PC probes from multiple warps in one
//!   cycle so the skip table needs only two read ports (Section 4.3.4);
//! * [`RenameState`] — the register rename table, version table and
//!   physical-register freelist that let follower warps read leader values
//!   (Section 4.3.1);
//! * [`MajorityMask`] — one bit per warp marking who is on the TB-majority
//!   control-flow path (Section 4.3.3);
//! * [`DarsieConfig`] / [`DarsieStats`] — knobs and activity counters
//!   consumed by the timing and energy models.
//!
//! The structures are pure state machines: the GPU simulator drives them
//! from its fetch stage and attaches the architectural values. This keeps
//! every transition unit-testable in isolation.

pub mod coalescer;
pub mod config;
pub mod majority;
pub mod rename;
pub mod skip_table;
pub mod stats;

pub use coalescer::PcCoalescer;
pub use config::DarsieConfig;
pub use majority::MajorityMask;
pub use rename::RenameState;
pub use skip_table::{ProbeOutcome, SkipEntry, SkipTable};
pub use stats::DarsieStats;

/// A set of warps within one threadblock, one bit per warp slot (the paper
/// allows at most 32 warps per TB, hence a `u32`).
pub type WarpMask = u32;

/// Maximum warps per threadblock supported by the mask width.
pub const MAX_WARPS_PER_TB: u32 = 32;
