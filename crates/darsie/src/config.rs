//! Configuration of the DARSIE hardware.

/// Sizing and policy knobs for the DARSIE structures. Defaults match the
/// paper's evaluation (Sections 5 and 6.3).
#[derive(Debug, Clone, PartialEq)]
pub struct DarsieConfig {
    /// PC skip table entries per threadblock (paper: 8, replaced
    /// dynamically).
    pub skip_entries_per_tb: usize,
    /// Physical vector registers reserved per threadblock for renaming
    /// (paper: up to 32).
    pub rename_regs_per_tb: usize,
    /// Read ports on the PC skip table; the PC coalescer keeps the
    /// requirement at 2 (paper Section 4.3.4).
    pub skip_table_ports: usize,
    /// Maximum redundant instructions one warp can skip per cycle (each
    /// skip is a `pc += 8`; bounded by the adders of Figure 7).
    pub max_skips_per_warp_cycle: usize,
    /// Cycles a would-be leader waits for skip-table/renaming resources
    /// before giving up and executing the (redundant) instruction
    /// normally. Give-ups are counted in
    /// [`DarsieStats::leader_giveups`](crate::DarsieStats::leader_giveups).
    pub max_leader_stall: u32,
    /// Do not invalidate load entries when stores execute
    /// (the paper's `DARSIE-IGNORE-STORE` variant, Figure 8).
    pub ignore_store: bool,
    /// Disable TB-wide synchronization at branches
    /// (the paper's `DARSIE-NO-CF-SYNC` idealized variant, Figure 12).
    pub no_cf_sync: bool,
    /// Use register versioning (the paper's option 2, Section 4.1). When
    /// false, every write to a TB-redundant register synchronizes the TB
    /// (option 1) — the ablation of DESIGN.md.
    pub versioning: bool,
}

impl Default for DarsieConfig {
    fn default() -> DarsieConfig {
        DarsieConfig {
            skip_entries_per_tb: 8,
            rename_regs_per_tb: 32,
            skip_table_ports: 2,
            max_skips_per_warp_cycle: 4,
            max_leader_stall: 64,
            ignore_store: false,
            no_cf_sync: false,
            versioning: true,
        }
    }
}

impl DarsieConfig {
    /// The paper's `DARSIE-IGNORE-STORE` variant.
    #[must_use]
    pub fn ignore_store() -> DarsieConfig {
        DarsieConfig { ignore_store: true, ..DarsieConfig::default() }
    }

    /// The paper's `DARSIE-NO-CF-SYNC` idealized variant.
    #[must_use]
    pub fn no_cf_sync() -> DarsieConfig {
        DarsieConfig { no_cf_sync: true, ..DarsieConfig::default() }
    }

    /// The write-synchronization ablation (versioning disabled).
    #[must_use]
    pub fn no_versioning() -> DarsieConfig {
        DarsieConfig { versioning: false, ..DarsieConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DarsieConfig::default();
        assert_eq!(c.skip_entries_per_tb, 8);
        assert_eq!(c.rename_regs_per_tb, 32);
        assert_eq!(c.skip_table_ports, 2);
        assert_eq!(c.max_leader_stall, 64);
        assert!(!c.ignore_store);
        assert!(!c.no_cf_sync);
        assert!(c.versioning);
    }

    #[test]
    fn variants() {
        assert!(DarsieConfig::ignore_store().ignore_store);
        assert!(DarsieConfig::no_cf_sync().no_cf_sync);
        assert!(!DarsieConfig::no_versioning().versioning);
    }
}
