//! Energy and area models for the DARSIE reproduction.
//!
//! * [`energy`] — a GPUWattch-style activity-based energy model: every
//!   counter in [`gpu_sim::SimStats`] is multiplied by a per-event energy,
//!   plus per-cycle static power. The register-file energies are the
//!   paper's Table 2 values (14.2 pJ/read, 25.9 pJ/write); the remaining
//!   coefficients are GPUWattch-magnitude estimates. Absolute joules are
//!   not meaningful — ratios against the baseline are what Figure 11
//!   reports.
//! * [`area`] — the paper's Section 6.3 bit-level arithmetic for the PC
//!   skip table, majority-path masks and rename/version tables.

pub mod area;
pub mod energy;

pub use area::{AreaEstimate, AreaParams};
pub use energy::{EnergyBreakdown, EnergyModel};
