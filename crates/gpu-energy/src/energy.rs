//! Activity-based energy accounting (GPUWattch substitute).

use gpu_sim::SimStats;

/// Per-event energies in picojoules. Defaults follow the paper's Table 2
/// register-file numbers and GPUWattch-magnitude estimates elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// I-cache probe (per fetch access).
    pub icache_access_pj: f64,
    /// Decode energy per fetched instruction.
    pub decode_pj: f64,
    /// Vector register file read (paper: 14.2 pJ).
    pub rf_read_pj: f64,
    /// Vector register file write (paper: 25.9 pJ).
    pub rf_write_pj: f64,
    /// 32-lane integer/FP operation on the SP units.
    pub alu_op_pj: f64,
    /// 32-lane SFU operation.
    pub sfu_op_pj: f64,
    /// L1 data-cache access per 128-byte transaction.
    pub l1_access_pj: f64,
    /// L2 access per transaction.
    pub l2_access_pj: f64,
    /// DRAM access per 128-byte transaction.
    pub dram_access_pj: f64,
    /// Shared-memory access (per instruction, plus per-conflict replay).
    pub smem_access_pj: f64,
    /// Atomic operation at the L2.
    pub atomic_pj: f64,
    /// Static/leakage energy per SM per cycle.
    pub static_per_sm_cycle_pj: f64,
    /// Number of SMs (for static energy).
    pub num_sms: f64,
    // --- DARSIE structure overheads (small SRAMs, CACTI-magnitude) ---
    /// PC skip table probe.
    pub skip_probe_pj: f64,
    /// Rename-table read probe.
    pub rename_read_pj: f64,
    /// Rename-table / version-table write.
    pub rename_write_pj: f64,
    /// Majority-mask / skip bookkeeping per skipped instruction.
    pub skip_bookkeeping_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            icache_access_pj: 58.0,
            decode_pj: 18.0,
            rf_read_pj: 14.2,
            rf_write_pj: 25.9,
            alu_op_pj: 65.0,
            sfu_op_pj: 320.0,
            l1_access_pj: 140.0,
            l2_access_pj: 460.0,
            dram_access_pj: 1900.0,
            smem_access_pj: 90.0,
            atomic_pj: 500.0,
            static_per_sm_cycle_pj: 380.0,
            num_sms: 28.0,
            skip_probe_pj: 2.1,
            rename_read_pj: 0.9,
            rename_write_pj: 1.8,
            skip_bookkeeping_pj: 1.1,
        }
    }
}

/// Energy totals by component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Frontend: I-cache probes + decode.
    pub frontend: f64,
    /// Register file reads and writes.
    pub register_file: f64,
    /// SP + SFU execution.
    pub execute: f64,
    /// Global memory system (L1/L2/DRAM) + atomics.
    pub memory: f64,
    /// Shared memory.
    pub shared_memory: f64,
    /// Static/leakage.
    pub static_energy: f64,
    /// DARSIE-added structures.
    pub darsie_overhead: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.frontend
            + self.register_file
            + self.execute
            + self.memory
            + self.shared_memory
            + self.static_energy
            + self.darsie_overhead
    }

    /// Dynamic (non-static) energy.
    #[must_use]
    pub fn dynamic(&self) -> f64 {
        self.total() - self.static_energy
    }
}

impl EnergyModel {
    /// The model for a machine with `num_sms` SMs.
    #[must_use]
    pub fn with_sms(num_sms: usize) -> EnergyModel {
        EnergyModel { num_sms: num_sms as f64, ..EnergyModel::default() }
    }

    /// Evaluates a simulation run.
    #[must_use]
    pub fn evaluate(&self, stats: &SimStats) -> EnergyBreakdown {
        let s = stats;
        let frontend = s.icache_accesses as f64 * self.icache_access_pj
            + s.instrs_fetched as f64 * self.decode_pj;
        let register_file =
            s.rf_reads as f64 * self.rf_read_pj + s.rf_writes as f64 * self.rf_write_pj;
        let execute = s.alu_ops as f64 * self.alu_op_pj + s.sfu_ops as f64 * self.sfu_op_pj;
        let memory = (s.l1_hits + s.l1_misses) as f64 * self.l1_access_pj
            + (s.l2_hits + s.l2_misses) as f64 * self.l2_access_pj
            + s.l2_misses as f64 * self.dram_access_pj
            + s.atomic_ops as f64 * self.atomic_pj;
        let shared_memory = (s.smem_ops + s.smem_bank_conflicts) as f64 * self.smem_access_pj;
        let static_energy = s.cycles as f64 * self.static_per_sm_cycle_pj * self.num_sms;
        let d = &s.darsie;
        let darsie_overhead = d.skip_table_probes as f64 * self.skip_probe_pj
            + d.rename_reads as f64 * self.rename_read_pj
            + (d.rename_writes + d.version_allocations) as f64 * self.rename_write_pj
            + d.instructions_skipped as f64 * self.skip_bookkeeping_pj;
        EnergyBreakdown {
            frontend,
            register_file,
            execute,
            memory,
            shared_memory,
            static_energy,
            darsie_overhead,
        }
    }

    /// Percent energy reduction of `technique` relative to `baseline`
    /// (positive = saving), as plotted in Figure 11.
    #[must_use]
    pub fn reduction_percent(&self, baseline: &SimStats, technique: &SimStats) -> f64 {
        let b = self.evaluate(baseline).total();
        let t = self.evaluate(technique).total();
        if b == 0.0 {
            0.0
        } else {
            (1.0 - t / b) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SimStats;

    fn stats_with(executed: u64, fetched: u64, cycles: u64) -> SimStats {
        SimStats {
            cycles,
            instrs_fetched: fetched,
            instrs_executed: executed,
            icache_accesses: fetched / 2,
            rf_reads: executed * 2,
            rf_writes: executed,
            alu_ops: executed,
            ..SimStats::default()
        }
    }

    #[test]
    fn fewer_instructions_and_cycles_means_less_energy() {
        let m = EnergyModel::default();
        let base = stats_with(1000, 1000, 500);
        let better = stats_with(700, 700, 350);
        let red = m.reduction_percent(&base, &better);
        assert!(red > 20.0 && red < 40.0, "reduction {red}");
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let m = EnergyModel::default();
        let st = stats_with(100, 100, 50);
        let b = m.evaluate(&st);
        let parts = b.frontend
            + b.register_file
            + b.execute
            + b.memory
            + b.shared_memory
            + b.static_energy
            + b.darsie_overhead;
        assert!((b.total() - parts).abs() < 1e-9);
        assert!(b.dynamic() < b.total());
        assert!(b.frontend > 0.0 && b.register_file > 0.0 && b.execute > 0.0);
    }

    #[test]
    fn darsie_overhead_is_small_fraction_of_dynamic() {
        // Mirror the paper's claim: the added structures cost well under
        // 1% of dynamic energy for realistic activity mixes.
        let m = EnergyModel::default();
        let mut st = stats_with(10_000, 8_000, 4_000);
        st.darsie.skip_table_probes = 2_000;
        st.darsie.rename_reads = 20_000;
        st.darsie.rename_writes = 2_000;
        st.darsie.instructions_skipped = 2_000;
        let b = m.evaluate(&st);
        let frac = b.darsie_overhead / b.dynamic();
        assert!(frac < 0.05, "overhead fraction {frac}");
        assert!(b.darsie_overhead > 0.0);
    }

    #[test]
    fn identical_stats_give_zero_reduction() {
        let m = EnergyModel::default();
        let st = stats_with(100, 100, 10);
        assert!(m.reduction_percent(&st, &st).abs() < 1e-12);
    }
}
