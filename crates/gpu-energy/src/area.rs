//! The paper's Section 6.3 area estimate, reproduced bit for bit.
//!
//! One PC skip table entry is 82 bits (48-bit PC + 32-bit warp mask +
//! IsLoad + LeaderWB); eight entries per TB and 32 TBs per SM give 256
//! entries. The majority-path mask is 32 bits per TB. Each rename/version
//! entry is 21 bits (8-bit named register + 8-bit physical tag + 5-bit
//! version), 32 entries per TB. Altogether 5.31 kB — about 2.1% of the
//! Pascal SM register file.

/// Sizing inputs (paper defaults via [`AreaParams::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaParams {
    /// PC width in bits.
    pub pc_bits: u32,
    /// Maximum warps per TB (warp-mask width).
    pub warps_per_tb: u32,
    /// Skip-table entries per TB.
    pub skip_entries_per_tb: u32,
    /// Maximum TBs per SM.
    pub tbs_per_sm: u32,
    /// Rename/version entries per TB.
    pub rename_entries_per_tb: u32,
    /// Bits to name an architectural register (CUDA: 255 names).
    pub reg_name_bits: u32,
    /// Bits for the physical register tag.
    pub preg_bits: u32,
    /// Bits for the version number.
    pub version_bits: u32,
    /// Vector registers per SM (for the percentage-of-RF figure).
    pub vector_regs_per_sm: u32,
    /// Bytes per vector register (32 lanes x 4 B).
    pub vector_reg_bytes: u32,
}

impl Default for AreaParams {
    fn default() -> AreaParams {
        AreaParams {
            pc_bits: 48,
            warps_per_tb: 32,
            skip_entries_per_tb: 8,
            tbs_per_sm: 32,
            rename_entries_per_tb: 32,
            reg_name_bits: 8,
            preg_bits: 8,
            version_bits: 5,
            vector_regs_per_sm: 2048,
            vector_reg_bytes: 128,
        }
    }
}

/// Computed area figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Bits of one skip-table entry.
    pub skip_entry_bits: u32,
    /// Total skip-table bits per SM.
    pub skip_table_bits: u64,
    /// Majority-path mask bits per SM.
    pub majority_mask_bits: u64,
    /// Rename + version table bits per SM.
    pub rename_table_bits: u64,
    /// Total added bytes per SM.
    pub total_bytes: f64,
    /// Fraction of the SM register file (percent).
    pub percent_of_rf: f64,
}

impl AreaEstimate {
    /// Evaluates the estimate for `p`.
    #[must_use]
    pub fn compute(p: &AreaParams) -> AreaEstimate {
        // PC + warps-waiting mask + IsLoad + LeaderWB.
        let skip_entry_bits = p.pc_bits + p.warps_per_tb + 1 + 1;
        let skip_entries = u64::from(p.skip_entries_per_tb) * u64::from(p.tbs_per_sm);
        let skip_table_bits = u64::from(skip_entry_bits) * skip_entries;
        let majority_mask_bits = u64::from(p.warps_per_tb) * u64::from(p.tbs_per_sm);
        let rename_entry_bits = p.reg_name_bits + p.preg_bits + p.version_bits;
        let rename_table_bits = u64::from(rename_entry_bits)
            * u64::from(p.rename_entries_per_tb)
            * u64::from(p.tbs_per_sm);
        let total_bits = skip_table_bits + majority_mask_bits + rename_table_bits;
        let total_bytes = total_bits as f64 / 8.0;
        let rf_bytes = f64::from(p.vector_regs_per_sm) * f64::from(p.vector_reg_bytes);
        AreaEstimate {
            skip_entry_bits,
            skip_table_bits,
            majority_mask_bits,
            rename_table_bits,
            total_bytes,
            percent_of_rf: total_bytes / rf_bytes * 100.0,
        }
    }

    /// Renders the Section-6.3 style report.
    #[must_use]
    pub fn report(&self) -> String {
        format!(
            "PC skip table entry: {} bits\n\
             PC skip table:       {} bits ({} bytes)\n\
             Majority path masks: {} bits ({} bytes)\n\
             Rename/version:      {} bits ({} bytes)\n\
             Total:               {:.2} kB ({:.1}% of the SM register file)",
            self.skip_entry_bits,
            self.skip_table_bits,
            self.skip_table_bits / 8,
            self.majority_mask_bits,
            self.majority_mask_bits / 8,
            self.rename_table_bits,
            self.rename_table_bits / 8,
            self.total_bytes / 1024.0,
            self.percent_of_rf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_section_6_3_numbers() {
        let a = AreaEstimate::compute(&AreaParams::default());
        assert_eq!(a.skip_entry_bits, 82);
        // 82 bits x 256 entries.
        assert_eq!(a.skip_table_bits, 20_992);
        assert_eq!(a.skip_table_bits / 8, 2_624, "2624 bytes");
        assert_eq!(a.majority_mask_bits, 1_024);
        assert_eq!(a.majority_mask_bits / 8, 128, "128 bytes");
        // 21 bits x 32 entries x 32 TBs.
        assert_eq!(a.rename_table_bits, 21_504);
        assert_eq!(a.rename_table_bits / 8, 2_688, "2688 bytes");
        // 5.31 kB total, 2.1% of the 256 KB register file.
        assert!((a.total_bytes / 1024.0 - 5.3125).abs() < 1e-9);
        assert!((a.percent_of_rf - 2.075).abs() < 0.01);
    }

    #[test]
    fn report_contains_headline_numbers() {
        let r = AreaEstimate::compute(&AreaParams::default()).report();
        assert!(r.contains("82 bits"), "{r}");
        assert!(r.contains("5.31 kB"), "{r}");
        assert!(r.contains("2624"), "{r}");
    }

    #[test]
    fn area_scales_with_entries() {
        let p = AreaParams { skip_entries_per_tb: 16, ..AreaParams::default() };
        let a = AreaEstimate::compute(&p);
        assert_eq!(a.skip_table_bits, 41_984);
    }
}
