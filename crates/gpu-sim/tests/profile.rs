//! Cycle-accounting integration tests: the identity on real runs, a
//! pinned fixture breakdown, and the disabled-by-default contract.

use gpu_sim::mem::GlobalMemory;
use gpu_sim::{Gpu, GpuConfig, SlotCounts, StallCause, Technique};
use simt_isa::{KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

/// out[tid.y*16+tid.x] = in[tid.x] * 2: the tid.x chain is TB-redundant
/// under a 16x16 block, so DARSIE has work to do.
fn scale2d() -> simt_compiler::CompiledKernel {
    let mut b = KernelBuilder::new("scale2d");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let ntx = b.special(SpecialReg::NtidX);
    let inp = b.param(0);
    let outp = b.param(1);
    let off_in = b.shl_imm(tx, 2);
    let a_in = b.iadd(inp, off_in);
    let v = b.load(MemSpace::Global, a_in, 0);
    let v2 = b.iadd(v, v);
    let lin = b.imad(ty, ntx, tx);
    let off_out = b.shl_imm(lin, 2);
    let a_out = b.iadd(outp, off_out);
    b.store(MemSpace::Global, a_out, v2, 0);
    simt_compiler::compile(b.finish())
}

fn run(technique: Technique) -> gpu_sim::SimResult {
    let ck = scale2d();
    let mut mem = GlobalMemory::new();
    let a_in = mem.alloc(16 * 4);
    let a_out = mem.alloc(256 * 4);
    mem.write_slice_u32(a_in, &(0..16u32).map(|i| 100 + i).collect::<Vec<_>>());
    let launch = LaunchConfig::new(2u32, (16u32, 16u32))
        .with_params(vec![Value(a_in as u32), Value(a_out as u32)]);
    let cfg = GpuConfig { profile: true, ..GpuConfig::test_small() };
    Gpu::new(cfg, technique).launch(&ck, &launch, mem)
}

/// Collapses a profile into (cycles, merged slot counts) for pinning.
fn summarize(res: &gpu_sim::SimResult) -> (u64, SlotCounts) {
    let prof = res.profile.as_ref().expect("profiling enabled");
    prof.check_identity().expect("accounting identity");
    (res.cycles, prof.slots())
}

#[test]
fn profile_is_none_when_disabled() {
    let ck = scale2d();
    let mut mem = GlobalMemory::new();
    let a_in = mem.alloc(16 * 4);
    let a_out = mem.alloc(256 * 4);
    mem.write_slice_u32(a_in, &(0..16u32).collect::<Vec<_>>());
    let launch = LaunchConfig::new(2u32, (16u32, 16u32))
        .with_params(vec![Value(a_in as u32), Value(a_out as u32)]);
    let res = Gpu::new(GpuConfig::test_small(), Technique::Base).launch(&ck, &launch, mem);
    assert!(res.profile.is_none());
}

#[test]
fn issued_slots_crosscheck_executed_plus_reused() {
    for tech in [Technique::Base, Technique::Uv, Technique::darsie()] {
        let res = run(tech.clone());
        let (_, slots) = summarize(&res);
        assert_eq!(
            slots.get(StallCause::Issued),
            res.stats.instrs_executed + res.stats.instrs_reused.total(),
            "issued slots == executed + reused under {}",
            tech.label()
        );
    }
}

#[test]
fn fixture_breakdown_is_pinned() {
    // Exact, deterministic slot attribution for scale2d on the one-SM
    // test config. A change here means the pipeline timing changed: if
    // that is intended, re-pin; if not, it is a regression.
    let base = run(Technique::Base);
    let (b_cycles, b) = summarize(&base);
    let dars = run(Technique::darsie());
    let (d_cycles, d) = summarize(&dars);

    let pin = |s: &SlotCounts| -> Vec<u64> { s.iter().map(|(_, n)| n).collect() };

    // Slot order: issued, skipped_by_darsie, scoreboard, operand_collector,
    // exec_unit_busy, lsu_queue, ibuffer_empty, wait_leader, branch_sync,
    // barrier, majority_evict, idle_no_warp.
    assert_eq!(b_cycles, 170, "base cycles");
    assert_eq!(pin(&b), vec![224, 0, 717, 0, 32, 18, 277, 0, 0, 0, 0, 92], "base slots");
    assert_eq!(d_cycles, 98, "darsie cycles");
    assert_eq!(pin(&d), vec![112, 63, 279, 0, 4, 3, 144, 152, 0, 0, 0, 27], "darsie slots");

    // The structure of the comparison, independent of the exact numbers:
    // DARSIE eliminates half the issue work of this fully-redundant kernel
    // and finishes sooner.
    assert!(d_cycles < b_cycles);
    assert_eq!(b.get(StallCause::Issued), 2 * d.get(StallCause::Issued));
    assert!(d.get(StallCause::SkippedByDarsie) > 0);
    assert!(d.get(StallCause::WaitLeader) > 0);
}
