//! Differential parity between the symbolic constant folder
//! (`simt_compiler::term::fold_alu`) and the functional executor's ALU.
//! The translation validator's counterexamples are only trustworthy if
//! the two agree bit-for-bit on every opcode, including float edge cases.

use proptest::prelude::*;
use simt_compiler::fold_alu;
use simt_isa::Op;

/// Every opcode `fold_alu` claims to handle.
const ALU_OPS: [Op; 28] = [
    Op::IAdd,
    Op::ISub,
    Op::IMul,
    Op::IMulHi,
    Op::IMad,
    Op::IMin,
    Op::IMax,
    Op::Shl,
    Op::Shr,
    Op::Sra,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Not,
    Op::FAdd,
    Op::FSub,
    Op::FMul,
    Op::FFma,
    Op::FMin,
    Op::FMax,
    Op::FDiv,
    Op::FRcp,
    Op::FSqrt,
    Op::FExp2,
    Op::FLog2,
    Op::Mov,
    Op::I2F,
    Op::F2I,
];

/// Bit patterns that exercise wrapping, sign, shift-masking and float
/// specials (NaN, infinities, denormals, negative zero).
const CORNERS: [u32; 14] = [
    0,
    1,
    2,
    31,
    32,
    33,
    0x7FFF_FFFF,
    0x8000_0000,
    u32::MAX,
    0x3F80_0000, // 1.0f
    0xBF80_0000, // -1.0f
    0x7FC0_0000, // NaN
    0x7F80_0000, // +inf
    0x0000_0001, // denormal as float
];

#[test]
fn corners_agree_on_every_op() {
    for op in ALU_OPS {
        for &a in &CORNERS {
            for &b in &CORNERS {
                for c in [0u32, 1, 0x4000_0000, u32::MAX] {
                    let folded =
                        fold_alu(op, a, b, c).unwrap_or_else(|| panic!("{op:?} must fold"));
                    let executed = gpu_sim::alu(op, a, b, c);
                    assert_eq!(
                        folded, executed,
                        "{op:?}({a:#x}, {b:#x}, {c:#x}) diverges: \
                         fold {folded:#x} vs exec {executed:#x}"
                    );
                }
            }
        }
    }
}

#[test]
fn non_alu_ops_refuse_to_fold() {
    assert_eq!(fold_alu(Op::Bar, 0, 0, 0), None);
    assert_eq!(fold_alu(Op::Exit, 0, 0, 0), None);
    assert_eq!(fold_alu(Op::Bra { target: 0 }, 0, 0, 0), None);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn random_inputs_agree_on_every_op(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        for op in ALU_OPS {
            let folded = fold_alu(op, a, b, c).expect("ALU op folds");
            let executed = gpu_sim::alu(op, a, b, c);
            prop_assert_eq!(
                folded,
                executed,
                "{:?}({:#x}, {:#x}, {:#x}) diverges",
                op, a, b, c
            );
        }
    }
}
