//! Pins the shared timing table ([`gpu_sim::timing`]) to the SM's
//! observable behavior, so the simulator and the static cost estimator can
//! never drift apart.
//!
//! Two layers:
//!
//! 1. direct table-to-config assertions — every function returns exactly
//!    the [`GpuConfig`] field the SM model documents;
//! 2. sensitivity probes — simulate the same micro-kernel under two
//!    configs differing in a single latency field and check the measured
//!    cycle delta is exactly the closed-form count of charges predicted
//!    from the table. If the SM ever re-hardcodes a constant instead of
//!    going through [`gpu_sim::timing`], the delta collapses and the probe
//!    fails.

use gpu_sim::mem::GlobalMemory;
use gpu_sim::{timing, Gpu, GpuConfig, Technique};
use simt_compiler::CompiledKernel;
use simt_isa::{KernelBuilder, LaunchConfig, OpKind, SpecialReg};

#[test]
fn table_matches_config_fields() {
    let cfg = GpuConfig::pascal_gtx1080ti();
    assert_eq!(timing::exec_latency(&cfg, OpKind::IntAlu), cfg.int_latency);
    assert_eq!(timing::exec_latency(&cfg, OpKind::FpAlu), cfg.fp_latency);
    assert_eq!(timing::exec_latency(&cfg, OpKind::Sfu), cfg.sfu_latency);
    assert_eq!(timing::exec_latency(&cfg, OpKind::Branch), cfg.int_latency);
    assert_eq!(timing::unit_issue_interval(&cfg, OpKind::IntAlu), 1);
    assert_eq!(timing::unit_issue_interval(&cfg, OpKind::Sfu), cfg.sfu_interval);
    assert_eq!(timing::smem_occupancy(7), 7);
    assert_eq!(timing::smem_latency(&cfg, 1), cfg.smem_latency);
    assert_eq!(timing::smem_latency(&cfg, 5), cfg.smem_latency + 4);
    assert_eq!(timing::param_latency(&cfg), cfg.l1_latency / 2);
    assert_eq!(timing::l1_hit_latency(&cfg), cfg.l1_latency);
    assert_eq!(timing::l2_hit_latency(&cfg), cfg.l1_latency + cfg.l2_latency);
    assert_eq!(timing::dram_line_latency(&cfg), cfg.l1_latency + cfg.dram_latency);
    assert_eq!(
        timing::global_line_latency_bounds(&cfg, false),
        (cfg.l1_latency, cfg.l1_latency + cfg.dram_latency)
    );
    assert_eq!(timing::global_line_latency_bounds(&cfg, true).0, cfg.l1_latency + cfg.l2_latency);
    assert_eq!(timing::atomic_serialization(32), 8);
    assert_eq!(timing::fetch_bandwidth(&cfg), (cfg.fetch_width * cfg.instrs_per_fetch) as u64);
    assert_eq!(timing::issue_bandwidth(&cfg), (cfg.schedulers_per_sm * cfg.issue_width) as u64);
    assert_eq!(timing::fetch_miss_penalty(&cfg), cfg.l2_latency);
    assert_eq!(timing::exec_unit(OpKind::Load), timing::ExecUnit::Lsu);
    assert_eq!(timing::exec_unit(OpKind::FpAlu), timing::ExecUnit::Sp);
    assert_eq!(timing::exec_unit(OpKind::Barrier), timing::ExecUnit::Control);
}

/// One warp running `n` back-to-back dependent ALU/SFU ops: every op waits
/// for its predecessor's writeback, so total cycles are affine in the
/// per-op latency with slope exactly `n`.
fn dependent_chain(n: usize, kind: OpKind) -> CompiledKernel {
    let mut b = KernelBuilder::new("chain");
    let t = b.special(SpecialReg::TidX);
    let mut x = match kind {
        OpKind::FpAlu | OpKind::Sfu => b.i2f(t),
        _ => t,
    };
    for _ in 0..n {
        x = match kind {
            OpKind::IntAlu => b.iadd(x, x),
            OpKind::FpAlu => b.fadd(x, x),
            OpKind::Sfu => b.frcp(x),
            _ => unreachable!("unsupported chain kind"),
        };
    }
    simt_compiler::compile(b.finish())
}

fn cycles(ck: &CompiledKernel, cfg: GpuConfig) -> u64 {
    let launch = LaunchConfig::new(1u32, 32u32);
    Gpu::new(cfg, Technique::Base).launch(ck, &launch, GlobalMemory::new()).stats.cycles
}

fn probe_latency(kind: OpKind, set: impl Fn(&mut GpuConfig, u64)) {
    const N: usize = 40;
    const BUMP: u64 = 9;
    // A base latency above every frontend penalty (I-cache miss = 20 in
    // `test_small`), so the chain's critical path is purely the charged
    // execution latency at both settings and the delta is exact.
    const BASE: u64 = 50;
    let ck = dependent_chain(N, kind);
    let mut lo = GpuConfig::test_small();
    let mut hi = GpuConfig::test_small();
    set(&mut lo, BASE);
    set(&mut hi, BASE + BUMP);
    // The whole kernel is one dependence chain, so every op of the probed
    // kind (the seed S2R/I2F included) exposes its full latency.
    let charged = ck.kernel.instrs.iter().filter(|i| i.op.kind() == kind).count() as u64;
    assert!(charged >= N as u64);
    let delta = cycles(&ck, hi) - cycles(&ck, lo);
    assert_eq!(delta, charged * BUMP, "{kind:?} chain must expose exactly n*latency");
}

#[test]
fn int_latency_charged_per_dependent_op() {
    probe_latency(OpKind::IntAlu, |c, v| c.int_latency = v);
}

#[test]
fn fp_latency_charged_per_dependent_op() {
    probe_latency(OpKind::FpAlu, |c, v| c.fp_latency = v);
}

#[test]
fn sfu_latency_charged_per_dependent_op() {
    probe_latency(OpKind::Sfu, |c, v| c.sfu_latency = v);
}
