//! Focused pipeline-behaviour tests: tiny hand-built kernels driven
//! through the full SM, asserting specific microarchitectural effects
//! (divergence reconvergence, barrier ordering, I-cache behaviour,
//! scheduler choice, UV reuse accounting, DARSIE waiting).

use gpu_sim::{GlobalMemory, Gpu, GpuConfig, SchedulerPolicy, Technique};
use simt_isa::{CmpOp, Guard, KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

/// Divergent if/else where both paths write disjoint outputs: the SIMT
/// stack must execute both sides and reconverge.
#[test]
fn divergent_paths_both_execute_and_reconverge() {
    let mut b = KernelBuilder::new("div");
    let lane = b.special(SpecialReg::LaneId);
    let out = b.param(0);
    let p = b.setp(CmpOp::Lt, lane, 16u32);
    let r = b.alloc();
    b.if_then_else(Guard::if_true(p), |b| b.mov_to(r, 111u32), |b| b.mov_to(r, 222u32));
    // After reconvergence every lane stores its own value.
    let off = b.shl_imm(lane, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, r, 0);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(32 * 4);
    let launch = LaunchConfig::new(1u32, 32u32).with_params(vec![Value(out_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch, mem);
    let vals = res.memory.read_vec_u32(out_addr, 32);
    for (lane, v) in vals.iter().enumerate() {
        assert_eq!(*v, if lane < 16 { 111 } else { 222 }, "lane {lane}");
    }
}

/// Nested divergence: four distinct outcomes, all lanes correct.
#[test]
fn nested_divergence() {
    let mut b = KernelBuilder::new("nest");
    let lane = b.special(SpecialReg::LaneId);
    let out = b.param(0);
    let p_hi = b.setp(CmpOp::Lt, lane, 16u32);
    let q = b.alloc_pred();
    let r = b.alloc();
    b.if_then_else(
        Guard::if_true(p_hi),
        |b| {
            b.setp_to(q, CmpOp::Lt, lane, 8u32);
            b.if_then_else(Guard::if_true(q), |b| b.mov_to(r, 1u32), |b| b.mov_to(r, 2u32));
        },
        |b| {
            b.setp_to(q, CmpOp::Lt, lane, 24u32);
            b.if_then_else(Guard::if_true(q), |b| b.mov_to(r, 3u32), |b| b.mov_to(r, 4u32));
        },
    );
    let off = b.shl_imm(lane, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, r, 0);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(32 * 4);
    let launch = LaunchConfig::new(1u32, 32u32).with_params(vec![Value(out_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch, mem);
    let vals = res.memory.read_vec_u32(out_addr, 32);
    for (lane, v) in vals.iter().enumerate() {
        let expect = match lane {
            0..=7 => 1,
            8..=15 => 2,
            16..=23 => 3,
            _ => 4,
        };
        assert_eq!(*v, expect, "lane {lane}");
    }
}

/// Producer/consumer across warps through shared memory: the barrier must
/// order warp 0's stores before warp 1's loads.
#[test]
fn barrier_orders_shared_memory_communication() {
    let mut b = KernelBuilder::new("barrier");
    let tx = b.special(SpecialReg::TidX);
    let warp = b.special(SpecialReg::WarpId);
    let out = b.param(0);
    let smem = b.alloc_shared(64 * 4);
    // Warp 0 writes smem[tx] = tx * 7.
    let q0 = b.setp(CmpOp::Eq, warp, 0u32);
    let soff = b.shl_imm(tx, 2);
    b.if_then(Guard::if_true(q0), |b| {
        let v = b.imul(tx, 7u32);
        b.store(MemSpace::Shared, soff, v, smem as i32);
    });
    b.barrier();
    // Warp 1 reads its partner's slot and writes it out.
    let q1 = b.setp(CmpOp::Eq, warp, 1u32);
    b.if_then(Guard::if_true(q1), |b| {
        let partner = b.isub(tx, 32u32);
        let poff = b.shl_imm(partner, 2);
        let v = b.load(MemSpace::Shared, poff, smem as i32);
        let ooff = b.shl_imm(partner, 2);
        let addr = b.iadd(out, ooff);
        b.store(MemSpace::Global, addr, v, 0);
    });
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(32 * 4);
    let launch = LaunchConfig::new(1u32, 64u32).with_params(vec![Value(out_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch, mem);
    let vals = res.memory.read_vec_u32(out_addr, 32);
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v, i as u32 * 7, "slot {i}");
    }
    assert!(res.stats.barrier_waits > 0);
}

/// Atomics across every thread of a grid accumulate exactly.
#[test]
fn global_atomics_accumulate_exactly() {
    let mut b = KernelBuilder::new("atom");
    let counter = b.param(0);
    let _old = b.atom(simt_isa::AtomOp::Add, counter, 1u32);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let c_addr = mem.alloc(4);
    let launch = LaunchConfig::new(3u32, 64u32).with_params(vec![Value(c_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch, mem);
    assert_eq!(res.memory.read_u32(c_addr), 3 * 64);
    assert_eq!(res.stats.atomic_ops, 6, "one atomic per warp");
}

/// The I-cache misses once per line and then hits; a loop fetches the same
/// lines repeatedly with only compulsory misses.
#[test]
fn icache_misses_are_compulsory_for_small_loops() {
    let mut b = KernelBuilder::new("icache");
    let i = b.mov(0u32);
    let acc = b.mov(0u32);
    let p = b.alloc_pred();
    b.do_while(|b| {
        b.iadd_to(acc, acc, 3u32);
        b.iadd_to(i, i, 1u32);
        b.setp_to(p, CmpOp::Lt, i, 50u32);
        Guard::if_true(p)
    });
    let out = b.param(0);
    b.store(MemSpace::Global, out, acc, 0);
    let ck = simt_compiler::compile(b.finish());
    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(4);
    let launch = LaunchConfig::new(1u32, 32u32).with_params(vec![Value(out_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch, mem);
    assert_eq!(res.memory.read_u32(out_addr), 150);
    assert!(res.stats.icache_accesses > 50, "loop refetches every iteration");
    assert!(
        res.stats.icache_misses <= 2,
        "a {}-instruction kernel spans at most 2 lines; got {} misses",
        ck.kernel.len(),
        res.stats.icache_misses
    );
}

/// GTO and LRR produce identical results and instruction counts.
#[test]
fn scheduler_policies_differ_only_in_timing() {
    let mut b = KernelBuilder::new("sched");
    let lane = b.special(SpecialReg::LaneId);
    let warp = b.special(SpecialReg::WarpId);
    let out = b.param(0);
    let acc = b.mov(0u32);
    let p = b.alloc_pred();
    let i = b.mov(0u32);
    b.do_while(|b| {
        b.imad_to(acc, acc, 3u32, lane);
        b.iadd_to(i, i, 1u32);
        b.setp_to(p, CmpOp::Lt, i, 12u32);
        Guard::if_true(p)
    });
    let lin = b.imad(warp, 32u32, lane);
    let off = b.shl_imm(lin, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, acc, 0);
    let ck = simt_compiler::compile(b.finish());
    let mk = || {
        let mut mem = GlobalMemory::new();
        let out_addr = mem.alloc(256 * 4);
        (mem, out_addr)
    };
    let (mem, out_addr) = mk();
    let launch = LaunchConfig::new(2u32, 128u32).with_params(vec![Value(out_addr as u32)]);
    let gto = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch, mem);
    let lrr_cfg = GpuConfig { scheduler: SchedulerPolicy::Lrr, ..cfg() };
    let (mem2, _) = mk();
    let lrr = Gpu::new(lrr_cfg, Technique::Base).launch(&ck, &launch, mem2);
    assert_eq!(gto.memory.fingerprint(), lrr.memory.fingerprint());
    assert_eq!(gto.stats.instrs_executed, lrr.stats.instrs_executed);
}

/// UV reuse hits replace executions for uniform work in a multi-warp TB.
#[test]
fn uv_reuses_uniform_instructions() {
    let mut b = KernelBuilder::new("uv");
    let cta = b.special(SpecialReg::CtaidX);
    let lane = b.special(SpecialReg::LaneId);
    let warp = b.special(SpecialReg::WarpId);
    let out = b.param(0);
    // Uniform chain, identical across the TB's warps.
    let a = b.imul(cta, 13u32);
    let c = b.iadd(a, 7u32);
    // Vector sink.
    let lin = b.imad(warp, 32u32, lane);
    let off = b.shl_imm(lin, 2);
    let addr = b.iadd(out, off);
    let v = b.iadd(c, lane);
    b.store(MemSpace::Global, addr, v, 0);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(128 * 4);
    let launch = LaunchConfig::new(1u32, 128u32).with_params(vec![Value(out_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::Uv).launch(&ck, &launch, mem);
    assert!(
        res.stats.instrs_reused.uniform > 0,
        "four warps share the uniform chain: {:?}",
        res.stats.instrs_reused
    );
    for w in 0..4u32 {
        for l in 0..32u32 {
            let got = res.memory.read_u32(u64::from(out_addr as u32 + (w * 32 + l) * 4));
            assert_eq!(got, 7 + l);
        }
    }
}

/// DARSIE followers that arrive before the leader's writeback stall and
/// then skip (the WaitForLeader path), never executing the instruction.
#[test]
fn followers_wait_for_leader_writeback() {
    let mut b = KernelBuilder::new("wait");
    let tx = b.special(SpecialReg::TidX);
    let out = b.param(0);
    let tbl = b.param(1);
    // A skippable chain ending in a (slow) global load.
    let off = b.shl_imm(tx, 2);
    let addr = b.iadd(tbl, off);
    let v = b.load(MemSpace::Global, addr, 0);
    // Vector sink so the kernel has per-thread work too.
    let ty = b.special(SpecialReg::TidY);
    let lin = b.imad(ty, 16u32, tx);
    let ooff = b.shl_imm(lin, 2);
    let oaddr = b.iadd(out, ooff);
    b.store(MemSpace::Global, oaddr, v, 0);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let tbl_addr = mem.alloc(16 * 4);
    let out_addr = mem.alloc(256 * 4);
    mem.write_slice_u32(tbl_addr, &(0..16u32).map(|i| 1000 + i).collect::<Vec<_>>());
    let launch = LaunchConfig::new(1u32, (16u32, 16u32))
        .with_params(vec![Value(out_addr as u32), Value(tbl_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::darsie()).launch(&ck, &launch, mem);
    assert!(res.stats.darsie.wait_for_leader_cycles > 0, "followers stalled on the load");
    assert!(res.stats.instrs_skipped.unstructured > 0, "the load was skipped");
    for y in 0..16u32 {
        for x in 0..16u32 {
            let got = res.memory.read_u32(u64::from(out_addr as u32 + (y * 16 + x) * 4));
            assert_eq!(got, 1000 + x);
        }
    }
}

/// A store between two skippable loads of the same address forces the
/// second load's entry to be re-led (Section 4.4): values stay correct.
#[test]
fn store_invalidation_keeps_loads_coherent() {
    let mut b = KernelBuilder::new("inval");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let data = b.param(0);
    let out = b.param(1);
    // Skippable load of data[tx].
    let off = b.shl_imm(tx, 2);
    let addr = b.iadd(data, off);
    let v1 = b.load(MemSpace::Global, addr, 0);
    // Every thread stores to its own output slot (triggers invalidation).
    let lin = b.imad(ty, 16u32, tx);
    let ooff = b.shl_imm(lin, 2);
    let oaddr = b.iadd(out, ooff);
    b.store(MemSpace::Global, oaddr, v1, 0);
    // Second skippable load of the same address; a fresh leader re-reads.
    let v2 = b.load(MemSpace::Global, addr, 0);
    let sum = b.iadd(v1, v2);
    b.store(MemSpace::Global, oaddr, sum, 0);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let d_addr = mem.alloc(16 * 4);
    let out_addr = mem.alloc(256 * 4);
    mem.write_slice_u32(d_addr, &(0..16u32).map(|i| 5 * i).collect::<Vec<_>>());
    let launch = LaunchConfig::new(1u32, (16u32, 16u32))
        .with_params(vec![Value(d_addr as u32), Value(out_addr as u32)]);
    let res = Gpu::new(cfg(), Technique::darsie()).launch(&ck, &launch, mem);
    assert!(res.stats.darsie.load_invalidations > 0, "stores flushed load entries");
    for y in 0..16u32 {
        for x in 0..16u32 {
            let got = res.memory.read_u32(u64::from(out_addr as u32 + (y * 16 + x) * 4));
            assert_eq!(got, 10 * x, "sum of two loads of data[{x}]");
        }
    }
}

/// DARSIE never reduces occupancy: with a register demand that exactly
/// fills the SM, the renaming pool shrinks to zero and the same number of
/// TBs stays resident (skipping silently disabled, results intact).
#[test]
fn rename_pool_never_costs_occupancy() {
    let mut b = KernelBuilder::new("fat");
    let tx = b.special(SpecialReg::TidX);
    let out = b.param(0);
    // Inflate the register demand.
    let mut acc = b.mov(1u32);
    for _ in 0..60 {
        acc = b.iadd(acc, tx);
    }
    let off = b.shl_imm(tx, 2);
    let addr = b.iadd(out, off);
    b.store(MemSpace::Global, addr, acc, 0);
    let ck = simt_compiler::compile(b.finish());
    assert!(ck.kernel.num_regs >= 60);

    // One warp per TB, 64 regs per warp: a 2048-register SM fits ~32 TBs
    // (TB-slot-limited to 8 in the test config); the DARSIE pool must not
    // change that.
    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(32 * 4);
    let launch = LaunchConfig::new(16u32, 32u32).with_params(vec![Value(out_addr as u32)]);
    let base = Gpu::new(cfg(), Technique::Base).launch(&ck, &launch.clone(), mem.clone());
    let dars = Gpu::new(cfg(), Technique::darsie()).launch(&ck, &launch, mem);
    assert_eq!(base.memory.fingerprint(), dars.memory.fingerprint());
    // Cycle counts stay in the same ballpark: occupancy was not halved.
    assert!(
        (dars.cycles as f64) < base.cycles as f64 * 1.5,
        "DARSIE {} vs base {} cycles",
        dars.cycles,
        base.cycles
    );
}

/// The event trace captures the DARSIE protocol in order: a Lead precedes
/// the first Skip of the same PC, every Issue precedes its Writeback
/// epoch, and skipped PCs are never issued by follower warps.
#[test]
fn event_trace_shows_the_skip_protocol() {
    let mut b = KernelBuilder::new("trace");
    let tx = b.special(SpecialReg::TidX);
    let ty = b.special(SpecialReg::TidY);
    let out = b.param(0);
    let off = b.shl_imm(tx, 2); // skippable chain
    let lin = b.imad(ty, 16u32, tx);
    let ooff = b.shl_imm(lin, 2);
    let addr = b.iadd(out, ooff);
    b.store(MemSpace::Global, addr, off, 0);
    let ck = simt_compiler::compile(b.finish());

    let mut mem = GlobalMemory::new();
    let out_addr = mem.alloc(256 * 4);
    let launch = LaunchConfig::new(1u32, (16u32, 16u32)).with_params(vec![Value(out_addr as u32)]);
    let cfg = GpuConfig { trace_events: true, ..cfg() };
    let mut res = Gpu::new(cfg, Technique::darsie()).launch(&ck, &launch, mem);
    let events = res.events.events();
    assert!(!events.is_empty());
    use gpu_sim::EventKind;
    // Find the shl's pc (the first skippable).
    let shl_pc = 2; // s2r, s2r, shl
    let first_lead = events
        .iter()
        .position(|e| e.pc == shl_pc && e.kind == EventKind::Lead)
        .expect("a leader was elected for the shl");
    let first_skip = events
        .iter()
        .position(|e| e.pc == shl_pc && e.kind == EventKind::Skip)
        .expect("followers skipped the shl");
    assert!(first_lead < first_skip, "lead precedes the first skip");
    // Exactly one warp issued the shl; the others skipped it.
    let issues = events.iter().filter(|e| e.pc == shl_pc && e.kind == EventKind::Issue).count();
    let skips = events.iter().filter(|e| e.pc == shl_pc && e.kind == EventKind::Skip).count();
    assert_eq!(issues, 1, "only the leader executes");
    assert_eq!(skips, 7, "seven followers skip");
    // Tracing must not perturb results.
    for y in 0..16u32 {
        for x in 0..16u32 {
            let got = res.memory.read_u32(u64::from(out_addr as u32 + (y * 16 + x) * 4));
            assert_eq!(got, x * 4);
        }
    }
}
