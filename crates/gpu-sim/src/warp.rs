//! Per-warp architectural and microarchitectural state: vector registers,
//! the SIMT reconvergence stack, instruction buffer and scoreboard.

use simt_isa::{Instruction, Pred, Reg};
use std::collections::{HashMap, VecDeque};

/// A 32-bit lane mask.
pub type LaneMask = u32;

/// One SIMT stack entry: a pending execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Next instruction index of this path.
    pub next_pc: usize,
    /// Lanes executing this path.
    pub mask: LaneMask,
    /// Instruction index where this path reconverges with its sibling
    /// (`usize::MAX` = at thread exit).
    pub reconv: usize,
}

/// Entries of the per-warp instruction buffer. `Instr` entries occupy real
/// I-buffer slots; `SkipMarker` and `Ghost` are the zero-width bookkeeping
/// records of eliminated instructions, applied in program order at issue.
#[derive(Debug, Clone, PartialEq)]
pub enum IBufEntry {
    /// A fetched instruction awaiting issue.
    Instr {
        /// Static instruction index.
        pc: usize,
        /// When this warp was elected DARSIE leader for the instruction,
        /// the dynamic instance it leads (its result is snapshotted for
        /// followers at issue and `LeaderWB` set at writeback).
        leader: Option<u32>,
    },
    /// A DARSIE-skipped instruction: the leader's result is copied into
    /// this warp's destination register when the marker reaches its
    /// program-order position (zero cycles, no execution resources).
    SkipMarker {
        /// Static instruction index (for shadow checking / stats).
        pc: usize,
        /// Destination register.
        dst: Reg,
        /// The leader's 32-lane result.
        values: Box<[u32]>,
    },
    /// A DAC-IDEAL affine-stream instruction: executed functionally at its
    /// program-order position with zero timing cost.
    Ghost {
        /// Static instruction index.
        pc: usize,
    },
}

/// Scheduling state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Eligible for fetch and issue.
    Ready,
    /// Waiting at a `bar.sync` for the rest of its TB.
    AtBarrier,
    /// Stalled at a skippable PC until the leader writes back
    /// (`pc`, `instance`).
    WaitLeader(usize, u32),
    /// Stalled at DARSIE branch synchronization for instruction `pc`.
    BranchSync(usize),
    /// All lanes exited.
    Done,
}

/// A resident warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp slot within the SM.
    pub slot: usize,
    /// Index of the owning TB in the SM's resident list.
    pub tb: usize,
    /// Warp index within the TB (bit position in TB-level masks).
    pub warp_in_tb: u32,
    /// Flat register file: `reg * warp_size + lane`.
    pub regs: Vec<u32>,
    /// Flat predicate file: `pred * warp_size + lane`.
    pub preds: Vec<bool>,
    /// Lanes that hold live threads (last warp of a TB may be partial).
    pub full_mask: LaneMask,
    /// SIMT stack; the top entry is the executing path.
    pub stack: Vec<StackEntry>,
    /// Instruction buffer.
    pub ibuffer: VecDeque<IBufEntry>,
    /// Registers with writes in flight (bitset over 256 ids).
    pending_regs: [u64; 4],
    /// Predicates with writes in flight.
    pending_preds: u8,
    /// Scheduling state.
    pub state: WarpState,
    /// Launch order (for greedy-then-oldest).
    pub age: u64,
    /// Cycle until which the fetch stage must not re-probe the I-cache
    /// (outstanding miss).
    pub fetch_ready_at: u64,
    /// Dynamic occurrence count per skippable PC (DARSIE/DAC instance
    /// numbering: the paper's per-register write counts).
    pub pass_counts: HashMap<usize, u32>,
    /// Fetch stalls behind an unissued branch or exit (the frontier would
    /// be speculative otherwise).
    pub fetch_blocked: bool,
    /// SILICON-SYNC: this warp has registered its current basic-block
    /// crossing and is waiting for the rest of the TB.
    pub bb_pending: bool,
    /// Consecutive cycles spent stalled trying to become a DARSIE leader
    /// without resources; bounded to avoid livelock on terminal register
    /// versions that stay bound until warp exit.
    pub leader_stall: u32,
    warp_size: u32,
}

impl Warp {
    /// Creates a warp with `num_regs` registers, all zero, positioned at
    /// instruction 0.
    #[must_use]
    pub fn new(
        slot: usize,
        tb: usize,
        warp_in_tb: u32,
        num_regs: u16,
        warp_size: u32,
        full_mask: LaneMask,
        age: u64,
    ) -> Warp {
        Warp {
            slot,
            tb,
            warp_in_tb,
            regs: vec![0; usize::from(num_regs) * warp_size as usize],
            preds: vec![false; usize::from(simt_isa::reg::NUM_PREDS) * warp_size as usize],
            full_mask,
            stack: vec![StackEntry { next_pc: 0, mask: full_mask, reconv: usize::MAX }],
            ibuffer: VecDeque::new(),
            pending_regs: [0; 4],
            pending_preds: 0,
            state: WarpState::Ready,
            age,
            fetch_ready_at: 0,
            pass_counts: HashMap::new(),
            fetch_blocked: false,
            bb_pending: false,
            leader_stall: 0,
            warp_size,
        }
    }

    /// The SIMT width this warp was created with.
    #[must_use]
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Currently executing path, if any.
    #[must_use]
    pub fn top(&self) -> Option<&StackEntry> {
        self.stack.last()
    }

    /// Active lane mask of the executing path.
    #[must_use]
    pub fn active_mask(&self) -> LaneMask {
        self.stack.last().map_or(0, |e| e.mask)
    }

    /// Next instruction index to fetch for the executing path.
    #[must_use]
    pub fn next_pc(&self) -> Option<usize> {
        self.stack.last().map(|e| e.next_pc)
    }

    /// PC of the *next unfetched* instruction: continues after whatever is
    /// already buffered. The fetch stage and the DARSIE skipper work at
    /// this frontier, which runs ahead of the issue-stage `next_pc`.
    #[must_use]
    pub fn fetch_pc(&self) -> Option<usize> {
        let top = self.stack.last()?;
        let buffered = self.ibuffer.iter().filter(|e| matches!(e, IBufEntry::Instr { .. })).count()
            + self
                .ibuffer
                .iter()
                .filter(|e| matches!(e, IBufEntry::SkipMarker { .. } | IBufEntry::Ghost { .. }))
                .count();
        Some(top.next_pc + buffered)
    }

    /// Number of real (fetched-instruction) entries in the I-buffer.
    #[must_use]
    pub fn ibuffer_instrs(&self) -> usize {
        self.ibuffer.iter().filter(|e| matches!(e, IBufEntry::Instr { .. })).count()
    }

    /// Advances the executing path past one sequential instruction.
    pub fn advance(&mut self) {
        if let Some(e) = self.stack.last_mut() {
            e.next_pc += 1;
        }
    }

    /// Pops reconverged paths: while the executing path has reached its
    /// reconvergence point, merge back. Returns true if anything popped.
    pub fn reconverge(&mut self) -> bool {
        let mut popped = false;
        while let Some(&StackEntry { next_pc, reconv, .. }) = self.stack.last() {
            if reconv != usize::MAX && next_pc == reconv {
                self.stack.pop();
                popped = true;
            } else {
                break;
            }
        }
        popped
    }

    /// Applies a resolved branch: `taken` is the lane mask (within the
    /// active mask) branching to `target`; `reconv` is the branch's
    /// reconvergence PC (`usize::MAX` if it reconverges at exit). The
    /// fall-through PC is `pc + 1`. Returns true when the warp diverged.
    ///
    /// # Panics
    ///
    /// Panics if called with an empty stack.
    pub fn take_branch(
        &mut self,
        pc: usize,
        target: usize,
        taken: LaneMask,
        reconv: usize,
    ) -> bool {
        let cur = self.stack.pop().expect("take_branch on a finished warp");
        debug_assert_eq!(cur.next_pc, pc + 1, "branch must be the current instruction");
        let not_taken = cur.mask & !taken;
        if taken == 0 {
            self.stack.push(StackEntry { next_pc: pc + 1, ..cur });
            false
        } else if not_taken == 0 {
            self.stack.push(StackEntry { next_pc: target, ..cur });
            false
        } else {
            // Diverged: continuation (if it reconverges before exit), then
            // the fall-through path, then the taken path on top.
            if reconv != usize::MAX {
                self.stack.push(StackEntry { next_pc: reconv, mask: cur.mask, reconv: cur.reconv });
            }
            self.stack.push(StackEntry { next_pc: pc + 1, mask: not_taken, reconv });
            self.stack.push(StackEntry { next_pc: target, mask: taken, reconv });
            true
        }
    }

    /// Executes `exit` for the current path: pops it. Returns true when
    /// the whole warp is done.
    pub fn exit_path(&mut self) -> bool {
        self.stack.pop();
        if self.stack.is_empty() {
            self.state = WarpState::Done;
            true
        } else {
            false
        }
    }

    // ----- register access -------------------------------------------------

    /// Reads one lane of a register.
    #[must_use]
    pub fn reg(&self, r: Reg, lane: u32) -> u32 {
        self.regs[r.index() * self.warp_size as usize + lane as usize]
    }

    /// Writes one lane of a register.
    pub fn set_reg(&mut self, r: Reg, lane: u32, v: u32) {
        self.regs[r.index() * self.warp_size as usize + lane as usize] = v;
    }

    /// Reads the whole 32-lane vector of a register.
    #[must_use]
    pub fn reg_vector(&self, r: Reg) -> Vec<u32> {
        let w = self.warp_size as usize;
        self.regs[r.index() * w..(r.index() + 1) * w].to_vec()
    }

    /// Overwrites the whole vector of a register.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not exactly one warp wide.
    pub fn set_reg_vector(&mut self, r: Reg, values: &[u32]) {
        let w = self.warp_size as usize;
        assert_eq!(values.len(), w);
        self.regs[r.index() * w..(r.index() + 1) * w].copy_from_slice(values);
    }

    /// Reads one lane of a predicate.
    #[must_use]
    pub fn pred(&self, p: Pred, lane: u32) -> bool {
        self.preds[p.index() * self.warp_size as usize + lane as usize]
    }

    /// Writes one lane of a predicate.
    pub fn set_pred(&mut self, p: Pred, lane: u32, v: bool) {
        self.preds[p.index() * self.warp_size as usize + lane as usize] = v;
    }

    // ----- scoreboard --------------------------------------------------------

    /// Marks a register write in flight.
    pub fn mark_pending(&mut self, r: Reg) {
        self.pending_regs[r.index() / 64] |= 1 << (r.index() % 64);
    }

    /// Clears an in-flight register write (writeback).
    pub fn clear_pending(&mut self, r: Reg) {
        self.pending_regs[r.index() / 64] &= !(1 << (r.index() % 64));
    }

    /// Marks a predicate write in flight.
    pub fn mark_pending_pred(&mut self, p: Pred) {
        self.pending_preds |= 1 << p.index();
    }

    /// Clears an in-flight predicate write.
    pub fn clear_pending_pred(&mut self, p: Pred) {
        self.pending_preds &= !(1 << p.index());
    }

    /// True when `r` has a write in flight.
    #[must_use]
    pub fn is_pending(&self, r: Reg) -> bool {
        self.pending_regs[r.index() / 64] & (1 << (r.index() % 64)) != 0
    }

    /// True when the scoreboard allows `instr` to issue: no source,
    /// destination or guard register has a write in flight (in-order
    /// issue with RAW/WAW/WAR protection).
    #[must_use]
    pub fn scoreboard_ready(&self, instr: &Instruction) -> bool {
        for r in instr.src_regs() {
            if self.is_pending(r) {
                return false;
            }
        }
        if let Some(d) = instr.dst {
            if self.is_pending(d) {
                return false;
            }
        }
        let mut preds_needed = instr.guard.map(|g| g.pred).into_iter().collect::<Vec<_>>();
        if let Some(p) = instr.pdst {
            preds_needed.push(p);
        }
        if let simt_isa::Op::Sel(p) = instr.op {
            preds_needed.push(p);
        }
        preds_needed.iter().all(|p| self.pending_preds & (1 << p.index()) == 0)
    }

    /// Dynamic occurrences of `pc` this warp has completed (issued or
    /// applied as a skip marker), in program order.
    #[must_use]
    pub fn passes(&self, pc: usize) -> u32 {
        self.pass_counts.get(&pc).copied().unwrap_or(0)
    }

    /// Records one completed occurrence of `pc` (called at issue of the
    /// real instruction or at skip-marker application — *all* paths, so
    /// the count never drifts).
    pub fn record_pass(&mut self, pc: usize) -> u32 {
        let c = self.pass_counts.entry(pc).or_insert(0);
        *c += 1;
        *c
    }

    /// The occurrence number the *fetch frontier* is about to produce for
    /// `pc`: completed passes plus occurrences already buffered, plus one.
    #[must_use]
    pub fn frontier_instance(&self, pc: usize) -> u32 {
        let buffered = self
            .ibuffer
            .iter()
            .filter(|e| match e {
                IBufEntry::Instr { pc: p, .. }
                | IBufEntry::SkipMarker { pc: p, .. }
                | IBufEntry::Ghost { pc: p } => *p == pc,
            })
            .count() as u32;
        self.passes(pc) + buffered + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Guard, Op, Operand};

    fn warp() -> Warp {
        Warp::new(0, 0, 0, 8, 32, u32::MAX, 0)
    }

    #[test]
    fn fresh_warp_is_converged_at_zero() {
        let w = warp();
        assert_eq!(w.next_pc(), Some(0));
        assert_eq!(w.active_mask(), u32::MAX);
        assert_eq!(w.state, WarpState::Ready);
    }

    #[test]
    fn uniform_branches_do_not_push() {
        let mut w = warp();
        w.advance(); // pretend the branch at pc 0 was consumed
        assert!(!w.take_branch(0, 5, u32::MAX, 3));
        assert_eq!(w.next_pc(), Some(5));
        assert_eq!(w.stack.len(), 1);

        let mut w2 = warp();
        w2.advance();
        assert!(!w2.take_branch(0, 5, 0, 3));
        assert_eq!(w2.next_pc(), Some(1));
    }

    #[test]
    fn divergence_pushes_both_paths_and_reconverges() {
        let mut w = warp();
        w.advance();
        let taken = 0x0000_FFFF;
        assert!(w.take_branch(0, 10, taken, 20));
        // Taken path first.
        assert_eq!(w.next_pc(), Some(10));
        assert_eq!(w.active_mask(), taken);
        // Simulate the taken path reaching the reconvergence point.
        w.stack.last_mut().unwrap().next_pc = 20;
        assert!(w.reconverge());
        // Now the fall-through path.
        assert_eq!(w.next_pc(), Some(1));
        assert_eq!(w.active_mask(), !taken);
        w.stack.last_mut().unwrap().next_pc = 20;
        assert!(w.reconverge());
        // Continuation: full mask at the join.
        assert_eq!(w.next_pc(), Some(20));
        assert_eq!(w.active_mask(), u32::MAX);
        assert_eq!(w.stack.len(), 1);
    }

    #[test]
    fn divergence_reconverging_at_exit_pops_via_exit() {
        let mut w = warp();
        w.advance();
        assert!(w.take_branch(0, 10, 0xFF, usize::MAX));
        assert_eq!(w.stack.len(), 2, "no continuation entry for exit reconvergence");
        assert!(!w.exit_path(), "taken path exits");
        assert_eq!(w.active_mask(), !0xFFu32);
        assert!(w.exit_path(), "fall-through path exits; warp done");
        assert_eq!(w.state, WarpState::Done);
    }

    #[test]
    fn nested_divergence() {
        let mut w = warp();
        w.advance();
        w.take_branch(0, 10, 0x0F, 30);
        // Inner divergence on the taken path (mask 0x0F).
        w.stack.last_mut().unwrap().next_pc = 12;
        w.take_branch(11, 15, 0x03, 20);
        assert_eq!(w.active_mask(), 0x03);
        w.stack.last_mut().unwrap().next_pc = 20;
        w.reconverge();
        assert_eq!(w.active_mask(), 0x0C, "inner else path");
        w.stack.last_mut().unwrap().next_pc = 20;
        w.reconverge();
        assert_eq!(w.active_mask(), 0x0F, "inner join");
        assert_eq!(w.next_pc(), Some(20));
    }

    #[test]
    fn scoreboard_blocks_raw_and_waw() {
        let mut w = warp();
        let add =
            Instruction::new(Op::IAdd, Some(Reg(2)), None, vec![Reg(1).into(), Operand::Imm(1)]);
        assert!(w.scoreboard_ready(&add));
        w.mark_pending(Reg(1));
        assert!(!w.scoreboard_ready(&add), "RAW");
        w.clear_pending(Reg(1));
        w.mark_pending(Reg(2));
        assert!(!w.scoreboard_ready(&add), "WAW");
        w.clear_pending(Reg(2));
        assert!(w.scoreboard_ready(&add));
    }

    #[test]
    fn scoreboard_blocks_on_guard_and_sel_predicates() {
        let mut w = warp();
        let guarded = Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(1)])
            .with_guard(Guard::if_true(Pred(2)));
        w.mark_pending_pred(Pred(2));
        assert!(!w.scoreboard_ready(&guarded));
        w.clear_pending_pred(Pred(2));
        assert!(w.scoreboard_ready(&guarded));

        let setp = Instruction::new(
            Op::Setp(CmpOp::Lt),
            None,
            Some(Pred(1)),
            vec![Reg(0).into(), Operand::Imm(4)],
        );
        w.mark_pending_pred(Pred(1));
        assert!(!w.scoreboard_ready(&setp), "pdst WAW");

        let sel = Instruction::new(
            Op::Sel(Pred(3)),
            Some(Reg(4)),
            None,
            vec![Reg(0).into(), Reg(1).into()],
        );
        w.mark_pending_pred(Pred(3));
        assert!(!w.scoreboard_ready(&sel), "sel reads its predicate");
    }

    #[test]
    fn register_vector_roundtrip() {
        let mut w = warp();
        let vals: Vec<u32> = (0..32).collect();
        w.set_reg_vector(Reg(3), &vals);
        assert_eq!(w.reg_vector(Reg(3)), vals);
        assert_eq!(w.reg(Reg(3), 7), 7);
        w.set_reg(Reg(3), 7, 99);
        assert_eq!(w.reg(Reg(3), 7), 99);
    }

    #[test]
    fn instance_counting() {
        let mut w = warp();
        assert_eq!(w.frontier_instance(8), 1);
        assert_eq!(w.record_pass(8), 1);
        assert_eq!(w.record_pass(8), 2);
        assert_eq!(w.frontier_instance(8), 3);
        assert_eq!(w.frontier_instance(16), 1, "independent per pc");
        // Buffered occurrences advance the frontier without a pass.
        w.ibuffer.push_back(IBufEntry::Instr { pc: 8, leader: None });
        assert_eq!(w.frontier_instance(8), 4);
        assert_eq!(w.passes(8), 2);
    }

    #[test]
    fn fetch_pc_runs_ahead_of_issue_pc() {
        let mut w = warp();
        assert_eq!(w.fetch_pc(), Some(0));
        w.ibuffer.push_back(IBufEntry::Instr { pc: 0, leader: None });
        assert_eq!(w.fetch_pc(), Some(1));
        w.ibuffer.push_back(IBufEntry::SkipMarker {
            pc: 1,
            dst: Reg(0),
            values: vec![0; 32].into_boxed_slice(),
        });
        assert_eq!(w.fetch_pc(), Some(2));
        assert_eq!(w.ibuffer_instrs(), 1, "markers do not occupy real slots");
        assert_eq!(w.next_pc(), Some(0), "issue PC unchanged");
    }
}
