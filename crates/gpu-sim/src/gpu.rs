//! Top level: the threadblock dispatcher, the shared L2/DRAM, and the
//! simulation run loop.

use crate::config::{GpuConfig, Technique};
use crate::mem::{DramModel, GlobalMemory, TagCache};
use crate::sm::{KernelData, Sm};
use crate::stats::SimStats;
use simt_compiler::CompiledKernel;
use simt_isa::{Dim3, LaunchConfig};
use std::sync::Arc;

/// Result of a kernel simulation.
#[derive(Debug)]
pub struct SimResult {
    /// Total cycles until the grid drained.
    pub cycles: u64,
    /// Aggregated statistics across all SMs.
    pub stats: SimStats,
    /// Global memory after the kernel (inspect outputs here).
    pub memory: GlobalMemory,
    /// Pipeline trace (empty unless [`GpuConfig::trace_events`]).
    pub events: crate::events::EventLog,
    /// Cycle-accounted profile, one entry per SM (`None` unless
    /// [`GpuConfig::profile`]).
    pub profile: Option<crate::profile::SimProfile>,
}

/// The whole GPU: `num_sms` SMs sharing L2, DRAM and global memory.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    technique: Technique,
}

impl Gpu {
    /// A GPU with the given configuration and redundancy technique.
    #[must_use]
    pub fn new(cfg: GpuConfig, technique: Technique) -> Gpu {
        Gpu { cfg, technique }
    }

    /// Convenience: the Table-2 Pascal baseline.
    #[must_use]
    pub fn pascal(technique: Technique) -> Gpu {
        Gpu::new(GpuConfig::pascal_gtx1080ti(), technique)
    }

    /// Runs `ck` with launch geometry `launch` against `memory`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds `max_cycles` (deadlock guard), or
    /// if a TB cannot fit on an empty SM (resource overflow).
    pub fn launch(
        &self,
        ck: &CompiledKernel,
        launch: &LaunchConfig,
        memory: GlobalMemory,
    ) -> SimResult {
        let kd = Arc::new(KernelData::new(ck.clone(), launch.clone()));
        let mut sms: Vec<Sm> = (0..self.cfg.num_sms)
            .map(|i| Sm::new(i, &self.cfg, self.technique.clone(), Arc::clone(&kd)))
            .collect();

        // Grid iteration order: x fastest, like the hardware dispatcher.
        let total_tbs = launch.num_blocks();
        let mut next_tb: u64 = 0;
        let grid = launch.grid;
        let tb_coord = |i: u64| -> Dim3 {
            let x = (i % u64::from(grid.x)) as u32;
            let y = ((i / u64::from(grid.x)) % u64::from(grid.y)) as u32;
            let z = (i / (u64::from(grid.x) * u64::from(grid.y))) as u32;
            Dim3::three_d(x, y, z)
        };

        let mut global = memory;
        let mut l2 = TagCache::new(self.cfg.l2_lines, self.cfg.l2_assoc);
        let mut dram = DramModel::new(self.cfg.dram_bandwidth);

        // Initial fill, round-robin across SMs.
        let mut progress = true;
        while progress && next_tb < total_tbs {
            progress = false;
            for sm in &mut sms {
                if next_tb >= total_tbs {
                    break;
                }
                if sm.can_accept_tb() {
                    sm.launch_tb(tb_coord(next_tb));
                    next_tb += 1;
                    progress = true;
                }
            }
        }
        if total_tbs > 0 {
            assert!(
                next_tb > 0,
                "kernel {} does not fit on an empty SM (regs/smem/warps overflow)",
                ck.kernel.name
            );
        }

        let mut now: u64 = 0;
        loop {
            let mut any_busy = false;
            let mut completed = 0u32;
            for sm in &mut sms {
                completed += sm.cycle(now, &mut global, &mut l2, &mut dram);
                any_busy |= sm.busy();
            }
            // Refill freed capacity. A dispatch makes the machine busy
            // again (the earlier busy() snapshot is stale).
            if completed > 0 {
                for sm in &mut sms {
                    while next_tb < total_tbs && sm.can_accept_tb() {
                        sm.launch_tb(tb_coord(next_tb));
                        next_tb += 1;
                        any_busy = true;
                    }
                }
            }
            now += 1;
            if !any_busy && next_tb >= total_tbs {
                break;
            }
            assert!(
                now < self.cfg.max_cycles,
                "simulation exceeded {} cycles (possible deadlock) running {}",
                self.cfg.max_cycles,
                ck.kernel.name
            );
        }

        let mut stats = SimStats::default();
        let mut events = crate::events::EventLog::new(self.cfg.trace_capacity);
        let mut profile = self.cfg.profile.then(crate::profile::SimProfile::default);
        for sm in &mut sms {
            stats.merge(&sm.stats);
            events.merge(std::mem::take(&mut sm.events));
            if let Some(p) = profile.as_mut() {
                let smp = std::mem::take(&mut sm.profile);
                debug_assert_eq!(smp.check_identity(), Ok(()), "SM {} accounting", smp.sm);
                p.sms.push(smp);
            }
        }
        stats.cycles = now;
        assert_eq!(
            stats.tbs_completed, total_tbs,
            "dispatcher lost threadblocks in {}",
            ck.kernel.name
        );
        SimResult { cycles: now, stats, memory: global, events, profile }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{KernelBuilder, MemSpace, SpecialReg, Value};

    /// out[gid] = in[gid] + 1, 1D grid.
    fn add_one_kernel() -> CompiledKernel {
        let mut b = KernelBuilder::new("add_one");
        let tid = b.special(SpecialReg::TidX);
        let ctaid = b.special(SpecialReg::CtaidX);
        let ntid = b.special(SpecialReg::NtidX);
        let gid = b.imad(ctaid, ntid, tid);
        let off = b.shl_imm(gid, 2);
        let inp = b.param(0);
        let outp = b.param(1);
        let a_in = b.iadd(inp, off);
        let v = b.load(MemSpace::Global, a_in, 0);
        let w = b.iadd(v, 1u32);
        let a_out = b.iadd(outp, off);
        b.store(MemSpace::Global, a_out, w, 0);
        simt_compiler::compile(b.finish())
    }

    #[test]
    fn base_runs_small_1d_kernel_correctly() {
        let ck = add_one_kernel();
        let mut mem = GlobalMemory::new();
        let n = 256u32;
        let a_in = mem.alloc(u64::from(n) * 4);
        let a_out = mem.alloc(u64::from(n) * 4);
        let input: Vec<u32> = (0..n).map(|i| i * 3).collect();
        mem.write_slice_u32(a_in, &input);
        let launch = LaunchConfig::new(4u32, 64u32)
            .with_params(vec![Value(a_in as u32), Value(a_out as u32)]);
        let gpu = Gpu::new(GpuConfig::test_small(), Technique::Base);
        let res = gpu.launch(&ck, &launch, mem);
        let out = res.memory.read_vec_u32(a_out, n as usize);
        let expect: Vec<u32> = input.iter().map(|v| v + 1).collect();
        assert_eq!(out, expect);
        assert!(res.cycles > 0);
        assert!(res.stats.instrs_executed >= u64::from(n / 32) * 11);
        assert_eq!(res.stats.tbs_completed, 4);
    }

    #[test]
    fn darsie_matches_base_output_on_2d_kernel() {
        // out[tid.y*16+tid.x] = in[tid.x] * 2 (tid.x chain is skippable
        // under a 16x16 block).
        let mut b = KernelBuilder::new("scale2d");
        let tx = b.special(SpecialReg::TidX);
        let ty = b.special(SpecialReg::TidY);
        let ntx = b.special(SpecialReg::NtidX);
        let inp = b.param(0);
        let outp = b.param(1);
        let off_in = b.shl_imm(tx, 2);
        let a_in = b.iadd(inp, off_in);
        let v = b.load(MemSpace::Global, a_in, 0);
        let v2 = b.iadd(v, v);
        let lin = b.imad(ty, ntx, tx);
        let off_out = b.shl_imm(lin, 2);
        let a_out = b.iadd(outp, off_out);
        b.store(MemSpace::Global, a_out, v2, 0);
        let ck = simt_compiler::compile(b.finish());

        let mk_mem = || {
            let mut mem = GlobalMemory::new();
            let a_in = mem.alloc(16 * 4);
            let a_out = mem.alloc(256 * 4);
            let input: Vec<u32> = (0..16).map(|i| 100 + i).collect();
            mem.write_slice_u32(a_in, &input);
            (mem, a_in, a_out)
        };
        let (mem_b, ain, aout) = mk_mem();
        let launch = LaunchConfig::new(2u32, (16u32, 16u32))
            .with_params(vec![Value(ain as u32), Value(aout as u32)]);

        let base = Gpu::new(GpuConfig::test_small(), Technique::Base).launch(&ck, &launch, mem_b);
        let (mem_d, _, _) = mk_mem();
        let dars =
            Gpu::new(GpuConfig::test_small(), Technique::darsie()).launch(&ck, &launch, mem_d);

        assert_eq!(
            base.memory.read_vec_u32(aout, 256),
            dars.memory.read_vec_u32(aout, 256),
            "DARSIE must preserve architected state"
        );
        assert!(dars.stats.instrs_skipped.total() > 0, "some instructions skipped");
        assert!(
            dars.stats.instrs_executed < base.stats.instrs_executed,
            "skipping reduces executed instructions"
        );
    }

    #[test]
    fn techniques_all_run_the_same_kernel() {
        let ck = add_one_kernel();
        for tech in [
            Technique::Base,
            Technique::Uv,
            Technique::DacIdeal,
            Technique::darsie(),
            Technique::SiliconSync,
        ] {
            let mut mem = GlobalMemory::new();
            let a_in = mem.alloc(256 * 4);
            let a_out = mem.alloc(256 * 4);
            mem.write_slice_u32(a_in, &(0..256u32).collect::<Vec<_>>());
            let launch = LaunchConfig::new(2u32, 128u32)
                .with_params(vec![Value(a_in as u32), Value(a_out as u32)]);
            let res = Gpu::new(GpuConfig::test_small(), tech.clone()).launch(&ck, &launch, mem);
            let out = res.memory.read_vec_u32(a_out, 256);
            let expect: Vec<u32> = (1..=256).collect();
            assert_eq!(out, expect, "technique {}", tech.label());
        }
    }
}
