//! The redundancy limit study (paper Figures 1 and 2): a functional-only
//! execution that measures, per dynamic instruction, whether the *values*
//! it operated on were redundant at the warp, threadblock or grid level,
//! and classifies threadblock-redundant work as uniform / affine /
//! unstructured.
//!
//! Unlike the static compiler pass, this is an oracle: it compares actual
//! operand and result vectors across warps at matching dynamic occurrences
//! (the paper's methodology for the motivating limit study). It therefore
//! also serves as a validation target for the static analysis — statically
//! marked instructions must be dynamically redundant.

use crate::functional::{ctaid_at, run_tb_functional, FunctionalObserver};
use crate::mem::GlobalMemory;
use crate::warp::Warp;
use simt_compiler::{CompiledKernel, Taxonomy};
use simt_isa::{Instruction, LaunchConfig, Operand};
use std::collections::HashMap;

/// Totals produced by [`trace_redundancy`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedundancyTrace {
    /// Dynamic warp instructions executed.
    pub executed: u64,
    /// Instructions redundant across the whole grid.
    pub grid_redundant: u64,
    /// Instructions redundant across their threadblock.
    pub tb_redundant: u64,
    /// Instructions whose operands were uniform within the warp
    /// (warp-level redundancy).
    pub warp_redundant: u64,
    /// TB-redundant instructions by taxonomy class (plus non-redundant).
    pub uniform: u64,
    /// Affine redundant count.
    pub affine: u64,
    /// Unstructured redundant count.
    pub unstructured: u64,
    /// Per-static-PC dynamic execution counts that were TB-redundant
    /// (for validating the static markings).
    pub per_pc_tb_redundant: HashMap<usize, u64>,
    /// Per-static-PC total dynamic executions.
    pub per_pc_executed: HashMap<usize, u64>,
    /// Per-static-PC count of *aligned* occurrence groups (every warp of
    /// the TB executed it, all with full masks) whose values disagreed.
    /// For soundly marked skippable instructions this must stay zero: the
    /// DARSIE runtime only skips under exactly these conditions.
    pub per_pc_aligned_mismatch: HashMap<usize, u64>,
}

impl RedundancyTrace {
    /// Fraction helpers for the figures.
    #[must_use]
    pub fn frac(&self, n: u64) -> f64 {
        if self.executed == 0 {
            0.0
        } else {
            n as f64 / self.executed as f64
        }
    }

    /// Taxonomy fractions in figure order (uniform, affine, unstructured,
    /// non-redundant).
    #[must_use]
    pub fn taxonomy_fractions(&self) -> [f64; 4] {
        let non = self.executed - self.tb_redundant;
        [
            self.frac(self.uniform),
            self.frac(self.affine),
            self.frac(self.unstructured),
            self.frac(non),
        ]
    }
}

/// Pattern of one 32-lane vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VecPattern {
    Uniform,
    Affine,
    Arbitrary,
}

fn vector_pattern(v: &[u32]) -> VecPattern {
    if v.iter().all(|&x| x == v[0]) {
        return VecPattern::Uniform;
    }
    // Affine over the whole warp, or affine with a power-of-two period
    // (the repeating tid.x segments of blocks narrower than a warp --
    // the paper's Figure 3 pattern).
    let mut period = 2;
    while period <= v.len() {
        if v.len().is_multiple_of(period) {
            let stride = v[1].wrapping_sub(v[0]);
            let matches = (0..v.len())
                .all(|i| v[i] == v[0].wrapping_add(stride.wrapping_mul((i % period) as u32)));
            if matches {
                return VecPattern::Affine;
            }
        }
        period *= 2;
    }
    VecPattern::Arbitrary
}

fn hash_words(h: &mut u64, words: &[u32]) {
    for &w in words {
        *h ^= u64::from(w);
        *h = h.wrapping_mul(0x1000_0000_01b3);
        *h ^= *h >> 31;
    }
}

/// Signature of one dynamic instruction: operand/result content and shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DynSig {
    hash: u64,
    full_mask: bool,
    taxonomy: Taxonomy,
    warp_uniform: bool,
}

/// Runs the limit study for one kernel launch. Returns the totals and the
/// final memory (so callers can still validate outputs).
#[must_use]
pub fn trace_redundancy(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    memory: GlobalMemory,
) -> (RedundancyTrace, GlobalMemory) {
    let mut trace = RedundancyTrace::default();
    let mut global = memory;
    // Grid-level aggregation: (pc, occurrence) -> (sig, consistent, count).
    let mut grid_agg: HashMap<(usize, u32), (u64, bool, u64)> = HashMap::new();
    let mut grid_full = true;

    let grid = launch.grid;
    let total = launch.num_blocks();
    for i in 0..total {
        let ctaid = ctaid_at(grid, i);
        let mut obs = SigObserver::new(launch, &mut trace);
        run_tb_functional(ck, launch, ctaid, &mut global, &mut obs);
        let tb_sigs = obs.sigs;
        // TB-level comparison: for each (pc, occ), all warps must have
        // executed it with identical signatures and full masks.
        let num_warps = tb_sigs.len();
        // Per occurrence: (first sig, how many warps, values all equal,
        // every execution fully active).
        let mut merged: HashMap<(usize, u32), (DynSig, usize, bool, bool)> = HashMap::new();
        for per_warp in &tb_sigs {
            for (&key, sig) in per_warp {
                let e = merged.entry(key).or_insert((*sig, 0, true, true));
                e.1 += 1;
                if sig.hash != e.0.hash {
                    e.2 = false;
                }
                if !sig.full_mask {
                    e.3 = false;
                }
            }
        }
        for (&(pc, occ), &(sig, count, same, all_full)) in &merged {
            let redundant = same && all_full && count == num_warps && num_warps > 1;
            if !same && all_full && count == num_warps {
                *trace.per_pc_aligned_mismatch.entry(pc).or_default() += 1;
            }
            if redundant {
                trace.tb_redundant += count as u64;
                *trace.per_pc_tb_redundant.entry(pc).or_default() += count as u64;
                match sig.taxonomy {
                    Taxonomy::Uniform => trace.uniform += count as u64,
                    Taxonomy::Affine => trace.affine += count as u64,
                    _ => trace.unstructured += count as u64,
                }
            }
            // Grid aggregation.
            let g = grid_agg.entry((pc, occ)).or_insert((sig.hash, true, 0));
            g.2 += count as u64;
            if g.0 != sig.hash || !redundant {
                g.1 = false;
            }
        }
        if total == 1 {
            grid_full = false; // single TB: grid == TB level, keep distinct
        }
    }

    if grid_full && total > 1 {
        for &(_, consistent, count) in grid_agg.values() {
            if consistent {
                trace.grid_redundant += count;
            }
        }
    }
    (trace, global)
}

/// Scratch carried from an instruction's `before` hook to its `after`.
struct PendingSig {
    hash: u64,
    worst: VecPattern,
    any_reg: bool,
    warp_uniform: bool,
    full: bool,
}

/// Observer recording the per-warp dynamic signatures of one TB run on
/// the shared headless runner (`functional.rs`).
struct SigObserver<'a> {
    trace: &'a mut RedundancyTrace,
    ws: u32,
    sigs: Vec<HashMap<(usize, u32), DynSig>>,
    pending: Option<PendingSig>,
}

impl<'a> SigObserver<'a> {
    fn new(launch: &LaunchConfig, trace: &'a mut RedundancyTrace) -> Self {
        SigObserver {
            trace,
            ws: launch.warp_size,
            sigs: vec![HashMap::new(); launch.warps_per_block() as usize],
            pending: None,
        }
    }
}

impl FunctionalObserver for SigObserver<'_> {
    fn before_instruction(
        &mut self,
        _w: usize,
        pc: usize,
        _occurrence: u32,
        instr: &Instruction,
        warp: &Warp,
    ) {
        // Signature before execution: operand vectors.
        let full = warp.active_mask() == warp.full_mask && warp.full_mask.count_ones() == self.ws;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ (pc as u64);
        let mut worst = VecPattern::Uniform;
        let mut any_reg = false;
        let mut warp_uniform = true;
        for &src in &instr.srcs {
            match src {
                Operand::Reg(r) => {
                    any_reg = true;
                    let v = warp.reg_vector(r);
                    hash_words(&mut hash, &v);
                    let p = vector_pattern(&v);
                    worst = worst_of(worst, p);
                    warp_uniform &= p == VecPattern::Uniform;
                }
                Operand::Imm(imm) => hash_words(&mut hash, &[imm]),
            }
        }
        self.pending = Some(PendingSig { hash, worst, any_reg, warp_uniform, full });
    }

    fn after_instruction(
        &mut self,
        w: usize,
        pc: usize,
        occurrence: u32,
        instr: &Instruction,
        warp: &Warp,
    ) {
        let PendingSig { mut hash, mut worst, any_reg, mut warp_uniform, full } =
            self.pending.take().expect("before_instruction always precedes after_instruction");
        self.trace.executed += 1;
        *self.trace.per_pc_executed.entry(pc).or_default() += 1;

        // Fold the result into the signature (covers S2R and loads).
        if let Some(d) = instr.dst {
            let v = warp.reg_vector(d);
            hash_words(&mut hash, &v);
            let p = vector_pattern(&v);
            // S2R has no register sources; loads are classified by the
            // data they return (Figure 3 labels the *output* register:
            // a load from an affine-redundant address is unstructured
            // unless the data itself happens to be patterned).
            if !any_reg || instr.op.is_load() {
                worst = p;
                warp_uniform = p == VecPattern::Uniform;
            }
        }
        let taxonomy = match worst {
            VecPattern::Uniform => Taxonomy::Uniform,
            VecPattern::Affine => Taxonomy::Affine,
            VecPattern::Arbitrary => Taxonomy::Unstructured,
        };
        if warp_uniform && full && !instr.srcs.is_empty() {
            self.trace.warp_redundant += 1;
        }
        self.sigs[w]
            .insert((pc, occurrence), DynSig { hash, full_mask: full, taxonomy, warp_uniform });
    }
}

fn worst_of(a: VecPattern, b: VecPattern) -> VecPattern {
    use VecPattern::*;
    match (a, b) {
        (Arbitrary, _) | (_, Arbitrary) => Arbitrary,
        (Affine, _) | (_, Affine) => Affine,
        _ => Uniform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{Dim3, KernelBuilder, MemSpace, SpecialReg, Value};

    /// The Figure-3 kernel: read in[tid.x * 4 + base].
    fn fig3(ck_2d: bool) -> (CompiledKernel, LaunchConfig, GlobalMemory) {
        let mut b = KernelBuilder::new("fig3");
        let t = b.special(SpecialReg::TidX);
        let base = b.param(0);
        let r1 = b.shl_imm(t, 2);
        let r2 = b.iadd(r1, base);
        let v = b.load(MemSpace::Global, r2, 0);
        let outp = b.param(1);
        let ty = b.special(SpecialReg::TidY);
        let ntx = b.special(SpecialReg::NtidX);
        let lin = b.imad(ty, ntx, t);
        let o = b.shl_imm(lin, 2);
        let ao = b.iadd(outp, o);
        b.store(MemSpace::Global, ao, v, 0);
        let ck = simt_compiler::compile(b.finish());
        let mut mem = GlobalMemory::new();
        let a_in = mem.alloc(1024 * 4);
        let a_out = mem.alloc(4096 * 4);
        mem.write_slice_u32(
            a_in,
            &(0..1024u32)
                .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(11))
                .collect::<Vec<_>>(),
        );
        let block = if ck_2d { Dim3::two_d(32, 8) } else { Dim3::one_d(256) };
        let launch = LaunchConfig::new(Dim3::two_d(2, 1), block)
            .with_params(vec![Value(a_in as u32), Value(a_out as u32)]);
        (ck, launch, mem)
    }

    #[test]
    fn two_d_blocks_show_tb_redundancy_one_d_do_not() {
        let (ck, launch2d, mem) = fig3(true);
        let (t2, _) = trace_redundancy(&ck, &launch2d, mem);
        assert!(t2.executed > 0);
        assert!(
            t2.frac(t2.tb_redundant) > 0.3,
            "2D blocks: substantial TB redundancy, got {}",
            t2.frac(t2.tb_redundant)
        );
        assert!(t2.affine > 0, "tid.x chain is affine redundant");
        assert!(t2.unstructured > 0, "the load is unstructured redundant");

        let (ck1, launch1d, mem1) = fig3(false);
        let (t1, _) = trace_redundancy(&ck1, &launch1d, mem1);
        // In 1D the tid.x chain differs across warps: only the truly
        // uniform work (params) stays redundant.
        assert!(
            t1.frac(t1.tb_redundant) < t2.frac(t2.tb_redundant),
            "1D {} vs 2D {}",
            t1.frac(t1.tb_redundant),
            t2.frac(t2.tb_redundant)
        );
        assert_eq!(t1.affine, 0, "no affine redundancy in 1D");
    }

    #[test]
    fn static_markings_are_sound_wrt_dynamic_oracle() {
        let (ck, launch, mem) = fig3(true);
        let plan = simt_compiler::LaunchPlan::new(&ck, &launch);
        let (t, _) = trace_redundancy(&ck, &launch, mem);
        for (pc, skippable) in plan.skippable.iter().enumerate() {
            if !skippable {
                continue;
            }
            let executed = t.per_pc_executed.get(&pc).copied().unwrap_or(0);
            let red = t.per_pc_tb_redundant.get(&pc).copied().unwrap_or(0);
            assert_eq!(
                executed, red,
                "statically skippable pc {pc} must be dynamically TB-redundant \
                 ({red}/{executed})"
            );
        }
    }

    #[test]
    fn grid_redundancy_is_subset_of_tb_redundancy() {
        let (ck, launch, mem) = fig3(true);
        let (t, _) = trace_redundancy(&ck, &launch, mem);
        assert!(t.grid_redundant <= t.tb_redundant);
        // tid.x work repeats across TBs too; the param base differs per
        // launch but not per TB, so some grid redundancy exists.
        assert!(t.grid_redundant > 0);
    }

    #[test]
    fn vector_pattern_classification() {
        assert_eq!(vector_pattern(&[5; 8]), VecPattern::Uniform);
        assert_eq!(vector_pattern(&[0, 4, 8, 12]), VecPattern::Affine);
        assert_eq!(vector_pattern(&[3, 2, 1, 0]), VecPattern::Affine, "negative stride");
        assert_eq!(vector_pattern(&[0, 1, 4, 9]), VecPattern::Arbitrary);
        assert_eq!(vector_pattern(&[7]), VecPattern::Uniform);
        // Repeating tid.x segments (16-wide block in a 32-lane warp).
        assert_eq!(vector_pattern(&[0, 1, 2, 3, 0, 1, 2, 3]), VecPattern::Affine);
        assert_eq!(vector_pattern(&[5, 9, 13, 17, 5, 9, 13, 17]), VecPattern::Affine);
        assert_eq!(vector_pattern(&[0, 1, 2, 3, 0, 1, 2, 4]), VecPattern::Arbitrary);
    }
}
