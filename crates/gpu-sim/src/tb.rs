//! Per-threadblock simulator state: shared memory, barrier bookkeeping and
//! the per-TB banks of the DARSIE structures.

use darsie::{DarsieConfig, MajorityMask, RenameState, SkipTable, WarpMask};
use simt_isa::Dim3;
use std::collections::HashMap;

/// State of a DARSIE branch-synchronization point (paper Section 4.3.3):
/// majority-path warps wait at each potentially divergent branch so that
/// all skipping warps share one control-flow history.
#[derive(Debug, Clone, Default)]
pub struct BranchSync {
    /// Majority warps that have executed the branch and are waiting.
    pub arrived: WarpMask,
    /// Each arrival's resulting next PC (`usize::MAX` when the warp
    /// diverged internally and left the majority path).
    pub outcomes: Vec<(u32, usize)>,
}

/// A resident threadblock.
#[derive(Debug)]
pub struct TbState {
    /// Coordinates in the grid.
    pub ctaid: Dim3,
    /// SM warp slots occupied by this TB, in warp-in-TB order.
    pub warp_slots: Vec<usize>,
    /// Mask of warps still running.
    pub live_mask: WarpMask,
    /// Shared-memory scratchpad (words).
    pub shared: Vec<u32>,
    /// Warps waiting at a `bar.sync`.
    pub barrier_arrived: WarpMask,
    /// DARSIE: PC skip table bank.
    pub skip_table: SkipTable,
    /// DARSIE: majority-path mask.
    pub majority: MajorityMask,
    /// DARSIE: rename/version/freelist bank.
    pub rename: RenameState,
    /// DARSIE: leader result snapshots, keyed by `(pc, instance)`. The
    /// 32-lane value a follower copies when it skips.
    pub snapshots: HashMap<(usize, u32), Box<[u32]>>,
    /// DARSIE: the `(register, version)` each live skip entry renames,
    /// keyed by `(pc, instance)`; followers bind to it when they skip.
    pub entry_versions: HashMap<(usize, u32), (u8, u32)>,
    /// DARSIE: in-progress branch synchronizations, keyed by branch PC.
    pub branch_syncs: HashMap<usize, BranchSync>,
    /// SILICON-SYNC: basic-block boundary crossings completed per warp.
    pub bb_crossings: Vec<u64>,
    /// SILICON-SYNC: warps blocked at their next crossing.
    pub bb_waiting: WarpMask,
}

impl TbState {
    /// Creates the state for a TB with `num_warps` warps and
    /// `shared_bytes` of scratchpad.
    #[must_use]
    pub fn new(
        ctaid: Dim3,
        warp_slots: Vec<usize>,
        shared_bytes: u32,
        darsie: &DarsieConfig,
    ) -> TbState {
        let num_warps = warp_slots.len() as u32;
        let live_mask = if num_warps >= 32 { u32::MAX } else { (1 << num_warps) - 1 };
        TbState {
            ctaid,
            live_mask,
            shared: vec![0; (shared_bytes as usize).div_ceil(4)],
            barrier_arrived: 0,
            skip_table: SkipTable::new(darsie.skip_entries_per_tb),
            majority: MajorityMask::new(num_warps),
            rename: RenameState::new(darsie.rename_regs_per_tb),
            snapshots: HashMap::new(),
            entry_versions: HashMap::new(),
            branch_syncs: HashMap::new(),
            bb_crossings: vec![0; warp_slots.len()],
            bb_waiting: 0,
            warp_slots,
        }
    }

    /// Number of warps in this TB.
    #[must_use]
    pub fn num_warps(&self) -> u32 {
        self.warp_slots.len() as u32
    }

    /// Records a warp exit; returns true when the TB is finished.
    pub fn retire_warp(&mut self, warp_in_tb: u32) -> bool {
        self.live_mask &= !(1 << warp_in_tb);
        self.majority.retire(warp_in_tb);
        self.rename.release_warp(warp_in_tb);
        self.live_mask == 0
    }

    /// The set of warps a skip-table entry must see pass before removal:
    /// live warps still on the majority path.
    #[must_use]
    pub fn must_pass_mask(&self) -> WarpMask {
        self.majority.mask() & self.live_mask
    }

    /// Registers a warp's arrival at `bar.sync`; returns `Some(released)`
    /// when the whole TB has arrived (mask of warps to unblock).
    pub fn arrive_barrier(&mut self, warp_in_tb: u32) -> Option<WarpMask> {
        self.barrier_arrived |= 1 << warp_in_tb;
        if self.barrier_arrived & self.live_mask == self.live_mask {
            let released = std::mem::take(&mut self.barrier_arrived);
            // `__syncthreads()` restores every warp to the majority path
            // (paper Section 4.3.3).
            self.majority.reset();
            Some(released)
        } else {
            None
        }
    }

    /// Completes a barrier whose remaining participants all exited
    /// (re-evaluated after warp retirement). Returns the released mask.
    pub fn arrive_barrier_completion(&mut self) -> Option<WarpMask> {
        if self.barrier_arrived != 0 && self.barrier_arrived & self.live_mask == self.live_mask {
            let released = std::mem::take(&mut self.barrier_arrived);
            self.majority.reset();
            Some(released)
        } else {
            None
        }
    }

    /// Registers a majority-path warp's arrival at a synchronized branch.
    /// `next_pc` is the warp's post-branch PC (or `usize::MAX` if it
    /// diverged internally). Returns `Some((released, evicted))` when all
    /// majority warps have arrived: warps to unblock, and warps that left
    /// the majority path.
    pub fn arrive_branch_sync(
        &mut self,
        pc: usize,
        warp_in_tb: u32,
        next_pc: usize,
    ) -> Option<(WarpMask, Vec<u32>)> {
        let e = self.branch_syncs.entry(pc).or_default();
        e.arrived |= 1 << warp_in_tb;
        e.outcomes.push((warp_in_tb, next_pc));
        self.check_branch_sync(pc)
    }

    /// Re-evaluates a pending branch sync (called after arrivals and after
    /// the majority mask shrinks). Returns `Some((released, evicted))`
    /// when it resolved.
    pub fn check_branch_sync(&mut self, pc: usize) -> Option<(WarpMask, Vec<u32>)> {
        let expected = self.must_pass_mask();
        let e = self.branch_syncs.get(&pc)?;
        // Warps that already left the majority path no longer count.
        if e.arrived & expected != expected {
            return None;
        }
        let e = self.branch_syncs.remove(&pc).expect("entry just found");
        // Majority outcome among the arrivals still on the path.
        let mut counts: HashMap<usize, u32> = HashMap::new();
        for &(w, npc) in &e.outcomes {
            if expected & (1 << w) != 0 && npc != usize::MAX {
                *counts.entry(npc).or_default() += 1;
            }
        }
        let majority_pc =
            counts.iter().max_by_key(|(pc, n)| (**n, usize::MAX - **pc)).map(|(pc, _)| *pc);
        let mut evicted = Vec::new();
        for &(w, npc) in &e.outcomes {
            if expected & (1 << w) == 0 {
                continue;
            }
            if npc == usize::MAX || Some(npc) != majority_pc {
                self.majority.remove(w);
                self.rename.release_warp(w);
                evicted.push(w);
            }
        }
        // The majority shrank: previously stalled skip entries may now be
        // complete.
        let must = self.must_pass_mask();
        if self.skip_table.sweep(must) > 0 {
            self.gc_versions();
        }
        Some((e.arrived, evicted))
    }

    /// Completes one skip entry: drops its snapshot and frees its renamed
    /// version (followers materialized the value into their private
    /// registers when they skipped, so the physical register is dead once
    /// every majority warp has passed).
    pub fn entry_completed(&mut self, pc: usize, instance: u32) {
        self.snapshots.remove(&(pc, instance));
        if let Some((reg, version)) = self.entry_versions.remove(&(pc, instance)) {
            self.rename.free_version(reg, version);
        }
    }

    /// Garbage-collects versions/snapshots whose skip entries are gone
    /// (bulk removals: sweeps, load invalidations, TB teardown).
    pub fn gc_versions(&mut self) {
        let dead: Vec<(usize, u32)> = self
            .entry_versions
            .keys()
            .filter(|k| self.skip_table.find(k.0, k.1).is_none())
            .copied()
            .collect();
        for (pc, instance) in dead {
            self.entry_completed(pc, instance);
        }
    }

    /// All pending branch syncs, for re-evaluation after warp exits.
    #[must_use]
    pub fn pending_branch_syncs(&self) -> Vec<usize> {
        self.branch_syncs.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tb(warps: usize) -> TbState {
        TbState::new(Dim3::three_d(0, 0, 0), (0..warps).collect(), 64, &DarsieConfig::default())
    }

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut t = tb(3);
        assert_eq!(t.arrive_barrier(0), None);
        assert_eq!(t.arrive_barrier(2), None);
        assert_eq!(t.arrive_barrier(1), Some(0b111));
        assert_eq!(t.barrier_arrived, 0, "reset for the next barrier");
    }

    #[test]
    fn barrier_ignores_dead_warps() {
        let mut t = tb(3);
        assert!(!t.retire_warp(1));
        assert_eq!(t.arrive_barrier(0), None);
        assert_eq!(t.arrive_barrier(2), Some(0b101));
    }

    #[test]
    fn barrier_restores_majority() {
        let mut t = tb(3);
        t.majority.remove(1);
        assert_eq!(t.must_pass_mask(), 0b101);
        let _ = t.arrive_barrier(0);
        let _ = t.arrive_barrier(1);
        let _ = t.arrive_barrier(2);
        assert_eq!(t.must_pass_mask(), 0b111);
    }

    #[test]
    fn branch_sync_keeps_majority_when_unanimous() {
        let mut t = tb(3);
        assert_eq!(t.arrive_branch_sync(5, 0, 10), None);
        assert_eq!(t.arrive_branch_sync(5, 1, 10), None);
        let (released, evicted) = t.arrive_branch_sync(5, 2, 10).expect("resolves");
        assert_eq!(released, 0b111);
        assert!(evicted.is_empty());
        assert_eq!(t.must_pass_mask(), 0b111);
    }

    #[test]
    fn branch_sync_evicts_minority_paths() {
        let mut t = tb(4);
        t.arrive_branch_sync(5, 0, 10);
        t.arrive_branch_sync(5, 1, 10);
        t.arrive_branch_sync(5, 2, 20);
        let (released, evicted) = t.arrive_branch_sync(5, 3, 10).expect("resolves");
        assert_eq!(released, 0b1111, "everyone resumes");
        assert_eq!(evicted, vec![2], "minority outcome leaves the path");
        assert_eq!(t.must_pass_mask(), 0b1011);
    }

    #[test]
    fn branch_sync_evicts_intra_warp_divergence() {
        let mut t = tb(2);
        t.arrive_branch_sync(5, 0, usize::MAX); // diverged inside the warp
        let (_, evicted) = t.arrive_branch_sync(5, 1, 8).expect("resolves");
        assert_eq!(evicted, vec![0]);
        assert!(t.majority.contains(1));
    }

    #[test]
    fn branch_sync_resolves_after_exit_shrinks_majority() {
        let mut t = tb(3);
        assert_eq!(t.arrive_branch_sync(5, 0, 10), None);
        assert_eq!(t.arrive_branch_sync(5, 1, 10), None);
        // Warp 2 exits instead of arriving.
        assert!(!t.retire_warp(2));
        let resolved = t.check_branch_sync(5).expect("resolves without warp 2");
        assert_eq!(resolved.0, 0b011);
    }

    #[test]
    fn retire_last_warp_finishes_tb() {
        let mut t = tb(2);
        assert!(!t.retire_warp(0));
        assert!(t.retire_warp(1));
    }
}
