//! The UV baseline's instruction reuse buffer (Xiang et al. / Sodani &
//! Sohi): a value-keyed table probed at the issue stage. Entries store the
//! full `(pc, operand values)` key and compare exactly, as hardware reuse
//! buffers do — a match guarantees the stored result is correct for any
//! deterministic non-memory instruction. If a uniform instruction's
//! operands match a previous execution, the stored result is reused and
//! the execution stage is skipped — but the instruction has already
//! consumed fetch, decode and issue bandwidth, which is exactly why UV
//! trails DARSIE in the paper.

use std::collections::HashMap;

/// Exact reuse key: static PC plus the scalar operand values consumed.
pub type ReuseKey = (usize, Box<[u32]>);

/// An LRU, value-keyed reuse buffer.
#[derive(Debug, Clone)]
pub struct ReuseBuffer {
    capacity: usize,
    entries: HashMap<ReuseKey, (Box<[u32]>, u64)>,
    tick: u64,
    /// Successful reuses.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
}

impl ReuseBuffer {
    /// A buffer holding `capacity` results.
    #[must_use]
    pub fn new(capacity: usize) -> ReuseBuffer {
        ReuseBuffer { capacity, entries: HashMap::new(), tick: 0, hits: 0, misses: 0 }
    }

    /// Builds the key for `(pc, operand values)`. Since UV only reuses
    /// instructions whose operands are warp-uniform, one scalar word per
    /// operand suffices.
    #[must_use]
    pub fn key(pc: usize, operands: &[u32]) -> ReuseKey {
        (pc, operands.to_vec().into_boxed_slice())
    }

    /// Probes for a previous result. Returns the stored vector on a hit.
    pub fn probe(&mut self, key: &ReuseKey) -> Option<Box<[u32]>> {
        self.tick += 1;
        if let Some((v, lru)) = self.entries.get_mut(key) {
            *lru = self.tick;
            self.hits += 1;
            Some(v.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a freshly computed result, evicting LRU if needed.
    pub fn insert(&mut self, key: ReuseKey, value: Box<[u32]>) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, (_, lru))| *lru).map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, (value, self.tick));
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_miss_then_hit() {
        let mut b = ReuseBuffer::new(4);
        let key = ReuseBuffer::key(8, &[1, 2]);
        assert!(b.probe(&key).is_none());
        b.insert(key.clone(), vec![42; 32].into_boxed_slice());
        assert_eq!(b.probe(&key).as_deref(), Some(&[42u32; 32][..]));
        assert_eq!(b.hits, 1);
        assert_eq!(b.misses, 1);
    }

    #[test]
    fn different_operands_or_pcs_never_alias() {
        let a = ReuseBuffer::key(8, &[1, 2]);
        let b = ReuseBuffer::key(8, &[1, 3]);
        let c = ReuseBuffer::key(16, &[1, 2]);
        // Exact keys: no collision is possible by construction.
        assert_ne!(a, b);
        assert_ne!(a, c);
        // The regression that motivated exact keys: two small scalar
        // payloads at nearby PCs must not alias.
        assert_ne!(ReuseBuffer::key(9, &[7]), ReuseBuffer::key(14, &[0]));
    }

    #[test]
    fn lru_eviction() {
        let mut b = ReuseBuffer::new(2);
        let k1 = ReuseBuffer::key(0, &[1]);
        let k2 = ReuseBuffer::key(8, &[1]);
        let k3 = ReuseBuffer::key(16, &[1]);
        b.insert(k1.clone(), vec![1].into_boxed_slice());
        b.insert(k2.clone(), vec![2].into_boxed_slice());
        assert!(b.probe(&k1).is_some(), "refresh k1");
        b.insert(k3, vec![3].into_boxed_slice());
        assert_eq!(b.len(), 2);
        assert!(b.probe(&k2).is_none(), "k2 was LRU");
        assert!(b.probe(&k1).is_some());
    }
}
