//! Chrome trace-event JSON export of a pipeline trace, loadable in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! The mapping: one *process* per SM, one *thread* per warp slot. Every
//! [`PipeEvent`] becomes a complete event (`ph: "X"`) with `ts` = cycle
//! and `dur` = 1, so a warp's lifetime reads as a row of labelled
//! single-cycle blocks. When a profile is supplied, its occupancy samples
//! become counter tracks (`ph: "C"`) per SM. Dropped-event counts land in
//! `otherData` so a truncated ring is visible in the UI.
//!
//! The emitter is hand-rolled `format!` JSON like the rest of the
//! workspace (no serde); the output is plain ASCII.

use crate::events::{EventLog, PipeEvent};
use crate::profile::SimProfile;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders `events` (and, when given, `profile` occupancy counters) as a
/// Chrome trace-event JSON object.
#[must_use]
pub fn chrome_trace_json(events: &EventLog, profile: Option<&SimProfile>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, s: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&s);
    };

    // Metadata: name each SM process and each warp thread that appears.
    let mut sms: BTreeSet<usize> = BTreeSet::new();
    let mut warps: BTreeSet<(usize, usize)> = BTreeSet::new();
    for e in events.iter() {
        sms.insert(e.sm);
        warps.insert((e.sm, e.warp));
    }
    if let Some(p) = profile {
        for smp in &p.sms {
            if !smp.samples.is_empty() {
                sms.insert(smp.sm);
            }
        }
    }
    for &sm in &sms {
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{sm},\
                 \"args\":{{\"name\":\"SM {sm}\"}}}}"
            ),
        );
    }
    for &(sm, warp) in &warps {
        emit(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{sm},\"tid\":{warp},\
                 \"args\":{{\"name\":\"warp {warp}\"}}}}"
            ),
        );
    }

    for e in events.iter() {
        emit(&mut out, complete_event(e));
    }

    if let Some(p) = profile {
        for smp in &p.sms {
            for s in &smp.samples {
                emit(
                    &mut out,
                    format!(
                        "{{\"ph\":\"C\",\"name\":\"darsie occupancy\",\"pid\":{},\"ts\":{},\
                         \"args\":{{\"skip_entries\":{},\"live_versions\":{},\
                         \"waiting_warps\":{}}}}}",
                        smp.sm, s.cycle, s.skip_entries, s.live_versions, s.waiting_warps
                    ),
                );
            }
        }
    }

    let _ = write!(out, "],\"otherData\":{{\"dropped_events\":{}}}}}", events.dropped);
    out
}

fn complete_event(e: &PipeEvent) -> String {
    format!(
        "{{\"ph\":\"X\",\"name\":\"{:?}\",\"cat\":\"pipeline\",\"ts\":{},\"dur\":1,\
         \"pid\":{},\"tid\":{},\"args\":{{\"pc\":{}}}}}",
        e.kind, e.cycle, e.sm, e.warp, e.pc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::profile::{OccupancySample, SmProfile};

    #[test]
    fn trace_has_metadata_events_and_drop_count() {
        let mut log = EventLog::new(4);
        log.push(PipeEvent { cycle: 3, sm: 0, warp: 1, pc: 7, kind: EventKind::Issue });
        log.push(PipeEvent { cycle: 4, sm: 0, warp: 1, pc: 8, kind: EventKind::Skip });
        let json = chrome_trace_json(&log, None);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "process/thread names: {json}");
        assert!(json.contains("\"name\":\"SM 0\""), "{json}");
        assert!(json.contains("\"ph\":\"X\",\"name\":\"Issue\""), "{json}");
        assert!(json.contains("\"ts\":3"), "{json}");
        assert!(json.contains("\"dropped_events\":0"), "{json}");
    }

    #[test]
    fn profile_samples_become_counters() {
        let log = EventLog::new(0);
        let mut smp = SmProfile::new(2, 8, 4);
        smp.samples.push(OccupancySample {
            cycle: 256,
            skip_entries: 3,
            skip_capacity: 8,
            live_versions: 5,
            rename_capacity: 32,
            resident_warps: 8,
            waiting_warps: 2,
        });
        let prof = SimProfile { sms: vec![smp] };
        let json = chrome_trace_json(&log, Some(&prof));
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"skip_entries\":3"), "{json}");
        assert!(json.contains("\"pid\":2"), "{json}");
    }
}
