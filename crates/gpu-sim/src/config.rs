//! GPU configuration (paper Table 2: Pascal GTX 1080 Ti baseline).

use darsie::DarsieConfig;

/// Warp scheduling policy of the issue schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing the current warp until it stalls,
    /// then switch to the oldest ready warp (the paper's best performer).
    Gto,
    /// Loose round robin.
    Lrr,
}

/// The redundancy-elimination technique a simulation runs with.
#[derive(Debug, Clone, PartialEq)]
pub enum Technique {
    /// The unmodified baseline GPU.
    Base,
    /// Uniform Vector (Xiang et al.): value-keyed instruction reuse of
    /// TB-uniform instructions at the issue stage. Instructions are still
    /// fetched and decoded.
    Uv,
    /// Idealized Decoupled Affine Computation (Wang & Lin): every uniform
    /// or affine non-memory instruction runs once on a free affine stream,
    /// with no synchronization cost.
    DacIdeal,
    /// DARSIE instruction skipping in fetch, with the given hardware
    /// configuration.
    Darsie(DarsieConfig),
    /// The Figure-12 `SILICON-SYNC` experiment: the baseline pipeline with
    /// a `__syncthreads()` inserted at every basic-block boundary and no
    /// skipping — isolates DARSIE's synchronization cost.
    SiliconSync,
}

impl Technique {
    /// Convenience constructor for default DARSIE.
    #[must_use]
    pub fn darsie() -> Technique {
        Technique::Darsie(DarsieConfig::default())
    }

    /// Short display label used in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Base => "BASE",
            Technique::Uv => "UV",
            Technique::DacIdeal => "DAC-IDEAL",
            Technique::Darsie(c) if c.ignore_store => "DARSIE-IGNORE-STORE",
            Technique::Darsie(c) if c.no_cf_sync => "DARSIE-NO-CF-SYNC",
            Technique::Darsie(c) if !c.versioning => "DARSIE-NO-VERSIONING",
            Technique::Darsie(_) => "DARSIE",
            Technique::SiliconSync => "SILICON-SYNC",
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub num_sms: usize,
    /// SIMT width.
    pub warp_size: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident threadblocks per SM.
    pub max_tbs_per_sm: u32,
    /// Vector registers per SM (each 32 lanes x 32 bits).
    pub vector_regs_per_sm: u32,
    /// Shared memory bytes per SM.
    pub shared_mem_per_sm: u32,
    /// Issue schedulers per SM; warps are statically partitioned.
    pub schedulers_per_sm: usize,
    /// Instructions one scheduler may issue per cycle (dual issue = 2).
    pub issue_width: usize,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Warps the fetch scheduler serves per cycle.
    pub fetch_width: usize,
    /// Consecutive instructions fetched per I-cache access.
    pub instrs_per_fetch: usize,
    /// I-buffer entries per warp.
    pub ibuffer_entries: usize,
    /// Vector register file banks per SM.
    pub rf_banks: usize,
    /// I-cache: total lines (128 B each, 16 instructions).
    pub icache_lines: usize,
    /// I-cache associativity.
    pub icache_assoc: usize,
    /// L1 data cache lines per SM (128 B each).
    pub l1d_lines: usize,
    /// L1 data cache associativity.
    pub l1d_assoc: usize,
    /// Shared L2 lines (128 B each).
    pub l2_lines: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Integer ALU latency (cycles).
    pub int_latency: u64,
    /// Floating-point latency (cycles).
    pub fp_latency: u64,
    /// SFU (transcendental) latency.
    pub sfu_latency: u64,
    /// SFU initiation interval (cycles a SFU op blocks its unit).
    pub sfu_interval: u64,
    /// Shared-memory access latency.
    pub smem_latency: u64,
    /// L1 hit latency for global accesses.
    pub l1_latency: u64,
    /// Additional latency for an L2 hit.
    pub l2_latency: u64,
    /// Additional latency for a DRAM access.
    pub dram_latency: u64,
    /// DRAM transactions (128-byte) serviced per cycle, whole GPU.
    pub dram_bandwidth: usize,
    /// Hard cycle limit (deadlock guard).
    pub max_cycles: u64,
    /// Recompute skipped values functionally and compare against the
    /// shared leader value (test-only soundness oracle; off in benches).
    pub shadow_check: bool,
    /// Record pipeline events (fetch/skip/issue/...) into
    /// [`SimResult::events`](crate::SimResult); for debugging small runs.
    pub trace_events: bool,
    /// Ring-buffer capacity of the event trace: the most recent
    /// `trace_capacity` events are kept, older ones are counted in
    /// [`EventLog::dropped`](crate::events::EventLog::dropped).
    pub trace_capacity: usize,
    /// Enable cycle-accounted profiling: issue-slot stall attribution,
    /// per-PC/per-warp breakdowns, leader-latency histograms and occupancy
    /// samples, returned in [`SimResult::profile`](crate::SimResult).
    pub profile: bool,
    /// Cycles between occupancy samples while profiling.
    pub profile_sample_interval: u64,
}

impl GpuConfig {
    /// The paper's Table 2 baseline: Pascal GTX 1080 Ti.
    ///
    /// 28 SMs, 64 warps/SM, 32 TBs/SM, 2 K vector registers per SM, 96 KB
    /// shared memory per SM, 4 GTO warp schedulers per SM.
    #[must_use]
    pub fn pascal_gtx1080ti() -> GpuConfig {
        GpuConfig {
            num_sms: 28,
            warp_size: 32,
            max_warps_per_sm: 64,
            max_tbs_per_sm: 32,
            vector_regs_per_sm: 2048,
            shared_mem_per_sm: 96 * 1024,
            schedulers_per_sm: 4,
            issue_width: 2,
            scheduler: SchedulerPolicy::Gto,
            // The paper's frontend: "a fetch scheduler initiates a fetch
            // for one of the warps" per cycle (Section 3).
            fetch_width: 1,
            instrs_per_fetch: 2,
            ibuffer_entries: 2,
            rf_banks: 16,
            icache_lines: 64, // 8 KB
            icache_assoc: 4,
            l1d_lines: 384, // 48 KB
            l1d_assoc: 6,
            l2_lines: 22528, // 2.75 MB
            l2_assoc: 16,
            int_latency: 4,
            fp_latency: 6,
            sfu_latency: 16,
            sfu_interval: 4,
            smem_latency: 24,
            l1_latency: 30,
            l2_latency: 190,
            dram_latency: 350,
            dram_bandwidth: 3,
            max_cycles: 200_000_000,
            shadow_check: false,
            trace_events: false,
            trace_capacity: 200_000,
            profile: false,
            profile_sample_interval: 256,
        }
    }

    /// A scaled-down machine for fast unit and property tests: one SM,
    /// small caches, short latencies. Functionally identical.
    #[must_use]
    pub fn test_small() -> GpuConfig {
        GpuConfig {
            num_sms: 1,
            max_warps_per_sm: 64,
            max_tbs_per_sm: 8,
            icache_lines: 16,
            l1d_lines: 32,
            l1d_assoc: 4,
            l2_lines: 256,
            l2_assoc: 8,
            dram_latency: 40,
            l2_latency: 20,
            l1_latency: 8,
            smem_latency: 4,
            max_cycles: 20_000_000,
            shadow_check: true,
            ..GpuConfig::pascal_gtx1080ti()
        }
    }

    /// Bytes of shared memory per 128-byte cache line constant.
    pub const LINE_BYTES: u64 = 128;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pascal_preset_matches_table2() {
        let c = GpuConfig::pascal_gtx1080ti();
        assert_eq!(c.num_sms, 28);
        assert_eq!(c.max_warps_per_sm, 64);
        assert_eq!(c.max_tbs_per_sm, 32);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.vector_regs_per_sm, 2048);
        assert_eq!(c.shared_mem_per_sm, 96 * 1024);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.scheduler, SchedulerPolicy::Gto);
    }

    #[test]
    fn technique_labels() {
        assert_eq!(Technique::Base.label(), "BASE");
        assert_eq!(Technique::darsie().label(), "DARSIE");
        assert_eq!(Technique::Darsie(DarsieConfig::ignore_store()).label(), "DARSIE-IGNORE-STORE");
        assert_eq!(Technique::Darsie(DarsieConfig::no_cf_sync()).label(), "DARSIE-NO-CF-SYNC");
        assert_eq!(Technique::SiliconSync.label(), "SILICON-SYNC");
    }

    #[test]
    fn test_config_enables_shadow_check() {
        assert!(GpuConfig::test_small().shadow_check);
        assert!(!GpuConfig::pascal_gtx1080ti().shadow_check);
    }
}
