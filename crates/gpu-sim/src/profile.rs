//! Cycle-accounted profiling: per-SM issue-slot attribution, per-PC and
//! per-warp breakdowns, leader-election latency histograms and periodic
//! occupancy samples of the DARSIE structures.
//!
//! The core contract is the **accounting identity**: every issue slot of
//! every cycle is attributed to exactly one [`StallCause`], so per SM
//!
//! ```text
//! Σ over causes == cycles × schedulers_per_sm × issue_width
//! ```
//!
//! ([`SmProfile::check_identity`]). Two causes are *structural zeros* in
//! this pipeline model and kept in the taxonomy for schema stability:
//! operand-collector conflicts are charged as extra register-bank cycles
//! but never stall issue, and majority-path eviction lets the evicted warp
//! keep executing rather than stalling it.
//!
//! Profiling is enabled with [`GpuConfig::profile`](crate::GpuConfig) and
//! comes back in [`SimResult::profile`](crate::SimResult); with it off,
//! none of the bookkeeping below runs.

use std::collections::BTreeMap;

/// Where an issue slot went. `Issued` is the productive case; every other
/// variant names the reason the slot stayed empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// The slot issued an instruction (or satisfied one from the UV reuse
    /// buffer).
    Issued,
    /// The frontend eliminated the instruction that would have filled the
    /// slot (a DARSIE skip marker or DAC ghost drained at issue).
    SkippedByDarsie,
    /// Scoreboard dependency: an operand of the head instruction is still
    /// in flight (RAW), or a skip marker hit a WAW hazard.
    Scoreboard,
    /// Operand-collector conflict. Structurally zero in this model: bank
    /// conflicts are charged to `rf_bank_conflicts`, not to issue.
    OperandCollector,
    /// The SP or SFU unit the head instruction needs is busy.
    ExecUnitBusy,
    /// The LSU is busy serialising an earlier memory access.
    LsuQueue,
    /// The warp's I-buffer holds no issuable instruction (fetch is behind,
    /// or a wrong-path flush just emptied it).
    IBufferEmpty,
    /// The warp is parked waiting for a DARSIE leader writeback.
    WaitLeader,
    /// The warp is blocked at DARSIE branch synchronization.
    BranchSync,
    /// The warp is parked at a `bar.sync` (or a SILICON-SYNC block
    /// boundary).
    Barrier,
    /// Majority-path eviction. Structurally zero: evicted warps keep
    /// executing off the majority path instead of stalling.
    MajorityEvict,
    /// No warp is mapped to this scheduler slot at all.
    IdleNoWarp,
}

impl StallCause {
    /// Every cause, in display order.
    pub const ALL: [StallCause; 12] = [
        StallCause::Issued,
        StallCause::SkippedByDarsie,
        StallCause::Scoreboard,
        StallCause::OperandCollector,
        StallCause::ExecUnitBusy,
        StallCause::LsuQueue,
        StallCause::IBufferEmpty,
        StallCause::WaitLeader,
        StallCause::BranchSync,
        StallCause::Barrier,
        StallCause::MajorityEvict,
        StallCause::IdleNoWarp,
    ];

    /// Stable snake_case label (used as the JSON key).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Issued => "issued",
            StallCause::SkippedByDarsie => "skipped_by_darsie",
            StallCause::Scoreboard => "scoreboard",
            StallCause::OperandCollector => "operand_collector",
            StallCause::ExecUnitBusy => "exec_unit_busy",
            StallCause::LsuQueue => "lsu_queue",
            StallCause::IBufferEmpty => "ibuffer_empty",
            StallCause::WaitLeader => "wait_leader",
            StallCause::BranchSync => "branch_sync",
            StallCause::Barrier => "barrier",
            StallCause::MajorityEvict => "majority_evict",
            StallCause::IdleNoWarp => "idle_no_warp",
        }
    }

    fn index(self) -> usize {
        StallCause::ALL.iter().position(|&c| c == self).expect("cause in ALL")
    }
}

/// Issue-slot counters, one per [`StallCause`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotCounts([u64; 12]);

impl SlotCounts {
    /// Adds `n` slots under `cause`.
    pub fn add(&mut self, cause: StallCause, n: u64) {
        self.0[cause.index()] += n;
    }

    /// Slots attributed to `cause`.
    #[must_use]
    pub fn get(&self, cause: StallCause) -> u64 {
        self.0[cause.index()]
    }

    /// Total slots accounted (the left side of the identity).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Sums another counter set into this one.
    pub fn merge(&mut self, other: &SlotCounts) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// `(cause, count)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (StallCause, u64)> + '_ {
        StallCause::ALL.iter().map(move |&c| (c, self.0[c.index()]))
    }
}

/// Power-of-two bucketed latency histogram (bucket 0 holds zero; bucket
/// `i` holds `2^(i-1) ..= 2^i - 1`; the last bucket is open-ended).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; 16],
}

impl LatencyHist {
    /// Records one latency observation.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 { 0 } else { (64 - v.leading_zeros() as usize).min(15) };
        self.buckets[idx] += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw buckets.
    #[must_use]
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= 15 {
            u64::MAX
        } else if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Sums another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// One periodic snapshot of the DARSIE structures and warp population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Cycle the sample was taken.
    pub cycle: u64,
    /// Live skip-table entries across resident TBs.
    pub skip_entries: u32,
    /// Skip-table capacity across resident TBs.
    pub skip_capacity: u32,
    /// Live renamed register versions across resident TBs.
    pub live_versions: u32,
    /// Renaming-pool capacity across resident TBs.
    pub rename_capacity: u32,
    /// Resident warps.
    pub resident_warps: u32,
    /// Warps parked in `WaitLeader`.
    pub waiting_warps: u32,
}

/// Per-static-instruction profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcProfile {
    /// Times this PC issued (including UV reuse hits).
    pub issued: u64,
    /// Times this PC was eliminated by the frontend (skip marker or ghost
    /// drained).
    pub skipped: u64,
    /// Issue slots lost while this PC was the blamed head instruction.
    pub stalls: SlotCounts,
}

/// Per-warp-slot profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpSlotProfile {
    /// Instructions issued from this warp slot.
    pub issued: u64,
    /// Issue slots lost while this warp slot was the blamed warp.
    pub stalls: SlotCounts,
}

/// Cap on stored occupancy samples; later samples are dropped and counted
/// in [`SmProfile::samples_dropped`].
pub const MAX_OCCUPANCY_SAMPLES: usize = 4096;

/// One SM's cycle-accounted profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmProfile {
    /// SM index.
    pub sm: usize,
    /// Cycles this SM was clocked.
    pub cycles: u64,
    /// Issue slots per cycle (`schedulers_per_sm × issue_width`).
    pub issue_slots_per_cycle: u64,
    /// Slot attribution (the accounting identity is over these).
    pub slots: SlotCounts,
    /// Per-PC issue/skip/stall breakdown.
    pub per_pc: BTreeMap<usize, PcProfile>,
    /// Per-warp-slot issue/stall breakdown. Warp attribution is partial by
    /// design (idle-no-warp slots blame nobody), so these do not satisfy
    /// the identity on their own.
    pub per_warp: Vec<WarpSlotProfile>,
    /// Cycles from leader election to leader writeback.
    pub leader_latency: LatencyHist,
    /// Periodic occupancy samples (bounded by
    /// [`MAX_OCCUPANCY_SAMPLES`]).
    pub samples: Vec<OccupancySample>,
    /// Samples dropped after the bound.
    pub samples_dropped: u64,
}

impl SmProfile {
    /// An empty profile for SM `sm` with `slots_per_cycle` issue slots.
    #[must_use]
    pub fn new(sm: usize, slots_per_cycle: u64, warp_slots: usize) -> SmProfile {
        SmProfile {
            sm,
            issue_slots_per_cycle: slots_per_cycle,
            per_warp: vec![WarpSlotProfile::default(); warp_slots],
            ..SmProfile::default()
        }
    }

    /// Issue slots this SM had in total (`cycles × slots/cycle`).
    #[must_use]
    pub fn issue_slots(&self) -> u64 {
        self.cycles * self.issue_slots_per_cycle
    }

    /// Checks the accounting identity: every slot attributed exactly once.
    ///
    /// # Errors
    ///
    /// Describes the imbalance when the attributed total differs from
    /// `cycles × issue_slots_per_cycle`.
    pub fn check_identity(&self) -> Result<(), String> {
        let have = self.slots.total();
        let want = self.issue_slots();
        if have == want {
            Ok(())
        } else {
            Err(format!(
                "SM{}: accounted {have} slots but {} cycles x {} slots/cycle = {want}",
                self.sm, self.cycles, self.issue_slots_per_cycle
            ))
        }
    }
}

/// The whole GPU's profile: one [`SmProfile`] per SM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Per-SM profiles, in SM order.
    pub sms: Vec<SmProfile>,
}

impl SimProfile {
    /// Slot attribution summed over all SMs.
    #[must_use]
    pub fn slots(&self) -> SlotCounts {
        let mut total = SlotCounts::default();
        for sm in &self.sms {
            total.merge(&sm.slots);
        }
        total
    }

    /// Total issue slots over all SMs.
    #[must_use]
    pub fn issue_slots(&self) -> u64 {
        self.sms.iter().map(SmProfile::issue_slots).sum()
    }

    /// Leader-election latency merged over all SMs.
    #[must_use]
    pub fn leader_latency(&self) -> LatencyHist {
        let mut h = LatencyHist::default();
        for sm in &self.sms {
            h.merge(&sm.leader_latency);
        }
        h
    }

    /// Per-PC profiles merged over all SMs.
    #[must_use]
    pub fn per_pc(&self) -> BTreeMap<usize, PcProfile> {
        let mut merged: BTreeMap<usize, PcProfile> = BTreeMap::new();
        for sm in &self.sms {
            for (&pc, p) in &sm.per_pc {
                let m = merged.entry(pc).or_default();
                m.issued += p.issued;
                m.skipped += p.skipped;
                m.stalls.merge(&p.stalls);
            }
        }
        merged
    }

    /// Checks the accounting identity on every SM.
    ///
    /// # Errors
    ///
    /// Returns the first SM's imbalance description.
    pub fn check_identity(&self) -> Result<(), String> {
        for sm in &self.sms {
            sm.check_identity()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_snake_case() {
        let labels: Vec<&str> = StallCause::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        for l in labels {
            assert!(l.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{l}");
        }
    }

    #[test]
    fn slot_counts_total_and_merge() {
        let mut a = SlotCounts::default();
        a.add(StallCause::Issued, 3);
        a.add(StallCause::Scoreboard, 2);
        let mut b = SlotCounts::default();
        b.add(StallCause::Issued, 1);
        a.merge(&b);
        assert_eq!(a.get(StallCause::Issued), 4);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn identity_checks_balance() {
        let mut p = SmProfile::new(0, 8, 4);
        p.cycles = 10;
        p.slots.add(StallCause::Issued, 30);
        assert!(p.check_identity().is_err(), "30 of 80 slots attributed");
        // 30 + 50 == 80 == 10 cycles x 8 slots: balanced.
        p.slots.add(StallCause::IdleNoWarp, 50);
        assert!(p.check_identity().is_ok());
        p.slots.add(StallCause::Barrier, 1);
        let err = p.check_identity().expect_err("over-attributed");
        assert!(err.contains("81"), "{err}");
    }

    #[test]
    fn latency_hist_buckets_powers_of_two() {
        let mut h = LatencyHist::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.buckets()[0], 1, "zero");
        assert_eq!(h.buckets()[1], 1, "1");
        assert_eq!(h.buckets()[2], 2, "2..=3");
        assert_eq!(h.buckets()[3], 2, "4..=7");
        assert_eq!(h.buckets()[4], 1, "8..=15");
        assert_eq!(h.buckets()[15], 1, "open-ended tail");
        assert_eq!(LatencyHist::bucket_bound(3), 7);
        assert_eq!(LatencyHist::bucket_bound(15), u64::MAX);
    }
}
