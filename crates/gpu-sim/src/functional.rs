//! Headless, timing-free execution of one threadblock through the
//! functional executor (`exec.rs`).
//!
//! This is the shared substrate for every value-level oracle in the
//! workspace: the redundancy tracer (`tracer.rs`) and the marking
//! soundness sanitizer in `simt-verify` both drive it with their own
//! [`FunctionalObserver`]. Warps are stepped round-robin with correct
//! barrier semantics (a `bar.sync` parks the warp until every non-exited
//! warp of the TB arrives), SIMT-stack divergence and reconvergence, but
//! no pipeline model — one instruction per warp per scheduling pass.

use crate::exec::{execute, ExecContext, ExecEffect};
use crate::mem::GlobalMemory;
use crate::warp::{Warp, WarpState};
use simt_compiler::CompiledKernel;
use simt_isa::{Dim3, Instruction, LaunchConfig, MemSpace};
use std::collections::{HashMap, HashSet};

/// Hooks invoked around every dynamic warp instruction of a headless run.
///
/// `occurrence` is the 1-based dynamic execution count of `pc` *within
/// the observed warp* — the DARSIE instance number used to align the same
/// dynamic occurrence across warps of a TB.
pub trait FunctionalObserver {
    /// Called before `instr` executes: the warp still holds its
    /// pre-execution register state and the active mask of the issuing
    /// path (the warp has not advanced past `pc` yet).
    fn before_instruction(
        &mut self,
        _warp_index: usize,
        _pc: usize,
        _occurrence: u32,
        _instr: &Instruction,
        _warp: &Warp,
    ) {
    }

    /// Called after `instr` executed, with destination registers /
    /// predicates updated. Branch, barrier and exit control effects are
    /// applied to the warp *after* this hook returns.
    fn after_instruction(
        &mut self,
        _warp_index: usize,
        _pc: usize,
        _occurrence: u32,
        _instr: &Instruction,
        _warp: &Warp,
    ) {
    }

    /// Called for every shared-memory access with the per-lane `(lane,
    /// byte address)` pairs of the participating lanes. Fires between
    /// `before_instruction` and `after_instruction`.
    fn shared_access(
        &mut self,
        _warp_index: usize,
        _pc: usize,
        _occurrence: u32,
        _addrs: &[(u32, u64)],
        _is_store: bool,
    ) {
    }

    /// Called when a TB-wide barrier releases: every live warp arrived
    /// and is about to resume. Delimits the barrier epochs of the run.
    fn barrier_release(&mut self) {}
}

/// Observer that records nothing (plain functional execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl FunctionalObserver for NullObserver {}

/// The `i`-th threadblock of a grid in row-major (x fastest) launch order.
#[must_use]
pub fn ctaid_at(grid: Dim3, i: u64) -> Dim3 {
    Dim3::three_d(
        (i % u64::from(grid.x)) as u32,
        ((i / u64::from(grid.x)) % u64::from(grid.y)) as u32,
        (i / (u64::from(grid.x) * u64::from(grid.y))) as u32,
    )
}

/// Runs one threadblock to completion, invoking `observer` around every
/// dynamic warp instruction. Global memory effects are applied to
/// `global`; shared memory is private to the TB and dropped afterwards.
pub fn run_tb_functional<O: FunctionalObserver>(
    ck: &CompiledKernel,
    launch: &LaunchConfig,
    ctaid: Dim3,
    global: &mut GlobalMemory,
    observer: &mut O,
) {
    let ws = launch.warp_size;
    let threads = launch.threads_per_block();
    let num_warps = launch.warps_per_block() as usize;
    let mut shared = vec![0u32; (ck.kernel.shared_mem_bytes as usize).div_ceil(4)];
    let mut warps: Vec<Warp> = (0..num_warps)
        .map(|w| {
            let lanes = threads.saturating_sub(w as u32 * ws).min(ws);
            let full = if lanes >= 32 { u32::MAX } else { (1u32 << lanes) - 1 };
            Warp::new(w, 0, w as u32, ck.kernel.num_regs, ws, full, w as u64)
        })
        .collect();
    let mut occurrences: Vec<HashMap<usize, u32>> = vec![HashMap::new(); num_warps];
    let mut at_barrier = vec![false; num_warps];

    loop {
        let mut progressed = false;
        for w in 0..num_warps {
            if warps[w].state == WarpState::Done || at_barrier[w] {
                continue;
            }
            let Some(pc) = warps[w].next_pc() else {
                warps[w].state = WarpState::Done;
                continue;
            };
            let instr = ck.kernel.instrs[pc].clone();
            let o = occurrences[w].entry(pc).or_insert(0);
            *o += 1;
            let occurrence = *o;

            observer.before_instruction(w, pc, occurrence, &instr, &warps[w]);

            warps[w].advance();
            let effect = {
                let mut ctx = ExecContext {
                    global,
                    shared: &mut shared,
                    params: &launch.params,
                    grid: launch.grid,
                    block: launch.block,
                    ctaid,
                };
                execute(&mut warps[w], &instr, &mut ctx)
            };
            progressed = true;

            if let ExecEffect::Memory { space: MemSpace::Shared, addrs, is_store, .. } = &effect {
                observer.shared_access(w, pc, occurrence, addrs, *is_store);
            }

            observer.after_instruction(w, pc, occurrence, &instr, &warps[w]);

            match effect {
                ExecEffect::Branch { taken, target } => {
                    let reconv = ck.recon.recon[pc].unwrap_or(usize::MAX);
                    warps[w].take_branch(pc, target, taken, reconv);
                    warps[w].reconverge();
                }
                ExecEffect::Barrier => {
                    at_barrier[w] = true;
                    warps[w].reconverge();
                }
                ExecEffect::Exit => {
                    if warps[w].exit_path() {
                        warps[w].state = WarpState::Done;
                    }
                    warps[w].reconverge();
                }
                _ => {
                    warps[w].reconverge();
                }
            }
        }
        // Barrier release: once every live warp is parked, open the gate.
        let all_blocked_or_done =
            warps.iter().enumerate().all(|(i, w)| w.state == WarpState::Done || at_barrier[i]);
        if all_blocked_or_done {
            if warps.iter().all(|w| w.state == WarpState::Done) {
                break;
            }
            observer.barrier_release();
            at_barrier.fill(false);
        }
        if !progressed && !at_barrier.iter().any(|&b| b) {
            break;
        }
    }
}

/// One shared-memory race observed during functional replay: two threads
/// touched the same shared word in the same barrier epoch, at least one
/// of them writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedRace {
    /// Static pc of the earlier access of the pair.
    pub first_pc: usize,
    /// Linear thread id of the earlier access.
    pub first_thread: u32,
    /// Static pc of the later (conflicting) access.
    pub second_pc: usize,
    /// Linear thread id of the later access.
    pub second_thread: u32,
    /// Shared word index (byte address / 4) the pair collided on.
    pub word: u64,
    /// True for write/write, false for read/write.
    pub write_write: bool,
}

/// Per-word shadow cell: the epoch's last write plus a two-point summary
/// of the epoch's readers. Tracking only the minimum and maximum reader
/// thread is enough to answer "did any thread other than the writer read
/// this word?" without storing every reader.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowCell {
    /// `(epoch, thread, pc)` of the last write.
    write: Option<(u32, u32, usize)>,
    /// Epoch the reader summary belongs to.
    read_epoch: u32,
    /// `(thread, pc)` of the lowest-numbered reader this epoch.
    min_reader: Option<(u32, usize)>,
    /// `(thread, pc)` of the highest-numbered reader this epoch.
    max_reader: Option<(u32, usize)>,
}

/// Shadow-memory race sanitizer for one threadblock's functional replay.
///
/// The dynamic half of the shared-memory race detector: where the static
/// pass (`simt-verify`'s `races` module) cannot classify an address as
/// thread-affine, this observer still reports precise races — offending
/// pcs, thread ids and the shared word — for the interleaving the
/// round-robin replay actually executes. Epochs advance on every TB-wide
/// barrier release; within an epoch, warp scheduling order is not a
/// happens-before order, so any cross-thread write/write or read/write
/// pair on one word is a race. Raced-on words stay *tainted* for the rest
/// of the run so redundancy claims depending on them can be downgraded.
#[derive(Debug, Default)]
pub struct RaceSanitizer {
    warp_size: u32,
    epoch: u32,
    cells: HashMap<u64, ShadowCell>,
    tainted: HashSet<u64>,
    races: Vec<SharedRace>,
    reported: HashSet<(usize, usize)>,
}

impl RaceSanitizer {
    /// Sanitizer for a TB whose warps are `warp_size` lanes wide.
    #[must_use]
    pub fn new(warp_size: u32) -> RaceSanitizer {
        RaceSanitizer { warp_size, ..RaceSanitizer::default() }
    }

    /// All races observed so far, in detection order (one per static
    /// `(pc, pc)` pair).
    #[must_use]
    pub fn races(&self) -> &[SharedRace] {
        &self.races
    }

    /// True when some race touched `word` at any point of the run.
    #[must_use]
    pub fn is_tainted(&self, word: u64) -> bool {
        self.tainted.contains(&word)
    }

    /// Shared word indices touched by any observed race.
    #[must_use]
    pub fn tainted_words(&self) -> &HashSet<u64> {
        &self.tainted
    }

    fn report(&mut self, race: SharedRace) {
        self.tainted.insert(race.word);
        let key = (race.first_pc.min(race.second_pc), race.first_pc.max(race.second_pc));
        if self.reported.insert(key) {
            self.races.push(race);
        }
    }

    fn record_access(
        &mut self,
        warp_index: usize,
        pc: usize,
        addrs: &[(u32, u64)],
        is_store: bool,
    ) {
        for &(lane, addr) in addrs {
            let thread = warp_index as u32 * self.warp_size + lane;
            let word = addr / 4;
            let seen = self.cells.get(&word).copied().unwrap_or_default();
            if let Some((we, wt, wpc)) = seen.write {
                if we == self.epoch && wt != thread {
                    self.report(SharedRace {
                        first_pc: wpc,
                        first_thread: wt,
                        second_pc: pc,
                        second_thread: thread,
                        word,
                        write_write: is_store,
                    });
                }
            }
            if is_store {
                if seen.read_epoch == self.epoch {
                    let other = [seen.min_reader, seen.max_reader]
                        .into_iter()
                        .flatten()
                        .find(|&(t, _)| t != thread);
                    if let Some((rt, rpc)) = other {
                        self.report(SharedRace {
                            first_pc: rpc,
                            first_thread: rt,
                            second_pc: pc,
                            second_thread: thread,
                            word,
                            write_write: false,
                        });
                    }
                }
                let cell = self.cells.entry(word).or_default();
                cell.write = Some((self.epoch, thread, pc));
            } else {
                let cell = self.cells.entry(word).or_default();
                if cell.read_epoch != self.epoch {
                    cell.read_epoch = self.epoch;
                    cell.min_reader = None;
                    cell.max_reader = None;
                }
                match cell.min_reader {
                    Some((t, _)) if t <= thread => {}
                    _ => cell.min_reader = Some((thread, pc)),
                }
                match cell.max_reader {
                    Some((t, _)) if t >= thread => {}
                    _ => cell.max_reader = Some((thread, pc)),
                }
            }
        }
    }
}

impl FunctionalObserver for RaceSanitizer {
    fn shared_access(
        &mut self,
        warp_index: usize,
        pc: usize,
        _occurrence: u32,
        addrs: &[(u32, u64)],
        is_store: bool,
    ) {
        self.record_access(warp_index, pc, addrs, is_store);
    }

    fn barrier_release(&mut self) {
        self.epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};

    /// Counting observer: every before has a matching after, occurrences
    /// are 1-based and contiguous per (warp, pc).
    #[derive(Default)]
    struct Counter {
        before: u64,
        after: u64,
        max_occurrence: u32,
    }

    impl FunctionalObserver for Counter {
        fn before_instruction(
            &mut self,
            _w: usize,
            _pc: usize,
            occ: u32,
            _i: &Instruction,
            _warp: &Warp,
        ) {
            self.before += 1;
            self.max_occurrence = self.max_occurrence.max(occ);
        }
        fn after_instruction(
            &mut self,
            _w: usize,
            _pc: usize,
            _occ: u32,
            _i: &Instruction,
            _warp: &Warp,
        ) {
            self.after += 1;
        }
    }

    #[test]
    fn observer_sees_every_instruction_once() {
        let mut b = KernelBuilder::new("obs");
        let t = b.special(SpecialReg::TidX);
        let out = b.param(0);
        let off = b.shl_imm(t, 2);
        let addr = b.iadd(out, off);
        b.store(MemSpace::Global, addr, t, 0);
        let ck = simt_compiler::compile(b.finish());

        let mut mem = GlobalMemory::new();
        let buf = mem.alloc(64 * 4);
        let launch = LaunchConfig::new(1u32, Dim3::one_d(64)).with_params(vec![Value(buf as u32)]);
        let mut obs = Counter::default();
        run_tb_functional(&ck, &launch, Dim3::three_d(0, 0, 0), &mut mem, &mut obs);
        assert_eq!(obs.before, obs.after);
        // 2 warps x 6 instructions (incl. exit), straight-line code.
        assert_eq!(obs.before, 2 * ck.kernel.instrs.len() as u64);
        assert_eq!(obs.max_occurrence, 1);
        // The store really happened.
        assert_eq!(mem.read_u32(buf + 4 * 63), 63);
    }

    #[test]
    fn ctaid_enumeration_is_row_major() {
        let grid = Dim3::three_d(2, 3, 2);
        assert_eq!(ctaid_at(grid, 0), Dim3::three_d(0, 0, 0));
        assert_eq!(ctaid_at(grid, 1), Dim3::three_d(1, 0, 0));
        assert_eq!(ctaid_at(grid, 2), Dim3::three_d(0, 1, 0));
        assert_eq!(ctaid_at(grid, 6), Dim3::three_d(0, 0, 1));
        assert_eq!(ctaid_at(grid, 11), Dim3::three_d(1, 2, 1));
    }
}
