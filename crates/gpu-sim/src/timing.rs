//! Shared instruction-timing tables: the single source of truth for the
//! latency, occupancy and bandwidth figures of the SM pipeline model.
//!
//! Both the cycle simulator ([`crate::sm`]) and the static cost estimator
//! (`simt-verify`'s cost pass) read these functions, so the two can never
//! drift: every latency the SM charges at issue time is computed here, and
//! `gpu-sim/tests/timing_parity.rs` pins the mapping with closed-form
//! micro-kernel predictions checked against full simulation.
//!
//! The functions are deliberately tiny and total — pure lookups over
//! [`GpuConfig`] — because the estimator composes them symbolically (min /
//! max over paths) while the simulator evaluates them per dynamic
//! instruction.

use crate::config::GpuConfig;
use simt_isa::OpKind;

/// The SM execution unit an opcode occupies at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecUnit {
    /// SP/INT ALU lanes (one group per scheduler).
    Sp,
    /// The shared special-function unit.
    Sfu,
    /// The shared load/store unit.
    Lsu,
    /// Control flow (branch / barrier / exit): no execution-unit port.
    Control,
}

/// Which unit `kind` issues to. Mirrors the unit-availability checks and
/// busy-timestamp updates in the SM issue stage.
#[must_use]
pub fn exec_unit(kind: OpKind) -> ExecUnit {
    match kind {
        OpKind::IntAlu | OpKind::FpAlu => ExecUnit::Sp,
        OpKind::Sfu => ExecUnit::Sfu,
        OpKind::Load | OpKind::Store | OpKind::Atomic => ExecUnit::Lsu,
        OpKind::Branch | OpKind::Barrier | OpKind::Exit => ExecUnit::Control,
    }
}

/// Issue-to-writeback latency of a non-memory instruction. Control
/// instructions and anything unclassified take the integer-ALU latency.
#[must_use]
pub fn exec_latency(cfg: &GpuConfig, kind: OpKind) -> u64 {
    match kind {
        OpKind::FpAlu => cfg.fp_latency,
        OpKind::Sfu => cfg.sfu_latency,
        _ => cfg.int_latency,
    }
}

/// Cycles the issuing unit stays busy after a non-memory instruction
/// issues: SP pipelines accept a new instruction every cycle, the SFU only
/// every `sfu_interval` cycles.
#[must_use]
pub fn unit_issue_interval(cfg: &GpuConfig, kind: OpKind) -> u64 {
    match exec_unit(kind) {
        ExecUnit::Sfu => cfg.sfu_interval,
        _ => 1,
    }
}

/// LSU busy cycles for a shared-memory access serialized over `degree`
/// bank passes.
#[must_use]
pub fn smem_occupancy(degree: u32) -> u64 {
    u64::from(degree)
}

/// Completion latency of a shared-memory access with conflict `degree`.
#[must_use]
pub fn smem_latency(cfg: &GpuConfig, degree: u32) -> u64 {
    cfg.smem_latency + u64::from(degree - 1)
}

/// LSU busy cycles for a parameter-space access.
pub const PARAM_OCCUPANCY: u64 = 1;

/// Completion latency of a parameter-space access (constant-cache hit).
#[must_use]
pub fn param_latency(cfg: &GpuConfig) -> u64 {
    cfg.l1_latency / 2
}

/// LSU busy cycles for a global access coalesced into `lines` 128-byte
/// transactions.
#[must_use]
pub fn global_occupancy(lines: u64) -> u64 {
    lines
}

/// Completion latency of a global line that hits in L1.
#[must_use]
pub fn l1_hit_latency(cfg: &GpuConfig) -> u64 {
    cfg.l1_latency
}

/// Completion latency of a global line that misses L1 and hits L2 (also
/// the write-through store/atomic L2-hit path).
#[must_use]
pub fn l2_hit_latency(cfg: &GpuConfig) -> u64 {
    cfg.l1_latency + cfg.l2_latency
}

/// Un-queued completion latency of a global line served by DRAM; the
/// bandwidth-limited [`crate::mem::DramModel`] may add queueing delay on
/// top (at most one extra slot per `dram_bandwidth` outstanding lines).
#[must_use]
pub fn dram_line_latency(cfg: &GpuConfig) -> u64 {
    cfg.l1_latency + cfg.dram_latency
}

/// `[min, max]` completion latency of a single global line, before DRAM
/// queueing. Stores and atomics write through L1, so their fastest path is
/// an L2 hit; loads can hit in L1.
#[must_use]
pub fn global_line_latency_bounds(cfg: &GpuConfig, is_store_or_atomic: bool) -> (u64, u64) {
    let min = if is_store_or_atomic { l2_hit_latency(cfg) } else { l1_hit_latency(cfg) };
    (min, dram_line_latency(cfg))
}

/// Extra serialization an atomic pays on top of its line latencies, as a
/// function of its active-lane count.
#[must_use]
pub fn atomic_serialization(active_lanes: usize) -> u64 {
    active_lanes as u64 / 4
}

/// Instructions the fetch stage can deliver per cycle SM-wide: one I-cache
/// burst per fetch slot, `instrs_per_fetch` instructions per burst.
#[must_use]
pub fn fetch_bandwidth(cfg: &GpuConfig) -> u64 {
    (cfg.fetch_width * cfg.instrs_per_fetch) as u64
}

/// Instructions the issue stage can start per cycle SM-wide.
#[must_use]
pub fn issue_bandwidth(cfg: &GpuConfig) -> u64 {
    (cfg.schedulers_per_sm * cfg.issue_width) as u64
}

/// Fetch-stage I-cache miss penalty: the line is refilled from L2 and the
/// warp cannot fetch again until it lands.
#[must_use]
pub fn fetch_miss_penalty(cfg: &GpuConfig) -> u64 {
    cfg.l2_latency
}
