//! Simulation statistics: the activity counts every figure and the energy
//! model are derived from.

use darsie::DarsieStats;
use simt_compiler::Taxonomy;

/// Per-taxonomy instruction counts (uniform / affine / unstructured /
/// non-redundant).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaxonomyCounts {
    /// Uniform redundant.
    pub uniform: u64,
    /// Affine redundant.
    pub affine: u64,
    /// Unstructured redundant.
    pub unstructured: u64,
    /// Not redundant.
    pub non_redundant: u64,
}

impl TaxonomyCounts {
    /// Adds `n` dynamic instructions of class `t`.
    pub fn add(&mut self, t: Taxonomy, n: u64) {
        match t {
            Taxonomy::Uniform => self.uniform += n,
            Taxonomy::Affine => self.affine += n,
            Taxonomy::Unstructured => self.unstructured += n,
            Taxonomy::NonRedundant => self.non_redundant += n,
        }
    }

    /// Total across all buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.uniform + self.affine + self.unstructured + self.non_redundant
    }

    /// Total across redundant buckets only.
    #[must_use]
    pub fn redundant(&self) -> u64 {
        self.uniform + self.affine + self.unstructured
    }

    /// Merges another counter set.
    pub fn merge(&mut self, o: &TaxonomyCounts) {
        self.uniform += o.uniform;
        self.affine += o.affine;
        self.unstructured += o.unstructured;
        self.non_redundant += o.non_redundant;
    }
}

/// Counters collected by one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles until the grid drained.
    pub cycles: u64,
    /// Warp instructions fetched from the I-cache.
    pub instrs_fetched: u64,
    /// Warp instructions issued to execution units.
    pub instrs_executed: u64,
    /// Warp instructions eliminated before fetch (DARSIE skips and
    /// DAC-IDEAL affine-stream transfers), by taxonomy class.
    pub instrs_skipped: TaxonomyCounts,
    /// Warp instructions whose execution was replaced by a reuse-buffer
    /// hit at issue (UV), by taxonomy class.
    pub instrs_reused: TaxonomyCounts,
    /// Taxonomy of every *executed* instruction (for the limit-study
    /// figures).
    pub executed_taxonomy: TaxonomyCounts,
    /// I-cache accesses.
    pub icache_accesses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Vector register file reads (one per register operand per issue).
    pub rf_reads: u64,
    /// Vector register file writes.
    pub rf_writes: u64,
    /// Register-bank conflicts (extra cycles serialized at operand
    /// collection).
    pub rf_bank_conflicts: u64,
    /// Integer/FP operations executed on the SP units.
    pub alu_ops: u64,
    /// SFU operations.
    pub sfu_ops: u64,
    /// Global/param memory instructions executed.
    pub mem_ops: u64,
    /// Shared-memory instructions executed.
    pub smem_ops: u64,
    /// Shared-memory bank conflicts (extra serialized cycles).
    pub smem_bank_conflicts: u64,
    /// 128-byte global memory transactions generated after coalescing.
    pub global_transactions: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM transactions).
    pub l2_misses: u64,
    /// Threadblock barriers executed (per warp arrival).
    pub barrier_waits: u64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Threadblocks completed.
    pub tbs_completed: u64,
    /// Cycles in which at least one instruction issued (utilization).
    pub active_cycles: u64,
    /// DARSIE hardware activity.
    pub darsie: DarsieStats,
}

impl SimStats {
    /// Merges another run's counters (used to aggregate per-SM stats).
    pub fn merge(&mut self, o: &SimStats) {
        self.cycles = self.cycles.max(o.cycles);
        self.instrs_fetched += o.instrs_fetched;
        self.instrs_executed += o.instrs_executed;
        self.instrs_skipped.merge(&o.instrs_skipped);
        self.instrs_reused.merge(&o.instrs_reused);
        self.executed_taxonomy.merge(&o.executed_taxonomy);
        self.icache_accesses += o.icache_accesses;
        self.icache_misses += o.icache_misses;
        self.rf_reads += o.rf_reads;
        self.rf_writes += o.rf_writes;
        self.rf_bank_conflicts += o.rf_bank_conflicts;
        self.alu_ops += o.alu_ops;
        self.sfu_ops += o.sfu_ops;
        self.mem_ops += o.mem_ops;
        self.smem_ops += o.smem_ops;
        self.smem_bank_conflicts += o.smem_bank_conflicts;
        self.global_transactions += o.global_transactions;
        self.l1_hits += o.l1_hits;
        self.l1_misses += o.l1_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.barrier_waits += o.barrier_waits;
        self.atomic_ops += o.atomic_ops;
        self.tbs_completed += o.tbs_completed;
        self.active_cycles += o.active_cycles;
        self.darsie.merge(&o.darsie);
    }

    /// Dynamic warp instructions the program would execute on the
    /// baseline: executed + eliminated.
    #[must_use]
    pub fn total_instruction_work(&self) -> u64 {
        self.instrs_executed + self.instrs_skipped.total()
    }

    /// Fraction of baseline instructions eliminated before fetch.
    #[must_use]
    pub fn skip_fraction(&self) -> f64 {
        let total = self.total_instruction_work();
        if total == 0 {
            0.0
        } else {
            self.instrs_skipped.total() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_counts_add_and_total() {
        let mut t = TaxonomyCounts::default();
        t.add(Taxonomy::Uniform, 5);
        t.add(Taxonomy::Affine, 3);
        t.add(Taxonomy::Unstructured, 2);
        t.add(Taxonomy::NonRedundant, 10);
        assert_eq!(t.total(), 20);
        assert_eq!(t.redundant(), 10);
    }

    #[test]
    fn merge_maxes_cycles_and_sums_counts() {
        let mut a = SimStats { cycles: 100, instrs_executed: 7, ..Default::default() };
        let b = SimStats { cycles: 80, instrs_executed: 5, l1_hits: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.cycles, 100, "SMs run concurrently: total time is the max");
        assert_eq!(a.instrs_executed, 12);
        assert_eq!(a.l1_hits, 3);
    }

    #[test]
    fn skip_fraction() {
        let mut s = SimStats { instrs_executed: 80, ..Default::default() };
        s.instrs_skipped.add(Taxonomy::Affine, 20);
        assert!((s.skip_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(s.total_instruction_work(), 100);
    }
}
