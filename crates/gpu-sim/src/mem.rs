//! Memory system substrate: global memory, caches, the global-memory
//! coalescer, shared-memory banking and the bandwidth-limited DRAM model.

use crate::config::GpuConfig;
use std::collections::HashMap;

/// Words per allocation page of [`GlobalMemory`].
const PAGE_WORDS: usize = 1024;

/// Sparse word-addressable global memory. Addresses are byte addresses;
/// accesses are 32-bit and must be 4-byte aligned (the simulator's ISA is
/// word-oriented, like PTXPlus `u32` accesses).
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    pages: HashMap<u64, Box<[u32; PAGE_WORDS]>>,
    next_alloc: u64,
}

impl GlobalMemory {
    /// An empty memory whose allocator starts at a non-zero base (so that
    /// null-ish addresses fault loudly in tests).
    #[must_use]
    pub fn new() -> GlobalMemory {
        GlobalMemory { pages: HashMap::new(), next_alloc: 0x1000 }
    }

    /// Reserves `bytes` of memory, returning the base address
    /// (128-byte aligned so buffers start on cache-line boundaries).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next_alloc;
        self.next_alloc = (self.next_alloc + bytes + 127) & !127;
        base
    }

    /// Reads the 32-bit word at byte address `addr` (zero if untouched).
    ///
    /// # Panics
    ///
    /// Panics on unaligned access.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned global read at {addr:#x}");
        // Reduce modulo PAGE_WORDS in u64 before narrowing: a truncating
        // cast first would alias distant addresses on 32-bit targets.
        let (page, idx) =
            (addr / (PAGE_WORDS as u64 * 4), ((addr / 4) % PAGE_WORDS as u64) as usize);
        self.pages.get(&page).map_or(0, |p| p[idx])
    }

    /// Writes the 32-bit word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned access.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned global write at {addr:#x}");
        let (page, idx) =
            (addr / (PAGE_WORDS as u64 * 4), ((addr / 4) % PAGE_WORDS as u64) as usize);
        self.pages.entry(page).or_insert_with(|| Box::new([0; PAGE_WORDS]))[idx] = value;
    }

    /// Reads a float.
    #[must_use]
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes a float.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a slice of words into memory starting at `addr`.
    pub fn write_slice_u32(&mut self, addr: u64, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, v);
        }
    }

    /// Copies a slice of floats into memory starting at `addr`.
    pub fn write_slice_f32(&mut self, addr: u64, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, v);
        }
    }

    /// Reads `len` words starting at `addr`.
    #[must_use]
    pub fn read_vec_u32(&self, addr: u64, len: usize) -> Vec<u32> {
        (0..len).map(|i| self.read_u32(addr + 4 * i as u64)).collect()
    }

    /// Reads `len` floats starting at `addr`.
    #[must_use]
    pub fn read_vec_f32(&self, addr: u64, len: usize) -> Vec<f32> {
        (0..len).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// A stable fingerprint of all touched memory, for equivalence tests.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut keys: Vec<&u64> = self.pages.keys().collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in keys {
            let page = &self.pages[k];
            // Skip all-zero pages: untouched and zero-filled are equal.
            if page.iter().all(|&w| w == 0) {
                continue;
            }
            h ^= *k;
            h = h.wrapping_mul(0x1000_0000_01b3);
            for &w in page.iter() {
                h ^= u64::from(w);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// A set-associative, line-granularity tag cache with LRU replacement.
/// Data lives in [`GlobalMemory`]; this models hits and misses only.
#[derive(Debug, Clone)]
pub struct TagCache {
    sets: usize,
    assoc: usize,
    /// `(tag, last_use)` per way; tag `u64::MAX` = invalid.
    lines: Vec<(u64, u64)>,
    tick: u64,
}

impl TagCache {
    /// A cache with `lines` total lines and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not divisible by `assoc`.
    #[must_use]
    pub fn new(lines: usize, assoc: usize) -> TagCache {
        assert!(lines.is_multiple_of(assoc), "lines must divide evenly into ways");
        TagCache { sets: lines / assoc, assoc, lines: vec![(u64::MAX, 0); lines], tick: 0 }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        (line_addr as usize) % self.sets
    }

    /// Probes (and on miss, fills) the line containing `line_addr`
    /// (already divided by the line size). Returns true on hit.
    pub fn access(&mut self, line_addr: u64) -> bool {
        self.tick += 1;
        let set = self.set_of(line_addr);
        let ways = &mut self.lines[set * self.assoc..(set + 1) * self.assoc];
        if let Some(w) = ways.iter_mut().find(|(t, _)| *t == line_addr) {
            w.1 = self.tick;
            return true;
        }
        let victim = ways.iter_mut().min_by_key(|(_, lru)| *lru).expect("assoc > 0");
        *victim = (line_addr, self.tick);
        false
    }

    /// Probes without filling. Returns true on hit.
    #[must_use]
    pub fn probe(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        self.lines[set * self.assoc..(set + 1) * self.assoc].iter().any(|(t, _)| *t == line_addr)
    }

    /// Invalidates the line if present (write-through store policy).
    pub fn invalidate(&mut self, line_addr: u64) {
        let set = self.set_of(line_addr);
        for w in &mut self.lines[set * self.assoc..(set + 1) * self.assoc] {
            if w.0 == line_addr {
                *w = (u64::MAX, 0);
            }
        }
    }
}

/// Coalesces per-lane byte addresses into distinct 128-byte line
/// transactions (the global memory coalescer of the LSU).
#[must_use]
pub fn coalesce_lines(addrs: impl Iterator<Item = u64>) -> Vec<u64> {
    let mut lines: Vec<u64> = addrs.map(|a| a / GpuConfig::LINE_BYTES).collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Shared-memory bank-conflict degree: with 32 four-byte banks, the number
/// of serialized passes is the maximum count of *distinct word addresses*
/// mapping to one bank (same-word access broadcasts for free).
#[must_use]
pub fn smem_conflict_degree(addrs: impl Iterator<Item = u64>) -> u32 {
    let mut per_bank: HashMap<u64, Vec<u64>> = HashMap::new();
    for a in addrs {
        let word = a / 4;
        let bank = word % 32;
        let v = per_bank.entry(bank).or_default();
        if !v.contains(&word) {
            v.push(word);
        }
    }
    per_bank.values().map(|v| v.len() as u32).max().unwrap_or(1).max(1)
}

/// The shared L2 + DRAM service model: a token-bucket bandwidth limiter
/// that assigns each DRAM transaction a service cycle.
#[derive(Debug, Clone)]
pub struct DramModel {
    /// Transactions serviced per cycle.
    bandwidth: usize,
    /// Index of the next service slot, in transaction slots
    /// (slot `s` is serviced in cycle `s / bandwidth`).
    cursor: u64,
}

impl DramModel {
    /// A DRAM servicing `bandwidth` 128-byte transactions per cycle.
    #[must_use]
    pub fn new(bandwidth: usize) -> DramModel {
        DramModel { bandwidth: bandwidth.max(1), cursor: 0 }
    }

    /// Schedules one transaction issued at `now`; returns the cycle its
    /// data is available (service slot + `latency`).
    pub fn schedule(&mut self, now: u64, latency: u64) -> u64 {
        let earliest_slot = now * self.bandwidth as u64;
        self.cursor = self.cursor.max(earliest_slot);
        let service_cycle = self.cursor / self.bandwidth as u64;
        self.cursor += 1;
        service_cycle + latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_memory_read_write_roundtrip() {
        let mut m = GlobalMemory::new();
        m.write_u32(0x1000, 42);
        m.write_f32(0x2004, 2.75);
        assert_eq!(m.read_u32(0x1000), 42);
        assert_eq!(m.read_f32(0x2004), 2.75);
        assert_eq!(m.read_u32(0x9999000), 0, "untouched memory reads zero");
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let m = GlobalMemory::new();
        let _ = m.read_u32(0x1001);
    }

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(100);
        let b = m.alloc(4);
        assert_eq!(a % 128, 0);
        assert_eq!(b % 128, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let mut m = GlobalMemory::new();
        let base = m.alloc(16);
        m.write_slice_f32(base, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.read_vec_f32(base, 4), vec![1.0, 2.0, 3.0, 4.0]);
        m.write_slice_u32(base, &[9, 8, 7, 6]);
        assert_eq!(m.read_vec_u32(base, 4), vec![9, 8, 7, 6]);
    }

    #[test]
    fn fingerprint_detects_differences_but_ignores_zero_pages() {
        let mut a = GlobalMemory::new();
        let mut b = GlobalMemory::new();
        a.write_u32(0x1000, 1);
        b.write_u32(0x1000, 1);
        // b additionally touches a page with zeros only.
        b.write_u32(0x800000, 5);
        b.write_u32(0x800000, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.write_u32(0x1000, 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn tag_cache_hits_after_fill() {
        let mut c = TagCache::new(8, 2);
        assert!(!c.access(5));
        assert!(c.access(5));
        assert!(c.probe(5));
        c.invalidate(5);
        assert!(!c.probe(5));
    }

    #[test]
    fn tag_cache_lru_evicts_oldest() {
        let mut c = TagCache::new(2, 2); // one set, two ways
        assert!(!c.access(0));
        assert!(!c.access(2));
        assert!(c.access(0), "still resident");
        assert!(!c.access(4), "fills over line 2");
        assert!(!c.access(2), "line 2 was evicted");
    }

    #[test]
    fn coalescer_merges_same_line() {
        // 32 consecutive words = 1 line.
        let lanes = (0..32u64).map(|l| 0x1000 + 4 * l);
        assert_eq!(coalesce_lines(lanes).len(), 1);
        // Stride-128 bytes: every lane its own line.
        let strided = (0..32u64).map(|l| 0x1000 + 128 * l);
        assert_eq!(coalesce_lines(strided).len(), 32);
        // Two half-warps hitting two lines.
        let twos = (0..32u64).map(|l| 0x1000 + 4 * (l % 2) * 32);
        assert_eq!(coalesce_lines(twos).len(), 2);
    }

    #[test]
    fn smem_conflict_free_and_conflicting() {
        // Consecutive words: each lane its own bank -> degree 1.
        assert_eq!(smem_conflict_degree((0..32u64).map(|l| 4 * l)), 1);
        // Broadcast (same word): degree 1.
        assert_eq!(smem_conflict_degree((0..32u64).map(|_| 64)), 1);
        // Stride 32 words: all lanes in bank 0 -> degree 32.
        assert_eq!(smem_conflict_degree((0..32u64).map(|l| 4 * 32 * l)), 32);
        // Stride 2 words: 2-way conflict.
        assert_eq!(smem_conflict_degree((0..32u64).map(|l| 4 * 2 * l)), 2);
    }

    #[test]
    fn dram_model_enforces_bandwidth() {
        let mut d = DramModel::new(2);
        // 4 transactions in cycle 10 with latency 100: serviced in cycles
        // 10,10,11,11.
        let t: Vec<u64> = (0..4).map(|_| d.schedule(10, 100)).collect();
        assert_eq!(t, vec![110, 110, 111, 111]);
        // An idle gap resets the cursor to "now".
        assert_eq!(d.schedule(50, 100), 150);
    }
}
