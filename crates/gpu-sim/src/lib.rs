//! A cycle-level SIMT GPU simulator with integrated redundancy-elimination
//! techniques, built for the DARSIE (ASPLOS 2020) reproduction.
//!
//! The simulator models the paper's baseline (Figure 4 / Table 2): per-SM
//! fetch scheduler and I-cache, two-entry per-warp I-buffers, GTO/LRR issue
//! schedulers, a scoreboard, banked vector register file with an operand
//! collector conflict model, SP/SFU/LSU execution units, a global memory
//! coalescer, L1/L2 caches, bandwidth-limited DRAM, shared-memory banking
//! and stack-based SIMT divergence.
//!
//! Redundancy techniques ([`Technique`]):
//!
//! * `Base` — the unmodified pipeline;
//! * `Uv` — issue-stage instruction reuse of uniform instructions;
//! * `DacIdeal` — idealized decoupled affine computation;
//! * `Darsie(cfg)` — fetch-stage instruction skipping with the paper's PC
//!   skip table, PC coalescer, register renaming and majority-path
//!   tracking;
//! * `SiliconSync` — baseline plus a barrier at every basic-block boundary
//!   (Figure 12's synchronization-cost control).
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig, Technique};
//! use gpu_sim::mem::GlobalMemory;
//! use simt_isa::{KernelBuilder, LaunchConfig, MemSpace, SpecialReg, Value};
//!
//! // out[tid.y * ntid.x + tid.x] = in[tid.x]  (a skippable tid.x chain)
//! let mut b = KernelBuilder::new("bcast");
//! let tx = b.special(SpecialReg::TidX);
//! let ty = b.special(SpecialReg::TidY);
//! let ntx = b.special(SpecialReg::NtidX);
//! let src = b.param(0);
//! let dst = b.param(1);
//! let a_in = {
//!     let o = b.shl_imm(tx, 2);
//!     b.iadd(src, o)
//! };
//! let v = b.load(MemSpace::Global, a_in, 0);
//! let lin = b.imad(ty, ntx, tx);
//! let a_out = {
//!     let o = b.shl_imm(lin, 2);
//!     b.iadd(dst, o)
//! };
//! b.store(MemSpace::Global, a_out, v, 0);
//! let ck = simt_compiler::compile(b.finish());
//!
//! let mut mem = GlobalMemory::new();
//! let a = mem.alloc(64);
//! let o = mem.alloc(1024);
//! let launch = LaunchConfig::new(1u32, (16u32, 16u32))
//!     .with_params(vec![Value(a as u32), Value(o as u32)]);
//! let gpu = Gpu::new(GpuConfig::test_small(), Technique::darsie());
//! let result = gpu.launch(&ck, &launch, mem);
//! assert!(result.stats.instrs_skipped.total() > 0);
//! ```

pub mod config;
pub mod events;
pub mod exec;
pub mod functional;
pub mod gpu;
pub mod mem;
pub mod occupancy;
pub mod perfetto;
pub mod profile;
pub mod reuse;
pub mod sm;
pub mod stats;
pub mod tb;
pub mod timing;
pub mod tracer;
pub mod warp;

pub use config::{GpuConfig, SchedulerPolicy, Technique};
pub use events::{EventKind, EventLog, PipeEvent};
pub use exec::alu;
pub use functional::{
    ctaid_at, run_tb_functional, FunctionalObserver, NullObserver, RaceSanitizer, SharedRace,
};
pub use gpu::{Gpu, SimResult};
pub use mem::GlobalMemory;
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use perfetto::chrome_trace_json;
pub use profile::{
    LatencyHist, OccupancySample, PcProfile, SimProfile, SlotCounts, SmProfile, StallCause,
    WarpSlotProfile,
};
pub use stats::{PcMemStat, SimStats, TaxonomyCounts};
pub use tracer::{trace_redundancy, RedundancyTrace};
pub use warp::Warp;
