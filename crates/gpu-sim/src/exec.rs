//! Functional execution of one warp instruction (all lanes).
//!
//! The timing model calls [`execute`] when an instruction issues; the
//! architectural effects (register writes, memory traffic, branch outcome)
//! are applied immediately and the returned [`ExecEffect`] carries what the
//! pipeline needs for timing (lane addresses, branch masks, ...).

use crate::mem::GlobalMemory;
use crate::warp::{LaneMask, Warp};
use simt_isa::{AtomOp, CmpOp, Dim3, Instruction, MemSpace, Op, SpecialReg, Value};

/// Launch-wide context a warp executes against.
#[derive(Debug)]
pub struct ExecContext<'a> {
    /// Global memory (shared by the whole GPU).
    pub global: &'a mut GlobalMemory,
    /// The owning TB's shared-memory scratchpad (word granularity).
    pub shared: &'a mut [u32],
    /// Kernel parameters.
    pub params: &'a [Value],
    /// Grid shape.
    pub grid: Dim3,
    /// Block shape.
    pub block: Dim3,
    /// This TB's coordinates in the grid.
    pub ctaid: Dim3,
}

/// Timing-relevant outcome of executing an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecEffect {
    /// Ordinary ALU/move work; destination(s) written.
    None,
    /// A branch resolved with the given taken mask (subset of the active
    /// mask) and target.
    Branch {
        /// Lanes that take the branch.
        taken: LaneMask,
        /// Target instruction index.
        target: usize,
    },
    /// `bar.sync` reached.
    Barrier,
    /// `exit` reached for the current path.
    Exit,
    /// A memory operation; per-lane byte addresses for coalescing /
    /// bank-conflict analysis.
    Memory {
        /// Address space accessed.
        space: MemSpace,
        /// `(lane, byte address)` for each participating lane.
        addrs: Vec<(u32, u64)>,
        /// True for stores.
        is_store: bool,
        /// True for atomics.
        is_atomic: bool,
    },
}

fn special_value(s: SpecialReg, ctx: &ExecContext<'_>, warp: &Warp, lane: u32) -> u32 {
    let lin = u64::from(warp.warp_in_tb) * u64::from(warp.warp_size()) + u64::from(lane);
    let bx = u64::from(ctx.block.x);
    let by = u64::from(ctx.block.y);
    match s {
        SpecialReg::TidX => (lin % bx) as u32,
        SpecialReg::TidY => ((lin / bx) % by) as u32,
        SpecialReg::TidZ => (lin / (bx * by)) as u32,
        SpecialReg::CtaidX => ctx.ctaid.x,
        SpecialReg::CtaidY => ctx.ctaid.y,
        SpecialReg::CtaidZ => ctx.ctaid.z,
        SpecialReg::NtidX => ctx.block.x,
        SpecialReg::NtidY => ctx.block.y,
        SpecialReg::NtidZ => ctx.block.z,
        SpecialReg::NctaidX => ctx.grid.x,
        SpecialReg::NctaidY => ctx.grid.y,
        SpecialReg::NctaidZ => ctx.grid.z,
        SpecialReg::LaneId => lane,
        SpecialReg::WarpId => warp.warp_in_tb,
    }
}

/// Effective byte address of a memory operand: `base + offset`, checked so
/// a negative effective address (an underflowed index computation) faults
/// loudly instead of wrapping to a huge in-range `u64`.
fn effective_address(base: u32, offset: i32) -> u64 {
    u64::try_from(i64::from(base) + i64::from(offset))
        .unwrap_or_else(|_| panic!("negative effective address: {base:#x} {offset:+}"))
}

/// Shared-memory word index of a byte address, checked against the TB's
/// scratchpad size without any truncating cast.
fn shared_word(addr: u64, shared_len: usize, what: &str) -> usize {
    let w = usize::try_from(addr / 4)
        .unwrap_or_else(|_| panic!("shared {what} address overflows usize: {addr:#x}"));
    assert!(w < shared_len, "shared {what} out of bounds: {addr:#x} (size {})", shared_len * 4);
    w
}

fn operand(warp: &Warp, o: simt_isa::Operand, lane: u32) -> u32 {
    match o {
        simt_isa::Operand::Reg(r) => warp.reg(r, lane),
        simt_isa::Operand::Imm(v) => v,
    }
}

/// The per-lane ALU function. Public so the symbolic translation
/// validator's constant folder (`simt_compiler::term::fold_alu`) can be
/// parity-tested against the executor it models, and so counterexample
/// replay tooling can evaluate single operations outside a warp context.
#[must_use]
pub fn alu(op: Op, a: u32, b: u32, c: u32) -> u32 {
    let (ai, bi) = (a as i32, b as i32);
    let (af, bf, cf) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    match op {
        Op::IAdd => a.wrapping_add(b),
        Op::ISub => a.wrapping_sub(b),
        Op::IMul => a.wrapping_mul(b),
        Op::IMulHi => ((i64::from(ai) * i64::from(bi)) >> 32) as u32,
        Op::IMad => a.wrapping_mul(b).wrapping_add(c),
        Op::IMin => ai.min(bi) as u32,
        Op::IMax => ai.max(bi) as u32,
        Op::Shl => a.wrapping_shl(b & 31),
        Op::Shr => a.wrapping_shr(b & 31),
        Op::Sra => (ai >> (b & 31)) as u32,
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Not => !a,
        Op::FAdd => (af + bf).to_bits(),
        Op::FSub => (af - bf).to_bits(),
        Op::FMul => (af * bf).to_bits(),
        Op::FFma => af.mul_add(bf, cf).to_bits(),
        Op::FMin => af.min(bf).to_bits(),
        Op::FMax => af.max(bf).to_bits(),
        Op::FDiv => (af / bf).to_bits(),
        Op::FRcp => (1.0 / af).to_bits(),
        Op::FSqrt => af.sqrt().to_bits(),
        Op::FExp2 => af.exp2().to_bits(),
        Op::FLog2 => af.log2().to_bits(),
        Op::Mov => a,
        Op::I2F => (ai as f32).to_bits(),
        Op::F2I => {
            // Round toward zero with saturation, like CUDA cvt.rzi.
            let t = af.trunc();
            if t.is_nan() {
                0
            } else {
                (t.clamp(i32::MIN as f32, i32::MAX as f32) as i32) as u32
            }
        }
        _ => unreachable!("alu() called with non-ALU op {op:?}"),
    }
}

fn compare(cmp: CmpOp, float: bool, a: u32, b: u32) -> bool {
    if float {
        cmp.eval_f32(f32::from_bits(a), f32::from_bits(b))
    } else {
        cmp.eval_i32(a as i32, b as i32)
    }
}

/// Executes `instr` for every active lane of `warp` whose guard passes.
/// Returns the timing-relevant effect. Does **not** move the warp's PC;
/// the pipeline does that (branches via [`Warp::take_branch`]).
pub fn execute(warp: &mut Warp, instr: &Instruction, ctx: &mut ExecContext<'_>) -> ExecEffect {
    let active = warp.active_mask();
    let ws = warp.warp_size();
    // Lanes that exist, are on the active path, and pass the guard.
    let mut eff_mask: LaneMask = 0;
    for lane in 0..ws {
        if active & (1 << lane) == 0 {
            continue;
        }
        let g = instr.guard.is_none_or(|g| g.accepts(warp.pred(g.pred, lane)));
        if g {
            eff_mask |= 1 << lane;
        }
    }

    match instr.op {
        Op::Bra { target } => ExecEffect::Branch { taken: eff_mask, target },
        Op::Bar => ExecEffect::Barrier,
        Op::Exit => ExecEffect::Exit,
        Op::Setp(cmp) | Op::SetpF(cmp) => {
            let float = matches!(instr.op, Op::SetpF(_));
            let p = instr.pdst.expect("setp has a pdst");
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let a = operand(warp, instr.srcs[0], lane);
                let b = operand(warp, instr.srcs[1], lane);
                warp.set_pred(p, lane, compare(cmp, float, a, b));
            }
            ExecEffect::None
        }
        Op::Sel(p) => {
            let d = instr.dst.expect("sel has a dst");
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let a = operand(warp, instr.srcs[0], lane);
                let b = operand(warp, instr.srcs[1], lane);
                let v = if warp.pred(p, lane) { a } else { b };
                warp.set_reg(d, lane, v);
            }
            ExecEffect::None
        }
        Op::S2R(s) => {
            let d = instr.dst.expect("s2r has a dst");
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let v = special_value(s, ctx, warp, lane);
                warp.set_reg(d, lane, v);
            }
            ExecEffect::None
        }
        Op::Ld(space) => {
            let d = instr.dst.expect("ld has a dst");
            let mut addrs = Vec::new();
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = operand(warp, instr.srcs[0], lane);
                let addr = effective_address(base, instr.offset);
                let v = match space {
                    MemSpace::Global => ctx.global.read_u32(addr),
                    MemSpace::Shared => ctx.shared[shared_word(addr, ctx.shared.len(), "load")],
                    MemSpace::Param => usize::try_from(addr / 4)
                        .ok()
                        .and_then(|i| ctx.params.get(i))
                        .map_or(0, |v| v.as_u32()),
                };
                warp.set_reg(d, lane, v);
                addrs.push((lane, addr));
            }
            ExecEffect::Memory { space, addrs, is_store: false, is_atomic: false }
        }
        Op::St(space) => {
            let mut addrs = Vec::new();
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = operand(warp, instr.srcs[0], lane);
                let addr = effective_address(base, instr.offset);
                let v = operand(warp, instr.srcs[1], lane);
                match space {
                    MemSpace::Global => ctx.global.write_u32(addr, v),
                    MemSpace::Shared => {
                        ctx.shared[shared_word(addr, ctx.shared.len(), "store")] = v;
                    }
                    MemSpace::Param => panic!("stores to parameter space are not allowed"),
                }
                addrs.push((lane, addr));
            }
            ExecEffect::Memory { space, addrs, is_store: true, is_atomic: false }
        }
        Op::Atom(aop) => {
            let d = instr.dst.expect("atom has a dst");
            let mut addrs = Vec::new();
            // Lanes apply in lane order (deterministic serialization).
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = operand(warp, instr.srcs[0], lane);
                let addr = effective_address(base, instr.offset);
                let v = operand(warp, instr.srcs[1], lane);
                let old = ctx.global.read_u32(addr);
                ctx.global.write_u32(addr, AtomOp::apply(aop, old, v));
                warp.set_reg(d, lane, old);
                addrs.push((lane, addr));
            }
            ExecEffect::Memory { space: MemSpace::Global, addrs, is_store: true, is_atomic: true }
        }
        // Everything else is a lane-wise ALU op.
        _ => {
            let d = instr.dst.expect("ALU op has a dst");
            for lane in 0..ws {
                if eff_mask & (1 << lane) == 0 {
                    continue;
                }
                let a = operand(warp, instr.srcs[0], lane);
                let b = instr.srcs.get(1).map_or(0, |&o| operand(warp, o, lane));
                let c = instr.srcs.get(2).map_or(0, |&o| operand(warp, o, lane));
                warp.set_reg(d, lane, alu(instr.op, a, b, c));
            }
            ExecEffect::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{Guard, Operand, Pred, Reg};

    fn ctx_fixture<'a>(global: &'a mut GlobalMemory, shared: &'a mut [u32]) -> ExecContext<'a> {
        ExecContext {
            global,
            shared,
            params: &[],
            grid: Dim3::one_d(4),
            block: Dim3::two_d(4, 2),
            ctaid: Dim3::three_d(2, 0, 0),
        }
    }

    fn warp4() -> Warp {
        // warp size 8, full mask over 8 lanes (block 4x2 = 8 threads).
        Warp::new(0, 0, 0, 8, 8, 0xFF, 0)
    }

    #[test]
    fn s2r_computes_2d_thread_ids() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 16];
        let mut ctx = ctx_fixture(&mut g, &mut sh);
        let mut w = warp4();
        let i = Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(0)), None, vec![]);
        execute(&mut w, &i, &mut ctx);
        assert_eq!(w.reg_vector(Reg(0)), vec![0, 1, 2, 3, 0, 1, 2, 3]);
        let i = Instruction::new(Op::S2R(SpecialReg::TidY), Some(Reg(1)), None, vec![]);
        execute(&mut w, &i, &mut ctx);
        assert_eq!(w.reg_vector(Reg(1)), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let i = Instruction::new(Op::S2R(SpecialReg::CtaidX), Some(Reg(2)), None, vec![]);
        execute(&mut w, &i, &mut ctx);
        assert_eq!(w.reg_vector(Reg(2)), vec![2; 8]);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu(Op::IAdd, 7, u32::MAX, 0), 6, "wrapping add");
        assert_eq!(alu(Op::ISub, 3, 5, 0) as i32, -2);
        assert_eq!(alu(Op::IMulHi, 0x8000_0000, 2, 0), u32::MAX, "signed hi mul");
        assert_eq!(alu(Op::IMad, 3, 4, 5), 17);
        assert_eq!(alu(Op::Sra, (-8i32) as u32, 1, 0) as i32, -4);
        assert_eq!(alu(Op::Shr, (-8i32) as u32, 1, 0), 0x7FFF_FFFC);
        assert_eq!(
            f32::from_bits(alu(Op::FFma, 2.0f32.to_bits(), 3.0f32.to_bits(), 1.0f32.to_bits())),
            7.0
        );
        assert_eq!(f32::from_bits(alu(Op::FSqrt, 9.0f32.to_bits(), 0, 0)), 3.0);
        assert_eq!(alu(Op::F2I, (-2.7f32).to_bits(), 0, 0) as i32, -2, "truncates toward zero");
        assert_eq!(alu(Op::F2I, f32::NAN.to_bits(), 0, 0), 0);
        assert_eq!(f32::from_bits(alu(Op::I2F, (-3i32) as u32, 0, 0)), -3.0);
    }

    #[test]
    fn guard_masks_lanes() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 16];
        let mut ctx = ctx_fixture(&mut g, &mut sh);
        let mut w = warp4();
        for lane in 0..8 {
            w.set_pred(Pred(0), lane, lane % 2 == 0);
            w.set_reg(Reg(0), lane, 100);
        }
        let i = Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(7)])
            .with_guard(Guard::if_true(Pred(0)));
        execute(&mut w, &i, &mut ctx);
        assert_eq!(w.reg_vector(Reg(0)), vec![7, 100, 7, 100, 7, 100, 7, 100]);
    }

    #[test]
    fn branch_returns_taken_mask() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 16];
        let mut ctx = ctx_fixture(&mut g, &mut sh);
        let mut w = warp4();
        for lane in 0..8 {
            w.set_pred(Pred(1), lane, lane < 3);
        }
        let i = Instruction::new(Op::Bra { target: 9 }, None, None, vec![])
            .with_guard(Guard::if_true(Pred(1)));
        let e = execute(&mut w, &i, &mut ctx);
        assert_eq!(e, ExecEffect::Branch { taken: 0b111, target: 9 });
    }

    #[test]
    fn loads_and_stores_roundtrip_through_spaces() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 16];
        g.write_u32(0x1000, 77);
        sh[3] = 55;
        let mut ctx = ctx_fixture(&mut g, &mut sh);
        let mut w = Warp::new(0, 0, 0, 8, 8, 0x1, 0); // single lane
        w.set_reg(Reg(0), 0, 0x1000);
        let ld =
            Instruction::new(Op::Ld(MemSpace::Global), Some(Reg(1)), None, vec![Reg(0).into()]);
        let e = execute(&mut w, &ld, &mut ctx);
        assert_eq!(w.reg(Reg(1), 0), 77);
        assert!(matches!(e, ExecEffect::Memory { space: MemSpace::Global, is_store: false, .. }));

        let lds =
            Instruction::new(Op::Ld(MemSpace::Shared), Some(Reg(2)), None, vec![Operand::Imm(12)]);
        execute(&mut w, &lds, &mut ctx);
        assert_eq!(w.reg(Reg(2), 0), 55);

        let st = Instruction::new(
            Op::St(MemSpace::Shared),
            None,
            None,
            vec![Operand::Imm(0), Reg(1).into()],
        )
        .with_offset(8);
        execute(&mut w, &st, &mut ctx);
        assert_eq!(ctx.shared[2], 77);
    }

    #[test]
    fn param_loads_read_launch_parameters() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 4];
        let params = [Value(111), Value(222)];
        let mut ctx = ExecContext {
            global: &mut g,
            shared: &mut sh,
            params: &params,
            grid: Dim3::one_d(1),
            block: Dim3::one_d(8),
            ctaid: Dim3::three_d(0, 0, 0),
        };
        let mut w = Warp::new(0, 0, 0, 4, 8, 0xFF, 0);
        let ld =
            Instruction::new(Op::Ld(MemSpace::Param), Some(Reg(0)), None, vec![Operand::Imm(0)])
                .with_offset(4);
        execute(&mut w, &ld, &mut ctx);
        assert_eq!(w.reg_vector(Reg(0)), vec![222; 8]);
    }

    #[test]
    fn atomics_serialize_in_lane_order() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 4];
        let mut ctx = ctx_fixture(&mut g, &mut sh);
        let mut w = warp4();
        for lane in 0..8 {
            w.set_reg(Reg(0), lane, 0x2000);
            w.set_reg(Reg(1), lane, 1);
        }
        let at = Instruction::new(
            Op::Atom(AtomOp::Add),
            Some(Reg(2)),
            None,
            vec![Reg(0).into(), Reg(1).into()],
        );
        execute(&mut w, &at, &mut ctx);
        assert_eq!(ctx.global.read_u32(0x2000), 8);
        assert_eq!(w.reg_vector(Reg(2)), vec![0, 1, 2, 3, 4, 5, 6, 7], "old values per lane");
    }

    #[test]
    fn inactive_lanes_untouched() {
        let mut g = GlobalMemory::new();
        let mut sh = vec![0u32; 4];
        let mut ctx = ctx_fixture(&mut g, &mut sh);
        let mut w = warp4();
        w.stack.last_mut().unwrap().mask = 0x0F; // lanes 4..8 inactive
        for lane in 0..8 {
            w.set_reg(Reg(0), lane, 42);
        }
        let i = Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(1)]);
        execute(&mut w, &i, &mut ctx);
        assert_eq!(w.reg_vector(Reg(0)), vec![1, 1, 1, 1, 42, 42, 42, 42]);
    }
}
