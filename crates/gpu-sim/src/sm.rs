//! The streaming multiprocessor: fetch (with the DARSIE instruction
//! skipper), decode/I-buffer, issue schedulers, operand collection,
//! execution units, LSU and writeback (paper Figures 4 and 7).

use crate::config::{GpuConfig, SchedulerPolicy, Technique};
use crate::events::{EventKind, EventLog, PipeEvent};
use crate::exec::{execute, ExecContext, ExecEffect};
use crate::mem::{coalesce_lines, smem_conflict_degree, DramModel, GlobalMemory, TagCache};
use crate::profile::{OccupancySample, SmProfile, StallCause, MAX_OCCUPANCY_SAMPLES};
use crate::reuse::ReuseBuffer;
use crate::stats::SimStats;
use crate::tb::TbState;
use crate::timing;
use crate::warp::{IBufEntry, Warp, WarpState};
use darsie::{DarsieConfig, PcCoalescer, ProbeOutcome};
use simt_compiler::{CompiledKernel, LaunchPlan};
use simt_isa::{Dim3, LaunchConfig, MemSpace, Op, Reg};
use std::sync::Arc;

/// Everything static about the running kernel, shared by all SMs.
#[derive(Debug)]
pub struct KernelData {
    /// Compiler output (kernel, markings, reconvergence).
    pub ck: CompiledKernel,
    /// Launch-time finalization (skippable / affine / uniform sets).
    pub plan: LaunchPlan,
    /// The launch geometry and parameters.
    pub launch: LaunchConfig,
    /// `bb_start[pc]`: instruction starts a basic block (SILICON-SYNC
    /// instrumentation points).
    pub bb_start: Vec<bool>,
}

impl KernelData {
    /// Bundles a compiled kernel with its launch.
    #[must_use]
    pub fn new(ck: CompiledKernel, launch: LaunchConfig) -> KernelData {
        let plan = LaunchPlan::new(&ck, &launch);
        let mut bb_start = vec![false; ck.kernel.len()];
        for b in &ck.cfg.blocks {
            if b.start < bb_start.len() {
                bb_start[b.start] = true;
            }
        }
        KernelData { ck, plan, launch, bb_start }
    }

    fn instr(&self, pc: usize) -> &simt_isa::Instruction {
        &self.ck.kernel.instrs[pc]
    }
}

/// An instruction in flight between issue and writeback.
#[derive(Debug, Clone)]
struct InFlight {
    done: u64,
    warp: usize,
    dst: Option<Reg>,
    pdst: Option<simt_isa::Pred>,
    /// `(pc, instance)` when this is a DARSIE leader execution.
    leader: Option<(usize, u32)>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index (for round-robin TB placement and debugging).
    pub id: usize,
    cfg: GpuConfig,
    technique: Technique,
    kd: Arc<KernelData>,
    warps: Vec<Option<Warp>>,
    tbs: Vec<Option<TbState>>,
    icache: TagCache,
    l1d: TagCache,
    inflight: Vec<InFlight>,
    sp_busy: Vec<u64>,
    sfu_busy: u64,
    lsu_busy: u64,
    fetch_rr: usize,
    gto_last: Vec<Option<usize>>,
    lrr_next: Vec<usize>,
    pc_coalescer: PcCoalescer,
    uv_reuse: ReuseBuffer,
    used_regs: u32,
    used_smem: u32,
    next_age: u64,
    /// Statistics for this SM.
    pub stats: SimStats,
    /// Pipeline event trace (empty unless `cfg.trace_events`).
    pub events: EventLog,
    /// Cycle-accounted profile (only filled when `cfg.profile`).
    pub profile: SmProfile,
    now: u64,
}

impl Sm {
    /// Creates an idle SM.
    #[must_use]
    pub fn new(id: usize, cfg: &GpuConfig, technique: Technique, kd: Arc<KernelData>) -> Sm {
        let dc = match &technique {
            Technique::Darsie(d) => d.clone(),
            _ => DarsieConfig::default(),
        };
        Sm {
            id,
            cfg: cfg.clone(),
            technique,
            kd,
            warps: (0..cfg.max_warps_per_sm).map(|_| None).collect(),
            tbs: (0..cfg.max_tbs_per_sm).map(|_| None).collect(),
            icache: TagCache::new(cfg.icache_lines, cfg.icache_assoc),
            l1d: TagCache::new(cfg.l1d_lines, cfg.l1d_assoc),
            inflight: Vec::new(),
            sp_busy: vec![0; cfg.schedulers_per_sm],
            sfu_busy: 0,
            lsu_busy: 0,
            fetch_rr: 0,
            gto_last: vec![None; cfg.schedulers_per_sm],
            lrr_next: vec![0; cfg.schedulers_per_sm],
            pc_coalescer: PcCoalescer::new(dc.skip_table_ports),
            uv_reuse: ReuseBuffer::new(64),
            used_regs: 0,
            used_smem: 0,
            next_age: 0,
            stats: SimStats::default(),
            events: EventLog::new(if cfg.trace_events { cfg.trace_capacity } else { 0 }),
            profile: SmProfile::new(
                id,
                (cfg.schedulers_per_sm * cfg.issue_width) as u64,
                cfg.max_warps_per_sm as usize,
            ),
            now: 0,
        }
    }

    /// Records a pipeline event when tracing is enabled.
    fn trace(&mut self, warp: usize, pc: usize, kind: EventKind) {
        if self.cfg.trace_events {
            self.events.push(PipeEvent { cycle: self.now, sm: self.id, warp, pc, kind });
        }
    }

    fn darsie(&self) -> Option<&DarsieConfig> {
        match &self.technique {
            Technique::Darsie(d) => Some(d),
            _ => None,
        }
    }

    /// Architectural registers (vector) one TB of this kernel needs. The
    /// DARSIE renaming pool is *not* charged here: per the paper, DARSIE
    /// "uses as many registers as it can before affecting occupancy", so
    /// the pool is carved from whatever is spare at launch time
    /// ([`Sm::launch_tb`]).
    fn regs_per_tb(&self) -> u32 {
        let warps = self.kd.launch.warps_per_block();
        u32::from(self.kd.ck.kernel.num_regs) * warps
    }

    /// Renaming pool for the next TB: up to the configured size, but only
    /// from registers that occupancy does not need. With no spare
    /// registers DARSIE degrades gracefully (leaders fail allocation and
    /// execute normally).
    fn rename_pool_for_next_tb(&self) -> u32 {
        let Some(d) = self.darsie() else { return 0 };
        let base = self.regs_per_tb().max(1);
        let regs_free = self.cfg.vector_regs_per_sm.saturating_sub(self.used_regs);
        if regs_free < base {
            return 0;
        }
        // How many more TBs could occupancy still place here (register-,
        // warp- and slot-limited)? The spare registers are shared among
        // them so none loses its seat to renaming space.
        let free_tb_slots = self.tbs.iter().filter(|t| t.is_none()).count() as u32;
        let free_warps = self.warps.iter().filter(|w| w.is_none()).count() as u32;
        let wpb = self.kd.launch.warps_per_block().max(1);
        let placeable = (regs_free / base).min(free_tb_slots).min(free_warps / wpb).max(1);
        let spare_after = regs_free - placeable * base;
        (spare_after / placeable).min(d.rename_regs_per_tb as u32)
    }

    /// True when another TB fits (warp slots, TB slots, registers, shared
    /// memory).
    #[must_use]
    pub fn can_accept_tb(&self) -> bool {
        let warps_needed = self.kd.launch.warps_per_block() as usize;
        let free_warps = self.warps.iter().filter(|w| w.is_none()).count();
        let free_tbs = self.tbs.iter().any(|t| t.is_none());
        free_warps >= warps_needed
            && free_tbs
            && self.used_regs + self.regs_per_tb() <= self.cfg.vector_regs_per_sm
            && self.used_smem + self.kd.ck.kernel.shared_mem_bytes <= self.cfg.shared_mem_per_sm
    }

    /// Number of resident TBs.
    #[must_use]
    pub fn resident_tbs(&self) -> usize {
        self.tbs.iter().filter(|t| t.is_some()).count()
    }

    /// True while any warp is resident.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.warps.iter().any(|w| w.is_some()) || !self.inflight.is_empty()
    }

    /// Places a TB with coordinates `ctaid` onto this SM.
    ///
    /// # Panics
    ///
    /// Panics if [`Sm::can_accept_tb`] is false.
    pub fn launch_tb(&mut self, ctaid: Dim3) {
        assert!(self.can_accept_tb(), "launch_tb without capacity");
        let launch = &self.kd.launch;
        let warps_needed = launch.warps_per_block();
        let threads = launch.threads_per_block();
        let ws = launch.warp_size;
        let tb_slot = self.tbs.iter().position(|t| t.is_none()).expect("free TB slot");

        let mut slots = Vec::with_capacity(warps_needed as usize);
        for w in 0..warps_needed {
            let slot = self.warps.iter().position(|x| x.is_none()).expect("free warp slot");
            let lanes_live = threads.saturating_sub(w * ws).min(ws);
            let full_mask = if lanes_live >= 32 { u32::MAX } else { (1u32 << lanes_live) - 1 };
            let warp = Warp::new(
                slot,
                tb_slot,
                w,
                self.kd.ck.kernel.num_regs,
                ws,
                full_mask,
                self.next_age,
            );
            self.next_age += 1;
            self.warps[slot] = Some(warp);
            slots.push(slot);
        }
        let mut dc = self.darsie().cloned().unwrap_or_default();
        let pool = self.rename_pool_for_next_tb();
        dc.rename_regs_per_tb = pool as usize;
        self.tbs[tb_slot] =
            Some(TbState::new(ctaid, slots, self.kd.ck.kernel.shared_mem_bytes, &dc));
        self.used_regs += self.regs_per_tb() + pool;
        self.used_smem += self.kd.ck.kernel.shared_mem_bytes;
    }

    /// Advances the SM one cycle. Returns the number of TBs that completed
    /// this cycle (freeing capacity for the dispatcher).
    pub fn cycle(
        &mut self,
        now: u64,
        global: &mut GlobalMemory,
        l2: &mut TagCache,
        dram: &mut DramModel,
    ) -> u32 {
        self.now = now;
        if self.cfg.profile {
            self.profile.cycles += 1;
            if now.is_multiple_of(self.cfg.profile_sample_interval.max(1)) {
                self.sample_occupancy(now);
            }
        }
        self.count_stall_cycles();
        self.writeback(now);
        let completed = self.issue(now, global, l2, dram);
        self.fetch(now);
        completed
    }

    /// Snapshots skip-table/renaming occupancy and warp population for the
    /// profiler's time-series view.
    fn sample_occupancy(&mut self, now: u64) {
        if self.profile.samples.len() >= MAX_OCCUPANCY_SAMPLES {
            self.profile.samples_dropped += 1;
            return;
        }
        let mut s = OccupancySample {
            cycle: now,
            skip_entries: 0,
            skip_capacity: 0,
            live_versions: 0,
            rename_capacity: 0,
            resident_warps: 0,
            waiting_warps: 0,
        };
        for tb in self.tbs.iter().flatten() {
            s.skip_entries += tb.skip_table.len() as u32;
            s.skip_capacity += tb.skip_table.capacity() as u32;
            s.live_versions += tb.rename.live_versions() as u32;
            s.rename_capacity += tb.rename.capacity() as u32;
        }
        for w in self.warps.iter().flatten() {
            s.resident_warps += 1;
            if matches!(w.state, WarpState::WaitLeader(..)) {
                s.waiting_warps += 1;
            }
        }
        self.profile.samples.push(s);
    }

    fn count_stall_cycles(&mut self) {
        for w in self.warps.iter().flatten() {
            match w.state {
                WarpState::WaitLeader(..) => self.stats.darsie.wait_for_leader_cycles += 1,
                WarpState::BranchSync(..) => self.stats.darsie.branch_sync_cycles += 1,
                _ => {}
            }
        }
    }

    // ----- writeback ---------------------------------------------------------

    fn writeback(&mut self, now: u64) {
        let mut done: Vec<InFlight> = Vec::new();
        self.inflight.retain(|f| {
            if f.done <= now {
                done.push(f.clone());
                false
            } else {
                true
            }
        });
        for f in done {
            if self.cfg.trace_events {
                let pc = f.leader.map_or(usize::MAX, |(pc, _)| pc);
                self.trace(f.warp, pc, EventKind::Writeback);
            }
            let Some(w) = self.warps[f.warp].as_mut() else { continue };
            if let Some(d) = f.dst {
                w.clear_pending(d);
                self.stats.rf_writes += 1;
            }
            if let Some(p) = f.pdst {
                w.clear_pending_pred(p);
            }
            if let Some((pc, instance)) = f.leader {
                let tb_idx = w.tb;
                let warp_in_tb = w.warp_in_tb;
                if self.cfg.profile {
                    let latency = self.tbs[tb_idx]
                        .as_ref()
                        .and_then(|tb| tb.skip_table.find(pc, instance))
                        .filter(|e| e.leader == warp_in_tb)
                        .map(|e| now.saturating_sub(e.created));
                    if let Some(lat) = latency {
                        self.profile.leader_latency.record(lat);
                    }
                }
                if let Some(tb) = self.tbs[tb_idx].as_mut() {
                    let released = tb.skip_table.leader_writeback(pc, instance, warp_in_tb, now);
                    release_waiting(&mut self.warps, tb, released, pc, instance);
                }
            }
        }
    }

    // ----- issue -------------------------------------------------------------

    /// Returns completed TB count.
    fn issue(
        &mut self,
        now: u64,
        global: &mut GlobalMemory,
        l2: &mut TagCache,
        dram: &mut DramModel,
    ) -> u32 {
        let mut completed = 0;
        let mut issued_any = false;
        let width = self.cfg.issue_width;
        // Register banks touched this cycle (operand-collector conflicts).
        let mut banks_used: Vec<u32> = vec![0; self.cfg.rf_banks];
        for s in 0..self.cfg.schedulers_per_sm {
            let candidates = self.warp_candidates(s);
            let mut issued_from = None;
            let mut sched_issued = 0usize;
            // `(cause, head pc, warp slot)` blamed for the scheduler's
            // unfilled slots this cycle (accounting identity: every slot
            // gets exactly one cause).
            let mut blame: Option<(StallCause, Option<usize>, Option<usize>)> = None;
            for wslot in candidates {
                let mut issued = 0;
                let mut stop: Option<(StallCause, Option<usize>)> = None;
                let mut control = false;
                while issued < width {
                    match self.try_issue_head(now, wslot, s, global, l2, dram, &mut banks_used) {
                        IssueOutcome::Issued => {
                            issued += 1;
                            issued_any = true;
                        }
                        IssueOutcome::IssuedControl { tb_done } => {
                            issued += 1;
                            issued_any = true;
                            completed += tb_done;
                            control = true;
                            break;
                        }
                        IssueOutcome::Stall { cause, pc } => {
                            stop = Some((cause, pc));
                            break;
                        }
                    }
                }
                if issued > 0 {
                    issued_from = Some(wslot);
                    sched_issued = issued;
                    if self.cfg.profile && issued < width {
                        blame = Some(if control {
                            (self.post_control_cause(wslot), None, Some(wslot))
                        } else {
                            let (cause, pc) = stop.expect("partial issue stops on a stall");
                            (cause, pc, Some(wslot))
                        });
                    }
                    break;
                }
                if self.cfg.profile && blame.is_none() {
                    // No candidate issued yet: blame the highest-priority
                    // warp's stall.
                    let (cause, pc) = stop.expect("zero issue implies a stall");
                    blame = Some((cause, pc, Some(wslot)));
                }
            }
            self.gto_last[s] = issued_from;
            if self.cfg.profile {
                self.account_slots(s, sched_issued, width, issued_from, blame);
            }
        }
        if issued_any {
            self.stats.active_cycles += 1;
        }
        // Account register-bank conflicts for the cycle.
        for &n in &banks_used {
            if n > 1 {
                self.stats.rf_bank_conflicts += u64::from(n - 1);
            }
        }
        completed
    }

    /// Attributes scheduler `s`'s issue slots for this cycle: `issued`
    /// productive slots, and `width - issued` slots to the blamed cause
    /// (falling back to an idle scan when no candidate was tried).
    fn account_slots(
        &mut self,
        s: usize,
        issued: usize,
        width: usize,
        issued_from: Option<usize>,
        blame: Option<(StallCause, Option<usize>, Option<usize>)>,
    ) {
        self.profile.slots.add(StallCause::Issued, issued as u64);
        if let Some(wslot) = issued_from {
            self.profile.per_warp[wslot].issued += issued as u64;
        }
        let missing = (width - issued) as u64;
        if missing == 0 {
            return;
        }
        let (cause, pc, wslot) = blame.unwrap_or_else(|| self.idle_cause(s));
        self.profile.slots.add(cause, missing);
        if let Some(pc) = pc {
            self.profile.per_pc.entry(pc).or_default().stalls.add(cause, missing);
        }
        if let Some(wslot) = wslot {
            self.profile.per_warp[wslot].stalls.add(cause, missing);
        }
    }

    /// Why a warp that ended its issue group on a control instruction left
    /// the rest of the group unfilled.
    fn post_control_cause(&self, wslot: usize) -> StallCause {
        match self.warps[wslot].as_ref() {
            None => StallCause::IdleNoWarp, // warp exited
            Some(w) => match w.state {
                WarpState::AtBarrier => StallCause::Barrier,
                WarpState::BranchSync(_) => StallCause::BranchSync,
                WarpState::WaitLeader(..) => StallCause::WaitLeader,
                WarpState::Done => StallCause::IdleNoWarp,
                // The branch flushed the I-buffer; fetch must refill it.
                WarpState::Ready => StallCause::IBufferEmpty,
            },
        }
    }

    /// Why scheduler `s` had no issue candidate at all this cycle: the
    /// highest-priority parked state among its warps, or idle-no-warp.
    fn idle_cause(&self, s: usize) -> (StallCause, Option<usize>, Option<usize>) {
        let mut best: Option<(u32, StallCause, Option<usize>, usize)> = None;
        for slot in (0..self.warps.len()).filter(|slot| slot % self.cfg.schedulers_per_sm == s) {
            let Some(w) = self.warps[slot].as_ref() else { continue };
            let (rank, cause, pc) = match w.state {
                WarpState::WaitLeader(pc, _) => (0, StallCause::WaitLeader, Some(pc)),
                WarpState::BranchSync(pc) => (1, StallCause::BranchSync, Some(pc)),
                WarpState::AtBarrier => (2, StallCause::Barrier, None),
                // A Ready warp with a non-empty I-buffer would have been a
                // candidate, so this one is waiting on fetch.
                WarpState::Ready => (3, StallCause::IBufferEmpty, None),
                WarpState::Done => continue,
            };
            if best.as_ref().is_none_or(|&(r, ..)| rank < r) {
                best = Some((rank, cause, pc, slot));
            }
        }
        match best {
            Some((_, cause, pc, slot)) => (cause, pc, Some(slot)),
            None => (StallCause::IdleNoWarp, None, None),
        }
    }

    /// Ordered candidate warps for scheduler `s` this cycle (highest
    /// priority first).
    fn warp_candidates(&mut self, s: usize) -> Vec<usize> {
        let mut candidates: Vec<usize> = (0..self.warps.len())
            .filter(|slot| slot % self.cfg.schedulers_per_sm == s)
            .filter(|&slot| {
                self.warps[slot].as_ref().is_some_and(|w| {
                    matches!(w.state, WarpState::Ready | WarpState::WaitLeader(..))
                        && !w.ibuffer.is_empty()
                })
            })
            .collect();
        if candidates.is_empty() {
            return candidates;
        }
        match self.cfg.scheduler {
            SchedulerPolicy::Gto => {
                // Oldest first; the greedy warp (last issued) leads.
                candidates
                    .sort_by_key(|&slot| self.warps[slot].as_ref().map_or(u64::MAX, |w| w.age));
                if let Some(last) = self.gto_last[s] {
                    if let Some(pos) = candidates.iter().position(|&c| c == last) {
                        candidates.remove(pos);
                        candidates.insert(0, last);
                    }
                }
            }
            SchedulerPolicy::Lrr => {
                let start = self.lrr_next[s];
                candidates.sort_unstable();
                let split = candidates.iter().position(|&c| c >= start).unwrap_or(0);
                candidates.rotate_left(split);
                if let Some(&first) = candidates.first() {
                    self.lrr_next[s] = first + 1;
                }
            }
        }
        candidates
    }

    /// Attempts to issue the head of `wslot`'s I-buffer (after absorbing
    /// zero-cost skip markers and ghosts).
    #[allow(clippy::too_many_arguments)]
    fn try_issue_head(
        &mut self,
        now: u64,
        wslot: usize,
        sched: usize,
        global: &mut GlobalMemory,
        l2: &mut TagCache,
        dram: &mut DramModel,
        banks_used: &mut [u32],
    ) -> IssueOutcome {
        // Wrong-path flush: after reconvergence switched paths, buffered
        // entries no longer match the warp's next PC.
        {
            let Some(w) = self.warps[wslot].as_mut() else {
                return IssueOutcome::Stall { cause: StallCause::IdleNoWarp, pc: None };
            };
            let front_pc = w.ibuffer.front().map(|e| match e {
                IBufEntry::Instr { pc, .. }
                | IBufEntry::SkipMarker { pc, .. }
                | IBufEntry::Ghost { pc } => *pc,
            });
            if let (Some(fpc), Some(npc)) = (front_pc, w.next_pc()) {
                if fpc != npc {
                    w.ibuffer.clear();
                    w.fetch_blocked = false;
                    return IssueOutcome::Stall { cause: StallCause::IBufferEmpty, pc: None };
                }
            }
        }
        // Absorb leading zero-cost entries (skip markers / ghosts). When
        // the buffer then has nothing issuable left, the slot is charged to
        // the frontend elimination rather than an empty I-buffer.
        let mut absorbed = 0usize;
        loop {
            let Some(w) = self.warps[wslot].as_mut() else {
                return IssueOutcome::Stall { cause: StallCause::IdleNoWarp, pc: None };
            };
            match w.ibuffer.front() {
                Some(&IBufEntry::SkipMarker { pc, dst, .. }) => {
                    if w.is_pending(dst) {
                        // WAW with an older in-flight write.
                        return IssueOutcome::Stall { cause: StallCause::Scoreboard, pc: Some(pc) };
                    }
                    let Some(IBufEntry::SkipMarker { pc, dst, values }) = w.ibuffer.pop_front()
                    else {
                        unreachable!()
                    };
                    if self.cfg.shadow_check {
                        self.shadow_check_marker(wslot, pc, dst, &values, global);
                    }
                    let w = self.warps[wslot].as_mut().expect("warp exists");
                    w.set_reg_vector(dst, &values);
                    let _ = w.record_pass(pc);
                    w.advance();
                    w.reconverge();
                    absorbed += 1;
                    if self.cfg.profile {
                        self.profile.per_pc.entry(pc).or_default().skipped += 1;
                    }
                }
                Some(IBufEntry::Ghost { .. }) => {
                    let Some(&IBufEntry::Ghost { pc }) = w.ibuffer.front() else { unreachable!() };
                    let instr = self.kd.instr(pc).clone();
                    if !w.scoreboard_ready(&instr) {
                        return IssueOutcome::Stall { cause: StallCause::Scoreboard, pc: Some(pc) };
                    }
                    w.ibuffer.pop_front();
                    w.advance();
                    absorbed += 1;
                    if self.cfg.profile {
                        self.profile.per_pc.entry(pc).or_default().skipped += 1;
                    }
                    // Count the elimination here (a flushed ghost was
                    // wrong-path work the baseline would not execute
                    // either).
                    self.stats.instrs_skipped.add(self.kd.plan.taxonomy[pc], 1);
                    let tb_idx = w.tb;
                    let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                    let warp = self.warps[wslot].as_mut().expect("warp exists");
                    let mut ctx = ExecContext {
                        global,
                        shared: &mut tb.shared,
                        params: &self.kd.launch.params,
                        grid: self.kd.launch.grid,
                        block: self.kd.launch.block,
                        ctaid: tb.ctaid,
                    };
                    let _ = execute(warp, &instr, &mut ctx);
                    warp.reconverge();
                }
                _ => break,
            }
        }

        // An empty (or non-instruction) front after absorbing markers means
        // the frontend eliminated this slot's work; otherwise fetch is
        // simply behind.
        let drained =
            if absorbed > 0 { StallCause::SkippedByDarsie } else { StallCause::IBufferEmpty };
        let Some(w) = self.warps[wslot].as_ref() else {
            return IssueOutcome::Stall { cause: StallCause::IdleNoWarp, pc: None };
        };
        match w.state {
            WarpState::Ready | WarpState::WaitLeader(..) => {}
            WarpState::AtBarrier => {
                return IssueOutcome::Stall { cause: StallCause::Barrier, pc: None };
            }
            WarpState::BranchSync(pc) => {
                return IssueOutcome::Stall { cause: StallCause::BranchSync, pc: Some(pc) };
            }
            WarpState::Done => {
                return IssueOutcome::Stall { cause: StallCause::IdleNoWarp, pc: None };
            }
        }
        let Some(&IBufEntry::Instr { pc, leader }) = w.ibuffer.front() else {
            return IssueOutcome::Stall { cause: drained, pc: None };
        };
        let instr = self.kd.instr(pc).clone();
        if !w.scoreboard_ready(&instr) {
            return IssueOutcome::Stall { cause: StallCause::Scoreboard, pc: Some(pc) };
        }

        // SILICON-SYNC: block at basic-block boundaries.
        if matches!(self.technique, Technique::SiliconSync)
            && self.kd.bb_start[pc]
            && self.silicon_sync_gate(now, wslot)
        {
            return IssueOutcome::Stall { cause: StallCause::Barrier, pc: Some(pc) };
        }

        // Execution unit availability.
        match timing::exec_unit(instr.op.kind()) {
            timing::ExecUnit::Sp if self.sp_busy[sched] > now => {
                return IssueOutcome::Stall { cause: StallCause::ExecUnitBusy, pc: Some(pc) };
            }
            timing::ExecUnit::Sfu if self.sfu_busy > now => {
                return IssueOutcome::Stall { cause: StallCause::ExecUnitBusy, pc: Some(pc) };
            }
            timing::ExecUnit::Lsu if self.lsu_busy > now => {
                return IssueOutcome::Stall { cause: StallCause::LsuQueue, pc: Some(pc) };
            }
            _ => {}
        }

        // UV: value-keyed reuse of TB-uniform instructions at issue. Only
        // fully-active warps participate (a partial mask would clobber
        // inactive lanes and key with stale lane-0 values).
        let mut uv_key = None;
        let full_active = {
            let w = self.warps[wslot].as_ref().expect("warp exists");
            w.active_mask() == w.full_mask && w.full_mask.count_ones() == self.kd.launch.warp_size
        };
        if matches!(self.technique, Technique::Uv)
            && full_active
            && self.kd.plan.uv_uniform[pc]
            && instr.guard.is_none()
            && !matches!(instr.op, Op::Sel(_))
        {
            match self.try_uv_reuse(now, wslot, pc, &instr, global, banks_used) {
                Ok(()) => return IssueOutcome::Issued,
                Err(key) => uv_key = Some(key),
            }
        }

        self.issue_instr(
            now, wslot, sched, pc, leader, uv_key, &instr, global, l2, dram, banks_used,
        )
    }

    /// SILICON-SYNC gate: returns true when the warp must stall.
    fn silicon_sync_gate(&mut self, _now: u64, wslot: usize) -> bool {
        let (tb_idx, warp_in_tb) = {
            let w = self.warps[wslot].as_ref().expect("warp exists");
            (w.tb, w.warp_in_tb as usize)
        };
        let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
        let w = self.warps[wslot].as_mut().expect("warp exists");
        if !w.bb_pending {
            // Register this crossing and start waiting.
            tb.bb_crossings[warp_in_tb] += 1;
            w.bb_pending = true;
            self.stats.barrier_waits += 1;
        }
        let my = tb.bb_crossings[warp_in_tb];
        // A warp already parked at a real `bar.sync` cannot advance its
        // crossing count; treating it as satisfied avoids deadlock between
        // the instrumentation barrier and the kernel's own barriers
        // (divergent paths cross different numbers of block boundaries).
        let slots = tb.warp_slots.clone();
        let live = tb.live_mask;
        let counts = tb.bb_crossings.clone();
        let all_reached = slots.iter().enumerate().all(|(i, &slot)| {
            if live & (1 << i) == 0 || counts[i] >= my {
                return true;
            }
            self.warps[slot].as_ref().is_none_or(|other| other.state == WarpState::AtBarrier)
        });
        let w = self.warps[wslot].as_mut().expect("warp exists");
        if all_reached {
            w.bb_pending = false;
            false
        } else {
            true
        }
    }

    /// UV reuse attempt; `Ok(())` when the instruction was satisfied from
    /// the reuse buffer, `Err(key)` on a miss (the caller executes
    /// normally and inserts the result under that key).
    #[allow(clippy::too_many_arguments)]
    fn try_uv_reuse(
        &mut self,
        _now: u64,
        wslot: usize,
        pc: usize,
        instr: &simt_isa::Instruction,
        global: &mut GlobalMemory,
        banks_used: &mut [u32],
    ) -> Result<(), crate::reuse::ReuseKey> {
        let w = self.warps[wslot].as_mut().expect("warp exists");
        // Operand signature from lane 0 (UV only targets warp-uniform
        // operands). S2R has implicit inputs: fold in the TB identity.
        let mut sig_words: Vec<u32> = instr
            .srcs
            .iter()
            .map(|&o| match o {
                simt_isa::Operand::Reg(r) => w.reg(r, 0),
                simt_isa::Operand::Imm(v) => v,
            })
            .collect();
        if let Op::S2R(_) = instr.op {
            let tb = self.tbs[w.tb].as_ref().expect("TB exists");
            sig_words.push(tb.ctaid.x);
            sig_words.push(tb.ctaid.y);
            sig_words.push(tb.ctaid.z);
        }
        let key = ReuseBuffer::key(pc, &sig_words);
        if let Some(vals) = self.uv_reuse.probe(&key) {
            // Operand reads still happen (the reuse buffer is checked with
            // real operand values).
            self.charge_operand_reads(wslot, instr, banks_used);
            if self.cfg.shadow_check {
                if let Some(d) = instr.dst {
                    self.shadow_check_marker(wslot, pc, d, &vals, global);
                }
            }
            let w = self.warps[wslot].as_mut().expect("warp exists");
            if let Some(d) = instr.dst {
                w.set_reg_vector(d, &vals);
                self.stats.rf_writes += 1;
            }
            w.ibuffer.pop_front();
            w.advance();
            w.reconverge();
            self.stats.instrs_reused.add(self.kd.plan.taxonomy[pc], 1);
            if self.cfg.profile {
                self.profile.per_pc.entry(pc).or_default().issued += 1;
            }
            self.trace(wslot, pc, EventKind::Reuse);
            Ok(())
        } else {
            Err(key)
        }
    }

    fn charge_operand_reads(
        &mut self,
        wslot: usize,
        instr: &simt_isa::Instruction,
        banks_used: &mut [u32],
    ) {
        let w = self.warps[wslot].as_ref().expect("warp exists");
        let base = w.slot as u32 * u32::from(self.kd.ck.kernel.num_regs);
        let darsie_active = self.darsie().is_some();
        for r in instr.src_regs() {
            self.stats.rf_reads += 1;
            if darsie_active {
                // Every read probes the rename table first (Section 4.3.1).
                self.stats.darsie.rename_reads += 1;
            }
            let bank = ((base + u32::from(r.0)) as usize) % self.cfg.rf_banks;
            banks_used[bank] += 1;
        }
    }

    /// Issues one instruction for real: functional execution plus timing.
    #[allow(clippy::too_many_arguments)]
    fn issue_instr(
        &mut self,
        now: u64,
        wslot: usize,
        sched: usize,
        pc: usize,
        leader: Option<u32>,
        uv_key: Option<crate::reuse::ReuseKey>,
        instr: &simt_isa::Instruction,
        global: &mut GlobalMemory,
        l2: &mut TagCache,
        dram: &mut DramModel,
        banks_used: &mut [u32],
    ) -> IssueOutcome {
        self.charge_operand_reads(wslot, instr, banks_used);
        let (tb_idx, warp_in_tb) = {
            let w = self.warps[wslot].as_ref().expect("warp exists");
            (w.tb, w.warp_in_tb)
        };

        // Instance accounting: every completed occurrence of a skippable
        // PC counts, whether skipped, led, or executed normally.
        if self.kd.plan.skippable[pc] && self.darsie().is_some() {
            let instance = {
                let w = self.warps[wslot].as_mut().expect("warp exists");
                w.record_pass(pc)
            };
            if leader.is_none() {
                // A warp that lost its skip window executed the redundant
                // instruction itself: the skip entry no longer needs it,
                // and the warp's private write supersedes any shared
                // version it was bound to.
                let warp_in_tb = self.warps[wslot].as_ref().expect("warp exists").warp_in_tb;
                let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                if let Some(d) = instr.dst {
                    tb.rename.unbind(warp_in_tb, d.0);
                }
                let must = tb.must_pass_mask();
                if tb.skip_table.record_pass(pc, instance, warp_in_tb, must, now) {
                    tb.entry_completed(pc, instance);
                }
            }
        }

        // Functional execution.
        let effect = {
            let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
            let w = self.warps[wslot].as_mut().expect("warp exists");
            w.ibuffer.pop_front();
            w.advance();
            let mut ctx = ExecContext {
                global,
                shared: &mut tb.shared,
                params: &self.kd.launch.params,
                grid: self.kd.launch.grid,
                block: self.kd.launch.block,
                ctaid: tb.ctaid,
            };
            execute(w, instr, &mut ctx)
        };
        self.stats.instrs_executed += 1;
        self.stats.executed_taxonomy.add(self.kd.plan.taxonomy[pc], 1);
        if self.cfg.profile {
            self.profile.per_pc.entry(pc).or_default().issued += 1;
        }
        self.trace(wslot, pc, EventKind::Issue);

        // UV: remember the result for future reuse.
        if let Some(key) = uv_key {
            if let Some(d) = instr.dst {
                let w = self.warps[wslot].as_ref().expect("warp exists");
                self.uv_reuse.insert(key, w.reg_vector(d).into_boxed_slice());
            }
        }

        // Leader snapshot: capture the produced vector for followers.
        if let Some(instance) = leader {
            if let Some(d) = instr.dst {
                let w = self.warps[wslot].as_ref().expect("warp exists");
                let vals = w.reg_vector(d).into_boxed_slice();
                let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                tb.snapshots.insert((pc, instance), vals);
            }
        }

        match effect {
            ExecEffect::None => {
                let w = self.warps[wslot].as_mut().expect("warp exists");
                w.reconverge();
                let kind = instr.op.kind();
                let lat = timing::exec_latency(&self.cfg, kind);
                match timing::exec_unit(kind) {
                    timing::ExecUnit::Sfu => {
                        self.sfu_busy = now + timing::unit_issue_interval(&self.cfg, kind);
                        self.stats.sfu_ops += 1;
                    }
                    _ => {
                        self.sp_busy[sched] = now + timing::unit_issue_interval(&self.cfg, kind);
                        self.stats.alu_ops += 1;
                    }
                }
                self.finish_issue(now + lat, wslot, pc, leader, instr);
                IssueOutcome::Issued
            }
            ExecEffect::Branch { taken, target } => {
                self.resolve_branch(now, wslot, tb_idx, warp_in_tb, pc, instr, taken, target)
            }
            ExecEffect::Barrier => {
                self.stats.barrier_waits += 1;
                self.trace(wslot, pc, EventKind::BarrierArrive);
                let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                let released = tb.arrive_barrier(warp_in_tb);
                let w = self.warps[wslot].as_mut().expect("warp exists");
                w.reconverge();
                match released {
                    Some(mask) => {
                        // Everyone (including this warp) proceeds.
                        for (i, &slot) in
                            self.tbs[tb_idx].as_ref().expect("TB").warp_slots.iter().enumerate()
                        {
                            if mask & (1 << i) != 0 {
                                if let Some(w) = self.warps[slot].as_mut() {
                                    if w.state == WarpState::AtBarrier {
                                        w.state = WarpState::Ready;
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        let w = self.warps[wslot].as_mut().expect("warp exists");
                        w.state = WarpState::AtBarrier;
                    }
                }
                IssueOutcome::IssuedControl { tb_done: 0 }
            }
            ExecEffect::Exit => {
                let w = self.warps[wslot].as_mut().expect("warp exists");
                let done = w.exit_path();
                w.reconverge();
                let mut tb_done = 0;
                if done {
                    w.fetch_blocked = false;
                    self.trace(wslot, pc, EventKind::WarpDone);
                    let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                    if tb.retire_warp(warp_in_tb) {
                        self.free_tb(tb_idx);
                        tb_done = 1;
                        self.stats.tbs_completed += 1;
                    } else {
                        self.after_majority_change(tb_idx);
                    }
                    self.warps[wslot] = None;
                }
                IssueOutcome::IssuedControl { tb_done }
            }
            ExecEffect::Memory { space, addrs, is_store, is_atomic } => {
                let w = self.warps[wslot].as_mut().expect("warp exists");
                w.reconverge();
                self.handle_memory(
                    now, wslot, tb_idx, pc, leader, instr, space, &addrs, is_store, is_atomic, l2,
                    dram,
                );
                IssueOutcome::Issued
            }
        }
    }

    /// Common post-issue bookkeeping for latency ops.
    fn finish_issue(
        &mut self,
        done: u64,
        wslot: usize,
        pc: usize,
        leader: Option<u32>,
        instr: &simt_isa::Instruction,
    ) {
        let w = self.warps[wslot].as_mut().expect("warp exists");
        if let Some(d) = instr.dst {
            w.mark_pending(d);
        }
        if let Some(p) = instr.pdst {
            w.mark_pending_pred(p);
        }
        self.inflight.push(InFlight {
            done,
            warp: wslot,
            dst: instr.dst,
            pdst: instr.pdst,
            leader: leader.map(|i| (pc, i)),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_branch(
        &mut self,
        _now: u64,
        wslot: usize,
        tb_idx: usize,
        warp_in_tb: u32,
        pc: usize,
        instr: &simt_isa::Instruction,
        taken: u32,
        target: usize,
    ) -> IssueOutcome {
        let reconv = self.kd.ck.recon.recon[pc].unwrap_or(usize::MAX);
        let (diverged, next_pc) = {
            let w = self.warps[wslot].as_mut().expect("warp exists");
            let diverged = w.take_branch(pc, target, taken, reconv);
            w.reconverge();
            debug_assert!(
                w.ibuffer.iter().all(|e| !matches!(e, IBufEntry::Instr { .. })),
                "fetch must stall behind an unissued branch"
            );
            w.ibuffer.clear();
            w.fetch_blocked = false;
            (diverged, w.next_pc().unwrap_or(usize::MAX))
        };

        // DARSIE branch synchronization (Section 4.3.3).
        let wants_sync = self.darsie().is_some_and(|d| !d.no_cf_sync);
        if wants_sync && instr.guard.is_some() {
            let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
            if tb.majority.contains(warp_in_tb) {
                if diverged {
                    // Intra-warp divergence: leave the majority path, do
                    // not block, but report the arrival so others resolve.
                    tb.majority.remove(warp_in_tb);
                    tb.rename.release_warp(warp_in_tb);
                    self.stats.darsie.majority_evictions += 1;
                    let resolved = tb.arrive_branch_sync(pc, warp_in_tb, usize::MAX);
                    self.apply_branch_sync_resolution(tb_idx, resolved);
                } else {
                    let resolved = tb.arrive_branch_sync(pc, warp_in_tb, next_pc);
                    match resolved {
                        Some(_) => self.apply_branch_sync_resolution(tb_idx, resolved),
                        None => {
                            let w = self.warps[wslot].as_mut().expect("warp exists");
                            w.state = WarpState::BranchSync(pc);
                            self.trace(wslot, pc, EventKind::BranchSync);
                        }
                    }
                }
            }
        }
        IssueOutcome::IssuedControl { tb_done: 0 }
    }

    fn apply_branch_sync_resolution(&mut self, tb_idx: usize, resolved: Option<(u32, Vec<u32>)>) {
        let Some((released, evicted)) = resolved else { return };
        self.stats.darsie.majority_evictions += evicted.len() as u64;
        let slots: Vec<(usize, usize)> = {
            let tb = self.tbs[tb_idx].as_ref().expect("TB exists");
            tb.warp_slots.iter().copied().enumerate().collect()
        };
        for (i, slot) in slots {
            if released & (1 << i) != 0 {
                if let Some(w) = self.warps[slot].as_mut() {
                    if matches!(w.state, WarpState::BranchSync(_)) {
                        w.state = WarpState::Ready;
                    }
                }
            }
        }
    }

    /// Re-evaluates pending synchronizations after the majority mask or
    /// live mask shrank (warp exit).
    fn after_majority_change(&mut self, tb_idx: usize) {
        let pending = {
            let tb = self.tbs[tb_idx].as_ref().expect("TB exists");
            tb.pending_branch_syncs()
        };
        for pc in pending {
            let resolved = {
                let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                tb.check_branch_sync(pc)
            };
            self.apply_branch_sync_resolution(tb_idx, resolved);
        }
        // Barrier may also now be complete.
        let released = {
            let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
            if tb.barrier_arrived != 0 && tb.barrier_arrived & tb.live_mask == tb.live_mask {
                tb.arrive_barrier_completion()
            } else {
                None
            }
        };
        if let Some(mask) = released {
            let slots: Vec<(usize, usize)> = {
                let tb = self.tbs[tb_idx].as_ref().expect("TB exists");
                tb.warp_slots.iter().copied().enumerate().collect()
            };
            for (i, slot) in slots {
                if mask & (1 << i) != 0 {
                    if let Some(w) = self.warps[slot].as_mut() {
                        if w.state == WarpState::AtBarrier {
                            w.state = WarpState::Ready;
                        }
                    }
                }
            }
        }
        let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
        let must = tb.must_pass_mask();
        if tb.skip_table.sweep(must) > 0 {
            tb.gc_versions();
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_memory(
        &mut self,
        now: u64,
        wslot: usize,
        tb_idx: usize,
        pc: usize,
        leader: Option<u32>,
        instr: &simt_isa::Instruction,
        space: MemSpace,
        addrs: &[(u32, u64)],
        is_store: bool,
        is_atomic: bool,
        l2: &mut TagCache,
        dram: &mut DramModel,
    ) {
        let completion = match space {
            MemSpace::Shared => {
                self.stats.smem_ops += 1;
                let degree = smem_conflict_degree(addrs.iter().map(|&(_, a)| a));
                self.stats.smem_bank_conflicts += u64::from(degree - 1);
                let by_pc = self.stats.mem_by_pc.entry(pc).or_default();
                by_pc.smem_accesses += 1;
                by_pc.smem_conflict_extra += u64::from(degree - 1);
                self.lsu_busy = now + timing::smem_occupancy(degree);
                now + timing::smem_latency(&self.cfg, degree)
            }
            MemSpace::Param => {
                self.stats.mem_ops += 1;
                self.lsu_busy = now + timing::PARAM_OCCUPANCY;
                now + timing::param_latency(&self.cfg)
            }
            MemSpace::Global => {
                self.stats.mem_ops += 1;
                let lines = coalesce_lines(addrs.iter().map(|&(_, a)| a));
                self.stats.global_transactions += lines.len() as u64;
                let by_pc = self.stats.mem_by_pc.entry(pc).or_default();
                by_pc.global_accesses += 1;
                by_pc.global_transactions += lines.len() as u64;
                self.lsu_busy = now + timing::global_occupancy(lines.len() as u64);
                let mut worst = now + timing::l1_hit_latency(&self.cfg);
                for &line in &lines {
                    let t = if is_store || is_atomic {
                        // Write-through: invalidate L1, go to L2.
                        self.l1d.invalidate(line);
                        if l2.access(line) {
                            self.stats.l2_hits += 1;
                            now + timing::l2_hit_latency(&self.cfg)
                        } else {
                            self.stats.l2_misses += 1;
                            dram.schedule(now, timing::dram_line_latency(&self.cfg))
                        }
                    } else if self.l1d.access(line) {
                        self.stats.l1_hits += 1;
                        now + timing::l1_hit_latency(&self.cfg)
                    } else {
                        self.stats.l1_misses += 1;
                        if l2.access(line) {
                            self.stats.l2_hits += 1;
                            now + timing::l2_hit_latency(&self.cfg)
                        } else {
                            self.stats.l2_misses += 1;
                            dram.schedule(now, timing::dram_line_latency(&self.cfg))
                        }
                    };
                    worst = worst.max(t);
                }
                if is_atomic {
                    self.stats.atomic_ops += 1;
                    worst += timing::atomic_serialization(addrs.len());
                }
                // Stores complete immediately from the warp's perspective
                // (no register writeback); loads wait for data.
                worst
            }
        };

        if is_store || is_atomic {
            self.invalidate_load_skips(tb_idx, is_atomic, space);
        }
        if instr.dst.is_some() {
            self.finish_issue(completion, wslot, pc, leader, instr);
        }
    }

    /// Paper Section 4.4: stores flush this TB's load entries; global
    /// communication primitives (atomics) flush load entries SM-wide.
    fn invalidate_load_skips(&mut self, tb_idx: usize, is_atomic: bool, space: MemSpace) {
        let Some(d) = self.darsie().cloned() else { return };
        if d.ignore_store && !is_atomic {
            return;
        }
        // Shared-memory stores can only affect this TB's shared loads;
        // conservatively flush the TB bank either way (the table does not
        // distinguish spaces beyond IsLoad).
        let _ = space;
        let targets: Vec<usize> = if is_atomic {
            (0..self.tbs.len()).filter(|&i| self.tbs[i].is_some()).collect()
        } else {
            vec![tb_idx]
        };
        for t in targets {
            let (released, slots): (u32, Vec<usize>) = {
                let tb = self.tbs[t].as_mut().expect("TB exists");
                let (n, released) = tb.skip_table.invalidate_loads(&mut self.stats.darsie);
                if n > 0 {
                    tb.gc_versions();
                }
                (released, tb.warp_slots.clone())
            };
            for (i, slot) in slots.iter().enumerate() {
                if released & (1 << i) != 0 {
                    if let Some(w) = self.warps[*slot].as_mut() {
                        if matches!(w.state, WarpState::WaitLeader(..)) {
                            w.state = WarpState::Ready;
                        }
                    }
                }
            }
        }
    }

    fn free_tb(&mut self, tb_idx: usize) {
        let pool = self.tbs[tb_idx].as_ref().map_or(0, |t| t.rename.capacity() as u32);
        self.tbs[tb_idx] = None;
        self.used_regs -= self.regs_per_tb() + pool;
        self.used_smem -= self.kd.ck.kernel.shared_mem_bytes;
    }

    /// Shadow soundness oracle: recompute a skipped instruction and compare
    /// with the leader's shared value.
    fn shadow_check_marker(
        &mut self,
        wslot: usize,
        pc: usize,
        dst: Reg,
        values: &[u32],
        global: &mut GlobalMemory,
    ) {
        let instr = self.kd.instr(pc).clone();
        let (tb_idx,) = {
            let w = self.warps[wslot].as_ref().expect("warp exists");
            (w.tb,)
        };
        let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
        let w = self.warps[wslot].as_mut().expect("warp exists");
        let before = w.reg_vector(dst);
        let mut ctx = ExecContext {
            global,
            shared: &mut tb.shared,
            params: &self.kd.launch.params,
            grid: self.kd.launch.grid,
            block: self.kd.launch.block,
            ctaid: tb.ctaid,
        };
        let _ = execute(w, &instr, &mut ctx);
        let recomputed = w.reg_vector(dst);
        w.set_reg_vector(dst, &before);
        assert_eq!(
            recomputed.as_slice(),
            values,
            "DARSIE shadow check failed at pc {pc} ({}): skipped value diverges from \
             recomputation",
            instr
        );
    }

    // ----- fetch ---------------------------------------------------------------

    fn fetch(&mut self, now: u64) {
        self.pc_coalescer.begin_cycle();
        let n = self.warps.len();
        let mut served = 0;
        for off in 0..n {
            if served >= self.cfg.fetch_width {
                break;
            }
            let slot = (self.fetch_rr + off) % n;
            let eligible = self.warps[slot].as_ref().is_some_and(|w| {
                w.state == WarpState::Ready
                    && !w.fetch_blocked
                    && w.fetch_ready_at <= now
                    && w.ibuffer_instrs() < self.cfg.ibuffer_entries
                    && w.top().is_some()
            });
            if !eligible {
                continue;
            }
            if self.fetch_warp(now, slot) {
                served += 1;
            }
        }
        self.fetch_rr = (self.fetch_rr + 1) % n;
    }

    /// Runs the DARSIE/DAC skipper at the fetch frontier, then a normal
    /// fetch burst (which stops in front of the next eliminable
    /// instruction), then the skipper again — so a skippable instruction
    /// that immediately follows a vector one is probed rather than
    /// swallowed by the same fetch. Returns true when a fetch slot was
    /// consumed.
    fn fetch_warp(&mut self, now: u64, wslot: usize) -> bool {
        // Flush wrong-path prefetch before working at the frontier: after
        // a reconvergence pop, buffered entries may belong to the popped
        // path, and the skipper must not extend a stale frontier.
        {
            let w = self.warps[wslot].as_mut().expect("warp exists");
            let front_pc = w.ibuffer.front().map(|e| match e {
                IBufEntry::Instr { pc, .. }
                | IBufEntry::SkipMarker { pc, .. }
                | IBufEntry::Ghost { pc } => *pc,
            });
            if let (Some(fpc), Some(npc)) = (front_pc, w.next_pc()) {
                if fpc != npc {
                    debug_assert!(
                        w.ibuffer.iter().all(|e| !matches!(e, IBufEntry::SkipMarker { .. })),
                        "skip markers must never be on a wrong path"
                    );
                    w.ibuffer.clear();
                    w.fetch_blocked = false;
                }
            }
        }
        // Technique-specific pre-fetch elimination.
        if !self.pre_fetch_eliminate(now, wslot) {
            return false; // warp went to sleep (waiting for a leader)
        }
        let fetched = self.fetch_burst(now, wslot);
        // The burst may have stopped right before a skippable PC.
        let _ = self.pre_fetch_eliminate(now, wslot);
        fetched
    }

    /// Returns false when the warp blocked (no fetch this cycle).
    fn pre_fetch_eliminate(&mut self, now: u64, wslot: usize) -> bool {
        match &self.technique {
            Technique::Darsie(d) => {
                let d = d.clone();
                self.darsie_skip_loop(now, wslot, &d)
            }
            Technique::DacIdeal => {
                self.dac_ghost_loop(wslot);
                true
            }
            _ => true,
        }
    }

    /// True when the frontend eliminates `pc` before fetch under the
    /// active technique.
    fn eliminable(&self, pc: usize) -> bool {
        match &self.technique {
            Technique::Darsie(_) => self.kd.plan.skippable[pc],
            Technique::DacIdeal => self.kd.plan.dac_affine[pc],
            _ => false,
        }
    }

    fn fetch_burst(&mut self, now: u64, wslot: usize) -> bool {
        let w = self.warps[wslot].as_ref().expect("warp exists");
        if w.state != WarpState::Ready
            || w.fetch_blocked
            || w.ibuffer_instrs() >= self.cfg.ibuffer_entries
        {
            return false;
        }
        let Some(pc) = w.fetch_pc() else { return false };
        if pc >= self.kd.ck.kernel.len() {
            return false;
        }

        // One I-cache access per fetch (line of the first instruction).
        self.stats.icache_accesses += 1;
        let line = simt_isa::Kernel::byte_pc(pc) / GpuConfig::LINE_BYTES;
        if !self.icache.access(line) {
            self.stats.icache_misses += 1;
            let w = self.warps[wslot].as_mut().expect("warp exists");
            w.fetch_ready_at = now + timing::fetch_miss_penalty(&self.cfg);
            return true;
        }

        let mut delivered = 0;
        while delivered < self.cfg.instrs_per_fetch {
            let (pc, room) = {
                let w = self.warps[wslot].as_ref().expect("warp exists");
                (w.fetch_pc(), w.ibuffer_instrs() < self.cfg.ibuffer_entries)
            };
            let Some(pc) = pc else { break };
            if !room || pc >= self.kd.ck.kernel.len() {
                break;
            }
            // Leave eliminable instructions to the skipper (unless the
            // warp cannot skip at all right now, in which case the first
            // slot fetches it normally).
            if delivered > 0 && self.eliminable(pc) {
                break;
            }
            let op = self.kd.instr(pc).op;
            self.trace(wslot, pc, EventKind::Fetch);
            let w = self.warps[wslot].as_mut().expect("warp exists");
            w.ibuffer.push_back(IBufEntry::Instr { pc, leader: None });
            self.stats.instrs_fetched += 1;
            delivered += 1;
            if matches!(op, Op::Bra { .. } | Op::Exit) {
                w.fetch_blocked = true;
                break;
            }
        }
        delivered > 0
    }

    /// DAC-IDEAL: transfer affine instructions at the fetch frontier onto
    /// the (free) affine stream. Unlimited per cycle — idealized.
    fn dac_ghost_loop(&mut self, wslot: usize) {
        loop {
            let w = self.warps[wslot].as_ref().expect("warp exists");
            if w.fetch_blocked {
                return;
            }
            let Some(pc) = w.fetch_pc() else { return };
            if pc >= self.kd.ck.kernel.len() || !self.kd.plan.dac_affine[pc] {
                return;
            }
            let w = self.warps[wslot].as_mut().expect("warp exists");
            w.ibuffer.push_back(IBufEntry::Ghost { pc });
        }
    }

    /// Bounded leader stall: wait for resources up to a threshold, then
    /// give up and execute the (redundant) instruction normally.
    fn leader_stall_or_give_up(&mut self, wslot: usize) -> bool {
        let max_stall = self.darsie().map_or(64, |d| d.max_leader_stall);
        let w = self.warps[wslot].as_mut().expect("warp exists");
        w.leader_stall += 1;
        if w.leader_stall > max_stall {
            w.leader_stall = 0;
            self.stats.darsie.leader_giveups += 1;
            true // fall through to a normal fetch of this instruction
        } else {
            false
        }
    }

    /// DARSIE skip loop at the fetch frontier (paper Section 4.3.5).
    /// Returns false when the warp blocked (waiting for a leader, out of
    /// skip-table ports, or out of per-cycle skip budget with a skippable
    /// instruction still at the frontier — it retries next cycle rather
    /// than fetching the redundant instruction).
    fn darsie_skip_loop(&mut self, now: u64, wslot: usize, d: &DarsieConfig) -> bool {
        for iter in 0..=d.max_skips_per_warp_cycle {
            let (tb_idx, warp_in_tb, pc) = {
                let w = self.warps[wslot].as_ref().expect("warp exists");
                if w.fetch_blocked {
                    return true;
                }
                let Some(pc) = w.fetch_pc() else { return true };
                (w.tb, w.warp_in_tb, pc)
            };
            if pc >= self.kd.ck.kernel.len() || !self.kd.plan.skippable[pc] {
                return true;
            }
            // Occupancy left no spare registers for this TB's renaming
            // pool: skipping is disabled for it (paper: DARSIE never
            // trades occupancy for renaming space).
            if self.tbs[tb_idx].as_ref().expect("TB exists").rename.capacity() == 0 {
                return true;
            }
            if iter == d.max_skips_per_warp_cycle {
                // Budget exhausted with a skippable frontier: retry next
                // cycle instead of fetching the redundant instruction.
                return false;
            }
            // Participation: full active mask, on the majority path.
            {
                let w = self.warps[wslot].as_ref().expect("warp exists");
                let full = w.full_mask;
                let all_lanes = full.count_ones() == self.kd.launch.warp_size;
                if w.active_mask() != full || !all_lanes {
                    return true;
                }
                let tb = self.tbs[tb_idx].as_ref().expect("TB exists");
                if !tb.majority.contains(warp_in_tb) {
                    return true;
                }
            }
            // Skip-table port arbitration via the PC coalescer. A warp
            // whose probe loses port arbitration retries next cycle; it
            // must not fall through and fetch the (skippable) instruction.
            if !self.pc_coalescer.request(pc, &mut self.stats.darsie) {
                return false;
            }
            let instance = {
                let w = self.warps[wslot].as_ref().expect("warp exists");
                w.frontier_instance(pc)
            };
            let outcome = {
                let tb = self.tbs[tb_idx].as_ref().expect("TB exists");
                tb.skip_table.probe(pc, instance, &mut self.stats.darsie)
            };
            match outcome {
                ProbeOutcome::Skip => {
                    let instr = self.kd.instr(pc);
                    let dst = instr.dst.expect("skippable instructions write a register");
                    let taxonomy = self.kd.plan.taxonomy[pc];
                    let values = {
                        let tb = self.tbs[tb_idx].as_ref().expect("TB exists");
                        tb.snapshots
                            .get(&(pc, instance))
                            .expect("leader_wb implies a snapshot")
                            .clone()
                    };
                    {
                        let w = self.warps[wslot].as_mut().expect("warp exists");
                        w.ibuffer.push_back(IBufEntry::SkipMarker { pc, dst, values });
                    }
                    let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                    // Rename bookkeeping: the follower rebinds its view of
                    // the register to the leader's version, releasing the
                    // version it held before (freeing exhausted pregs).
                    if let Some(&(reg, version)) = tb.entry_versions.get(&(pc, instance)) {
                        let _ = tb.rename.lookup(warp_in_tb, reg, &mut self.stats.darsie);
                        let _ = tb.rename.bind(warp_in_tb, reg, version, &mut self.stats.darsie);
                    }
                    let must = tb.must_pass_mask();
                    if tb.skip_table.record_pass(pc, instance, warp_in_tb, must, now) {
                        tb.entry_completed(pc, instance);
                    }
                    self.stats.instrs_skipped.add(taxonomy, 1);
                    self.stats.darsie.instructions_skipped += 1;
                    self.trace(wslot, pc, EventKind::Skip);
                    // Loop: try to skip the next instruction too.
                }
                ProbeOutcome::BecomeLeader => {
                    // The leader's instruction needs a real I-buffer slot.
                    {
                        let w = self.warps[wslot].as_ref().expect("warp exists");
                        if w.ibuffer_instrs() >= self.cfg.ibuffer_entries {
                            return true;
                        }
                    }
                    let is_load = self.kd.plan.skippable_is_load[pc];
                    let dst = self.kd.instr(pc).dst.expect("skippable writes a register");
                    let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                    // The write-synchronization ablation (paper Section 4.1
                    // option 1): a new version of a register may not be
                    // created while an older skip entry for the same
                    // register is live — wait for the TB to drain it.
                    if !d.versioning {
                        let conflict = tb.skip_table.iter().any(|e| {
                            tb.entry_versions
                                .get(&(e.pc, e.instance))
                                .is_some_and(|&(r, _)| r == dst.0)
                        });
                        if conflict {
                            return self.leader_stall_or_give_up(wslot);
                        }
                    }
                    // Resource exhaustion acts as a synchronization point
                    // (paper Section 4.3.5): the would-be leader waits for
                    // stragglers to drain old entries rather than forfeit
                    // the skip. Bounded: a version pinned until warp exit
                    // would otherwise deadlock the TB.
                    if tb.rename.free_regs() == 0 {
                        self.stats.darsie.freelist_stalls += 1;
                        return self.leader_stall_or_give_up(wslot);
                    }
                    if !tb.skip_table.insert_leader(
                        pc,
                        instance,
                        warp_in_tb,
                        is_load,
                        now,
                        &mut self.stats.darsie,
                    ) {
                        return self.leader_stall_or_give_up(wslot);
                    }
                    self.warps[wslot].as_mut().expect("warp exists").leader_stall = 0;
                    let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                    // The insert may have LRU-evicted an entry; reclaim its
                    // version and snapshot.
                    tb.gc_versions();
                    let (version, _preg) = tb
                        .rename
                        .allocate_version(warp_in_tb, dst.0, &mut self.stats.darsie)
                        .expect("freelist checked non-empty this cycle");
                    tb.entry_versions.insert((pc, instance), (dst.0, version));
                    let w = self.warps[wslot].as_mut().expect("warp exists");
                    w.ibuffer.push_back(IBufEntry::Instr { pc, leader: Some(instance) });
                    self.stats.instrs_fetched += 1;
                    self.trace(wslot, pc, EventKind::Lead);
                    // The leader's instruction still consumes fetch work:
                    // charge the I-cache access.
                    self.stats.icache_accesses += 1;
                    let line = simt_isa::Kernel::byte_pc(pc) / GpuConfig::LINE_BYTES;
                    if !self.icache.access(line) {
                        self.stats.icache_misses += 1;
                    }
                    // Continue the loop: following instructions may skip.
                }
                ProbeOutcome::WaitForLeader => {
                    let tb = self.tbs[tb_idx].as_mut().expect("TB exists");
                    tb.skip_table.record_wait(pc, instance, warp_in_tb, now);
                    let w = self.warps[wslot].as_mut().expect("warp exists");
                    w.state = WarpState::WaitLeader(pc, instance);
                    self.trace(wslot, pc, EventKind::WaitLeader);
                    return false;
                }
            }
        }
        true
    }
}

/// Outcome of one issue attempt. `Stall` carries the blamed cause and,
/// when one is known, the I-buffer head PC — the profiler charges the
/// lost issue slot to that (cause, PC) pair.
enum IssueOutcome {
    Issued,
    IssuedControl { tb_done: u32 },
    Stall { cause: StallCause, pc: Option<usize> },
}

/// Releases warps that were waiting on a leader writeback.
fn release_waiting(
    warps: &mut [Option<Warp>],
    tb: &TbState,
    released: u32,
    pc: usize,
    instance: u32,
) {
    for (i, &slot) in tb.warp_slots.iter().enumerate() {
        if released & (1 << i) != 0 {
            if let Some(w) = warps[slot].as_mut() {
                if w.state == WarpState::WaitLeader(pc, instance) {
                    w.state = WarpState::Ready;
                }
            }
        }
    }
}
