//! Pipeline event tracing: an optional per-cycle record of what the SMs
//! did, for debugging kernels and inspecting the DARSIE protocol in
//! action. Enabled with [`GpuConfig::trace_events`]; events come back in
//! [`SimResult::events`](crate::SimResult) ordered by cycle.
//!
//! Tracing is meant for small runs (every event is a heap record).
//!
//! [`GpuConfig::trace_events`]: crate::GpuConfig::trace_events

use std::fmt;

/// One pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// SM index.
    pub sm: usize,
    /// Warp slot within the SM.
    pub warp: usize,
    /// Static instruction index involved.
    pub pc: usize,
    /// What happened.
    pub kind: EventKind,
}

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Instruction fetched into the I-buffer.
    Fetch,
    /// Warp elected DARSIE leader for this PC.
    Lead,
    /// Instruction skipped before fetch (marker enqueued).
    Skip,
    /// Warp stalled waiting for a leader writeback.
    WaitLeader,
    /// Instruction issued to execution.
    Issue,
    /// Issue-stage reuse hit (UV).
    Reuse,
    /// Result written back (scoreboard cleared).
    Writeback,
    /// Warp arrived at a `bar.sync`.
    BarrierArrive,
    /// Warp blocked at DARSIE branch synchronization.
    BranchSync,
    /// Warp left the majority path.
    MajorityEvict,
    /// Warp finished.
    WarpDone,
}

impl fmt::Display for PipeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>6}  sm{} w{:<3} pc {:>4}  {:?}",
            self.cycle, self.sm, self.warp, self.pc, self.kind
        )
    }
}

/// A bounded event buffer (keeps the first `capacity` events; counts the
/// rest so callers know the trace was truncated).
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<PipeEvent>,
    capacity: usize,
    /// Events dropped after the buffer filled.
    pub dropped: u64,
}

impl EventLog {
    /// A log keeping at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> EventLog {
        EventLog { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Records one event.
    pub fn push(&mut self, e: PipeEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[PipeEvent] {
        &self.events
    }

    /// Consumes the log.
    #[must_use]
    pub fn into_events(self) -> Vec<PipeEvent> {
        self.events
    }

    /// Merges another log (stable by cycle).
    pub fn merge(&mut self, other: EventLog) {
        self.dropped += other.dropped;
        for e in other.events {
            self.push(e);
        }
        self.events.sort_by_key(|e| e.cycle);
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> PipeEvent {
        PipeEvent { cycle, sm: 0, warp: 1, pc: 2, kind }
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut log = EventLog::new(2);
        log.push(ev(1, EventKind::Fetch));
        log.push(ev(2, EventKind::Issue));
        log.push(ev(3, EventKind::Writeback));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 1);
    }

    #[test]
    fn merge_sorts_by_cycle() {
        let mut a = EventLog::new(10);
        a.push(ev(5, EventKind::Issue));
        let mut b = EventLog::new(10);
        b.push(ev(1, EventKind::Fetch));
        a.merge(b);
        assert_eq!(a.events()[0].cycle, 1);
        assert_eq!(a.events()[1].cycle, 5);
    }

    #[test]
    fn display_is_readable() {
        let s = ev(7, EventKind::Skip).to_string();
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("Skip"), "{s}");
    }
}
