//! Pipeline event tracing: an optional per-cycle record of what the SMs
//! did, for debugging kernels and inspecting the DARSIE protocol in
//! action. Enabled with [`GpuConfig::trace_events`]; events come back in
//! [`SimResult::events`](crate::SimResult) ordered by cycle, and export to
//! Chrome trace-event JSON via [`crate::perfetto`].
//!
//! The log is a bounded ring: it keeps the **last**
//! [`GpuConfig::trace_capacity`](crate::GpuConfig::trace_capacity) events
//! and counts everything older in [`EventLog::dropped`], so long runs cost
//! bounded memory. With tracing disabled no event is ever constructed
//! (call sites gate on the flag before building a [`PipeEvent`]).
//!
//! [`GpuConfig::trace_events`]: crate::GpuConfig::trace_events

use std::collections::VecDeque;
use std::fmt;

/// One pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeEvent {
    /// Cycle the event occurred in.
    pub cycle: u64,
    /// SM index.
    pub sm: usize,
    /// Warp slot within the SM.
    pub warp: usize,
    /// Static instruction index involved.
    pub pc: usize,
    /// What happened.
    pub kind: EventKind,
}

/// Kinds of traced events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Instruction fetched into the I-buffer.
    Fetch,
    /// Warp elected DARSIE leader for this PC.
    Lead,
    /// Instruction skipped before fetch (marker enqueued).
    Skip,
    /// Warp stalled waiting for a leader writeback.
    WaitLeader,
    /// Instruction issued to execution.
    Issue,
    /// Issue-stage reuse hit (UV).
    Reuse,
    /// Result written back (scoreboard cleared).
    Writeback,
    /// Warp arrived at a `bar.sync`.
    BarrierArrive,
    /// Warp blocked at DARSIE branch synchronization.
    BranchSync,
    /// Warp left the majority path.
    MajorityEvict,
    /// Warp finished.
    WarpDone,
}

impl fmt::Display for PipeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:>6}  sm{} w{:<3} pc {:>4}  {:?}",
            self.cycle, self.sm, self.warp, self.pc, self.kind
        )
    }
}

/// A bounded ring buffer of events: keeps the most recent `capacity`
/// events and counts everything displaced in [`EventLog::dropped`].
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: VecDeque<PipeEvent>,
    capacity: usize,
    /// Events dropped (displaced from the ring, or pushed with zero
    /// capacity).
    pub dropped: u64,
}

impl EventLog {
    /// A ring keeping at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> EventLog {
        EventLog { events: VecDeque::new(), capacity, dropped: 0 }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event, displacing the oldest when full.
    pub fn push(&mut self, e: PipeEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// The recorded events, oldest first, as one slice.
    #[must_use]
    pub fn events(&mut self) -> &[PipeEvent] {
        self.events.make_contiguous()
    }

    /// Iterates the recorded events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &PipeEvent> {
        self.events.iter()
    }

    /// Consumes the log.
    #[must_use]
    pub fn into_events(self) -> Vec<PipeEvent> {
        self.events.into()
    }

    /// Merges another log, sorts by cycle, and re-applies this ring's
    /// capacity (keeping the most recent events).
    pub fn merge(&mut self, other: EventLog) {
        self.dropped += other.dropped;
        let mut all: Vec<PipeEvent> = self.events.drain(..).chain(other.events).collect();
        all.sort_by_key(|e| e.cycle);
        if all.len() > self.capacity {
            let excess = all.len() - self.capacity;
            all.drain(..excess);
            self.dropped += excess as u64;
        }
        self.events = all.into();
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind) -> PipeEvent {
        PipeEvent { cycle, sm: 0, warp: 1, pc: 2, kind }
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut log = EventLog::new(2);
        log.push(ev(1, EventKind::Fetch));
        log.push(ev(2, EventKind::Issue));
        log.push(ev(3, EventKind::Writeback));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 1);
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut log = EventLog::new(2);
        for c in 1..=5 {
            log.push(ev(c, EventKind::Issue));
        }
        let cycles: Vec<u64> = log.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![4, 5], "oldest displaced first");
        assert_eq!(log.dropped, 3);
    }

    #[test]
    fn zero_capacity_records_nothing_but_counts() {
        let mut log = EventLog::new(0);
        log.push(ev(1, EventKind::Fetch));
        assert!(log.is_empty());
        assert_eq!(log.dropped, 1);
    }

    #[test]
    fn merge_sorts_by_cycle() {
        let mut a = EventLog::new(10);
        a.push(ev(5, EventKind::Issue));
        let mut b = EventLog::new(10);
        b.push(ev(1, EventKind::Fetch));
        a.merge(b);
        assert_eq!(a.events()[0].cycle, 1);
        assert_eq!(a.events()[1].cycle, 5);
    }

    #[test]
    fn merge_reapplies_capacity_keeping_latest() {
        let mut a = EventLog::new(2);
        a.push(ev(5, EventKind::Issue));
        a.push(ev(7, EventKind::Issue));
        let mut b = EventLog::new(2);
        b.push(ev(1, EventKind::Fetch));
        b.push(ev(9, EventKind::Writeback));
        a.merge(b);
        let cycles: Vec<u64> = a.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 9]);
        assert_eq!(a.dropped, 2);
    }

    #[test]
    fn display_is_readable() {
        let s = ev(7, EventKind::Skip).to_string();
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains("Skip"), "{s}");
    }
}
