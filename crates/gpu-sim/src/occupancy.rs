//! Occupancy calculator: how many threadblocks of a kernel fit on one SM,
//! and which resource is the limiter — the standard launch-tuning tool,
//! matching exactly the admission logic the simulator's TB dispatcher
//! uses.

use crate::config::GpuConfig;
use simt_isa::{Kernel, LaunchConfig};
use std::fmt;

/// The resource that caps residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// Warp contexts (`max_warps_per_sm`).
    Warps,
    /// Threadblock slots (`max_tbs_per_sm`).
    TbSlots,
    /// Vector registers.
    Registers,
    /// Shared memory.
    SharedMemory,
}

impl fmt::Display for Limiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Limiter::Warps => "warp contexts",
            Limiter::TbSlots => "threadblock slots",
            Limiter::Registers => "registers",
            Limiter::SharedMemory => "shared memory",
        };
        f.write_str(s)
    }
}

/// Result of [`occupancy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident threadblocks per SM.
    pub tbs_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// The binding resource.
    pub limited_by: Limiter,
    /// Occupancy as a fraction of the warp capacity, in percent.
    pub warp_occupancy_pct: f64,
}

/// Computes the residency of `kernel` launched as `launch` on `cfg`.
///
/// # Panics
///
/// Panics if the block is empty.
#[must_use]
pub fn occupancy(kernel: &Kernel, launch: &LaunchConfig, cfg: &GpuConfig) -> Occupancy {
    let wpb = launch.warps_per_block();
    assert!(wpb > 0, "empty threadblock");
    let regs_per_tb = u32::from(kernel.num_regs) * wpb;

    let by_warps = cfg.max_warps_per_sm / wpb;
    let by_slots = cfg.max_tbs_per_sm;
    let by_regs = cfg.vector_regs_per_sm.checked_div(regs_per_tb).unwrap_or(u32::MAX);
    let by_smem = cfg.shared_mem_per_sm.checked_div(kernel.shared_mem_bytes).unwrap_or(u32::MAX);

    let (tbs, limited_by) = [
        (by_warps, Limiter::Warps),
        (by_slots, Limiter::TbSlots),
        (by_regs, Limiter::Registers),
        (by_smem, Limiter::SharedMemory),
    ]
    .into_iter()
    .min_by_key(|(n, _)| *n)
    .expect("four candidates");

    Occupancy {
        tbs_per_sm: tbs,
        warps_per_sm: tbs * wpb,
        limited_by,
        warp_occupancy_pct: f64::from(tbs * wpb) / f64::from(cfg.max_warps_per_sm) * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{KernelBuilder, MemSpace, SpecialReg};

    fn small_kernel(smem: u32) -> Kernel {
        let mut b = KernelBuilder::new("k");
        if smem > 0 {
            let _ = b.alloc_shared(smem);
        }
        let t = b.special(SpecialReg::TidX);
        b.store(MemSpace::Global, t, t, 0);
        b.finish()
    }

    #[test]
    fn warp_limited_for_small_kernels() {
        let k = small_kernel(0);
        let cfg = GpuConfig::pascal_gtx1080ti();
        // 1024-thread blocks: 32 warps each; 64 warps/SM -> 2 TBs.
        let o = occupancy(&k, &LaunchConfig::new(1u32, 1024u32), &cfg);
        assert_eq!(o.tbs_per_sm, 2);
        assert_eq!(o.limited_by, Limiter::Warps);
        assert!((o.warp_occupancy_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn slot_limited_for_tiny_blocks() {
        let k = small_kernel(0);
        let cfg = GpuConfig::pascal_gtx1080ti();
        // 32-thread blocks: warp capacity admits 64, slots cap at 32.
        let o = occupancy(&k, &LaunchConfig::new(1u32, 32u32), &cfg);
        assert_eq!(o.tbs_per_sm, 32);
        assert_eq!(o.limited_by, Limiter::TbSlots);
        assert!((o.warp_occupancy_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn register_limited_for_fat_kernels() {
        let mut b = KernelBuilder::new("fat");
        let t = b.special(SpecialReg::TidX);
        let mut acc = b.mov(0u32);
        for _ in 0..100 {
            acc = b.iadd(acc, t);
        }
        b.store(MemSpace::Global, t, acc, 0);
        let k = b.finish();
        let cfg = GpuConfig::pascal_gtx1080ti();
        // >100 regs x 8 warps per (256,1) block: 2048 / ~816 = 2 TBs.
        let o = occupancy(&k, &LaunchConfig::new(1u32, 256u32), &cfg);
        assert_eq!(o.limited_by, Limiter::Registers);
        assert!(o.tbs_per_sm <= 2);
    }

    #[test]
    fn shared_memory_limited() {
        let k = small_kernel(48 * 1024);
        let cfg = GpuConfig::pascal_gtx1080ti();
        let o = occupancy(&k, &LaunchConfig::new(1u32, 64u32), &cfg);
        assert_eq!(o.tbs_per_sm, 2, "96 KB / 48 KB");
        assert_eq!(o.limited_by, Limiter::SharedMemory);
    }

    #[test]
    fn limiter_display() {
        assert_eq!(Limiter::Registers.to_string(), "registers");
        assert_eq!(Limiter::SharedMemory.to_string(), "shared memory");
    }
}
