//! Property-based round-trip of the 64-bit instruction encoding: any
//! encodable instruction must decode to itself, with its marking intact.

use proptest::prelude::*;
use simt_isa::{
    decode, encode, AtomOp, CmpOp, Guard, Instruction, Marking, MemSpace, Op, Operand, Pred, Reg,
    SpecialReg,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..=254).prop_map(Reg)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    (0u8..7).prop_map(Pred)
}

fn arb_src() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        // Immediates within the encodable 16-bit signed range.
        (-32768i32..=32767).prop_map(|v| Operand::Imm(v as u32)),
    ]
}

fn arb_guard() -> impl Strategy<Value = Option<Guard>> {
    prop_oneof![
        Just(None),
        (arb_pred(), any::<bool>()).prop_map(|(p, n)| Some(Guard { pred: p, negate: n })),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let two_src_ops = prop::sample::select(vec![
        Op::IAdd,
        Op::ISub,
        Op::IMul,
        Op::IMulHi,
        Op::IMin,
        Op::IMax,
        Op::Shl,
        Op::Shr,
        Op::Sra,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::FAdd,
        Op::FSub,
        Op::FMul,
        Op::FMin,
        Op::FMax,
        Op::FDiv,
    ]);
    let one_src_ops = prop::sample::select(vec![
        Op::Not,
        Op::I2F,
        Op::F2I,
        Op::FRcp,
        Op::FSqrt,
        Op::FExp2,
        Op::FLog2,
    ]);
    prop_oneof![
        // Two-source ALU.
        (two_src_ops, arb_reg(), arb_src(), arb_src(), arb_guard()).prop_map(|(op, d, a, b, g)| {
            let mut i = Instruction::new(op, Some(d), None, vec![a, b]);
            i.guard = g;
            i
        }),
        // One-source ALU.
        (one_src_ops, arb_reg(), arb_src(), arb_guard()).prop_map(|(op, d, a, g)| {
            let mut i = Instruction::new(op, Some(d), None, vec![a]);
            i.guard = g;
            i
        }),
        // Three-source (registers in the first two slots).
        (
            prop::sample::select(vec![Op::IMad, Op::FFma]),
            arb_reg(),
            arb_reg(),
            arb_reg(),
            arb_src()
        )
            .prop_map(|(op, d, a, b, c)| Instruction::new(
                op,
                Some(d),
                None,
                vec![a.into(), b.into(), c]
            )),
        // Wide-immediate MOV.
        (arb_reg(), any::<u32>()).prop_map(|(d, v)| Instruction::new(
            Op::Mov,
            Some(d),
            None,
            vec![Operand::Imm(v)]
        )),
        // S2R.
        (prop::sample::select(SpecialReg::ALL.to_vec()), arb_reg())
            .prop_map(|(s, d)| Instruction::new(Op::S2R(s), Some(d), None, vec![])),
        // SETP.
        (
            prop::sample::select(CmpOp::ALL.to_vec()),
            any::<bool>(),
            arb_pred(),
            arb_src(),
            arb_src()
        )
            .prop_map(|(c, f, p, a, b)| {
                let op = if f { Op::SetpF(c) } else { Op::Setp(c) };
                Instruction::new(op, None, Some(p), vec![a, b])
            }),
        // Loads with 15-bit offsets.
        (prop::sample::select(MemSpace::ALL.to_vec()), arb_reg(), arb_src(), -16384i32..16383)
            .prop_map(|(sp, d, a, off)| {
                Instruction::new(Op::Ld(sp), Some(d), None, vec![a]).with_offset(off)
            }),
        // Stores with 12-bit offsets and register values.
        (
            prop::sample::select(vec![MemSpace::Global, MemSpace::Shared]),
            arb_src(),
            arb_reg(),
            -2048i32..2047
        )
            .prop_map(|(sp, a, v, off)| {
                Instruction::new(Op::St(sp), None, None, vec![a, v.into()]).with_offset(off)
            }),
        // Atomics.
        (prop::sample::select(AtomOp::ALL.to_vec()), arb_reg(), arb_src(), arb_reg()).prop_map(
            |(a, d, addr, v)| Instruction::new(Op::Atom(a), Some(d), None, vec![addr, v.into()])
        ),
        // Branches.
        ((0usize..1 << 24), arb_guard()).prop_map(|(t, g)| {
            let mut i = Instruction::new(Op::Bra { target: t }, None, None, vec![]);
            i.guard = g;
            i
        }),
        Just(Instruction::new(Op::Bar, None, None, vec![])),
        Just(Instruction::new(Op::Exit, None, None, vec![])),
    ]
}

fn arb_marking() -> impl Strategy<Value = Marking> {
    prop::sample::select(vec![Marking::Vector, Marking::ConditionallyRedundant, Marking::Redundant])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2048, .. ProptestConfig::default() })]

    #[test]
    fn encode_decode_roundtrips(instr in arb_instruction(), marking in arb_marking()) {
        let word = encode(&instr, marking).expect("generator stays in encodable ranges");
        let (decoded, m2) = decode(word).expect("own encodings decode");
        prop_assert_eq!(&decoded, &instr, "word {:#018x}", word);
        prop_assert_eq!(m2, marking);
    }

    #[test]
    fn text_roundtrips(instr in arb_instruction()) {
        let text = instr.to_string();
        let parsed = simt_isa::parse_instruction(1, &text)
            .unwrap_or_else(|e| panic!("`{text}`: {e}"));
        prop_assert_eq!(&parsed, &instr, "text `{}`", text);
    }
}
