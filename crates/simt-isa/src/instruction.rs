//! Decoded instructions: operands, predication guards and the instruction
//! record itself.

use crate::op::Op;
use crate::reg::{Pred, Reg};
use std::fmt;

/// A source operand: a general register or a 32-bit immediate.
///
/// Special registers are not operands; they are materialized into general
/// registers with [`Op::S2R`], matching the two-step style of real GPU ISAs
/// and keeping the dataflow analysis per-register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general register.
    Reg(Reg),
    /// An immediate 32-bit value.
    Imm(u32),
}

impl Operand {
    /// The register named by this operand, if any.
    #[must_use]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// True when this operand is an immediate.
    #[must_use]
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Operand {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{:#x}", v),
        }
    }
}

/// A predication guard: `@P` or `@!P`. A guarded instruction only takes
/// effect in lanes where the guard evaluates true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register consulted.
    pub pred: Pred,
    /// True for `@!P` (execute where the predicate is false).
    pub negate: bool,
}

impl Guard {
    /// Guard that executes where `pred` is true.
    #[must_use]
    pub fn if_true(pred: Pred) -> Guard {
        Guard { pred, negate: false }
    }

    /// Guard that executes where `pred` is false.
    #[must_use]
    pub fn if_false(pred: Pred) -> Guard {
        Guard { pred, negate: true }
    }

    /// Applies the guard to a raw predicate bit.
    #[must_use]
    pub fn accepts(self, pred_value: bool) -> bool {
        pred_value != self.negate
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// A decoded 64-bit instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// Opcode.
    pub op: Op,
    /// Destination general register, when [`Op::writes_dst`] is true.
    pub dst: Option<Reg>,
    /// Destination predicate, when [`Op::writes_pdst`] is true.
    pub pdst: Option<Pred>,
    /// Source operands; length must equal [`Op::num_srcs`].
    pub srcs: Vec<Operand>,
    /// Optional predication guard.
    pub guard: Option<Guard>,
    /// Byte offset added to the address operand of `Ld`/`St`/`Atom`.
    pub offset: i32,
}

impl Instruction {
    /// Builds an unguarded instruction. `dst`/`pdst` may be `None` for ops
    /// that do not write.
    #[must_use]
    pub fn new(op: Op, dst: Option<Reg>, pdst: Option<Pred>, srcs: Vec<Operand>) -> Instruction {
        Instruction { op, dst, pdst, srcs, guard: None, offset: 0 }
    }

    /// Returns a copy with the given guard.
    #[must_use]
    pub fn with_guard(mut self, guard: Guard) -> Instruction {
        self.guard = Some(guard);
        self
    }

    /// Returns a copy with the given load/store byte offset.
    #[must_use]
    pub fn with_offset(mut self, offset: i32) -> Instruction {
        self.offset = offset;
        self
    }

    /// Registers read by this instruction (source operands only; the guard
    /// predicate is reported separately by [`Instruction::guard`]).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().filter_map(|o| o.reg())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.op)?;
        let mut first = true;
        let sep = |f: &mut fmt::Formatter<'_>, first: &mut bool| -> fmt::Result {
            if *first {
                write!(f, " ")?;
                *first = false;
            } else {
                write!(f, ", ")?;
            }
            Ok(())
        };
        if let Some(d) = self.dst {
            sep(f, &mut first)?;
            write!(f, "{d}")?;
        }
        if let Some(p) = self.pdst {
            sep(f, &mut first)?;
            write!(f, "{p}")?;
        }
        for (i, s) in self.srcs.iter().enumerate() {
            sep(f, &mut first)?;
            if self.op.kind() == crate::op::OpKind::Load
                || ((self.op.kind() == crate::op::OpKind::Store || matches!(self.op, Op::Atom(_)))
                    && i == 0)
            {
                if self.offset != 0 {
                    write!(f, "[{s}+{:#x}]", self.offset)?;
                } else {
                    write!(f, "[{s}]")?;
                }
            } else {
                write!(f, "{s}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{CmpOp, MemSpace};

    #[test]
    fn guard_accepts() {
        let g = Guard::if_true(Pred(0));
        assert!(g.accepts(true));
        assert!(!g.accepts(false));
        let n = Guard::if_false(Pred(1));
        assert!(n.accepts(false));
        assert!(!n.accepts(true));
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(2)).reg(), Some(Reg(2)));
        assert_eq!(Operand::from(5u32), Operand::Imm(5));
        assert_eq!(Operand::from(-1i32), Operand::Imm(u32::MAX));
        assert!(Operand::from(5u32).is_imm());
        assert!(!Operand::from(Reg(0)).is_imm());
    }

    #[test]
    fn display_alu() {
        let i =
            Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(2).into(), Operand::Imm(0x10)]);
        assert_eq!(i.to_string(), "iadd R1, R2, 0x10");
    }

    #[test]
    fn display_guarded_branch() {
        let i = Instruction::new(Op::Bra { target: 4 }, None, None, vec![])
            .with_guard(Guard::if_false(Pred(0)));
        assert_eq!(i.to_string(), "@!P0 bra 0x20");
    }

    #[test]
    fn display_load_with_offset() {
        let i = Instruction::new(Op::Ld(MemSpace::Shared), Some(Reg(3)), None, vec![Reg(7).into()])
            .with_offset(0x80);
        assert_eq!(i.to_string(), "ld.shared R3, [R7+0x80]");
    }

    #[test]
    fn display_setp() {
        let i = Instruction::new(
            Op::Setp(CmpOp::Lt),
            None,
            Some(Pred(2)),
            vec![Reg(0).into(), Operand::Imm(8)],
        );
        assert_eq!(i.to_string(), "setp.lt.s32 P2, R0, 0x8");
    }

    #[test]
    fn src_regs_skips_immediates() {
        let i = Instruction::new(
            Op::IMad,
            Some(Reg(0)),
            None,
            vec![Reg(1).into(), Operand::Imm(4), Reg(2).into()],
        );
        let regs: Vec<Reg> = i.src_regs().collect();
        assert_eq!(regs, vec![Reg(1), Reg(2)]);
    }
}
