//! 32-bit machine words and small dimension vectors.

use std::fmt;

/// A 32-bit machine word. The ISA is untyped at the storage level (like
/// SASS); instructions reinterpret words as `u32`, `i32` or `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Value(pub u32);

impl Value {
    /// The all-zero word.
    pub const ZERO: Value = Value(0);

    /// Builds a word from a signed integer.
    #[must_use]
    pub fn from_i32(v: i32) -> Value {
        Value(v as u32)
    }

    /// Builds a word from a float (bit cast).
    #[must_use]
    pub fn from_f32(v: f32) -> Value {
        Value(v.to_bits())
    }

    /// Interprets the word as unsigned.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Interprets the word as signed.
    #[must_use]
    pub fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Interprets the word as a float (bit cast).
    #[must_use]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.0)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::from_i32(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from_f32(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// A three-component dimension vector, as used for grid and threadblock
/// shapes in the CUDA/OpenCL launch model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent along x (fastest-varying thread index).
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z.
    pub z: u32,
}

impl Dim3 {
    /// A one-dimensional shape `(x, 1, 1)`.
    #[must_use]
    pub fn one_d(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A two-dimensional shape `(x, y, 1)`.
    #[must_use]
    pub fn two_d(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// A three-dimensional shape.
    #[must_use]
    pub fn three_d(x: u32, y: u32, z: u32) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// Total number of elements (`x * y * z`).
    #[must_use]
    pub fn count(self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }

    /// Number of axes with extent greater than one. A `(16,16,1)` block has
    /// dimensionality 2; the paper's conditional redundancy is specific to
    /// multi-dimensional blocks.
    #[must_use]
    pub fn dimensionality(self) -> u32 {
        u32::from(self.x > 1) + u32::from(self.y > 1) + u32::from(self.z > 1)
    }

    /// Linearizes a coordinate within this shape (x fastest).
    #[must_use]
    pub fn linear(self, x: u32, y: u32, z: u32) -> u64 {
        (u64::from(z) * u64::from(self.y) + u64::from(y)) * u64::from(self.x) + u64::from(x)
    }
}

impl Default for Dim3 {
    fn default() -> Dim3 {
        Dim3::one_d(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Dim3 {
        Dim3::one_d(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Dim3 {
        Dim3::two_d(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Dim3 {
        Dim3::three_d(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_bitcasts_roundtrip() {
        assert_eq!(Value::from_i32(-1).as_i32(), -1);
        assert_eq!(Value::from_i32(-1).as_u32(), u32::MAX);
        let f = 3.5f32;
        assert_eq!(Value::from_f32(f).as_f32(), f);
        assert_eq!(Value::from_f32(-0.0).as_u32(), 0x8000_0000);
    }

    #[test]
    fn dim3_count_and_dimensionality() {
        assert_eq!(Dim3::one_d(256).count(), 256);
        assert_eq!(Dim3::one_d(256).dimensionality(), 1);
        assert_eq!(Dim3::two_d(16, 16).count(), 256);
        assert_eq!(Dim3::two_d(16, 16).dimensionality(), 2);
        assert_eq!(Dim3::three_d(4, 4, 4).dimensionality(), 3);
        assert_eq!(Dim3::two_d(1, 64).dimensionality(), 1);
    }

    #[test]
    fn dim3_linearizes_x_fastest() {
        let d = Dim3::three_d(4, 2, 3);
        assert_eq!(d.linear(0, 0, 0), 0);
        assert_eq!(d.linear(3, 0, 0), 3);
        assert_eq!(d.linear(0, 1, 0), 4);
        assert_eq!(d.linear(0, 0, 1), 8);
        assert_eq!(d.linear(3, 1, 2), 23);
    }

    #[test]
    fn dim3_conversions() {
        assert_eq!(Dim3::from(7u32), Dim3::one_d(7));
        assert_eq!(Dim3::from((3u32, 4u32)), Dim3::two_d(3, 4));
        assert_eq!(Dim3::from((1u32, 2u32, 3u32)), Dim3::three_d(1, 2, 3));
    }
}
