//! Kernels (static programs) and launch configurations.

use crate::instruction::Instruction;
use crate::op::Op;
use crate::reg::{MAX_REGS, NUM_PREDS};
use crate::value::{Dim3, Value};
use crate::{INSTR_BYTES, WARP_SIZE};
use std::fmt;

/// Errors produced by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// An instruction's source-operand count does not match its opcode.
    BadSrcCount {
        /// Offending instruction index.
        pc: usize,
        /// Expected number of sources.
        expected: usize,
        /// Actual number of sources.
        actual: usize,
    },
    /// An op that writes a register has no `dst` (or vice versa).
    BadDst {
        /// Offending instruction index.
        pc: usize,
    },
    /// An op that writes a predicate has no `pdst` (or vice versa).
    BadPdst {
        /// Offending instruction index.
        pc: usize,
    },
    /// A branch targets an instruction index outside the kernel.
    BranchOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The invalid target.
        target: usize,
    },
    /// A register id exceeds [`MAX_REGS`].
    RegOutOfRange {
        /// Offending instruction index.
        pc: usize,
    },
    /// A predicate id exceeds the architectural predicate count.
    PredOutOfRange {
        /// Offending instruction index.
        pc: usize,
    },
    /// The kernel has no `Exit` instruction.
    NoExit,
    /// A `bar.sync` carries a guard predicate. Barrier arrival is TB-wide;
    /// guarding it would make arrival thread-dependent, which the barrier
    /// semantics cannot express (self-inconsistent predication).
    PredicatedBarrier {
        /// Offending instruction index.
        pc: usize,
    },
    /// A shared-memory access with an immediate address is statically
    /// outside the kernel's declared shared-memory allocation.
    SharedOffsetOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// Effective byte address (immediate base plus instruction offset).
        addr: i64,
        /// Declared shared-memory size in bytes.
        size: u32,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadSrcCount { pc, expected, actual } => {
                write!(f, "instruction {pc}: expected {expected} sources, found {actual}")
            }
            KernelError::BadDst { pc } => write!(f, "instruction {pc}: destination mismatch"),
            KernelError::BadPdst { pc } => {
                write!(f, "instruction {pc}: predicate destination mismatch")
            }
            KernelError::BranchOutOfRange { pc, target } => {
                write!(f, "instruction {pc}: branch target {target} out of range")
            }
            KernelError::RegOutOfRange { pc } => {
                write!(f, "instruction {pc}: register id out of range")
            }
            KernelError::PredOutOfRange { pc } => {
                write!(f, "instruction {pc}: predicate id out of range")
            }
            KernelError::NoExit => write!(f, "kernel has no exit instruction"),
            KernelError::PredicatedBarrier { pc } => {
                write!(f, "instruction {pc}: bar.sync must not be guarded")
            }
            KernelError::SharedOffsetOutOfRange { pc, addr, size } => {
                write!(
                    f,
                    "instruction {pc}: static shared-memory address {addr} outside \
                     allocation of {size} bytes"
                )
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// A static kernel: a straight vector of 64-bit instructions plus resource
/// requirements. Program counters are instruction indices; the byte PC of
/// instruction `i` is `i * INSTR_BYTES`.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// The instruction stream.
    pub instrs: Vec<Instruction>,
    /// Per-thread register demand (highest register id used + 1).
    pub num_regs: u16,
    /// Shared-memory bytes required per threadblock.
    pub shared_mem_bytes: u32,
    /// Number of 32-bit kernel parameters expected in [`LaunchConfig::params`].
    pub num_params: u32,
}

impl Kernel {
    /// Creates a kernel, computing the register demand from the instruction
    /// stream.
    #[must_use]
    pub fn new(name: impl Into<String>, instrs: Vec<Instruction>) -> Kernel {
        let mut k =
            Kernel { name: name.into(), instrs, num_regs: 0, shared_mem_bytes: 0, num_params: 0 };
        k.num_regs = k.compute_reg_demand();
        k
    }

    fn compute_reg_demand(&self) -> u16 {
        let mut max = 0u16;
        for i in &self.instrs {
            if let Some(d) = i.dst {
                max = max.max(u16::from(d.0) + 1);
            }
            for r in i.src_regs() {
                max = max.max(u16::from(r.0) + 1);
            }
        }
        max
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the kernel has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Byte address of the instruction at index `pc`.
    #[must_use]
    pub fn byte_pc(pc: usize) -> u64 {
        pc as u64 * INSTR_BYTES
    }

    /// Checks structural well-formedness of the instruction stream.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found, if any.
    pub fn validate(&self) -> Result<(), KernelError> {
        let mut has_exit = false;
        for (pc, i) in self.instrs.iter().enumerate() {
            let expected = i.op.num_srcs();
            if i.srcs.len() != expected {
                return Err(KernelError::BadSrcCount { pc, expected, actual: i.srcs.len() });
            }
            if i.op.writes_dst() != i.dst.is_some() {
                return Err(KernelError::BadDst { pc });
            }
            if i.op.writes_pdst() != i.pdst.is_some() {
                return Err(KernelError::BadPdst { pc });
            }
            if let Op::Bra { target } = i.op {
                if target >= self.instrs.len() {
                    return Err(KernelError::BranchOutOfRange { pc, target });
                }
            }
            if let Some(d) = i.dst {
                if u16::from(d.0) >= MAX_REGS {
                    return Err(KernelError::RegOutOfRange { pc });
                }
            }
            for r in i.src_regs() {
                if u16::from(r.0) >= MAX_REGS {
                    return Err(KernelError::RegOutOfRange { pc });
                }
            }
            let preds = i.pdst.into_iter().chain(i.guard.map(|g| g.pred)).chain(match i.op {
                Op::Sel(p) => Some(p),
                _ => None,
            });
            for p in preds {
                if p.0 >= NUM_PREDS {
                    return Err(KernelError::PredOutOfRange { pc });
                }
            }
            if matches!(i.op, Op::Bar) && i.guard.is_some() {
                return Err(KernelError::PredicatedBarrier { pc });
            }
            if let Op::Ld(crate::op::MemSpace::Shared) | Op::St(crate::op::MemSpace::Shared) = i.op
            {
                // The address operand is the first source; when it is a
                // static immediate the access is fully decidable here. The
                // executor reads/writes one 32-bit word at
                // `base + offset`, so the whole word must sit inside the
                // declared allocation (matching `exec.rs` semantics of
                // word index `addr / 4 < ceil(size / 4)`).
                if let Some(&crate::instruction::Operand::Imm(base)) = i.srcs.first() {
                    let addr = i64::from(base) + i64::from(i.offset);
                    let words = i64::from(self.shared_mem_bytes.div_ceil(4));
                    if addr < 0 || addr / 4 >= words {
                        return Err(KernelError::SharedOffsetOutOfRange {
                            pc,
                            addr,
                            size: self.shared_mem_bytes,
                        });
                    }
                }
            }
            if matches!(i.op, Op::Exit) {
                has_exit = true;
            }
        }
        if !has_exit {
            return Err(KernelError::NoExit);
        }
        Ok(())
    }

    /// Pretty-prints the kernel with byte PCs, one instruction per line.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// kernel {} (regs={}, smem={}B)",
            self.name, self.num_regs, self.shared_mem_bytes
        );
        for (pc, i) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{:#06x}  {}", Kernel::byte_pc(pc), i);
        }
        out
    }
}

/// A kernel launch: grid and block shapes plus parameter words.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchConfig {
    /// Grid shape in threadblocks.
    pub grid: Dim3,
    /// Threadblock shape in threads.
    pub block: Dim3,
    /// 32-bit kernel parameters (pointers are byte addresses into global
    /// memory, scalars are raw words).
    pub params: Vec<Value>,
    /// SIMT width; [`WARP_SIZE`] unless overridden for worked examples.
    pub warp_size: u32,
}

impl LaunchConfig {
    /// Launch with the given grid/block shapes and no parameters.
    #[must_use]
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> LaunchConfig {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            params: Vec::new(),
            warp_size: WARP_SIZE,
        }
    }

    /// Returns a copy with the given parameter words.
    #[must_use]
    pub fn with_params(mut self, params: Vec<Value>) -> LaunchConfig {
        self.params = params;
        self
    }

    /// Returns a copy with a non-default warp size (used by the paper's
    /// warp-size-4 worked example in Figure 3).
    #[must_use]
    pub fn with_warp_size(mut self, warp_size: u32) -> LaunchConfig {
        assert!(warp_size.is_power_of_two(), "warp size must be a power of two");
        self.warp_size = warp_size;
        self
    }

    /// Threads per block.
    #[must_use]
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per block (rounded up).
    #[must_use]
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(self.warp_size)
    }

    /// Total threadblocks in the grid.
    #[must_use]
    pub fn num_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// The launch-time dimensionality check of paper Section 4.2: in this
    /// launch, do conditionally redundant instructions become *definitely*
    /// redundant? True iff the block is multi-dimensional and the
    /// x-dimension is a power of two no larger than the warp size (so the
    /// `tid.x` lane pattern repeats identically in every warp).
    #[must_use]
    pub fn promotes_conditional_redundancy(&self) -> bool {
        self.block.y > 1 && self.block.x.is_power_of_two() && self.block.x <= self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{Guard, Instruction, Operand};
    use crate::op::CmpOp;
    use crate::reg::{Pred, Reg, SpecialReg};

    fn exit() -> Instruction {
        Instruction::new(Op::Exit, None, None, vec![])
    }

    #[test]
    fn reg_demand_counts_highest_register() {
        let k = Kernel::new(
            "t",
            vec![
                Instruction::new(Op::S2R(SpecialReg::TidX), Some(Reg(5)), None, vec![]),
                Instruction::new(Op::IAdd, Some(Reg(1)), None, vec![Reg(5).into(), Reg(9).into()]),
                exit(),
            ],
        );
        assert_eq!(k.num_regs, 10);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let k = Kernel::new(
            "t",
            vec![
                Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(1)]),
                Instruction::new(
                    Op::Setp(CmpOp::Lt),
                    None,
                    Some(Pred(0)),
                    vec![Reg(0).into(), Operand::Imm(10)],
                ),
                Instruction::new(Op::Bra { target: 0 }, None, None, vec![])
                    .with_guard(Guard::if_true(Pred(0))),
                exit(),
            ],
        );
        assert_eq!(k.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_src_count() {
        let k = Kernel::new(
            "t",
            vec![Instruction::new(Op::IAdd, Some(Reg(0)), None, vec![Reg(1).into()]), exit()],
        );
        assert_eq!(k.validate(), Err(KernelError::BadSrcCount { pc: 0, expected: 2, actual: 1 }));
    }

    #[test]
    fn validate_rejects_missing_dst() {
        let k = Kernel::new(
            "t",
            vec![
                Instruction::new(Op::IAdd, None, None, vec![Reg(1).into(), Reg(2).into()]),
                exit(),
            ],
        );
        assert_eq!(k.validate(), Err(KernelError::BadDst { pc: 0 }));
    }

    #[test]
    fn validate_rejects_out_of_range_branch() {
        let k = Kernel::new(
            "t",
            vec![Instruction::new(Op::Bra { target: 9 }, None, None, vec![]), exit()],
        );
        assert_eq!(k.validate(), Err(KernelError::BranchOutOfRange { pc: 0, target: 9 }));
    }

    #[test]
    fn validate_rejects_missing_exit() {
        let k = Kernel::new(
            "t",
            vec![Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(0)])],
        );
        assert_eq!(k.validate(), Err(KernelError::NoExit));
    }

    #[test]
    fn validate_rejects_bad_pred_id() {
        let k = Kernel::new(
            "t",
            vec![
                Instruction::new(
                    Op::Setp(CmpOp::Eq),
                    None,
                    Some(Pred(7)),
                    vec![Reg(0).into(), Reg(0).into()],
                ),
                exit(),
            ],
        );
        assert_eq!(k.validate(), Err(KernelError::PredOutOfRange { pc: 0 }));
    }

    #[test]
    fn validate_rejects_predicated_barrier() {
        let k = Kernel::new(
            "t",
            vec![
                Instruction::new(Op::Bar, None, None, vec![]).with_guard(Guard::if_true(Pred(0))),
                exit(),
            ],
        );
        assert_eq!(k.validate(), Err(KernelError::PredicatedBarrier { pc: 0 }));
        // The same barrier without a guard is fine.
        let k = Kernel::new("t", vec![Instruction::new(Op::Bar, None, None, vec![]), exit()]);
        assert_eq!(k.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_shared_offset_out_of_range() {
        use crate::op::MemSpace;
        let mk = |instr: Instruction, smem: u32| {
            let mut k = Kernel::new("t", vec![instr, exit()]);
            k.shared_mem_bytes = smem;
            k
        };
        // Static store one word past a 16-byte allocation.
        let st = Instruction::new(
            Op::St(MemSpace::Shared),
            None,
            None,
            vec![Operand::Imm(16), Reg(0).into()],
        );
        assert_eq!(
            mk(st, 16).validate(),
            Err(KernelError::SharedOffsetOutOfRange { pc: 0, addr: 16, size: 16 })
        );
        // Static load with a negative effective address.
        let ld =
            Instruction::new(Op::Ld(MemSpace::Shared), Some(Reg(0)), None, vec![Operand::Imm(0)])
                .with_offset(-4);
        assert_eq!(
            mk(ld, 16).validate(),
            Err(KernelError::SharedOffsetOutOfRange { pc: 0, addr: -4, size: 16 })
        );
        // The last in-bounds word is accepted, offset included.
        let ld =
            Instruction::new(Op::Ld(MemSpace::Shared), Some(Reg(0)), None, vec![Operand::Imm(8)])
                .with_offset(4);
        assert_eq!(mk(ld, 16).validate(), Ok(()));
        // Register addresses are dynamic and stay out of scope here.
        let ld =
            Instruction::new(Op::Ld(MemSpace::Shared), Some(Reg(0)), None, vec![Reg(1).into()])
                .with_offset(1 << 20);
        assert_eq!(mk(ld, 16).validate(), Ok(()));
    }

    #[test]
    fn launch_geometry() {
        let l = LaunchConfig::new(28u32, (16u32, 16u32));
        assert_eq!(l.threads_per_block(), 256);
        assert_eq!(l.warps_per_block(), 8);
        assert_eq!(l.num_blocks(), 28);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let l = LaunchConfig::new(1u32, (10u32, 3u32));
        assert_eq!(l.threads_per_block(), 30);
        assert_eq!(l.warps_per_block(), 1);
        let l2 = LaunchConfig::new(1u32, (10u32, 5u32));
        assert_eq!(l2.warps_per_block(), 2);
    }

    #[test]
    fn promotion_check_matches_paper() {
        // 2D, x pow2 and <= warp size: promoted.
        assert!(LaunchConfig::new(1u32, (16u32, 16u32)).promotes_conditional_redundancy());
        assert!(LaunchConfig::new(1u32, (32u32, 32u32)).promotes_conditional_redundancy());
        assert!(LaunchConfig::new(1u32, (8u32, 8u32)).promotes_conditional_redundancy());
        // 1D: never promoted.
        assert!(!LaunchConfig::new(1u32, 256u32).promotes_conditional_redundancy());
        // x too large.
        assert!(!LaunchConfig::new(1u32, (64u32, 4u32)).promotes_conditional_redundancy());
        // x not a power of two.
        assert!(!LaunchConfig::new(1u32, (12u32, 12u32)).promotes_conditional_redundancy());
        // Small warp size raises the bar.
        let l = LaunchConfig::new(1u32, (8u32, 8u32)).with_warp_size(4);
        assert!(!l.promotes_conditional_redundancy());
        let l = LaunchConfig::new(1u32, (4u32, 2u32)).with_warp_size(4);
        assert!(l.promotes_conditional_redundancy());
    }

    #[test]
    fn disassemble_contains_pcs() {
        let k = Kernel::new(
            "t",
            vec![Instruction::new(Op::Mov, Some(Reg(0)), None, vec![Operand::Imm(1)]), exit()],
        );
        let d = k.disassemble();
        assert!(d.contains("0x0000"), "{d}");
        assert!(d.contains("0x0008"), "{d}");
        assert!(d.contains("mov R0"), "{d}");
    }
}
