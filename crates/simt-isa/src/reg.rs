//! Architectural register names: general registers, predicates and special
//! (intrinsic) registers.

use std::fmt;

/// Maximum number of named general-purpose registers per thread
/// (CUDA allows 255 named registers; `R255` is reserved like SASS's `RZ`).
pub const MAX_REGS: u16 = 255;

/// Number of predicate registers per thread.
pub const NUM_PREDS: u8 = 7;

/// A named general-purpose vector register. Each warp holds a 32-lane
/// vector of 32-bit values for every named register it uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Index of the register within the per-warp register demand.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A predicate register (one bit per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u8);

impl Pred {
    /// Index of the predicate register.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Special (intrinsic) read-only registers, read with the `S2R` instruction.
///
/// Their redundancy class across a threadblock is the seed of the DARSIE
/// compiler analysis (paper Section 4.2):
///
/// * `ctaid.*`, `ntid.*`, `nctaid.*` are **uniform** across a TB and thus
///   definitely redundant;
/// * `tid.x` (and `tid.y` in 3D blocks) are **conditionally redundant**: they
///   repeat per warp iff the launch-time dimensionality check passes;
/// * `tid.y`/`tid.z` in 2D blocks and `laneid` are true vector values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpecialReg {
    /// Thread index within the block, x component (fastest varying).
    TidX,
    /// Thread index within the block, y component.
    TidY,
    /// Thread index within the block, z component.
    TidZ,
    /// Block index within the grid, x component.
    CtaidX,
    /// Block index within the grid, y component.
    CtaidY,
    /// Block index within the grid, z component.
    CtaidZ,
    /// Block dimensions, x component.
    NtidX,
    /// Block dimensions, y component.
    NtidY,
    /// Block dimensions, z component.
    NtidZ,
    /// Grid dimensions, x component.
    NctaidX,
    /// Grid dimensions, y component.
    NctaidY,
    /// Grid dimensions, z component.
    NctaidZ,
    /// Lane index within the warp (`0..warp_size`).
    LaneId,
    /// Warp index within the block.
    WarpId,
}

impl SpecialReg {
    /// All special registers, for exhaustive iteration in tests and tables.
    pub const ALL: [SpecialReg; 14] = [
        SpecialReg::TidX,
        SpecialReg::TidY,
        SpecialReg::TidZ,
        SpecialReg::CtaidX,
        SpecialReg::CtaidY,
        SpecialReg::CtaidZ,
        SpecialReg::NtidX,
        SpecialReg::NtidY,
        SpecialReg::NtidZ,
        SpecialReg::NctaidX,
        SpecialReg::NctaidY,
        SpecialReg::NctaidZ,
        SpecialReg::LaneId,
        SpecialReg::WarpId,
    ];

    /// True when the value is identical for every thread of a threadblock
    /// regardless of the launch configuration (block-uniform intrinsics).
    #[must_use]
    pub fn is_tb_uniform(self) -> bool {
        matches!(
            self,
            SpecialReg::CtaidX
                | SpecialReg::CtaidY
                | SpecialReg::CtaidZ
                | SpecialReg::NtidX
                | SpecialReg::NtidY
                | SpecialReg::NtidZ
                | SpecialReg::NctaidX
                | SpecialReg::NctaidY
                | SpecialReg::NctaidZ
        )
    }

    /// Stable numeric id used by the instruction encoder.
    #[must_use]
    pub fn id(self) -> u8 {
        SpecialReg::ALL
            .iter()
            .position(|&s| s == self)
            .expect("SpecialReg::ALL covers every variant") as u8
    }

    /// Inverse of [`SpecialReg::id`].
    #[must_use]
    pub fn from_id(id: u8) -> Option<SpecialReg> {
        SpecialReg::ALL.get(usize::from(id)).copied()
    }
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "%tid.x",
            SpecialReg::TidY => "%tid.y",
            SpecialReg::TidZ => "%tid.z",
            SpecialReg::CtaidX => "%ctaid.x",
            SpecialReg::CtaidY => "%ctaid.y",
            SpecialReg::CtaidZ => "%ctaid.z",
            SpecialReg::NtidX => "%ntid.x",
            SpecialReg::NtidY => "%ntid.y",
            SpecialReg::NtidZ => "%ntid.z",
            SpecialReg::NctaidX => "%nctaid.x",
            SpecialReg::NctaidY => "%nctaid.y",
            SpecialReg::NctaidZ => "%nctaid.z",
            SpecialReg::LaneId => "%laneid",
            SpecialReg::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_reg_ids_roundtrip() {
        for s in SpecialReg::ALL {
            assert_eq!(SpecialReg::from_id(s.id()), Some(s));
        }
        assert_eq!(SpecialReg::from_id(200), None);
    }

    #[test]
    fn tb_uniform_classification() {
        assert!(SpecialReg::CtaidX.is_tb_uniform());
        assert!(SpecialReg::NtidY.is_tb_uniform());
        assert!(SpecialReg::NctaidZ.is_tb_uniform());
        assert!(!SpecialReg::TidX.is_tb_uniform());
        assert!(!SpecialReg::TidY.is_tb_uniform());
        assert!(!SpecialReg::LaneId.is_tb_uniform());
        assert!(!SpecialReg::WarpId.is_tb_uniform());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "R3");
        assert_eq!(Pred(0).to_string(), "P0");
        assert_eq!(SpecialReg::TidX.to_string(), "%tid.x");
    }
}
