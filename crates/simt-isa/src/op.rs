//! Opcodes of the virtual SIMT ISA.

use crate::reg::{Pred, SpecialReg};
use std::fmt;

/// Integer / float comparison operator used by `SETP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed for integers).
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators.
    pub const ALL: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    /// Evaluates the comparison on signed integers.
    #[must_use]
    pub fn eval_i32(self, a: i32, b: i32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on floats.
    #[must_use]
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Memory space addressed by loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemSpace {
    /// Off-chip global memory, cached in L1/L2.
    Global,
    /// On-chip per-threadblock scratchpad (CUDA `__shared__`).
    Shared,
    /// Read-only kernel parameter / constant space.
    Param,
}

impl MemSpace {
    /// All memory spaces.
    pub const ALL: [MemSpace; 3] = [MemSpace::Global, MemSpace::Shared, MemSpace::Param];
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Param => "param",
        };
        f.write_str(s)
    }
}

/// Read-modify-write operation performed by `ATOM` on global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomOp {
    /// `old + v`.
    Add,
    /// `max(old, v)` (signed).
    Max,
    /// `min(old, v)` (signed).
    Min,
    /// Exchange: new value is `v`.
    Exch,
}

impl AtomOp {
    /// All atomic operations.
    pub const ALL: [AtomOp; 4] = [AtomOp::Add, AtomOp::Max, AtomOp::Min, AtomOp::Exch];

    /// Applies the read-modify-write function.
    #[must_use]
    pub fn apply(self, old: u32, v: u32) -> u32 {
        match self {
            AtomOp::Add => old.wrapping_add(v),
            AtomOp::Max => (old as i32).max(v as i32) as u32,
            AtomOp::Min => (old as i32).min(v as i32) as u32,
            AtomOp::Exch => v,
        }
    }
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomOp::Add => "add",
            AtomOp::Max => "max",
            AtomOp::Min => "min",
            AtomOp::Exch => "exch",
        };
        f.write_str(s)
    }
}

/// Coarse functional class of an opcode, used by the timing model to select
/// an execution unit and by the energy model to charge per-event energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Simple integer / logic / move operations (SP units).
    IntAlu,
    /// Single-precision floating point (SP units).
    FpAlu,
    /// Transcendental / division (SFU).
    Sfu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Global atomic read-modify-write.
    Atomic,
    /// Control flow (branch).
    Branch,
    /// Threadblock barrier.
    Barrier,
    /// Kernel termination.
    Exit,
}

/// Opcode of an [`Instruction`](crate::Instruction).
///
/// Source-operand conventions (validated by [`Kernel::validate`](crate::Kernel::validate)):
///
/// | op | srcs | dst | pdst |
/// |---|---|---|---|
/// | binary ALU | 2 | yes | no |
/// | `IMad`/`FFma` | 3 (`a*b + c`) | yes | no |
/// | `Not`, `Mov`, `I2F`, `F2I`, `FRcp`, `FSqrt`, `FExp2`, `FLog2` | 1 | yes | no |
/// | `S2R` | 0 | yes | no |
/// | `Setp`/`SetpF` | 2 | no | yes |
/// | `Sel` | 2 | yes | no (reads the named predicate) |
/// | `Ld` | 1 (addr) | yes | no |
/// | `St` | 2 (addr, value) | no | no |
/// | `Atom` | 2 (addr, value) | optional old value | no |
/// | `Bra` | 0 | no | no (condition via guard) |
/// | `Bar`, `Exit` | 0 | no | no |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer add.
    IAdd,
    /// Integer subtract.
    ISub,
    /// Integer multiply (low 32 bits).
    IMul,
    /// Integer multiply, high 32 bits of the signed product.
    IMulHi,
    /// Integer multiply-add: `srcs[0] * srcs[1] + srcs[2]`.
    IMad,
    /// Signed minimum.
    IMin,
    /// Signed maximum.
    IMax,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not (one source).
    Not,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Fused multiply-add: `srcs[0] * srcs[1] + srcs[2]`.
    FFma,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
    /// Float divide (SFU).
    FDiv,
    /// Float reciprocal (SFU).
    FRcp,
    /// Float square root (SFU).
    FSqrt,
    /// Float `2^x` (SFU).
    FExp2,
    /// Float `log2(x)` (SFU).
    FLog2,
    /// Register / immediate move.
    Mov,
    /// Signed integer to float conversion.
    I2F,
    /// Float to signed integer conversion (round toward zero).
    F2I,
    /// Read a special register into a general register.
    S2R(SpecialReg),
    /// Integer compare, writes a predicate.
    Setp(CmpOp),
    /// Float compare, writes a predicate.
    SetpF(CmpOp),
    /// Predicated select: `dst = pred ? srcs[0] : srcs[1]`.
    Sel(Pred),
    /// Load from a memory space; address is `srcs[0] + offset`.
    Ld(MemSpace),
    /// Store to a memory space; address is `srcs[0] + offset`, value `srcs[1]`.
    St(MemSpace),
    /// Global atomic read-modify-write; address `srcs[0] + offset`, value `srcs[1]`.
    Atom(AtomOp),
    /// Branch to the instruction at index `target` (conditional via guard).
    Bra {
        /// Target instruction index within the kernel.
        target: usize,
    },
    /// Threadblock-wide barrier (`__syncthreads()`).
    Bar,
    /// Thread exit.
    Exit,
}

impl Op {
    /// Functional class of this opcode.
    #[must_use]
    pub fn kind(self) -> OpKind {
        match self {
            Op::IAdd
            | Op::ISub
            | Op::IMul
            | Op::IMulHi
            | Op::IMad
            | Op::IMin
            | Op::IMax
            | Op::Shl
            | Op::Shr
            | Op::Sra
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Not
            | Op::Mov
            | Op::S2R(_)
            | Op::Setp(_)
            | Op::Sel(_) => OpKind::IntAlu,
            Op::FAdd
            | Op::FSub
            | Op::FMul
            | Op::FFma
            | Op::FMin
            | Op::FMax
            | Op::I2F
            | Op::F2I
            | Op::SetpF(_) => OpKind::FpAlu,
            Op::FDiv | Op::FRcp | Op::FSqrt | Op::FExp2 | Op::FLog2 => OpKind::Sfu,
            Op::Ld(_) => OpKind::Load,
            Op::St(_) => OpKind::Store,
            Op::Atom(_) => OpKind::Atomic,
            Op::Bra { .. } => OpKind::Branch,
            Op::Bar => OpKind::Barrier,
            Op::Exit => OpKind::Exit,
        }
    }

    /// Number of source operands this opcode expects.
    #[must_use]
    pub fn num_srcs(self) -> usize {
        match self {
            Op::S2R(_) | Op::Bra { .. } | Op::Bar | Op::Exit => 0,
            Op::Not
            | Op::Mov
            | Op::I2F
            | Op::F2I
            | Op::FRcp
            | Op::FSqrt
            | Op::FExp2
            | Op::FLog2
            | Op::Ld(_) => 1,
            Op::IMad | Op::FFma => 3,
            _ => 2,
        }
    }

    /// True when the opcode writes a general destination register.
    #[must_use]
    pub fn writes_dst(self) -> bool {
        !matches!(
            self,
            Op::Setp(_) | Op::SetpF(_) | Op::St(_) | Op::Bra { .. } | Op::Bar | Op::Exit
        )
    }

    /// True when the opcode writes a predicate register.
    #[must_use]
    pub fn writes_pdst(self) -> bool {
        matches!(self, Op::Setp(_) | Op::SetpF(_))
    }

    /// True for memory loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Op::Ld(_))
    }

    /// True for memory stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Op::St(_))
    }

    /// True for branches.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Op::Bra { .. })
    }

    /// Mnemonic without operands.
    #[must_use]
    pub fn mnemonic(self) -> String {
        match self {
            Op::IAdd => "iadd".into(),
            Op::ISub => "isub".into(),
            Op::IMul => "imul".into(),
            Op::IMulHi => "imul.hi".into(),
            Op::IMad => "imad".into(),
            Op::IMin => "imin".into(),
            Op::IMax => "imax".into(),
            Op::Shl => "shl".into(),
            Op::Shr => "shr".into(),
            Op::Sra => "sra".into(),
            Op::And => "and".into(),
            Op::Or => "or".into(),
            Op::Xor => "xor".into(),
            Op::Not => "not".into(),
            Op::FAdd => "fadd".into(),
            Op::FSub => "fsub".into(),
            Op::FMul => "fmul".into(),
            Op::FFma => "ffma".into(),
            Op::FMin => "fmin".into(),
            Op::FMax => "fmax".into(),
            Op::FDiv => "fdiv".into(),
            Op::FRcp => "frcp".into(),
            Op::FSqrt => "fsqrt".into(),
            Op::FExp2 => "fexp2".into(),
            Op::FLog2 => "flog2".into(),
            Op::Mov => "mov".into(),
            Op::I2F => "i2f".into(),
            Op::F2I => "f2i".into(),
            Op::S2R(s) => format!("s2r {s}"),
            Op::Setp(c) => format!("setp.{c}.s32"),
            Op::SetpF(c) => format!("setp.{c}.f32"),
            Op::Sel(p) => format!("sel.{p}"),
            Op::Ld(s) => format!("ld.{s}"),
            Op::St(s) => format!("st.{s}"),
            Op::Atom(a) => format!("atom.{a}"),
            Op::Bra { target } => format!("bra {:#x}", target * 8),
            Op::Bar => "bar.sync".into(),
            Op::Exit => "exit".into(),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_int_semantics() {
        assert!(CmpOp::Lt.eval_i32(-1, 0));
        assert!(!CmpOp::Lt.eval_i32(0, -1));
        assert!(CmpOp::Ge.eval_i32(3, 3));
        assert!(CmpOp::Ne.eval_i32(1, 2));
        assert!(CmpOp::Eq.eval_i32(7, 7));
        assert!(CmpOp::Gt.eval_i32(1, 0));
        assert!(CmpOp::Le.eval_i32(1, 1));
    }

    #[test]
    fn cmp_op_float_nan_is_unordered() {
        for c in CmpOp::ALL {
            if c == CmpOp::Ne {
                assert!(c.eval_f32(f32::NAN, 1.0));
            } else {
                assert!(!c.eval_f32(f32::NAN, 1.0), "{c} with NaN should be false");
            }
        }
    }

    #[test]
    fn atom_op_semantics() {
        assert_eq!(AtomOp::Add.apply(3, 4), 7);
        assert_eq!(AtomOp::Max.apply((-1i32) as u32, 4), 4);
        assert_eq!(AtomOp::Min.apply((-1i32) as u32, 4), (-1i32) as u32);
        assert_eq!(AtomOp::Exch.apply(3, 9), 9);
        assert_eq!(AtomOp::Add.apply(u32::MAX, 1), 0, "atomics wrap");
    }

    #[test]
    fn op_src_counts() {
        assert_eq!(Op::IAdd.num_srcs(), 2);
        assert_eq!(Op::IMad.num_srcs(), 3);
        assert_eq!(Op::FFma.num_srcs(), 3);
        assert_eq!(Op::Mov.num_srcs(), 1);
        assert_eq!(Op::S2R(SpecialReg::TidX).num_srcs(), 0);
        assert_eq!(Op::Ld(MemSpace::Global).num_srcs(), 1);
        assert_eq!(Op::St(MemSpace::Shared).num_srcs(), 2);
        assert_eq!(Op::Atom(AtomOp::Add).num_srcs(), 2);
        assert_eq!(Op::Bra { target: 0 }.num_srcs(), 0);
    }

    #[test]
    fn op_writes_classification() {
        assert!(Op::IAdd.writes_dst());
        assert!(Op::Ld(MemSpace::Global).writes_dst());
        assert!(Op::Atom(AtomOp::Add).writes_dst());
        assert!(!Op::St(MemSpace::Global).writes_dst());
        assert!(!Op::Setp(CmpOp::Eq).writes_dst());
        assert!(Op::Setp(CmpOp::Eq).writes_pdst());
        assert!(!Op::IAdd.writes_pdst());
        assert!(!Op::Bra { target: 3 }.writes_dst());
    }

    #[test]
    fn op_kinds() {
        assert_eq!(Op::IAdd.kind(), OpKind::IntAlu);
        assert_eq!(Op::FFma.kind(), OpKind::FpAlu);
        assert_eq!(Op::FSqrt.kind(), OpKind::Sfu);
        assert_eq!(Op::Ld(MemSpace::Global).kind(), OpKind::Load);
        assert_eq!(Op::St(MemSpace::Shared).kind(), OpKind::Store);
        assert_eq!(Op::Atom(AtomOp::Add).kind(), OpKind::Atomic);
        assert_eq!(Op::Bra { target: 0 }.kind(), OpKind::Branch);
        assert_eq!(Op::Bar.kind(), OpKind::Barrier);
        assert_eq!(Op::Exit.kind(), OpKind::Exit);
    }
}
