//! 64-bit binary encoding of instructions.
//!
//! Every instruction occupies exactly eight bytes, which is what lets the
//! DARSIE frontend skip a redundant instruction with a single `pc += 8`.
//! The compiler's redundancy marking travels in two otherwise-unused bits of
//! the word, mirroring the paper's use of spare SASS encoding bits
//! (Section 4.2).
//!
//! Layout (bit 63 = MSB):
//!
//! ```text
//! [63:57] opcode      (7)
//! [56:55] marking     (2)   Vector / CondRedundant / Redundant
//! [54]    has guard   (1)
//! [53]    guard neg   (1)
//! [52:50] guard pred  (3)
//! [49:42] dst reg     (8)   0xFF = none
//! [41:39] pdst        (3)   0x7 = none
//! [38:0]  payload     (39)  format-specific (sources, offsets, targets)
//! ```
//!
//! Like real fixed-width ISAs, not every immediate fits: general sources
//! carry 16-bit sign-extended immediates (full 32-bit immediates are only
//! available on `MOV`), branch displacements are 24 bits and memory offsets
//! 15 bits. [`encode`] reports anything unencodable as an [`EncodeError`].

use crate::instruction::{Guard, Instruction, Operand};
use crate::op::{AtomOp, CmpOp, MemSpace, Op};
use crate::reg::{Pred, Reg, SpecialReg};
use crate::Marking;
use std::fmt;

/// Errors produced by [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate operand does not fit the 16-bit field (only `MOV`
    /// carries full 32-bit immediates).
    ImmediateTooWide,
    /// A memory offset does not fit the signed 15-bit field.
    OffsetTooWide,
    /// A branch target does not fit the 24-bit field.
    TargetTooFar,
    /// Three-source ops accept at most one immediate (in the last slot).
    TooManyImmediates,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EncodeError::ImmediateTooWide => "immediate operand exceeds 16 bits",
            EncodeError::OffsetTooWide => "memory offset exceeds 15 bits",
            EncodeError::TargetTooFar => "branch target exceeds 24 bits",
            EncodeError::TooManyImmediates => "too many immediate operands",
        };
        f.write_str(s)
    }
}

impl std::error::Error for EncodeError {}

/// Errors produced by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode field.
    BadOpcode(u8),
    /// Reserved marking encoding (`0b11`).
    BadMarking,
    /// Unknown special-register id in an `S2R`.
    BadSpecialReg(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadMarking => f.write_str("reserved marking bits"),
            DecodeError::BadSpecialReg(id) => write!(f, "unknown special register id {id}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Base opcode numbers. Embedded data (cmp op, memory space, ...) is encoded
// in the payload.
const OPCODES: &[(&str, u8)] = &[
    ("iadd", 0),
    ("isub", 1),
    ("imul", 2),
    ("imulhi", 3),
    ("imad", 4),
    ("imin", 5),
    ("imax", 6),
    ("shl", 7),
    ("shr", 8),
    ("sra", 9),
    ("and", 10),
    ("or", 11),
    ("xor", 12),
    ("not", 13),
    ("fadd", 14),
    ("fsub", 15),
    ("fmul", 16),
    ("ffma", 17),
    ("fmin", 18),
    ("fmax", 19),
    ("fdiv", 20),
    ("frcp", 21),
    ("fsqrt", 22),
    ("fexp2", 23),
    ("flog2", 24),
    ("mov", 25),
    ("i2f", 26),
    ("f2i", 27),
    ("s2r", 28),
    ("setp", 29),
    ("setpf", 30),
    ("sel", 31),
    ("ld", 32),
    ("st", 33),
    ("atom", 34),
    ("bra", 35),
    ("bar", 36),
    ("exit", 37),
];

fn opcode_num(op: Op) -> u8 {
    let name = match op {
        Op::IAdd => "iadd",
        Op::ISub => "isub",
        Op::IMul => "imul",
        Op::IMulHi => "imulhi",
        Op::IMad => "imad",
        Op::IMin => "imin",
        Op::IMax => "imax",
        Op::Shl => "shl",
        Op::Shr => "shr",
        Op::Sra => "sra",
        Op::And => "and",
        Op::Or => "or",
        Op::Xor => "xor",
        Op::Not => "not",
        Op::FAdd => "fadd",
        Op::FSub => "fsub",
        Op::FMul => "fmul",
        Op::FFma => "ffma",
        Op::FMin => "fmin",
        Op::FMax => "fmax",
        Op::FDiv => "fdiv",
        Op::FRcp => "frcp",
        Op::FSqrt => "fsqrt",
        Op::FExp2 => "fexp2",
        Op::FLog2 => "flog2",
        Op::Mov => "mov",
        Op::I2F => "i2f",
        Op::F2I => "f2i",
        Op::S2R(_) => "s2r",
        Op::Setp(_) => "setp",
        Op::SetpF(_) => "setpf",
        Op::Sel(_) => "sel",
        Op::Ld(_) => "ld",
        Op::St(_) => "st",
        Op::Atom(_) => "atom",
        Op::Bra { .. } => "bra",
        Op::Bar => "bar",
        Op::Exit => "exit",
    };
    OPCODES.iter().find(|(n, _)| *n == name).expect("opcode table covers every op").1
}

fn cmp_num(c: CmpOp) -> u64 {
    CmpOp::ALL.iter().position(|&x| x == c).unwrap() as u64
}

fn space_num(s: MemSpace) -> u64 {
    MemSpace::ALL.iter().position(|&x| x == s).unwrap() as u64
}

fn atom_num(a: AtomOp) -> u64 {
    AtomOp::ALL.iter().position(|&x| x == a).unwrap() as u64
}

/// Encodes one source operand as a 17-bit field: `[16] is_imm`,
/// `[15:0]` register id or sign-extended 16-bit immediate.
fn encode_src(o: Operand) -> Result<u64, EncodeError> {
    match o {
        Operand::Reg(r) => Ok(u64::from(r.0)),
        Operand::Imm(v) => {
            let sv = v as i32;
            if sv < i32::from(i16::MIN) || sv > i32::from(i16::MAX) {
                return Err(EncodeError::ImmediateTooWide);
            }
            Ok((1 << 16) | u64::from(v & 0xFFFF))
        }
    }
}

fn decode_src(bits: u64) -> Operand {
    if bits & (1 << 16) != 0 {
        Operand::Imm(((bits & 0xFFFF) as u16 as i16) as i32 as u32)
    } else {
        Operand::Reg(Reg((bits & 0xFF) as u8))
    }
}

/// Encodes an instruction and its DARSIE marking into a 64-bit word.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an operand does not fit its field; such
/// instructions must be legalized (e.g. materialize wide immediates with
/// `MOV`) before encoding.
pub fn encode(instr: &Instruction, marking: Marking) -> Result<u64, EncodeError> {
    let mut w: u64 = 0;
    w |= u64::from(opcode_num(instr.op)) << 57;
    w |= marking.to_bits() << 55;
    if let Some(g) = instr.guard {
        w |= 1 << 54;
        if g.negate {
            w |= 1 << 53;
        }
        w |= u64::from(g.pred.0) << 50;
    }
    w |= u64::from(instr.dst.map_or(0xFF, |r| r.0)) << 42;
    w |= u64::from(instr.pdst.map_or(0x7, |p| p.0)) << 39;

    let payload: u64 = match instr.op {
        Op::Mov => {
            // [32] is_imm, [31:0] reg id or full immediate.
            match instr.srcs[0] {
                Operand::Reg(r) => u64::from(r.0),
                Operand::Imm(v) => (1 << 32) | u64::from(v),
            }
        }
        Op::S2R(s) => u64::from(s.id()),
        Op::Setp(c) | Op::SetpF(c) => {
            // [36:34] cmp, [33:17] src0, [16:0] src1.
            (cmp_num(c) << 34) | (encode_src(instr.srcs[0])? << 17) | encode_src(instr.srcs[1])?
        }
        Op::Sel(p) => {
            // [36:34] pred, [33:17] src0, [16:0] src1.
            (u64::from(p.0) << 34) | (encode_src(instr.srcs[0])? << 17) | encode_src(instr.srcs[1])?
        }
        Op::Ld(s) => {
            // [38:37] space, [36:20] addr, [14:0] offset (signed 15-bit).
            let off = instr.offset;
            if !(-(1 << 14)..(1 << 14)).contains(&off) {
                return Err(EncodeError::OffsetTooWide);
            }
            (space_num(s) << 37)
                | (encode_src(instr.srcs[0])? << 20)
                | u64::from((off as u32) & 0x7FFF)
        }
        Op::St(s) => {
            // [38:37] space, [36:20] addr, [19:12] value reg,
            // [11:0] offset (signed 12-bit).
            let off = instr.offset;
            if !(-(1 << 11)..(1 << 11)).contains(&off) {
                return Err(EncodeError::OffsetTooWide);
            }
            let val = match instr.srcs[1] {
                Operand::Reg(r) => u64::from(r.0),
                Operand::Imm(_) => return Err(EncodeError::TooManyImmediates),
            };
            (space_num(s) << 37)
                | (encode_src(instr.srcs[0])? << 20)
                | (val << 12)
                | u64::from((off as u32) & 0xFFF)
        }
        Op::Atom(a) => {
            // [38:37] atom op, [36:20] addr, [19:12] value reg.
            let val = match instr.srcs[1] {
                Operand::Reg(r) => u64::from(r.0),
                Operand::Imm(_) => return Err(EncodeError::TooManyImmediates),
            };
            (atom_num(a) << 37) | (encode_src(instr.srcs[0])? << 20) | (val << 12)
        }
        Op::Bra { target } => {
            if target >= (1 << 24) {
                return Err(EncodeError::TargetTooFar);
            }
            target as u64
        }
        Op::Bar | Op::Exit => 0,
        Op::IMad | Op::FFma => {
            // Three sources: first two must be registers, third may be imm.
            let a = match instr.srcs[0] {
                Operand::Reg(r) => u64::from(r.0),
                Operand::Imm(_) => return Err(EncodeError::TooManyImmediates),
            };
            let b = match instr.srcs[1] {
                Operand::Reg(r) => u64::from(r.0),
                Operand::Imm(_) => return Err(EncodeError::TooManyImmediates),
            };
            (a << 31) | (b << 23) | encode_src(instr.srcs[2])?
        }
        Op::Not | Op::I2F | Op::F2I | Op::FRcp | Op::FSqrt | Op::FExp2 | Op::FLog2 => {
            encode_src(instr.srcs[0])?
        }
        // Generic two-source ALU.
        _ => (encode_src(instr.srcs[0])? << 17) | encode_src(instr.srcs[1])?,
    };
    Ok(w | payload)
}

/// Decodes a 64-bit word produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed words.
pub fn decode(w: u64) -> Result<(Instruction, Marking), DecodeError> {
    let opcode = ((w >> 57) & 0x7F) as u8;
    let marking = Marking::from_bits((w >> 55) & 0b11).ok_or(DecodeError::BadMarking)?;
    let guard = if w & (1 << 54) != 0 {
        Some(Guard { pred: Pred(((w >> 50) & 0x7) as u8), negate: w & (1 << 53) != 0 })
    } else {
        None
    };
    let dst_bits = ((w >> 42) & 0xFF) as u8;
    let dst = (dst_bits != 0xFF).then_some(Reg(dst_bits));
    let pdst_bits = ((w >> 39) & 0x7) as u8;
    let pdst = (pdst_bits != 0x7).then_some(Pred(pdst_bits));
    let payload = w & ((1u64 << 39) - 1);

    let name = OPCODES
        .iter()
        .find(|(_, n)| *n == opcode)
        .map(|(s, _)| *s)
        .ok_or(DecodeError::BadOpcode(opcode))?;

    let cmp_of = |bits: u64| CmpOp::ALL[(bits & 0x7) as usize % CmpOp::ALL.len()];
    let space_of = |bits: u64| MemSpace::ALL[(bits & 0x3) as usize % MemSpace::ALL.len()];
    let atom_of = |bits: u64| AtomOp::ALL[(bits & 0x3) as usize % AtomOp::ALL.len()];
    let two_srcs = |p: u64| vec![decode_src((p >> 17) & 0x1FFFF), decode_src(p & 0x1FFFF)];
    let off15 = |p: u64| {
        let raw = (p & 0x7FFF) as u32;
        // Sign-extend 15 bits.
        ((raw << 17) as i32) >> 17
    };

    let (op, srcs, offset): (Op, Vec<Operand>, i32) = match name {
        "mov" => {
            let src = if payload & (1 << 32) != 0 {
                Operand::Imm((payload & 0xFFFF_FFFF) as u32)
            } else {
                Operand::Reg(Reg((payload & 0xFF) as u8))
            };
            (Op::Mov, vec![src], 0)
        }
        "s2r" => {
            let id = (payload & 0xF) as u8;
            let s = SpecialReg::from_id(id).ok_or(DecodeError::BadSpecialReg(id))?;
            (Op::S2R(s), vec![], 0)
        }
        "setp" => (Op::Setp(cmp_of(payload >> 34)), two_srcs(payload), 0),
        "setpf" => (Op::SetpF(cmp_of(payload >> 34)), two_srcs(payload), 0),
        "sel" => (Op::Sel(Pred(((payload >> 34) & 0x7) as u8)), two_srcs(payload), 0),
        "ld" => (
            Op::Ld(space_of(payload >> 37)),
            vec![decode_src((payload >> 20) & 0x1FFFF)],
            off15(payload),
        ),
        "st" => {
            let raw = (payload & 0xFFF) as u32;
            // Sign-extend 12 bits.
            let off = ((raw << 20) as i32) >> 20;
            (
                Op::St(space_of(payload >> 37)),
                vec![
                    decode_src((payload >> 20) & 0x1FFFF),
                    Operand::Reg(Reg(((payload >> 12) & 0xFF) as u8)),
                ],
                off,
            )
        }
        "atom" => (
            Op::Atom(atom_of(payload >> 37)),
            vec![
                decode_src((payload >> 20) & 0x1FFFF),
                Operand::Reg(Reg(((payload >> 12) & 0xFF) as u8)),
            ],
            0,
        ),
        "bra" => (Op::Bra { target: (payload & 0xFF_FFFF) as usize }, vec![], 0),
        "bar" => (Op::Bar, vec![], 0),
        "exit" => (Op::Exit, vec![], 0),
        "imad" | "ffma" => {
            let a = Operand::Reg(Reg(((payload >> 31) & 0xFF) as u8));
            let b = Operand::Reg(Reg(((payload >> 23) & 0xFF) as u8));
            let c = decode_src(payload & 0x1FFFF);
            let op = if name == "imad" { Op::IMad } else { Op::FFma };
            (op, vec![a, b, c], 0)
        }
        "not" | "i2f" | "f2i" | "frcp" | "fsqrt" | "fexp2" | "flog2" => {
            let op = match name {
                "not" => Op::Not,
                "i2f" => Op::I2F,
                "f2i" => Op::F2I,
                "frcp" => Op::FRcp,
                "fsqrt" => Op::FSqrt,
                "fexp2" => Op::FExp2,
                _ => Op::FLog2,
            };
            (op, vec![decode_src(payload & 0x1FFFF)], 0)
        }
        _ => {
            let op = match name {
                "iadd" => Op::IAdd,
                "isub" => Op::ISub,
                "imul" => Op::IMul,
                "imulhi" => Op::IMulHi,
                "imin" => Op::IMin,
                "imax" => Op::IMax,
                "shl" => Op::Shl,
                "shr" => Op::Shr,
                "sra" => Op::Sra,
                "and" => Op::And,
                "or" => Op::Or,
                "xor" => Op::Xor,
                "fadd" => Op::FAdd,
                "fsub" => Op::FSub,
                "fmul" => Op::FMul,
                "fmin" => Op::FMin,
                "fmax" => Op::FMax,
                "fdiv" => Op::FDiv,
                _ => unreachable!("exhaustive opcode table"),
            };
            (op, two_srcs(payload), 0)
        }
    };

    let mut instr = Instruction::new(op, dst, pdst, srcs);
    instr.guard = guard;
    instr.offset = offset;
    Ok((instr, marking))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction, m: Marking) {
        let w = encode(&i, m).expect("encodable");
        let (i2, m2) = decode(w).expect("decodable");
        assert_eq!(i, i2, "word {w:#018x}");
        assert_eq!(m, m2);
    }

    #[test]
    fn roundtrip_alu() {
        roundtrip(
            Instruction::new(Op::IAdd, Some(Reg(3)), None, vec![Reg(1).into(), Operand::Imm(42)]),
            Marking::Redundant,
        );
        roundtrip(
            Instruction::new(Op::Shl, Some(Reg(0)), None, vec![Reg(200).into(), Operand::Imm(7)]),
            Marking::ConditionallyRedundant,
        );
    }

    #[test]
    fn roundtrip_negative_immediate() {
        roundtrip(
            Instruction::new(
                Op::IAdd,
                Some(Reg(3)),
                None,
                vec![Reg(1).into(), Operand::Imm((-5i32) as u32)],
            ),
            Marking::Vector,
        );
    }

    #[test]
    fn roundtrip_mov_wide_imm() {
        roundtrip(
            Instruction::new(Op::Mov, Some(Reg(9)), None, vec![Operand::Imm(0xDEAD_BEEF)]),
            Marking::Vector,
        );
    }

    #[test]
    fn roundtrip_guarded_branch() {
        roundtrip(
            Instruction::new(Op::Bra { target: 0x1234 }, None, None, vec![])
                .with_guard(Guard::if_false(Pred(2))),
            Marking::Vector,
        );
    }

    #[test]
    fn roundtrip_memory() {
        roundtrip(
            Instruction::new(Op::Ld(MemSpace::Shared), Some(Reg(7)), None, vec![Reg(2).into()])
                .with_offset(-128),
            Marking::ConditionallyRedundant,
        );
        roundtrip(
            Instruction::new(
                Op::St(MemSpace::Global),
                None,
                None,
                vec![Reg(2).into(), Reg(3).into()],
            )
            .with_offset(0x100),
            Marking::Vector,
        );
        roundtrip(
            Instruction::new(
                Op::Atom(AtomOp::Max),
                Some(Reg(1)),
                None,
                vec![Reg(2).into(), Reg(3).into()],
            ),
            Marking::Vector,
        );
    }

    #[test]
    fn roundtrip_three_source() {
        roundtrip(
            Instruction::new(
                Op::FFma,
                Some(Reg(10)),
                None,
                vec![Reg(1).into(), Reg(2).into(), Reg(3).into()],
            ),
            Marking::Redundant,
        );
        roundtrip(
            Instruction::new(
                Op::IMad,
                Some(Reg(10)),
                None,
                vec![Reg(1).into(), Reg(2).into(), Operand::Imm(100)],
            ),
            Marking::Vector,
        );
    }

    #[test]
    fn roundtrip_setp_sel_s2r() {
        roundtrip(
            Instruction::new(
                Op::Setp(CmpOp::Ge),
                None,
                Some(Pred(4)),
                vec![Reg(1).into(), Operand::Imm(16)],
            ),
            Marking::Vector,
        );
        roundtrip(
            Instruction::new(
                Op::Sel(Pred(3)),
                Some(Reg(5)),
                None,
                vec![Reg(1).into(), Reg(2).into()],
            ),
            Marking::Vector,
        );
        for s in SpecialReg::ALL {
            roundtrip(
                Instruction::new(Op::S2R(s), Some(Reg(0)), None, vec![]),
                Marking::ConditionallyRedundant,
            );
        }
    }

    #[test]
    fn wide_immediate_rejected() {
        let i = Instruction::new(
            Op::IAdd,
            Some(Reg(0)),
            None,
            vec![Reg(1).into(), Operand::Imm(0x10000)],
        );
        assert_eq!(encode(&i, Marking::Vector), Err(EncodeError::ImmediateTooWide));
    }

    #[test]
    fn wide_offset_rejected() {
        let i = Instruction::new(Op::Ld(MemSpace::Global), Some(Reg(0)), None, vec![Reg(1).into()])
            .with_offset(1 << 20);
        assert_eq!(encode(&i, Marking::Vector), Err(EncodeError::OffsetTooWide));
    }

    #[test]
    fn far_branch_rejected() {
        let i = Instruction::new(Op::Bra { target: 1 << 25 }, None, None, vec![]);
        assert_eq!(encode(&i, Marking::Vector), Err(EncodeError::TargetTooFar));
    }

    #[test]
    fn bad_words_rejected() {
        // Opcode 0x7F is unused.
        assert!(matches!(decode(0x7Fu64 << 57), Err(DecodeError::BadOpcode(_))));
        // Marking 0b11 is reserved (use opcode 0 = iadd).
        assert!(matches!(decode(0b11u64 << 55), Err(DecodeError::BadMarking)));
    }
}
