//! A virtual SIMT instruction set, in the spirit of register-allocated
//! PTXPlus / SASS, used as the substrate for the DARSIE reproduction.
//!
//! The ISA models the properties DARSIE (ASPLOS 2020) relies on:
//!
//! * fixed 64-bit instructions, so a redundant instruction can be skipped in
//!   the pipeline frontend by adding 8 to the program counter;
//! * named architectural registers (`R0..R254`) and predicates (`P0..P6`)
//!   that a renaming table can remap per warp;
//! * special registers (`tid`, `ctaid`, `ntid`, ...) whose layout across a
//!   multi-dimensional threadblock is the *source* of the conditional
//!   redundancy the paper exploits;
//! * global / shared / parameter memory spaces, predication, branches and
//!   threadblock barriers.
//!
//! Kernels are authored with [`KernelBuilder`], a structured DSL that emits
//! straight-line instructions, `if`/`if-else` regions and `while` loops and
//! resolves branch targets automatically.
//!
//! ```
//! use simt_isa::{KernelBuilder, SpecialReg, MemSpace};
//!
//! // out[tid.x] = in[tid.x] * 2
//! let mut b = KernelBuilder::new("double");
//! let tid = b.special(SpecialReg::TidX);
//! let base_in = b.param(0);
//! let base_out = b.param(1);
//! let off = b.shl_imm(tid, 2);
//! let addr_in = b.iadd(base_in, off);
//! let v = b.load(MemSpace::Global, addr_in, 0);
//! let v2 = b.iadd(v, v);
//! let addr_out = b.iadd(base_out, off);
//! b.store(MemSpace::Global, addr_out, v2, 0);
//! let kernel = b.finish();
//! assert!(kernel.validate().is_ok());
//! ```

pub mod asm;
pub mod builder;
pub mod encode;
pub mod instruction;
pub mod kernel;
pub mod op;
pub mod reg;
pub mod value;

pub use asm::{parse_instruction, parse_kernel, AsmError};
pub use builder::KernelBuilder;
pub use encode::{decode, encode, EncodeError};
pub use instruction::{Guard, Instruction, Operand};
pub use kernel::{Kernel, KernelError, LaunchConfig};
pub use op::{AtomOp, CmpOp, MemSpace, Op, OpKind};
pub use reg::{Pred, Reg, SpecialReg};
pub use value::{Dim3, Value};

/// Number of bytes occupied by every instruction. Skipping an instruction in
/// the fetch stage is therefore a single `pc += INSTR_BYTES`.
pub const INSTR_BYTES: u64 = 8;

/// Default SIMT width (threads per warp), matching the Pascal baseline.
pub const WARP_SIZE: u32 = 32;

/// Marking attached to each static instruction by the DARSIE compiler pass
/// (Section 4.2 of the paper). Encoded in two otherwise-unused bits of the
/// 64-bit instruction word.
///
/// The lattice ordering used when several definitions reach one operand is
/// `Vector < ConditionallyRedundant < Redundant`, and the *weakest* wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Marking {
    /// True vector instruction: operates on per-thread data; never skipped.
    #[default]
    Vector,
    /// Redundant across the threadblock *if* the launch-time dimensionality
    /// check passes (2D TB, x-dim a power of two and <= warp size).
    ConditionallyRedundant,
    /// Definitely redundant across the threadblock: every warp computes the
    /// same vector result, so one leader warp may execute it for the TB.
    Redundant,
}

impl Marking {
    /// Meet operator of the redundancy lattice: the weakest of two markings.
    #[must_use]
    pub fn meet(self, other: Marking) -> Marking {
        self.min(other)
    }

    /// Two-bit encoding used in the instruction word.
    #[must_use]
    pub fn to_bits(self) -> u64 {
        match self {
            Marking::Vector => 0,
            Marking::ConditionallyRedundant => 1,
            Marking::Redundant => 2,
        }
    }

    /// Inverse of [`Marking::to_bits`]. Returns `None` for the reserved
    /// encoding `3`.
    #[must_use]
    pub fn from_bits(bits: u64) -> Option<Marking> {
        match bits & 0b11 {
            0 => Some(Marking::Vector),
            1 => Some(Marking::ConditionallyRedundant),
            2 => Some(Marking::Redundant),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_meet_is_weakest() {
        use Marking::*;
        assert_eq!(Vector.meet(Redundant), Vector);
        assert_eq!(ConditionallyRedundant.meet(Redundant), ConditionallyRedundant);
        assert_eq!(Redundant.meet(Redundant), Redundant);
        assert_eq!(Vector.meet(Vector), Vector);
    }

    #[test]
    fn marking_meet_commutes() {
        use Marking::*;
        for a in [Vector, ConditionallyRedundant, Redundant] {
            for b in [Vector, ConditionallyRedundant, Redundant] {
                assert_eq!(a.meet(b), b.meet(a));
            }
        }
    }

    #[test]
    fn marking_bits_roundtrip() {
        use Marking::*;
        for m in [Vector, ConditionallyRedundant, Redundant] {
            assert_eq!(Marking::from_bits(m.to_bits()), Some(m));
        }
        assert_eq!(Marking::from_bits(3), None);
    }
}
