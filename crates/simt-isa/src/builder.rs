//! A structured builder DSL for authoring kernels.
//!
//! The builder hands out fresh registers for every produced value, resolves
//! forward/backward branch targets, and offers structured `if` / `if-else` /
//! `while` / `do-while` regions so workload kernels read like the CUDA code
//! they were ported from. Loop-carried variables use the `*_to` variants
//! that overwrite an existing register.

use crate::instruction::{Guard, Instruction, Operand};
use crate::kernel::Kernel;
use crate::op::{AtomOp, CmpOp, MemSpace, Op};
use crate::reg::{Pred, Reg, SpecialReg, MAX_REGS, NUM_PREDS};

/// A code position usable as a backward-branch target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// A forward branch awaiting its target; resolved by
/// [`KernelBuilder::patch_here`].
#[derive(Debug, PartialEq, Eq)]
#[must_use = "unpatched forward branches leave the kernel malformed"]
pub struct PatchHandle(usize);

/// Builder for [`Kernel`]s. See the [crate-level example](crate).
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instruction>,
    next_reg: u16,
    next_pred: u8,
    shared_mem_bytes: u32,
    num_params: u32,
}

impl KernelBuilder {
    /// Creates an empty builder for a kernel named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            shared_mem_bytes: 0,
            num_params: 0,
        }
    }

    /// Allocates a fresh general register.
    ///
    /// # Panics
    ///
    /// Panics if the kernel exhausts the 255 named registers.
    pub fn alloc(&mut self) -> Reg {
        assert!(self.next_reg < MAX_REGS, "out of registers in kernel {}", self.name);
        let r = Reg(self.next_reg as u8);
        self.next_reg += 1;
        r
    }

    /// Allocates a fresh predicate register.
    ///
    /// # Panics
    ///
    /// Panics if the kernel exhausts the architectural predicates.
    pub fn alloc_pred(&mut self) -> Pred {
        assert!(self.next_pred < NUM_PREDS, "out of predicates in kernel {}", self.name);
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Reserves `bytes` of shared memory, returning its base byte offset
    /// (16-byte aligned).
    pub fn alloc_shared(&mut self, bytes: u32) -> u32 {
        let base = self.shared_mem_bytes;
        self.shared_mem_bytes = (self.shared_mem_bytes + bytes + 15) & !15;
        base
    }

    /// Index the next emitted instruction will occupy.
    #[must_use]
    pub fn here(&self) -> Label {
        Label(self.instrs.len())
    }

    /// Appends a raw instruction (escape hatch for unusual sequences).
    pub fn emit(&mut self, instr: Instruction) {
        if let Some(d) = instr.dst {
            self.next_reg = self.next_reg.max(u16::from(d.0) + 1);
        }
        self.instrs.push(instr);
    }

    fn emit_dst(&mut self, op: Op, srcs: Vec<Operand>) -> Reg {
        let dst = self.alloc();
        self.emit(Instruction::new(op, Some(dst), None, srcs));
        dst
    }

    /// Emits `op` writing to an existing register (for loop-carried values).
    pub fn emit_to(&mut self, dst: Reg, op: Op, srcs: Vec<Operand>) {
        self.emit(Instruction::new(op, Some(dst), None, srcs));
    }

    // ----- intrinsics and parameters -------------------------------------

    /// Reads a special register into a fresh general register.
    pub fn special(&mut self, s: SpecialReg) -> Reg {
        self.emit_dst(Op::S2R(s), vec![])
    }

    /// Loads 32-bit kernel parameter `index` from parameter space.
    pub fn param(&mut self, index: u32) -> Reg {
        self.num_params = self.num_params.max(index + 1);
        let dst = self.alloc();
        self.emit(
            Instruction::new(Op::Ld(MemSpace::Param), Some(dst), None, vec![Operand::Imm(0)])
                .with_offset((index * 4) as i32),
        );
        dst
    }

    // ----- moves and conversions -----------------------------------------

    /// Moves an operand (register or immediate) into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Mov, vec![src.into()])
    }

    /// Moves an operand into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit_to(dst, Op::Mov, vec![src.into()]);
    }

    /// Materializes a float constant.
    pub fn movf(&mut self, v: f32) -> Reg {
        self.mov(v.to_bits())
    }

    /// Signed int to float.
    pub fn i2f(&mut self, src: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::I2F, vec![src.into()])
    }

    /// Float to signed int (truncating).
    pub fn f2i(&mut self, src: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::F2I, vec![src.into()])
    }

    // ----- integer ALU -----------------------------------------------------

    /// `a + b`.
    pub fn iadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::IAdd, vec![a.into(), b.into()])
    }

    /// `a + b` into an existing register.
    pub fn iadd_to(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit_to(dst, Op::IAdd, vec![a.into(), b.into()]);
    }

    /// `a - b`.
    pub fn isub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::ISub, vec![a.into(), b.into()])
    }

    /// `a * b` (low 32 bits).
    pub fn imul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::IMul, vec![a.into(), b.into()])
    }

    /// `a * b + c`.
    pub fn imad(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        self.emit_dst(Op::IMad, vec![a.into(), b.into(), c.into()])
    }

    /// `a * b + c` into an existing register.
    pub fn imad_to(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.emit_to(dst, Op::IMad, vec![a.into(), b.into(), c.into()]);
    }

    /// Signed `min(a, b)`.
    pub fn imin(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::IMin, vec![a.into(), b.into()])
    }

    /// Signed `max(a, b)`.
    pub fn imax(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::IMax, vec![a.into(), b.into()])
    }

    /// `a << n`.
    pub fn shl_imm(&mut self, a: impl Into<Operand>, n: u32) -> Reg {
        self.emit_dst(Op::Shl, vec![a.into(), Operand::Imm(n)])
    }

    /// `a << b` (register shift amount).
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Shl, vec![a.into(), b.into()])
    }

    /// `a >> b` (logical, register shift amount).
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Shr, vec![a.into(), b.into()])
    }

    /// `a >> b` (arithmetic).
    pub fn sra(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Sra, vec![a.into(), b.into()])
    }

    /// `a >> n` (logical).
    pub fn shr_imm(&mut self, a: impl Into<Operand>, n: u32) -> Reg {
        self.emit_dst(Op::Shr, vec![a.into(), Operand::Imm(n)])
    }

    /// `a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::And, vec![a.into(), b.into()])
    }

    /// `a | b`.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Or, vec![a.into(), b.into()])
    }

    /// `a ^ b`.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Xor, vec![a.into(), b.into()])
    }

    // ----- float ALU ---------------------------------------------------------

    /// `a + b` (f32).
    pub fn fadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FAdd, vec![a.into(), b.into()])
    }

    /// `a + b` (f32) into an existing register.
    pub fn fadd_to(&mut self, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit_to(dst, Op::FAdd, vec![a.into(), b.into()]);
    }

    /// `a - b` (f32).
    pub fn fsub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FSub, vec![a.into(), b.into()])
    }

    /// `a * b` (f32).
    pub fn fmul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FMul, vec![a.into(), b.into()])
    }

    /// `a * b + c` (f32).
    pub fn ffma(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        self.emit_dst(Op::FFma, vec![a.into(), b.into(), c.into()])
    }

    /// `a * b + c` (f32) into an existing register.
    pub fn ffma_to(
        &mut self,
        dst: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.emit_to(dst, Op::FFma, vec![a.into(), b.into(), c.into()]);
    }

    /// `min(a, b)` (f32).
    pub fn fmin(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FMin, vec![a.into(), b.into()])
    }

    /// `max(a, b)` (f32).
    pub fn fmax(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FMax, vec![a.into(), b.into()])
    }

    /// `a / b` (f32, SFU).
    pub fn fdiv(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FDiv, vec![a.into(), b.into()])
    }

    /// `1 / a` (f32, SFU).
    pub fn frcp(&mut self, a: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FRcp, vec![a.into()])
    }

    /// `sqrt(a)` (f32, SFU).
    pub fn fsqrt(&mut self, a: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FSqrt, vec![a.into()])
    }

    /// `2^a` (f32, SFU).
    pub fn fexp2(&mut self, a: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FExp2, vec![a.into()])
    }

    /// `log2(a)` (f32, SFU).
    pub fn flog2(&mut self, a: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::FLog2, vec![a.into()])
    }

    // ----- predicates and selects -----------------------------------------

    /// Integer compare into a fresh predicate.
    pub fn setp(&mut self, cmp: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Pred {
        let p = self.alloc_pred();
        self.setp_to(p, cmp, a, b);
        p
    }

    /// Integer compare into an existing predicate.
    pub fn setp_to(&mut self, p: Pred, cmp: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Instruction::new(Op::Setp(cmp), None, Some(p), vec![a.into(), b.into()]));
    }

    /// Float compare into a fresh predicate.
    pub fn setpf(&mut self, cmp: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Pred {
        let p = self.alloc_pred();
        self.emit(Instruction::new(Op::SetpF(cmp), None, Some(p), vec![a.into(), b.into()]));
        p
    }

    /// `p ? a : b`.
    pub fn sel(&mut self, p: Pred, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit_dst(Op::Sel(p), vec![a.into(), b.into()])
    }

    // ----- memory -----------------------------------------------------------

    /// Load from `space` at address `addr + offset` (bytes).
    pub fn load(&mut self, space: MemSpace, addr: impl Into<Operand>, offset: i32) -> Reg {
        let dst = self.alloc();
        self.emit(
            Instruction::new(Op::Ld(space), Some(dst), None, vec![addr.into()]).with_offset(offset),
        );
        dst
    }

    /// Load into an existing register.
    pub fn load_to(&mut self, dst: Reg, space: MemSpace, addr: impl Into<Operand>, offset: i32) {
        self.emit(
            Instruction::new(Op::Ld(space), Some(dst), None, vec![addr.into()]).with_offset(offset),
        );
    }

    /// Store `value` to `space` at `addr + offset` (bytes).
    pub fn store(
        &mut self,
        space: MemSpace,
        addr: impl Into<Operand>,
        value: impl Into<Operand>,
        offset: i32,
    ) {
        self.emit(
            Instruction::new(Op::St(space), None, None, vec![addr.into(), value.into()])
                .with_offset(offset),
        );
    }

    /// Global atomic; returns the old value.
    pub fn atom(&mut self, op: AtomOp, addr: impl Into<Operand>, value: impl Into<Operand>) -> Reg {
        let dst = self.alloc();
        self.emit(Instruction::new(Op::Atom(op), Some(dst), None, vec![addr.into(), value.into()]));
        dst
    }

    // ----- control flow -----------------------------------------------------

    /// Threadblock barrier.
    pub fn barrier(&mut self) {
        self.emit(Instruction::new(Op::Bar, None, None, vec![]));
    }

    /// Thread exit.
    pub fn exit(&mut self) {
        self.emit(Instruction::new(Op::Exit, None, None, vec![]));
    }

    /// Unconditional backward branch to `label`.
    pub fn branch_back(&mut self, label: Label) {
        assert!(label.0 <= self.instrs.len(), "label out of range");
        self.emit(Instruction::new(Op::Bra { target: label.0 }, None, None, vec![]));
    }

    /// Guarded backward branch to `label`.
    pub fn branch_back_if(&mut self, label: Label, guard: Guard) {
        assert!(label.0 <= self.instrs.len(), "label out of range");
        self.emit(
            Instruction::new(Op::Bra { target: label.0 }, None, None, vec![]).with_guard(guard),
        );
    }

    /// Emits a forward branch with a placeholder target; resolve with
    /// [`KernelBuilder::patch_here`].
    pub fn branch_fwd(&mut self, guard: Option<Guard>) -> PatchHandle {
        let at = self.instrs.len();
        let mut i = Instruction::new(Op::Bra { target: usize::MAX }, None, None, vec![]);
        if let Some(g) = guard {
            i = i.with_guard(g);
        }
        self.emit(i);
        PatchHandle(at)
    }

    /// Points a pending forward branch at the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a pending forward branch.
    pub fn patch_here(&mut self, handle: PatchHandle) {
        let here = self.instrs.len();
        match &mut self.instrs[handle.0].op {
            Op::Bra { target } if *target == usize::MAX => *target = here,
            _ => panic!("patch_here: not a pending forward branch"),
        }
    }

    /// Structured `if (guard) { then }`.
    pub fn if_then(&mut self, guard: Guard, then: impl FnOnce(&mut KernelBuilder)) {
        // Branch around the body when the guard is NOT taken.
        let skip = self.branch_fwd(Some(Guard { pred: guard.pred, negate: !guard.negate }));
        then(self);
        self.patch_here(skip);
    }

    /// Structured `if (guard) { then } else { other }`.
    pub fn if_then_else(
        &mut self,
        guard: Guard,
        then: impl FnOnce(&mut KernelBuilder),
        other: impl FnOnce(&mut KernelBuilder),
    ) {
        let to_else = self.branch_fwd(Some(Guard { pred: guard.pred, negate: !guard.negate }));
        then(self);
        let to_end = self.branch_fwd(None);
        self.patch_here(to_else);
        other(self);
        self.patch_here(to_end);
    }

    /// Structured bottom-test loop: `do { body } while (guard)`, where the
    /// body's closure returns the continuation guard. This is the looping
    /// shape GPU compilers emit for counted `for` loops.
    pub fn do_while(&mut self, body: impl FnOnce(&mut KernelBuilder) -> Guard) {
        let top = self.here();
        let guard = body(self);
        self.branch_back_if(top, guard);
    }

    /// Structured top-test loop: `while (cond) { body }`. The `cond` closure
    /// returns the guard under which the loop *continues*.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut KernelBuilder) -> Guard,
        body: impl FnOnce(&mut KernelBuilder),
    ) {
        let top = self.here();
        let guard = cond(self);
        let exit = self.branch_fwd(Some(Guard { pred: guard.pred, negate: !guard.negate }));
        body(self);
        self.branch_back(top);
        self.patch_here(exit);
    }

    /// Counted loop running `n` times with an induction register counting
    /// `0..n`; `body` receives the builder and the induction register.
    pub fn for_count(&mut self, n: impl Into<Operand>, body: impl FnOnce(&mut KernelBuilder, Reg)) {
        let n = n.into();
        let i = self.mov(0u32);
        let p = self.alloc_pred();
        let top = self.here();
        body(self, i);
        self.iadd_to(i, i, 1u32);
        self.setp_to(p, CmpOp::Lt, i, n);
        self.branch_back_if(top, Guard::if_true(p));
    }

    /// Finalizes the kernel. Appends an `Exit` if the stream does not end
    /// with one.
    ///
    /// # Panics
    ///
    /// Panics if any forward branch was left unpatched or validation fails.
    #[must_use]
    pub fn finish(mut self) -> Kernel {
        if !matches!(self.instrs.last().map(|i| i.op), Some(Op::Exit)) {
            self.exit();
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Op::Bra { target } = i.op {
                assert!(target != usize::MAX, "unpatched forward branch at instruction {pc}");
            }
        }
        let mut k = Kernel::new(self.name, self.instrs);
        k.shared_mem_bytes = self.shared_mem_bytes;
        k.num_params = self.num_params;
        k.validate().expect("builder produced an invalid kernel");
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn linear_kernel_builds_and_validates() {
        let mut b = KernelBuilder::new("lin");
        let t = b.special(SpecialReg::TidX);
        let base = b.param(0);
        let off = b.shl_imm(t, 2);
        let addr = b.iadd(base, off);
        let v = b.load(MemSpace::Global, addr, 0);
        let w = b.iadd(v, 1u32);
        b.store(MemSpace::Global, addr, w, 0);
        let k = b.finish();
        assert_eq!(k.validate(), Ok(()));
        assert_eq!(k.num_params, 1);
        assert!(matches!(k.instrs.last().unwrap().op, Op::Exit));
    }

    #[test]
    fn if_then_branches_around_body() {
        let mut b = KernelBuilder::new("ite");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 16u32);
        b.if_then(Guard::if_true(p), |b| {
            let x = b.mov(1u32);
            b.store(MemSpace::Global, 0u32, x, 0);
        });
        let k = b.finish();
        // instr 2 is the guarded branch; target must be after the body.
        let br = &k.instrs[2];
        assert!(br.op.is_branch());
        assert_eq!(br.guard, Some(Guard::if_false(p)));
        if let Op::Bra { target } = br.op {
            assert_eq!(target, 5, "skips mov+store");
        }
    }

    #[test]
    fn if_then_else_shape() {
        let mut b = KernelBuilder::new("ite2");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Eq, t, 0u32);
        let out = b.alloc();
        b.if_then_else(Guard::if_true(p), |b| b.mov_to(out, 1u32), |b| b.mov_to(out, 2u32));
        b.store(MemSpace::Global, 0u32, out, 0);
        let k = b.finish();
        assert_eq!(k.validate(), Ok(()));
        let branches: Vec<usize> = k
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op.is_branch())
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn do_while_branches_backward() {
        let mut b = KernelBuilder::new("loop");
        let i = b.mov(0u32);
        b.do_while(|b| {
            b.iadd_to(i, i, 1u32);
            let p = b.setp(CmpOp::Lt, i, 10u32);
            Guard::if_true(p)
        });
        let k = b.finish();
        let br = k.instrs.iter().find(|i| i.op.is_branch()).unwrap();
        if let Op::Bra { target } = br.op {
            assert_eq!(target, 1, "loops back to body top");
        }
    }

    #[test]
    fn while_loop_shape() {
        let mut b = KernelBuilder::new("wl");
        let i = b.mov(0u32);
        let p = b.alloc_pred();
        b.while_loop(
            |b| {
                b.setp_to(p, CmpOp::Lt, i, 4u32);
                Guard::if_true(p)
            },
            |b| {
                b.iadd_to(i, i, 1u32);
            },
        );
        let k = b.finish();
        assert_eq!(k.validate(), Ok(()));
        // Two branches: exit branch (forward) and back edge.
        let n_branches = k.instrs.iter().filter(|i| i.op.is_branch()).count();
        assert_eq!(n_branches, 2);
    }

    #[test]
    fn for_count_runs_induction() {
        let mut b = KernelBuilder::new("fc");
        let acc = b.mov(0u32);
        b.for_count(3u32, |b, i| {
            b.iadd_to(acc, acc, i);
        });
        b.store(MemSpace::Global, 0u32, acc, 0);
        let k = b.finish();
        assert_eq!(k.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "unpatched forward branch")]
    fn unpatched_branch_panics() {
        let mut b = KernelBuilder::new("bad");
        let _h = b.branch_fwd(None);
        let _ = b.finish();
    }

    #[test]
    fn shared_alloc_aligns() {
        let mut b = KernelBuilder::new("sm");
        let a = b.alloc_shared(20);
        let c = b.alloc_shared(4);
        assert_eq!(a, 0);
        assert_eq!(c, 32, "20 bytes rounds up to the next 16-byte boundary");
    }

    #[test]
    fn param_emits_param_load() {
        let mut b = KernelBuilder::new("p");
        let r = b.param(3);
        b.store(MemSpace::Global, 0u32, r, 0);
        let k = b.finish();
        assert_eq!(k.num_params, 4);
        let ld = &k.instrs[0];
        assert_eq!(ld.op.kind(), OpKind::Load);
        assert_eq!(ld.offset, 12);
    }
}
