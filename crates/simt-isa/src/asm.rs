//! A text assembler for the virtual ISA.
//!
//! Parses the exact syntax the [`Display`](std::fmt::Display)
//! implementation of [`Instruction`] and [`Kernel::disassemble`] emit, so
//! kernels round-trip through text:
//!
//! ```text
//! // kernel example
//! 0x0000  s2r %tid.x R0
//! 0x0008  shl R1, R0, 0x2
//! 0x0010  ld.global R2, [R1+0x40]
//! 0x0018  setp.lt.s32 P0, R0, 0x10
//! 0x0020  @P0 bra 0x30
//! 0x0028  st.global [R1], R2
//! 0x0030  exit
//! ```
//!
//! Leading byte addresses and `DR`/`CR`/`V` marking tags (from
//! [`annotated_disassembly`]) are accepted and ignored / returned.
//!
//! [`annotated_disassembly`]: ../simt_compiler/struct.CompiledKernel.html

use crate::instruction::{Guard, Instruction, Operand};
use crate::kernel::Kernel;
use crate::op::{AtomOp, CmpOp, MemSpace, Op};
use crate::reg::{Pred, Reg, SpecialReg};
use crate::{Marking, INSTR_BYTES};
use std::fmt;

/// Errors produced by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, message: message.into() })
}

fn parse_u32(line: usize, tok: &str) -> Result<u32, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        body.parse::<u32>()
    };
    match v {
        Ok(v) => Ok(if neg { (v as i32).wrapping_neg() as u32 } else { v }),
        Err(_) => err(line, format!("bad integer `{tok}`")),
    }
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg, AsmError> {
    let tok = tok.trim();
    match tok.strip_prefix('R').and_then(|n| n.parse::<u8>().ok()) {
        Some(n) => Ok(Reg(n)),
        None => err(line, format!("expected register, found `{tok}`")),
    }
}

fn parse_pred(line: usize, tok: &str) -> Result<Pred, AsmError> {
    let tok = tok.trim();
    match tok.strip_prefix('P').and_then(|n| n.parse::<u8>().ok()) {
        Some(n) => Ok(Pred(n)),
        None => err(line, format!("expected predicate, found `{tok}`")),
    }
}

fn parse_operand(line: usize, tok: &str) -> Result<Operand, AsmError> {
    let tok = tok.trim();
    if tok.starts_with('R') {
        parse_reg(line, tok).map(Operand::Reg)
    } else {
        parse_u32(line, tok).map(Operand::Imm)
    }
}

/// Parses `[base]` or `[base+0x10]` / `[base+-0x10]`.
fn parse_addr(line: usize, tok: &str) -> Result<(Operand, i32), AsmError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| AsmError { line, message: format!("expected [address], found `{tok}`") })?;
    match inner.split_once('+') {
        Some((base, off)) => {
            let b = parse_operand(line, base)?;
            let o = parse_u32(line, off)? as i32;
            Ok((b, o))
        }
        None => Ok((parse_operand(line, inner)?, 0)),
    }
}

fn parse_cmp(line: usize, tok: &str) -> Result<CmpOp, AsmError> {
    match tok {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        _ => err(line, format!("unknown comparison `{tok}`")),
    }
}

fn parse_special(line: usize, tok: &str) -> Result<SpecialReg, AsmError> {
    SpecialReg::ALL
        .iter()
        .copied()
        .find(|s| s.to_string() == tok)
        .ok_or_else(|| AsmError { line, message: format!("unknown special register `{tok}`") })
}

/// Splits a comma-separated operand list, respecting `[...]` brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses one instruction line (without address/marking prefixes).
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax problem.
pub fn parse_instruction(line_no: usize, text: &str) -> Result<Instruction, AsmError> {
    let mut rest = text.trim();

    // Optional guard.
    let mut guard = None;
    if let Some(g) = rest.strip_prefix('@') {
        let (gtok, tail) = g
            .split_once(char::is_whitespace)
            .ok_or_else(|| AsmError { line: line_no, message: "guard without opcode".into() })?;
        let (negate, ptok) = match gtok.strip_prefix('!') {
            Some(p) => (true, p),
            None => (false, gtok),
        };
        guard = Some(Guard { pred: parse_pred(line_no, ptok)?, negate });
        rest = tail.trim();
    }

    let (mnemonic, operands_text) = match rest.split_once(char::is_whitespace) {
        Some((m, t)) => (m, t.trim()),
        None => (rest, ""),
    };
    let ops = split_operands(operands_text);
    let opn = |i: usize| -> Result<&String, AsmError> {
        ops.get(i).ok_or_else(|| AsmError {
            line: line_no,
            message: format!("`{mnemonic}` missing operand {i}"),
        })
    };

    let simple = |op: Op, n_src: usize| -> Result<Instruction, AsmError> {
        let dst = parse_reg(line_no, opn(0)?)?;
        let mut srcs = Vec::with_capacity(n_src);
        for i in 0..n_src {
            srcs.push(parse_operand(line_no, opn(1 + i)?)?);
        }
        Ok(Instruction::new(op, Some(dst), None, srcs))
    };

    let mut instr = match mnemonic {
        "iadd" => simple(Op::IAdd, 2)?,
        "isub" => simple(Op::ISub, 2)?,
        "imul" => simple(Op::IMul, 2)?,
        "imul.hi" => simple(Op::IMulHi, 2)?,
        "imad" => simple(Op::IMad, 3)?,
        "imin" => simple(Op::IMin, 2)?,
        "imax" => simple(Op::IMax, 2)?,
        "shl" => simple(Op::Shl, 2)?,
        "shr" => simple(Op::Shr, 2)?,
        "sra" => simple(Op::Sra, 2)?,
        "and" => simple(Op::And, 2)?,
        "or" => simple(Op::Or, 2)?,
        "xor" => simple(Op::Xor, 2)?,
        "not" => simple(Op::Not, 1)?,
        "fadd" => simple(Op::FAdd, 2)?,
        "fsub" => simple(Op::FSub, 2)?,
        "fmul" => simple(Op::FMul, 2)?,
        "ffma" => simple(Op::FFma, 3)?,
        "fmin" => simple(Op::FMin, 2)?,
        "fmax" => simple(Op::FMax, 2)?,
        "fdiv" => simple(Op::FDiv, 2)?,
        "frcp" => simple(Op::FRcp, 1)?,
        "fsqrt" => simple(Op::FSqrt, 1)?,
        "fexp2" => simple(Op::FExp2, 1)?,
        "flog2" => simple(Op::FLog2, 1)?,
        "mov" => simple(Op::Mov, 1)?,
        "i2f" => simple(Op::I2F, 1)?,
        "f2i" => simple(Op::F2I, 1)?,
        "s2r" => {
            // Display form: `s2r %tid.x R0` (space-separated).
            let mut it = operands_text.split_whitespace();
            let s = parse_special(line_no, it.next().unwrap_or(""))?;
            let dst = parse_reg(line_no, it.next().unwrap_or(""))?;
            Instruction::new(Op::S2R(s), Some(dst), None, vec![])
        }
        "bar.sync" => Instruction::new(Op::Bar, None, None, vec![]),
        "exit" => Instruction::new(Op::Exit, None, None, vec![]),
        "bra" => {
            let target_bytes = parse_u32(line_no, opn(0)?)? as u64;
            if !target_bytes.is_multiple_of(INSTR_BYTES) {
                return err(line_no, "branch target is not instruction-aligned");
            }
            Instruction::new(
                Op::Bra { target: (target_bytes / INSTR_BYTES) as usize },
                None,
                None,
                vec![],
            )
        }
        m if m.starts_with("setp.") => {
            // setp.<cmp>.<s32|f32>
            let mut parts = m.split('.');
            let _ = parts.next();
            let cmp = parse_cmp(line_no, parts.next().unwrap_or(""))?;
            let ty = parts.next().unwrap_or("s32");
            let op = if ty == "f32" { Op::SetpF(cmp) } else { Op::Setp(cmp) };
            let pdst = parse_pred(line_no, opn(0)?)?;
            let a = parse_operand(line_no, opn(1)?)?;
            let b = parse_operand(line_no, opn(2)?)?;
            Instruction::new(op, None, Some(pdst), vec![a, b])
        }
        m if m.starts_with("sel.") => {
            let p = parse_pred(line_no, &m[4..])?;
            let dst = parse_reg(line_no, opn(0)?)?;
            let a = parse_operand(line_no, opn(1)?)?;
            let b = parse_operand(line_no, opn(2)?)?;
            Instruction::new(Op::Sel(p), Some(dst), None, vec![a, b])
        }
        m if m.starts_with("ld.") => {
            let space = match &m[3..] {
                "global" => MemSpace::Global,
                "shared" => MemSpace::Shared,
                "param" => MemSpace::Param,
                other => return err(line_no, format!("unknown memory space `{other}`")),
            };
            let dst = parse_reg(line_no, opn(0)?)?;
            let (addr, off) = parse_addr(line_no, opn(1)?)?;
            Instruction::new(Op::Ld(space), Some(dst), None, vec![addr]).with_offset(off)
        }
        m if m.starts_with("st.") => {
            let space = match &m[3..] {
                "global" => MemSpace::Global,
                "shared" => MemSpace::Shared,
                other => return err(line_no, format!("cannot store to space `{other}`")),
            };
            let (addr, off) = parse_addr(line_no, opn(0)?)?;
            let val = parse_operand(line_no, opn(1)?)?;
            Instruction::new(Op::St(space), None, None, vec![addr, val]).with_offset(off)
        }
        m if m.starts_with("atom.") => {
            let a = match &m[5..] {
                "add" => AtomOp::Add,
                "max" => AtomOp::Max,
                "min" => AtomOp::Min,
                "exch" => AtomOp::Exch,
                other => return err(line_no, format!("unknown atomic `{other}`")),
            };
            let dst = parse_reg(line_no, opn(0)?)?;
            let (addr, off) = parse_addr(line_no, opn(1)?)?;
            let val = parse_operand(line_no, opn(2)?)?;
            Instruction::new(Op::Atom(a), Some(dst), None, vec![addr, val]).with_offset(off)
        }
        other => return err(line_no, format!("unknown mnemonic `{other}`")),
    };
    instr.guard = guard;
    Ok(instr)
}

/// Parses a whole kernel listing. Accepts (and strips) `//` comments, blank
/// lines, leading `DR`/`CR`/`V` marking tags, and leading `0x...` byte
/// addresses. Returns the kernel plus any markings found (padded with
/// [`Marking::Vector`] when absent).
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
pub fn parse_kernel(name: &str, text: &str) -> Result<(Kernel, Vec<Marking>), AsmError> {
    let mut instrs = Vec::new();
    let mut markings = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let mut line = raw.trim();
        if let Some(pos) = line.find("//") {
            line = line[..pos].trim();
        }
        if line.is_empty() {
            continue;
        }
        // Optional marking tag.
        let mut marking = Marking::Vector;
        for (tag, m) in [
            ("DR", Marking::Redundant),
            ("CR", Marking::ConditionallyRedundant),
            ("V", Marking::Vector),
        ] {
            if let Some(rest) = line.strip_prefix(tag) {
                if rest.starts_with(char::is_whitespace) {
                    marking = m;
                    line = rest.trim();
                    break;
                }
            }
        }
        // Optional leading byte address followed by two spaces or more.
        if line.starts_with("0x") {
            if let Some((addr, rest)) = line.split_once(char::is_whitespace) {
                if u64::from_str_radix(addr.trim_start_matches("0x"), 16).is_ok()
                    && !rest.trim().is_empty()
                {
                    line = rest.trim();
                }
            }
        }
        instrs.push(parse_instruction(line_no, line)?);
        markings.push(marking);
    }
    Ok((Kernel::new(name, instrs), markings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_alu() {
        let i = parse_instruction(1, "iadd R1, R2, 0x10")
            .expect("well-formed binary ALU asm must parse");
        assert_eq!(i.to_string(), "iadd R1, R2, 0x10");
        let i = parse_instruction(1, "imad R0, R1, R2, 0x7")
            .expect("well-formed three-source ALU asm must parse");
        assert_eq!(i.op, Op::IMad);
        assert_eq!(i.srcs.len(), 3);
    }

    #[test]
    fn parse_guard_and_branch() {
        let i = parse_instruction(1, "@!P0 bra 0x20")
            .expect("guarded branch with an aligned target must parse");
        assert_eq!(i.guard, Some(Guard::if_false(Pred(0))));
        assert_eq!(i.op, Op::Bra { target: 4 });
        assert!(parse_instruction(1, "bra 0x21").is_err(), "unaligned target");
    }

    #[test]
    fn parse_memory_forms() {
        let i = parse_instruction(1, "ld.shared R3, [R7+0x80]")
            .expect("load with a bracketed address and offset must parse");
        assert_eq!(i.op, Op::Ld(MemSpace::Shared));
        assert_eq!(i.offset, 0x80);
        let i = parse_instruction(1, "st.global [R2], R9")
            .expect("store with a bracketed address must parse");
        assert_eq!(i.op, Op::St(MemSpace::Global));
        let i = parse_instruction(1, "atom.add R1, [R2], R3")
            .expect("atomic with destination and bracketed address must parse");
        assert_eq!(i.op, Op::Atom(AtomOp::Add));
    }

    #[test]
    fn parse_setp_sel_s2r() {
        let i = parse_instruction(1, "setp.lt.s32 P2, R0, 0x8")
            .expect("integer setp with a predicate destination must parse");
        assert_eq!(i.op, Op::Setp(CmpOp::Lt));
        assert_eq!(i.pdst, Some(Pred(2)));
        let i = parse_instruction(1, "setp.ge.f32 P0, R1, R2")
            .expect("float setp with a predicate destination must parse");
        assert_eq!(i.op, Op::SetpF(CmpOp::Ge));
        let i = parse_instruction(1, "sel.P3 R5, R1, R2")
            .expect("sel naming its predicate in the mnemonic must parse");
        assert_eq!(i.op, Op::Sel(Pred(3)));
        let i = parse_instruction(1, "s2r %tid.x R0")
            .expect("s2r naming a special register must parse");
        assert_eq!(i.op, Op::S2R(SpecialReg::TidX));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_kernel("t", "iadd R0, R1, R2\nbogus R1\nexit").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn kernel_roundtrip_through_disassembly() {
        use crate::builder::KernelBuilder;
        use crate::reg::SpecialReg;
        let mut b = KernelBuilder::new("rt");
        let t = b.special(SpecialReg::TidX);
        let p0 = b.param(0);
        let o = b.shl_imm(t, 2);
        let a = b.iadd(p0, o);
        let v = b.load(MemSpace::Global, a, 0);
        let q = b.setp(CmpOp::Lt, t, 16u32);
        b.if_then(Guard::if_true(q), |b| {
            b.store(MemSpace::Global, a, v, 4);
        });
        b.barrier();
        let k = b.finish();

        let text = k.disassemble();
        let (k2, _) = parse_kernel("rt", &text).expect("parses its own disassembly");
        assert_eq!(k.instrs, k2.instrs);
    }

    #[test]
    fn accepts_marking_tags_and_comments() {
        let src = "\
// a tiny kernel
DR 0x0000  mov R0, 0x1
CR 0x0008  iadd R1, R0, 0x2   // comment
V  0x0010  exit
";
        let (k, m) = parse_kernel("tagged", src)
            .expect("marking tags, byte PCs and comments are all skippable");
        assert_eq!(k.len(), 3);
        assert_eq!(m, vec![Marking::Redundant, Marking::ConditionallyRedundant, Marking::Vector]);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn negative_offsets_parse() {
        let i = parse_instruction(1, "ld.global R1, [R2+-0x4]")
            .expect("negative load offsets are valid asm and must parse");
        assert_eq!(i.offset, -4);
    }
}
