//! Lattice laws for the divergence-bit affine interval domain.
//!
//! The domain abstracts one register of one dynamic instance as
//! `a*tid.x + b*tid.y + c` with `c ∈ [lo, hi]`, plus the TB-uniform bit
//! claiming `c` is one shared constant across the instance's threads.
//! Concretization here is explicit: a *sample* is a thread set with one
//! concrete value per thread, and [`admits`] checks it against an
//! abstract value — including the shared-constant obligation of the bit.
//!
//! The properties pin exactly what the symbolic prover leans on:
//!
//! - `meet` (the join of concretizations) is commutative and idempotent,
//!   and over-approximates both operands (the upper-bound laws, which are
//!   the semantic content of monotonicity for a join);
//! - `meet` never *forges* the uniform bit: a result can only claim a
//!   shared constant when both inputs did (exactness aside);
//! - every transfer (`+`, `-`, `min_`, `max_`, `opaque`) is sound against
//!   concrete per-thread evaluation, bit included: `opaque` may only
//!   claim a shared result when the concrete inputs were forced shared;
//! - widened meets terminate: every chain stabilizes after a bounded
//!   number of strict decreases (each bound jumps straight to infinity,
//!   the bit only clears, the shape only falls to `Unknown`).

use proptest::prelude::*;
use simt_compiler::{Affine, AffineVal, NEG_INF, POS_INF};

/// Generates an affine form with small finite coefficients, an ordered
/// interval, and independently-infinite bounds.
fn arb_affine() -> impl Strategy<Value = Affine> {
    (-3i64..=3, -3i64..=3, -16i64..=16, 0i64..=8, any::<bool>(), 0u8..4).prop_map(
        |(a, b, lo, w, uniform, inf)| {
            let mut lo = lo;
            let mut hi = lo + w;
            if inf & 1 != 0 {
                lo = NEG_INF;
            }
            if inf & 2 != 0 {
                hi = POS_INF;
            }
            Affine { a, b, lo, hi, uniform }
        },
    )
}

/// Generates a lattice element, biased toward the affine middle layer.
fn arb_val() -> impl Strategy<Value = AffineVal> {
    prop_oneof![
        1 => Just(AffineVal::Top),
        1 => Just(AffineVal::Unknown),
        6 => arb_affine().prop_map(AffineVal::Aff),
    ]
}

/// Draws one concrete per-thread sample from `γ(f)`: each thread gets a
/// constant from the (de-infinitized) interval, one shared pick when the
/// uniform bit is set.
fn sample(f: Affine, threads: &[(i64, i64)], picks: &[i64], shared: i64) -> Vec<i64> {
    let (clo, chi) = (f.lo.max(-64), f.hi.min(64));
    threads
        .iter()
        .enumerate()
        .map(|(i, &(tx, ty))| {
            let raw = if f.uniform { shared } else { picks[i % picks.len()] };
            f.a * tx + f.b * ty + raw.clamp(clo, chi)
        })
        .collect()
}

/// Membership of a concrete per-thread sample in the concretization of an
/// abstract value. `Top` concretizes to nothing, `Unknown` to everything;
/// an affine form requires every residual constant in-interval and — when
/// the bit is set — one shared constant.
fn admits(v: AffineVal, threads: &[(i64, i64)], vals: &[i64]) -> bool {
    match v {
        AffineVal::Top => false,
        AffineVal::Unknown => true,
        AffineVal::Aff(f) => {
            let cs: Vec<i64> =
                threads.iter().zip(vals).map(|(&(tx, ty), &v)| v - f.a * tx - f.b * ty).collect();
            let in_range = cs
                .iter()
                .all(|&c| (f.lo == NEG_INF || c >= f.lo) && (f.hi == POS_INF || c <= f.hi));
            in_range && (!f.uniform || cs.windows(2).all(|w| w[0] == w[1]))
        }
    }
}

/// Thread sets stay inside an 8×8 block so all concrete math is tiny.
fn arb_threads() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, 0i64..8), 1..6)
}

/// Per-thread constant picks (indexed modulo length, so any thread-set
/// size is served).
fn arb_picks() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-64i64..=64, 6..7)
}

proptest! {
    #[test]
    fn meet_is_commutative(x in arb_val(), y in arb_val(), widen in any::<bool>()) {
        prop_assert_eq!(x.meet(y, widen), y.meet(x, widen));
    }

    #[test]
    fn meet_is_idempotent(x in arb_val(), widen in any::<bool>()) {
        prop_assert_eq!(x.meet(x, widen), x);
    }

    #[test]
    fn meet_over_approximates_both_sides(
        x in arb_affine(),
        y in arb_val(),
        widen in any::<bool>(),
        threads in arb_threads(),
        picks in arb_picks(),
        shared in -64i64..=64,
    ) {
        // Any sample of γ(x) stays in γ(x ⊓ y); by commutativity the same
        // holds for y, so the meet upper-bounds both operands.
        let vals = sample(x, &threads, &picks, shared);
        prop_assert!(admits(AffineVal::Aff(x), &threads, &vals));
        prop_assert!(admits(AffineVal::Aff(x).meet(y, widen), &threads, &vals));
    }

    #[test]
    fn meet_never_forges_the_uniform_bit(
        x in arb_affine(),
        y in arb_affine(),
        widen in any::<bool>(),
    ) {
        if let AffineVal::Aff(m) = AffineVal::Aff(x).meet(AffineVal::Aff(y), widen) {
            prop_assert!(!m.uniform || (x.uniform && y.uniform));
        }
    }

    #[test]
    fn arithmetic_transfer_is_sound(
        x in arb_affine(),
        y in arb_affine(),
        threads in arb_threads(),
        px in arb_picks(),
        py in arb_picks(),
        sx in -64i64..=64,
        sy in -64i64..=64,
    ) {
        let vx = sample(x, &threads, &px, sx);
        let vy = sample(y, &threads, &py, sy);
        let (ax, ay) = (AffineVal::Aff(x), AffineVal::Aff(y));

        let add: Vec<i64> = vx.iter().zip(&vy).map(|(a, b)| a + b).collect();
        prop_assert!(admits(ax + ay, &threads, &add), "add {x:?} {y:?}");

        let sub: Vec<i64> = vx.iter().zip(&vy).map(|(a, b)| a - b).collect();
        prop_assert!(admits(ax - ay, &threads, &sub), "sub {x:?} {y:?}");

        let neg: Vec<i64> = vx.iter().map(|a| -a).collect();
        prop_assert!(admits(-ax, &threads, &neg), "neg {x:?}");

        let min: Vec<i64> = vx.iter().zip(&vy).map(|(a, b)| *a.min(b)).collect();
        prop_assert!(admits(ax.min_(ay), &threads, &min), "min {x:?} {y:?}");

        let max: Vec<i64> = vx.iter().zip(&vy).map(|(a, b)| *a.max(b)).collect();
        prop_assert!(admits(ax.max_(ay), &threads, &max), "max {x:?} {y:?}");
    }

    #[test]
    fn opaque_transfer_is_sound_for_any_pure_op(
        x in arb_affine(),
        y in arb_affine(),
        threads in arb_threads(),
        px in arb_picks(),
        py in arb_picks(),
        sx in -64i64..=64,
        sy in -64i64..=64,
    ) {
        // `opaque` models an op the domain cannot interpret. Soundness:
        // whatever pure per-thread function the op computes, the result
        // sample must be admitted — in particular the TB-uniform claim may
        // only survive when the abstract inputs *forced* the concrete
        // inputs to be shared.
        let vx = sample(x, &threads, &px, sx);
        let vy = sample(y, &threads, &py, sy);
        let out = AffineVal::opaque(&[AffineVal::Aff(x), AffineVal::Aff(y)]);
        let mix: Vec<i64> =
            vx.iter().zip(&vy).map(|(a, b)| (a ^ (b << 1)).wrapping_mul(31)).collect();
        prop_assert!(admits(out, &threads, &mix), "opaque {x:?} {y:?}");
    }

    #[test]
    fn widened_meets_terminate(x in arb_val(), ys in prop::collection::vec(arb_val(), 1..12)) {
        // Each strict decrease spends a finite resource: Top → Aff, lo and
        // hi each jump straight to their infinity, the bit only clears,
        // and the final fall is to Unknown. Five is the longest chain.
        let mut cur = x;
        let mut changes = 0usize;
        for y in ys {
            let next = cur.meet(y, true);
            if next != cur {
                changes += 1;
            }
            cur = next;
        }
        prop_assert!(changes <= 5, "widened chain changed {changes} times");
    }

    #[test]
    fn exactness_implies_shared_even_without_the_bit(
        v in -16i64..=16,
        a in -3i64..=3,
        b in -3i64..=3,
    ) {
        // A single known constant is trivially one shared value, so
        // `c_uniform` must hold with the bit clear — and `is_tb_uniform`
        // exactly when the thread coefficients vanish.
        let f = Affine { a, b, lo: v, hi: v, uniform: false };
        prop_assert!(f.c_uniform());
        prop_assert_eq!(f.is_tb_uniform(), a == 0 && b == 0);
        prop_assert!(Affine::constant(v).is_tb_uniform());
    }

    #[test]
    fn range_bounds_every_thread_in_block(
        f in arb_affine(),
        threads in arb_threads(),
        picks in arb_picks(),
        shared in -64i64..=64,
    ) {
        // `range(bx, by)` must envelope the value of every thread of an
        // 8×8 block; the generated thread set lives inside one.
        let (rlo, rhi) = f.range(8, 8);
        for v in sample(f, &threads, &picks, shared) {
            prop_assert!(rlo == NEG_INF || v >= rlo, "{f:?}: {v} < {rlo}");
            prop_assert!(rhi == POS_INF || v <= rhi, "{f:?}: {v} > {rhi}");
        }
    }
}
