//! The compile-time pass and the kernel-launch-time finalization step.
//!
//! [`compile`] runs the redundancy analysis once per kernel and attaches
//! static markings (definitely / conditionally redundant / vector) plus the
//! reconvergence table. [`LaunchPlan::new`] then applies the launch-time
//! TB-dimension check (paper Section 4.2) to promote conditional markings,
//! and derives the per-technique instruction sets used by the simulator:
//! DARSIE's skippable set, DAC-IDEAL's affine set and UV's uniform set.

use crate::analysis::{analyze, Analysis, AnalysisOptions};
use crate::cfg::Cfg;
use crate::class::{AbsClass, Taxonomy};
use crate::dom::{PostDoms, ReconvergenceTable};
use simt_isa::{Kernel, LaunchConfig, Marking, Op};

/// A kernel plus everything the static compiler derived from it.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The kernel itself.
    pub kernel: Kernel,
    /// Static per-instruction abstract classes (conditional mode).
    pub classes: Vec<AbsClass>,
    /// Static per-instruction markings, as encoded in the binary.
    pub markings: Vec<Marking>,
    /// SIMT reconvergence points for guarded branches.
    pub recon: ReconvergenceTable,
    /// The control-flow graph (kept for clients such as the
    /// basic-block-boundary sync instrumentation of Figure 12).
    pub cfg: Cfg,
}

/// Compiles `kernel` with default options.
///
/// # Panics
///
/// Panics if the kernel fails [`Kernel::validate`].
#[must_use]
pub fn compile(kernel: Kernel) -> CompiledKernel {
    compile_with_options(kernel, AnalysisOptions::default())
}

/// Compiles `kernel` with explicit analysis options.
///
/// # Panics
///
/// Panics if the kernel fails [`Kernel::validate`].
#[must_use]
pub fn compile_with_options(kernel: Kernel, opts: AnalysisOptions) -> CompiledKernel {
    kernel.validate().expect("kernel must validate before compilation");
    let cfg = Cfg::build(&kernel);
    let pdoms = PostDoms::compute(&cfg);
    let recon = ReconvergenceTable::compute(&kernel, &cfg, &pdoms);
    let Analysis { instr_class } = analyze(&kernel, &cfg, opts);
    let markings = instr_class.iter().map(|c| c.marking()).collect();
    CompiledKernel { kernel, classes: instr_class, markings, recon, cfg }
}

impl CompiledKernel {
    /// Figure-6-style annotated disassembly: each line prefixed with the
    /// marking (`DR` definitely redundant, `CR` conditionally redundant,
    /// `V` vector).
    #[must_use]
    pub fn annotated_disassembly(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "// kernel {} (regs={})", self.kernel.name, self.kernel.num_regs);
        for (pc, i) in self.kernel.instrs.iter().enumerate() {
            let tag = match self.markings[pc] {
                Marking::Redundant => "DR",
                Marking::ConditionallyRedundant => "CR",
                Marking::Vector => "V ",
            };
            let _ = writeln!(out, "{tag} {:#06x}  {}", Kernel::byte_pc(pc), i);
        }
        out
    }

    /// Number of static instructions carrying each marking.
    #[must_use]
    pub fn marking_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for m in &self.markings {
            let idx = match m {
                Marking::Vector => 0,
                Marking::ConditionallyRedundant => 1,
                Marking::Redundant => 2,
            };
            counts[idx] += 1;
        }
        counts
    }
}

/// The 3D-TB extension's additional launch check: `tid.y` repeats per warp
/// when each warp covers whole (x, y) planes.
#[must_use]
pub fn promotes_tid_y(launch: &LaunchConfig) -> bool {
    let xy = launch.block.x * launch.block.y;
    launch.block.x.is_power_of_two() && xy.is_power_of_two() && xy <= launch.warp_size
}

/// Launch-time finalization of a compiled kernel: the per-instruction
/// decisions every technique consumes.
#[derive(Debug, Clone)]
pub struct LaunchPlan {
    /// Did the paper's 2D x-dimension check pass?
    pub promoted_x: bool,
    /// Did the 3D extension's y check pass?
    pub promoted_y: bool,
    /// Final (promotion-applied) class of every instruction.
    pub final_class: Vec<AbsClass>,
    /// Taxonomy bucket of every instruction under this launch.
    pub taxonomy: Vec<Taxonomy>,
    /// Instructions DARSIE skips in fetch (definitely redundant,
    /// register-writing, non-atomic).
    pub skippable: Vec<bool>,
    /// Whether each skippable instruction is a load (drives the skip
    /// table's `IsLoad` invalidation, paper Section 4.4). Loads from the
    /// immutable parameter space are exempt.
    pub skippable_is_load: Vec<bool>,
    /// Instructions DAC-IDEAL executes once on its affine stream
    /// (uniform or affine non-memory ops, redundant or not).
    pub dac_affine: Vec<bool>,
    /// Instructions UV eliminates at issue (TB-uniform non-memory ops).
    pub uv_uniform: Vec<bool>,
}

impl LaunchPlan {
    /// Evaluates the launch-time checks and derives all decision vectors.
    #[must_use]
    pub fn new(ck: &CompiledKernel, launch: &LaunchConfig) -> LaunchPlan {
        let promoted_x = launch.promotes_conditional_redundancy();
        let promoted_y = promotes_tid_y(launch);
        let n = ck.kernel.instrs.len();
        let mut plan = LaunchPlan {
            promoted_x,
            promoted_y,
            final_class: Vec::with_capacity(n),
            taxonomy: Vec::with_capacity(n),
            skippable: vec![false; n],
            skippable_is_load: vec![false; n],
            dac_affine: vec![false; n],
            uv_uniform: vec![false; n],
        };
        for (pc, instr) in ck.kernel.instrs.iter().enumerate() {
            let fc = ck.classes[pc].finalize(promoted_x, promoted_y);
            let tax = fc.taxonomy();
            let writes_reg = instr.op.writes_dst() && !matches!(instr.op, Op::Atom(_));
            let is_mem = instr.op.is_load() || instr.op.is_store();
            if writes_reg && tax.is_redundant() {
                plan.skippable[pc] = true;
                plan.skippable_is_load[pc] = matches!(
                    instr.op,
                    Op::Ld(simt_isa::MemSpace::Global | simt_isa::MemSpace::Shared)
                );
            }
            if writes_reg && !is_mem && fc.is_dac_affine() {
                plan.dac_affine[pc] = true;
            }
            if writes_reg && !is_mem && fc.is_uv_uniform() {
                plan.uv_uniform[pc] = true;
            }
            plan.final_class.push(fc);
            plan.taxonomy.push(tax);
        }
        plan
    }

    /// Number of skippable static instructions.
    #[must_use]
    pub fn num_skippable(&self) -> usize {
        self.skippable.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{KernelBuilder, MemSpace, SpecialReg};

    /// tid.x-indexed global load (the Figure 3 kernel).
    fn fig3() -> CompiledKernel {
        let mut b = KernelBuilder::new("fig3");
        let t = b.special(SpecialReg::TidX);
        let r1 = b.imul(t, 4u32);
        let r2 = b.iadd(r1, 10u32);
        let v = b.load(MemSpace::Global, r2, 0);
        b.store(MemSpace::Global, 0u32, v, 0);
        compile(b.finish())
    }

    #[test]
    fn static_markings_are_conditional_for_tid_chain() {
        let ck = fig3();
        assert_eq!(ck.markings[0], Marking::ConditionallyRedundant);
        assert_eq!(ck.markings[1], Marking::ConditionallyRedundant);
        assert_eq!(ck.markings[2], Marking::ConditionallyRedundant);
        assert_eq!(ck.markings[3], Marking::ConditionallyRedundant, "load inherits address");
    }

    #[test]
    fn promotion_enables_skipping_for_2d_blocks_only() {
        let ck = fig3();
        let plan_2d = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, (16u32, 16u32)));
        assert!(plan_2d.promoted_x);
        assert_eq!(plan_2d.num_skippable(), 4, "s2r + mul + add + load");
        assert!(plan_2d.skippable_is_load[3]);
        assert!(!plan_2d.skippable_is_load[1]);

        let plan_1d = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, 256u32));
        assert!(!plan_1d.promoted_x);
        assert_eq!(plan_1d.num_skippable(), 0);
    }

    #[test]
    fn taxonomy_under_2d_launch_matches_fig3() {
        let ck = fig3();
        let plan = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, (4u32, 2u32)).with_warp_size(4));
        assert_eq!(plan.taxonomy[0], Taxonomy::Affine);
        assert_eq!(plan.taxonomy[1], Taxonomy::Affine);
        assert_eq!(plan.taxonomy[2], Taxonomy::Affine);
        assert_eq!(plan.taxonomy[3], Taxonomy::Unstructured);
    }

    #[test]
    fn dac_covers_tb_affine_in_1d_but_darsie_does_not() {
        let ck = fig3();
        let plan_1d = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, 256u32));
        // tid.x chain in 1D: affine but not redundant -> DAC yes, DARSIE no.
        assert!(plan_1d.dac_affine[0]);
        assert!(plan_1d.dac_affine[1]);
        assert!(plan_1d.dac_affine[2]);
        assert!(!plan_1d.skippable[1]);
        // The load is memory: DAC does not remove it.
        assert!(!plan_1d.dac_affine[3]);
    }

    #[test]
    fn uv_covers_uniform_non_memory_only() {
        let mut b = KernelBuilder::new("uv");
        let c = b.special(SpecialReg::CtaidX); // uniform
        let d = b.iadd(c, 3u32); // uniform
        let t = b.special(SpecialReg::TidX); // cond affine
        let a = b.shl_imm(t, 2);
        let addr = b.iadd(a, d);
        let v = b.load(MemSpace::Global, addr, 0); // memory
        b.store(MemSpace::Global, addr, v, 0);
        let ck = compile(b.finish());
        let plan = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, (16u32, 16u32)));
        assert!(plan.uv_uniform[0], "s2r ctaid");
        assert!(plan.uv_uniform[1], "uniform add");
        assert!(!plan.uv_uniform[3], "affine, not uniform");
        assert!(!plan.uv_uniform[5], "memory op excluded");
        // DARSIE skips all of these under the promoted launch.
        assert!(plan.skippable[0] && plan.skippable[3] && plan.skippable[5]);
    }

    #[test]
    fn param_loads_are_skippable_but_immune_to_store_invalidation() {
        let mut b = KernelBuilder::new("p");
        let p0 = b.param(0);
        let t = b.special(SpecialReg::TidX);
        let a = b.iadd(p0, t);
        let v = b.load(MemSpace::Global, a, 0);
        b.store(MemSpace::Global, a, v, 0);
        let ck = compile(b.finish());
        let plan = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, (16u32, 16u32)));
        assert!(plan.skippable[0], "param load skips");
        assert!(!plan.skippable_is_load[0], "param space is immutable");
        assert!(plan.skippable[3], "global load skips");
        assert!(plan.skippable_is_load[3], "global load subject to invalidation");
    }

    #[test]
    fn stores_branches_barriers_never_skippable() {
        let mut b = KernelBuilder::new("nb");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(simt_isa::CmpOp::Lt, t, 8u32);
        b.if_then(simt_isa::Guard::if_true(p), |b| {
            b.barrier();
        });
        b.store(MemSpace::Global, 0u32, t, 0);
        let ck = compile(b.finish());
        let plan = LaunchPlan::new(&ck, &LaunchConfig::new(1u32, (16u32, 16u32)));
        for (pc, i) in ck.kernel.instrs.iter().enumerate() {
            if i.op.is_branch() || i.op.is_store() || matches!(i.op, Op::Bar | Op::Exit) {
                assert!(!plan.skippable[pc], "pc {pc} ({}) must not skip", i.op);
            }
        }
    }

    #[test]
    fn marking_counts_and_disassembly() {
        let ck = fig3();
        let [v, cr, dr] = ck.marking_counts();
        assert_eq!(v + cr + dr, ck.kernel.len());
        assert!(cr >= 4);
        let dis = ck.annotated_disassembly();
        assert!(dis.contains("CR"), "{dis}");
        assert!(dis.lines().count() >= ck.kernel.len());
    }

    #[test]
    fn tid_y_promotion_check() {
        // Warp covers whole (x,y) planes.
        assert!(promotes_tid_y(&LaunchConfig::new(1u32, (8u32, 4u32, 4u32))));
        assert!(promotes_tid_y(&LaunchConfig::new(1u32, (4u32, 4u32))));
        // x*y exceeds warp.
        assert!(!promotes_tid_y(&LaunchConfig::new(1u32, (16u32, 16u32))));
        // Non power of two.
        assert!(!promotes_tid_y(&LaunchConfig::new(1u32, (6u32, 4u32))));
    }
}
