//! Provenance for vector markings: why is this instruction not redundant?
//!
//! The redundancy dataflow silently demotes values to `VECTOR`; this module
//! reconstructs, for every vector-marked instruction, a **shortest blame
//! chain** back to the *seed* that poisoned it — a divergent special
//! register read, an atomic, or a read-before-write of an uninitialized
//! register. The chain follows def-use edges between vector-classed
//! instructions only (a redundant operand cannot be the reason its consumer
//! is vector), including guard predicates, `sel` conditions and the old
//! destination contents folded in by guarded writes.
//!
//! Chains drive the `darsie-sim analyze` blame report: the histogram of
//! seeds says where divergence enters a kernel, and the per-instruction
//! chains say how it spreads — the first step toward recovering uniformity,
//! in the spirit of DARM's divergence analysis.

use crate::class::AbsClass;
use crate::pass::CompiledKernel;
use simt_isa::{Marking, Op, Operand, SpecialReg};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Sentinel definition site: the register was never written on some path,
/// so its value is the machine's zero-initialized contents.
const ENTRY: usize = usize::MAX;

/// The root cause a blame chain terminates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlameSeed {
    /// A `tid.y` read (vector unless the 3D extension analyzes it).
    TidY,
    /// A `tid.z` read.
    TidZ,
    /// A `warpid` read (uniform per warp, differs across warps).
    WarpId,
    /// An atomic's returned old value (unique per executing thread).
    Atomic,
    /// A read of a register no path has written (value is the
    /// zero-initialized file; the baseline analysis treats it as vector).
    EntryUndef,
    /// No seed found (the instruction's vector class is self-contained,
    /// e.g. a cyclic poison with no identifiable origin).
    Unexplained,
}

impl std::fmt::Display for BlameSeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BlameSeed::TidY => "tid.y",
            BlameSeed::TidZ => "tid.z",
            BlameSeed::WarpId => "warpid",
            BlameSeed::Atomic => "atomic",
            BlameSeed::EntryUndef => "entry-undef",
            BlameSeed::Unexplained => "unexplained",
        };
        f.write_str(s)
    }
}

/// A shortest poison path for one vector-marked instruction.
#[derive(Debug, Clone)]
pub struct BlameChain {
    /// The root cause.
    pub seed: BlameSeed,
    /// Instruction indices from the seed (first) to the blamed
    /// instruction (last). For [`BlameSeed::EntryUndef`] the first entry
    /// is the first consumer of the undefined register.
    pub path: Vec<usize>,
}

/// Blame chains for a kernel under one class assignment.
#[derive(Debug, Clone)]
pub struct Blame {
    /// One chain per instruction; `Some` exactly for vector markings.
    pub chains: Vec<Option<BlameChain>>,
}

impl Blame {
    /// Number of vector-marked instructions rooted in each seed kind.
    #[must_use]
    pub fn seed_histogram(&self) -> BTreeMap<BlameSeed, usize> {
        let mut h = BTreeMap::new();
        for c in self.chains.iter().flatten() {
            *h.entry(c.seed).or_insert(0) += 1;
        }
        h
    }
}

/// Reaching-definition sets: per register and predicate, the set of pcs
/// whose write may reach this point ([`ENTRY`] for no-write paths).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Defs {
    regs: Vec<BTreeSet<usize>>,
    preds: Vec<BTreeSet<usize>>,
}

impl Defs {
    fn entry(nregs: usize, npreds: usize) -> Defs {
        let one = BTreeSet::from([ENTRY]);
        Defs { regs: vec![one.clone(); nregs], preds: vec![one; npreds] }
    }

    fn empty(nregs: usize, npreds: usize) -> Defs {
        Defs { regs: vec![BTreeSet::new(); nregs], preds: vec![BTreeSet::new(); npreds] }
    }

    fn union_with(&mut self, other: &Defs) -> bool {
        let mut changed = false;
        for (a, b) in self
            .regs
            .iter_mut()
            .chain(self.preds.iter_mut())
            .zip(other.regs.iter().chain(other.preds.iter()))
        {
            for &d in b {
                changed |= a.insert(d);
            }
        }
        changed
    }

    fn transfer(&mut self, pc: usize, instr: &simt_isa::Instruction) {
        let guarded = instr.guard.is_some();
        if let Some(d) = instr.dst {
            let slot = &mut self.regs[usize::from(d.0)];
            if !guarded {
                slot.clear();
            }
            slot.insert(pc);
        }
        if let Some(p) = instr.pdst {
            let slot = &mut self.preds[usize::from(p.0)];
            if !guarded {
                slot.clear();
            }
            slot.insert(pc);
        }
    }
}

/// The intrinsic seed kind of one instruction, if any.
fn seed_of(instr: &simt_isa::Instruction) -> Option<BlameSeed> {
    match instr.op {
        Op::Atom(_) => Some(BlameSeed::Atomic),
        Op::S2R(SpecialReg::TidY) => Some(BlameSeed::TidY),
        Op::S2R(SpecialReg::TidZ) => Some(BlameSeed::TidZ),
        Op::S2R(SpecialReg::WarpId) => Some(BlameSeed::WarpId),
        _ => None,
    }
}

/// Computes shortest blame chains for every vector-classed instruction of
/// `ck` under `classes` (pass baseline classes, or refined ones to explain
/// what refinement could not recover).
///
/// # Panics
///
/// Panics if `classes` is shorter than the kernel's instruction count.
#[must_use]
pub fn blame(ck: &CompiledKernel, classes: &[AbsClass]) -> Blame {
    let instrs = &ck.kernel.instrs;
    let n = instrs.len();
    assert!(classes.len() >= n, "one class per instruction required");
    let nregs = usize::from(ck.kernel.num_regs);
    let npreds = usize::from(simt_isa::reg::NUM_PREDS);
    let is_vector = |pc: usize| classes[pc].marking() == Marking::Vector;

    // ---- reaching definitions over the CFG -----------------------------
    let nb = ck.cfg.blocks.len();
    let mut ins: Vec<Defs> = vec![Defs::empty(nregs, npreds); nb];
    ins[0] = Defs::entry(nregs, npreds);
    let rpo = ck.cfg.reverse_post_order();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let mut st = ins[b].clone();
            for pc in ck.cfg.blocks[b].range() {
                st.transfer(pc, &instrs[pc]);
            }
            for &s in &ck.cfg.blocks[b].succs {
                changed |= ins[s].union_with(&st);
            }
        }
    }

    // ---- def-use edges between vector instructions ---------------------
    // parents[pc]: vector defs (or ENTRY) this instruction's class folds in.
    let mut parents: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (b, block_in) in ins.iter().enumerate().take(nb) {
        let mut st = block_in.clone();
        for pc in ck.cfg.blocks[b].range() {
            let instr = &instrs[pc];
            if is_vector(pc) {
                let mut sources: Vec<&BTreeSet<usize>> = Vec::new();
                for &o in &instr.srcs {
                    if let Operand::Reg(r) = o {
                        sources.push(&st.regs[usize::from(r.0)]);
                    }
                }
                if let Op::Sel(p) = instr.op {
                    sources.push(&st.preds[usize::from(p.0)]);
                }
                if let Some(g) = instr.guard {
                    sources.push(&st.preds[usize::from(g.pred.0)]);
                    // Guard-false lanes keep the old contents.
                    if let Some(d) = instr.dst {
                        sources.push(&st.regs[usize::from(d.0)]);
                    }
                    if let Some(p) = instr.pdst {
                        sources.push(&st.preds[usize::from(p.0)]);
                    }
                }
                for set in sources {
                    for &d in set {
                        if d == ENTRY || (d != pc && is_vector(d)) {
                            parents[pc].insert(d);
                        }
                    }
                }
            }
            st.transfer(pc, instr);
        }
    }

    // ---- multi-source BFS from the seeds -------------------------------
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut entry_children: Vec<usize> = Vec::new();
    for (pc, ps) in parents.iter().enumerate() {
        for &d in ps {
            if d == ENTRY {
                entry_children.push(pc);
            } else {
                children[d].push(pc);
            }
        }
    }
    let mut seed: Vec<Option<BlameSeed>> = vec![None; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for pc in 0..n {
        if is_vector(pc) {
            if let Some(s) = seed_of(&instrs[pc]) {
                seed[pc] = Some(s);
                queue.push_back(pc);
            }
        }
    }
    for &pc in &entry_children {
        if seed[pc].is_none() {
            seed[pc] = Some(BlameSeed::EntryUndef);
            queue.push_back(pc);
        }
    }
    while let Some(pc) = queue.pop_front() {
        for &c in &children[pc] {
            if seed[c].is_none() {
                seed[c] = seed[pc];
                prev[c] = Some(pc);
                queue.push_back(c);
            }
        }
    }

    let chains = (0..n)
        .map(|pc| {
            if !is_vector(pc) {
                return None;
            }
            let Some(s) = seed[pc] else {
                return Some(BlameChain { seed: BlameSeed::Unexplained, path: vec![pc] });
            };
            let mut path = vec![pc];
            let mut cur = pc;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            Some(BlameChain { seed: s, path })
        })
        .collect();
    Blame { chains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::compile;
    use simt_isa::{CmpOp, Guard, KernelBuilder, MemSpace};

    #[test]
    fn tid_y_seed_propagates_through_chain() {
        let mut b = KernelBuilder::new("ychain");
        let ty = b.special(SpecialReg::TidY); // 0: seed
        let x = b.iadd(ty, 1u32); // 1: poisoned by 0
        let y = b.imul(x, 2u32); // 2: poisoned by 1
        b.store(MemSpace::Global, 0u32, y, 0); // 3
        let ck = compile(b.finish());
        let bl = blame(&ck, &ck.classes);
        let c2 = bl.chains[2].as_ref().unwrap();
        assert_eq!(c2.seed, BlameSeed::TidY);
        assert_eq!(c2.path, vec![0, 1, 2]);
        assert!(bl.chains.iter().flatten().all(|c| c.seed == BlameSeed::TidY));
        assert_eq!(bl.seed_histogram()[&BlameSeed::TidY], 4);
    }

    #[test]
    fn redundant_instructions_carry_no_chain() {
        let mut b = KernelBuilder::new("clean");
        let t = b.special(SpecialReg::TidX);
        let a = b.shl_imm(t, 2);
        b.store(MemSpace::Global, a, t, 0);
        let ck = compile(b.finish());
        let bl = blame(&ck, &ck.classes);
        assert!(bl.chains.iter().all(Option::is_none), "no vector markings");
    }

    #[test]
    fn atomic_seed_and_shortest_path() {
        let mut b = KernelBuilder::new("at");
        let old = b.atom(simt_isa::AtomOp::Add, 0u32, 1u32); // 1: atomic (pc 0 is the mov of the addr imm? no: atom takes operands)
        let y = b.iadd(old, 1u32);
        b.store(MemSpace::Global, 4u32, y, 0);
        let ck = compile(b.finish());
        let bl = blame(&ck, &ck.classes);
        let atom_pc = ck.kernel.instrs.iter().position(|i| matches!(i.op, Op::Atom(_))).unwrap();
        let add_pc = atom_pc + 1;
        let c = bl.chains[add_pc].as_ref().unwrap();
        assert_eq!(c.seed, BlameSeed::Atomic);
        assert_eq!(c.path, vec![atom_pc, add_pc]);
    }

    #[test]
    fn entry_undef_read_is_blamed() {
        let mut b = KernelBuilder::new("undef");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 8u32);
        let dst = b.alloc();
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Mov,
                Some(dst),
                None,
                vec![simt_isa::Operand::Imm(7)],
            )
            .with_guard(Guard::if_true(p)),
        );
        let y = b.iadd(dst, 5u32);
        b.store(MemSpace::Global, 0u32, y, 0);
        let ck = compile(b.finish());
        let bl = blame(&ck, &ck.classes);
        // The guarded mov folds in the never-written old contents.
        let mov_pc = 2;
        let c = bl.chains[mov_pc].as_ref().unwrap();
        assert_eq!(c.seed, BlameSeed::EntryUndef);
        assert_eq!(c.path, vec![mov_pc]);
        let c_add = bl.chains[3].as_ref().unwrap();
        assert_eq!(c_add.seed, BlameSeed::EntryUndef);
    }

    #[test]
    fn guard_predicate_poison_is_followed() {
        let mut b = KernelBuilder::new("guard");
        let ty = b.special(SpecialReg::TidY); // 0: vector seed
        let p = b.setp(CmpOp::Lt, ty, 4u32); // 1: vector predicate
        let dst = b.mov(7u32); // 2: uniform
        b.emit(
            simt_isa::Instruction::new(
                simt_isa::Op::Mov,
                Some(dst),
                None,
                vec![simt_isa::Operand::Imm(3)],
            )
            .with_guard(Guard::if_true(p)),
        ); // 3: vector via guard
        b.store(MemSpace::Global, 0u32, dst, 0);
        let ck = compile(b.finish());
        let bl = blame(&ck, &ck.classes);
        let c = bl.chains[3].as_ref().unwrap();
        assert_eq!(c.seed, BlameSeed::TidY);
        assert_eq!(c.path, vec![0, 1, 3]);
    }
}
