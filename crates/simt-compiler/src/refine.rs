//! Marking-precision refinement over a [`CompiledKernel`].
//!
//! The baseline analysis of [`crate::analysis`] deliberately mirrors the
//! paper's compiler pass. This module layers the PR-3 precision upgrades on
//! top of it and re-derives markings from the strengthened classes:
//!
//! 1. **Entry-uniform seeding** — the machine zero-initializes register and
//!    predicate files, so a read-before-write is TB-uniform rather than
//!    vector ([`AnalysisOptions::entry_uniform`]).
//! 2. **Branch-edge refinement** — on the edge where `setp.eq r, <uniform>`
//!    holds, `r` is pinned to a TB-uniform value
//!    ([`AnalysisOptions::branch_edge_refine`]).
//! 3. **`tid.y` conditional analysis** — the paper's 3D-TB extension,
//!    promoting `tid.y`-derived values to `CondRedundantXY`
//!    ([`AnalysisOptions::analyze_tid_y`]).
//! 4. **Affine closure** — the affine-interval dataflow of
//!    [`crate::affine`] tracks values as `a*tid.x + b*tid.y + c` with a
//!    TB-uniform `c`; a destination whose post-write abstraction has
//!    `a = b = 0` is TB-uniform, `b = 0` is conditionally redundant affine
//!    in `tid.x`, and any other affine form is `CondRedundantXY`. This
//!    catches idioms the class lattice alone cannot, e.g. a `min`/`max` of
//!    two operands with equal thread coefficients, or tid terms that
//!    cancel through subtraction.
//!
//! Each pass only ever *raises* a class in the `(Red, Pat)` order, so the
//! refined markings are a pointwise superset of the baseline markings; the
//! differential marking oracle in `simt-verify` checks the result on real
//! executions.

use crate::affine::{self, AffineVal};
use crate::analysis::{analyze, AnalysisOptions};
use crate::class::AbsClass;
use crate::pass::CompiledKernel;
use simt_isa::Op;

/// Why a class was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineReason {
    /// Entry-uniform seeding of the zero-initialized register files.
    EntryUniform,
    /// Branch-edge equality refinement against a uniform value.
    BranchEdge,
    /// `tid.y` tracked as conditionally redundant (3D-TB extension).
    TidY,
    /// Affine-interval closure over both tid dimensions.
    AffineClosure,
}

impl std::fmt::Display for RefineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RefineReason::EntryUniform => "entry-uniform",
            RefineReason::BranchEdge => "branch-edge",
            RefineReason::TidY => "tid-y",
            RefineReason::AffineClosure => "affine-closure",
        };
        f.write_str(s)
    }
}

/// One instruction whose class the refinement raised.
#[derive(Debug, Clone, Copy)]
pub struct Upgrade {
    /// Instruction index.
    pub pc: usize,
    /// Baseline class.
    pub from: AbsClass,
    /// Refined class.
    pub to: AbsClass,
    /// The first pass that improved on the baseline at this pc.
    pub reason: RefineReason,
}

/// A re-marked kernel plus the per-instruction upgrades that justify it.
#[derive(Debug, Clone)]
pub struct Refined {
    /// The kernel with refined classes and markings.
    pub ck: CompiledKernel,
    /// Strict class raises relative to the baseline, in pc order.
    pub upgrades: Vec<Upgrade>,
}

/// Pointwise join in the `(Red, Pat)` order: keep the stronger claim of
/// two individually sound analyses.
fn join(a: AbsClass, b: AbsClass) -> AbsClass {
    AbsClass { red: a.red.max(b.red), pat: a.pat.max(b.pat) }
}

/// True when `b` claims strictly more than `a` in at least one dimension.
fn raises(a: AbsClass, b: AbsClass) -> bool {
    join(a, b) != a
}

/// Classes from the affine-interval closure: for each register-writing
/// instruction, the post-write abstraction of its destination (which folds
/// in guard hulls), mapped into the class lattice.
fn affine_classes(ck: &CompiledKernel, block_z: u32) -> Vec<Option<AbsClass>> {
    let in_states = affine::fixpoint(&ck.kernel, &ck.cfg, block_z, true);
    let mut classes: Vec<Option<AbsClass>> = vec![None; ck.kernel.instrs.len()];
    for (b, block) in ck.cfg.blocks.iter().enumerate() {
        if !in_states[b].reachable {
            continue;
        }
        let mut st = in_states[b].clone();
        for pc in block.range() {
            let instr = &ck.kernel.instrs[pc];
            affine::transfer(&mut st, instr, block_z);
            let writes_reg = instr.op.writes_dst() && !matches!(instr.op, Op::Atom(_));
            let (Some(d), true) = (instr.dst, writes_reg) else { continue };
            let AffineVal::Aff(f) = st.regs[usize::from(d.0)] else { continue };
            classes[pc] = Some(if f.is_uniform() {
                AbsClass::UNIFORM
            } else if f.b == 0 {
                AbsClass::COND_AFFINE
            } else {
                // Mixed tid.x/tid.y dependence: redundant only when both
                // launch checks pass, with no intra-warp structure claimed
                // (matches the tid.y seeding of the class analysis).
                AbsClass {
                    red: crate::class::Red::CondRedundantXY,
                    pat: crate::class::Pat::Arbitrary,
                }
            });
        }
    }
    classes
}

/// Runs every refinement pass over `ck` and returns the re-marked kernel.
/// `block_z` is the launch's z extent (the affine domain only speaks 2D
/// blocks, so `tid.z` reads poison affine values when `block_z > 1`).
#[must_use]
pub fn refine(ck: &CompiledKernel, block_z: u32) -> Refined {
    let base = AnalysisOptions::default();
    let stages: [(RefineReason, AnalysisOptions); 3] = [
        (RefineReason::EntryUniform, AnalysisOptions { entry_uniform: true, ..base }),
        (
            RefineReason::BranchEdge,
            AnalysisOptions { entry_uniform: true, branch_edge_refine: true, ..base },
        ),
        (
            RefineReason::TidY,
            AnalysisOptions { entry_uniform: true, branch_edge_refine: true, analyze_tid_y: true },
        ),
    ];

    let n = ck.kernel.instrs.len();
    let mut classes = ck.classes.clone();
    let mut reasons: Vec<Option<RefineReason>> = vec![None; n];
    for (reason, opts) in stages {
        let a = analyze(&ck.kernel, &ck.cfg, opts);
        for (pc, &c) in a.instr_class.iter().enumerate() {
            if raises(classes[pc], c) {
                classes[pc] = join(classes[pc], c);
                reasons[pc].get_or_insert(reason);
            }
        }
    }
    for (pc, c) in affine_classes(ck, block_z).into_iter().enumerate() {
        let Some(c) = c else { continue };
        if raises(classes[pc], c) {
            classes[pc] = join(classes[pc], c);
            reasons[pc].get_or_insert(RefineReason::AffineClosure);
        }
    }

    let upgrades: Vec<Upgrade> = (0..n)
        .filter_map(|pc| {
            reasons[pc].map(|reason| Upgrade { pc, from: ck.classes[pc], to: classes[pc], reason })
        })
        .collect();

    let markings = classes.iter().map(|c| c.marking()).collect();
    let mut refined = ck.clone();
    refined.classes = classes;
    refined.markings = markings;
    Refined { ck: refined, upgrades }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{Pat, Red};
    use crate::pass::{compile, LaunchPlan};
    use simt_isa::{
        CmpOp, Guard, Instruction, KernelBuilder, LaunchConfig, Marking, MemSpace, Operand,
        SpecialReg,
    };

    #[test]
    fn entry_uniform_upgrades_read_before_write() {
        // A guarded mov into a never-written register: the baseline folds
        // in the old (vector-seeded) contents; refined, the entry value is
        // the zero-initialized uniform.
        let mut b = KernelBuilder::new("entry");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 8u32);
        let dst = b.alloc();
        b.emit(
            Instruction::new(simt_isa::Op::Mov, Some(dst), None, vec![Operand::Imm(7)])
                .with_guard(Guard::if_true(p)),
        );
        let y = b.iadd(dst, 5u32);
        b.store(MemSpace::Global, 0u32, y, 0);
        let ck = compile(b.finish());
        let r = refine(&ck, 1);
        let add_pc = 3;
        assert_eq!(ck.markings[add_pc], Marking::Vector);
        assert_eq!(r.ck.markings[add_pc], Marking::ConditionallyRedundant);
        assert!(r
            .upgrades
            .iter()
            .any(|u| u.pc == add_pc && u.reason == RefineReason::EntryUniform));
    }

    #[test]
    fn branch_edge_pins_equality_compared_register() {
        // v is vector-classed (warpid-derived); inside `if (v == 42)` it
        // equals the uniform 42, so v-derived values are redundant there.
        let mut b = KernelBuilder::new("edge");
        let t = b.special(SpecialReg::TidX);
        let a = b.shl_imm(t, 2);
        let w = b.special(SpecialReg::WarpId);
        let vl = b.load(MemSpace::Global, a, 0);
        let v = b.iadd(vl, w);
        let p = b.setp(CmpOp::Eq, v, 42u32);
        let out = b.alloc();
        b.if_then(Guard::if_true(p), |b| {
            b.iadd_to(out, v, 1u32);
        });
        b.store(MemSpace::Global, a, out, 0);
        let ck = compile(b.finish());
        let r = refine(&ck, 1);
        let add_pc =
            ck.kernel.instrs.iter().rposition(|i| matches!(i.op, simt_isa::Op::IAdd)).unwrap();
        assert_eq!(ck.markings[add_pc], Marking::Vector);
        assert_eq!(r.ck.markings[add_pc], Marking::Redundant);
        assert!(r.upgrades.iter().any(|u| u.pc == add_pc && u.reason == RefineReason::BranchEdge));
    }

    #[test]
    fn affine_closure_cancels_tid_terms() {
        // y = (tid.x + 7) - tid.x is uniform, but the class lattice only
        // sees affine - affine = affine (cond-redundant); the interval
        // domain cancels the coefficients exactly.
        let mut b = KernelBuilder::new("cancel");
        let t = b.special(SpecialReg::TidX);
        let u = b.iadd(t, 7u32);
        let y = b.isub(u, t);
        b.store(MemSpace::Global, 0u32, y, 0);
        let ck = compile(b.finish());
        let r = refine(&ck, 1);
        assert_eq!(ck.classes[2].red, Red::CondRedundant);
        assert_eq!(r.ck.classes[2], AbsClass::UNIFORM);
        assert!(r.upgrades.iter().any(|u| u.pc == 2 && u.reason == RefineReason::AffineClosure));
    }

    #[test]
    fn affine_closure_classifies_mixed_xy_chain() {
        // 16*tid.y + tid.x: baseline is vector (tid.y unanalyzed); the
        // closure sees b = 16, a = 1 and classifies CondRedundantXY.
        let mut b = KernelBuilder::new("xy");
        let ty = b.special(SpecialReg::TidY);
        let tx = b.special(SpecialReg::TidX);
        let lin = b.imad(ty, 16u32, tx);
        b.store(MemSpace::Global, 0u32, lin, 0);
        let ck = compile(b.finish());
        let r = refine(&ck, 1);
        assert_eq!(ck.markings[2], Marking::Vector);
        assert_eq!(r.ck.classes[2].red, Red::CondRedundantXY);
        // Skippable under a launch promoting both dimensions…
        let plan = LaunchPlan::new(&r.ck, &LaunchConfig::new(1u32, (8u32, 4u32)));
        let fc = r.ck.classes[2].finalize(plan.promoted_x, plan.promoted_y);
        assert_eq!(fc.red, Red::Redundant);
        // …but not under a 2D launch failing the y check.
        let plan16 = LaunchPlan::new(&r.ck, &LaunchConfig::new(1u32, (16u32, 16u32)));
        assert!(plan16.promoted_x && !plan16.promoted_y);
        let fc16 = r.ck.classes[2].finalize(plan16.promoted_x, plan16.promoted_y);
        assert_eq!(fc16.red, Red::NotRedundant);
    }

    #[test]
    fn min_of_equal_coefficient_operands_refines() {
        // min(4*tid.x + 3, 4*tid.x + 9) = 4*tid.x + 3: equal thread
        // coefficients cancel, so the min stays cond-affine instead of
        // degrading to unstructured.
        let mut b = KernelBuilder::new("minmax");
        let t = b.special(SpecialReg::TidX);
        let s = b.shl_imm(t, 2);
        let x = b.iadd(s, 3u32);
        let y = b.iadd(s, 9u32);
        let m = b.imin(x, y);
        b.store(MemSpace::Global, 0u32, m, 0);
        let ck = compile(b.finish());
        let r = refine(&ck, 1);
        let min_pc = 4;
        assert_eq!(ck.classes[min_pc].pat, Pat::Arbitrary, "baseline: opaque min");
        assert_eq!(r.ck.classes[min_pc], AbsClass::COND_AFFINE);
    }

    #[test]
    fn refinement_is_pointwise_monotone() {
        let mut b = KernelBuilder::new("mono");
        let t = b.special(SpecialReg::TidX);
        let ty = b.special(SpecialReg::TidY);
        let q = b.iadd(t, ty);
        let p = b.setp(CmpOp::Eq, q, 5u32);
        let out = b.alloc();
        b.if_then(Guard::if_true(p), |b| {
            b.mov_to(out, 1u32);
        });
        b.store(MemSpace::Global, 0u32, out, 0);
        let ck = compile(b.finish());
        let r = refine(&ck, 1);
        for pc in 0..ck.kernel.instrs.len() {
            let (b_, a_) = (ck.classes[pc], r.ck.classes[pc]);
            assert!(a_.red >= b_.red && a_.pat >= b_.pat, "pc {pc}: {b_:?} -> {a_:?}");
        }
    }
}
