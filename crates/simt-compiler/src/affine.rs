//! Thread-affine interval domain: `a*tid.x + b*tid.y + c`, `c ∈ [lo, hi]`.
//!
//! This extends the redundancy classes of [`crate::analysis`] — which only
//! answer *whether* a value depends on the thread index — to *how* it
//! depends on it. A value abstracted as [`Affine`] is, at one dynamic
//! execution point, `a*tid.x + b*tid.y + c` for every thread of the
//! block, where `c` is a **TB-uniform** constant known to lie in
//! `[lo, hi]` (the same `c` for all threads; different dynamic instances
//! may pick different `c` from the interval). The bounds use
//! [`NEG_INF`] / [`POS_INF`] as infinities.
//!
//! The domain is the address language of the static shared-memory race
//! pass in `simt-verify`: thread-affine addresses give closed-form
//! footprints whose overlap across distinct threads is decidable, and the
//! interval tracks barrier-free loop-carried constants (tile counters,
//! strides) precisely enough to separate double-buffered regions.
//!
//! Arithmetic is over ideal integers (no 32-bit wraparound). Kernel
//! address arithmetic never approaches `u32` range in this codebase — the
//! functional executor separately asserts in-bounds shared accesses — and
//! any value whose bounds leave the representable range collapses to
//! [`AffineVal::Unknown`], which the race pass escalates conservatively.

use crate::cfg::Cfg;
use simt_isa::{CmpOp, Instruction, Kernel, MemSpace, Op, Operand, Reg, SpecialReg};

/// Lower-bound infinity for [`Affine`] intervals.
pub const NEG_INF: i64 = i64::MIN;
/// Upper-bound infinity for [`Affine`] intervals.
pub const POS_INF: i64 = i64::MAX;

/// `a*tid.x + b*tid.y + c` with `c ∈ [lo, hi]`.
///
/// The `uniform` bit is the divergence-awareness of the domain: when set,
/// `c` is **TB-uniform** — one shared constant for every thread of the
/// dynamic instance. When clear, each thread may hold its own `c_t` from
/// the interval (the value went through a divergent write or merge), so
/// the interval is only a per-thread envelope. An *exact* constant
/// (`lo == hi`) determines every thread's value regardless of the bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Affine {
    /// Coefficient of `tid.x`.
    pub a: i64,
    /// Coefficient of `tid.y`.
    pub b: i64,
    /// Lower bound (inclusive) of the constant.
    pub lo: i64,
    /// Upper bound (inclusive) of the constant.
    pub hi: i64,
    /// True when `c` is one shared constant across the threads of the
    /// dynamic instance (see type-level docs).
    pub uniform: bool,
}

/// Abstract value of one register in the affine-interval dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AffineVal {
    /// Unreached / no value yet (lattice top; identity of [`meet`]).
    ///
    /// [`meet`]: AffineVal::meet
    Top,
    /// Thread-affine with a uniform interval constant.
    Aff(Affine),
    /// Anything, possibly thread-dependent in a non-affine way
    /// (lattice bottom).
    Unknown,
}

/// Saturating add where out-of-range lower bounds clamp to `NEG_INF`.
fn add_lo(x: i64, y: i64) -> Option<i64> {
    if x == NEG_INF || y == NEG_INF {
        return Some(NEG_INF);
    }
    clamp_lo(i128::from(x) + i128::from(y))
}

/// Saturating add where out-of-range upper bounds clamp to `POS_INF`.
fn add_hi(x: i64, y: i64) -> Option<i64> {
    if x == POS_INF || y == POS_INF {
        return Some(POS_INF);
    }
    clamp_hi(i128::from(x) + i128::from(y))
}

/// Maps an exact value to a lower bound: clamping *down* is sound, a value
/// above the representable range is not (it would overstate the bound).
fn clamp_lo(v: i128) -> Option<i64> {
    if v <= i128::from(NEG_INF) {
        Some(NEG_INF)
    } else if v >= i128::from(POS_INF) {
        None
    } else {
        Some(v as i64)
    }
}

/// Maps an exact value to an upper bound (mirror of [`clamp_lo`]).
fn clamp_hi(v: i128) -> Option<i64> {
    if v >= i128::from(POS_INF) {
        Some(POS_INF)
    } else if v <= i128::from(NEG_INF) {
        None
    } else {
        Some(v as i64)
    }
}

/// `x * k` for an interval *bound* `x` and finite scale `k`, honoring
/// infinities and the direction flip on negative `k`.
fn mul_bound(x: i64, k: i64) -> i128 {
    if x == NEG_INF {
        if k >= 0 {
            i128::from(NEG_INF) * 2
        } else {
            i128::from(POS_INF) * 2
        }
    } else if x == POS_INF {
        if k >= 0 {
            i128::from(POS_INF) * 2
        } else {
            i128::from(NEG_INF) * 2
        }
    } else {
        i128::from(x) * i128::from(k)
    }
}

impl Affine {
    /// The exact constant `v`.
    #[must_use]
    pub fn constant(v: i64) -> Affine {
        Affine { a: 0, b: 0, lo: v, hi: v, uniform: true }
    }

    /// True when the value has no thread-coordinate component. This is the
    /// *structural* notion (coefficients only); it says nothing about
    /// whether `c` is shared across threads — see
    /// [`is_tb_uniform`](Affine::is_tb_uniform) for the sound cross-thread
    /// claim.
    #[must_use]
    pub fn is_uniform(self) -> bool {
        self.a == 0 && self.b == 0
    }

    /// True when the constant is provably one shared value per dynamic
    /// instance: either the `uniform` bit survived every join and
    /// transfer, or the constant is exact (a literal is trivially
    /// shared).
    #[must_use]
    pub fn c_uniform(self) -> bool {
        self.uniform || self.lo == self.hi
    }

    /// True when the *value* is provably the same for every thread of the
    /// dynamic instance: no thread coordinates, and a shared constant.
    #[must_use]
    pub fn is_tb_uniform(self) -> bool {
        self.a == 0 && self.b == 0 && self.c_uniform()
    }

    /// True when the constant is a single known value.
    #[must_use]
    pub fn is_exact(self) -> bool {
        self.lo == self.hi
    }

    /// Evaluates for thread `(tx, ty)` when the constant is exact.
    #[must_use]
    pub fn eval(self, tx: i64, ty: i64) -> Option<i64> {
        if !self.is_exact() {
            return None;
        }
        let v = i128::from(self.a) * i128::from(tx)
            + i128::from(self.b) * i128::from(ty)
            + i128::from(self.lo);
        i64::try_from(v).ok()
    }

    /// Range of values over threads `tx ∈ [0, bx)`, `ty ∈ [0, by)` and
    /// every constant in the interval: `(min, max)` with infinities.
    #[must_use]
    pub fn range(self, bx: i64, by: i64) -> (i64, i64) {
        let ax = (self.a * (bx - 1)).min(0);
        let axh = (self.a * (bx - 1)).max(0);
        let by_ = (self.b * (by - 1)).min(0);
        let byh = (self.b * (by - 1)).max(0);
        let lo = add_lo(self.lo, ax + by_).unwrap_or(NEG_INF);
        let hi = add_hi(self.hi, axh + byh).unwrap_or(POS_INF);
        (lo, hi)
    }
}

impl AffineVal {
    /// The exact constant `v`.
    #[must_use]
    pub fn constant(v: i64) -> AffineVal {
        AffineVal::Aff(Affine::constant(v))
    }

    /// A TB-uniform value about which nothing else is known.
    #[must_use]
    pub fn uniform_unknown() -> AffineVal {
        AffineVal::Aff(Affine { a: 0, b: 0, lo: NEG_INF, hi: POS_INF, uniform: true })
    }

    /// Clears the TB-uniform bit: the value keeps its per-thread affine
    /// envelope but loses the shared-constant claim. Applied to writes in
    /// divergent regions and to merges under non-uniform guards.
    #[must_use]
    pub fn non_uniform(self) -> AffineVal {
        match self {
            AffineVal::Aff(f) => AffineVal::Aff(Affine { uniform: false, ..f }),
            v => v,
        }
    }

    /// True when the value is provably one shared constant per dynamic
    /// instance (bit-aware; see [`Affine::is_tb_uniform`]).
    #[must_use]
    pub fn is_tb_uniform(self) -> bool {
        matches!(self, AffineVal::Aff(f) if f.is_tb_uniform())
    }

    /// Abstract value of a special register under `block` dimensions.
    #[must_use]
    pub fn of_special(s: SpecialReg, block_z: u32) -> AffineVal {
        match s {
            SpecialReg::TidX => AffineVal::Aff(Affine { a: 1, b: 0, lo: 0, hi: 0, uniform: true }),
            SpecialReg::TidY => AffineVal::Aff(Affine { a: 0, b: 1, lo: 0, hi: 0, uniform: true }),
            // The domain is 2D; a flat block pins tid.z to zero, anything
            // else is outside the affine language.
            SpecialReg::TidZ if block_z == 1 => AffineVal::constant(0),
            SpecialReg::TidZ => AffineVal::Unknown,
            // TB-uniform by construction.
            SpecialReg::CtaidX
            | SpecialReg::CtaidY
            | SpecialReg::CtaidZ
            | SpecialReg::NtidX
            | SpecialReg::NtidY
            | SpecialReg::NtidZ
            | SpecialReg::NctaidX
            | SpecialReg::NctaidY
            | SpecialReg::NctaidZ => AffineVal::uniform_unknown(),
            // Lane / warp ids relate to the *linear* thread id, not the
            // (tid.x, tid.y) coordinates this domain speaks.
            SpecialReg::LaneId | SpecialReg::WarpId => AffineVal::Unknown,
        }
    }

    /// True when provably the same value for every thread.
    #[must_use]
    pub fn is_uniform(self) -> bool {
        matches!(self, AffineVal::Aff(f) if f.is_uniform())
    }

    /// The affine form, if any.
    #[must_use]
    pub fn affine(self) -> Option<Affine> {
        match self {
            AffineVal::Aff(f) => Some(f),
            _ => None,
        }
    }

    /// Lattice meet (join of concretizations): identical coefficients hull
    /// their intervals, anything else falls to [`AffineVal::Unknown`].
    /// With `widen`, a growing bound jumps straight to infinity so
    /// loop-carried constants converge.
    #[must_use]
    pub fn meet(self, other: AffineVal, widen: bool) -> AffineVal {
        match (self, other) {
            (AffineVal::Top, v) | (v, AffineVal::Top) => v,
            (AffineVal::Unknown, _) | (_, AffineVal::Unknown) => AffineVal::Unknown,
            (AffineVal::Aff(x), AffineVal::Aff(y)) => {
                if x.a != y.a || x.b != y.b {
                    return AffineVal::Unknown;
                }
                let lo = if y.lo < x.lo {
                    if widen {
                        NEG_INF
                    } else {
                        y.lo
                    }
                } else {
                    x.lo
                };
                let hi = if y.hi > x.hi {
                    if widen {
                        POS_INF
                    } else {
                        y.hi
                    }
                } else {
                    x.hi
                };
                // The raw bits AND: a hull mixes the two incoming
                // constants, which stays shared only when both sides were
                // shared (divergent mixes arrive here already bit-cleared
                // by the region-aware transfer).
                AffineVal::Aff(Affine { lo, hi, uniform: x.uniform && y.uniform, ..x })
            }
        }
    }

    /// `self * k` for an exact uniform scale `k`.
    #[must_use]
    fn scale(self, k: i64) -> AffineVal {
        let Some(x) = self.affine() else { return AffineVal::Unknown };
        let (Some(a), Some(b)) = (x.a.checked_mul(k), x.b.checked_mul(k)) else {
            return AffineVal::Unknown;
        };
        let (p, q) = (mul_bound(x.lo, k), mul_bound(x.hi, k));
        let (Some(lo), Some(hi)) = (clamp_lo(p.min(q)), clamp_hi(p.max(q))) else {
            return AffineVal::Unknown;
        };
        AffineVal::Aff(Affine { a, b, lo, hi, uniform: x.c_uniform() })
    }

    /// Per-thread min. Decidable when both operands share the same thread
    /// coefficients: the thread terms cancel, so the min acts on the
    /// uniform constants alone (uniform operands are the `a = b = 0`
    /// special case).
    #[must_use]
    pub fn min_(self, other: AffineVal) -> AffineVal {
        match (self.affine(), other.affine()) {
            (Some(x), Some(y)) if x.a == y.a && x.b == y.b => AffineVal::Aff(Affine {
                lo: x.lo.min(y.lo),
                hi: x.hi.min(y.hi),
                uniform: x.c_uniform() && y.c_uniform(),
                ..x
            }),
            _ => AffineVal::Unknown,
        }
    }

    /// Per-thread max (mirror of [`min_`](AffineVal::min_)).
    #[must_use]
    pub fn max_(self, other: AffineVal) -> AffineVal {
        match (self.affine(), other.affine()) {
            (Some(x), Some(y)) if x.a == y.a && x.b == y.b => AffineVal::Aff(Affine {
                lo: x.lo.max(y.lo),
                hi: x.hi.max(y.hi),
                uniform: x.c_uniform() && y.c_uniform(),
                ..x
            }),
            _ => AffineVal::Unknown,
        }
    }

    /// Fallback transfer for ops the domain has no precise rule for:
    /// uniform inputs give a uniform (but otherwise unknown) result, any
    /// thread-dependent input poisons it.
    #[must_use]
    pub fn opaque(operands: &[AffineVal]) -> AffineVal {
        if operands.iter().all(|v| v.is_uniform()) {
            if operands.iter().all(|v| v.is_tb_uniform()) {
                AffineVal::uniform_unknown()
            } else {
                AffineVal::uniform_unknown().non_uniform()
            }
        } else {
            AffineVal::Unknown
        }
    }
}

impl std::ops::Add for AffineVal {
    type Output = AffineVal;

    fn add(self, other: AffineVal) -> AffineVal {
        let (Some(x), Some(y)) = (self.affine(), other.affine()) else {
            return AffineVal::Unknown;
        };
        let (Some(a), Some(b)) = (x.a.checked_add(y.a), x.b.checked_add(y.b)) else {
            return AffineVal::Unknown;
        };
        let (Some(lo), Some(hi)) = (add_lo(x.lo, y.lo), add_hi(x.hi, y.hi)) else {
            return AffineVal::Unknown;
        };
        AffineVal::Aff(Affine { a, b, lo, hi, uniform: x.c_uniform() && y.c_uniform() })
    }
}

impl std::ops::Neg for AffineVal {
    type Output = AffineVal;

    fn neg(self) -> AffineVal {
        let Some(x) = self.affine() else { return AffineVal::Unknown };
        let (Some(a), Some(b)) = (x.a.checked_neg(), x.b.checked_neg()) else {
            return AffineVal::Unknown;
        };
        let lo = if x.hi == POS_INF { NEG_INF } else { -x.hi };
        let hi = if x.lo == NEG_INF { POS_INF } else { -x.lo };
        AffineVal::Aff(Affine { a, b, lo, hi, uniform: x.c_uniform() })
    }
}

impl std::ops::Sub for AffineVal {
    type Output = AffineVal;

    fn sub(self, other: AffineVal) -> AffineVal {
        self + -other
    }
}

/// `self * other`. Exact when one side is an exact uniform constant;
/// interval-valued for uniform × uniform; otherwise unknown (the
/// product of two thread-dependent values is not affine).
impl std::ops::Mul for AffineVal {
    type Output = AffineVal;

    fn mul(self, other: AffineVal) -> AffineVal {
        match (self.affine(), other.affine()) {
            (Some(x), _) if x.is_uniform() && x.is_exact() => other.scale(x.lo),
            (_, Some(y)) if y.is_uniform() && y.is_exact() => self.scale(y.lo),
            (Some(x), Some(y)) if x.is_uniform() && y.is_uniform() => {
                let corners = [
                    mul_bound(x.lo, 1).checked_mul(i128::from(y.lo)),
                    mul_bound(x.lo, 1).checked_mul(i128::from(y.hi)),
                    mul_bound(x.hi, 1).checked_mul(i128::from(y.lo)),
                    mul_bound(x.hi, 1).checked_mul(i128::from(y.hi)),
                ];
                // Infinite inputs or overflow: stay uniform, lose bounds.
                let shared = x.c_uniform() && y.c_uniform();
                let wide = AffineVal::Aff(Affine {
                    a: 0,
                    b: 0,
                    lo: NEG_INF,
                    hi: POS_INF,
                    uniform: shared,
                });
                if x.lo == NEG_INF
                    || x.hi == POS_INF
                    || y.lo == NEG_INF
                    || y.hi == POS_INF
                    || corners.iter().any(Option::is_none)
                {
                    return wide;
                }
                let vals: Vec<i128> = corners.iter().map(|c| c.unwrap()).collect();
                let (Some(lo), Some(hi)) =
                    (clamp_lo(*vals.iter().min().unwrap()), clamp_hi(*vals.iter().max().unwrap()))
                else {
                    return wide;
                };
                AffineVal::Aff(Affine { a: 0, b: 0, lo, hi, uniform: shared })
            }
            _ => AffineVal::Unknown,
        }
    }
}

/// `self << k` for an exact uniform shift `k` (multiplication by
/// `2^k`); anything else is unknown.
impl std::ops::Shl for AffineVal {
    type Output = AffineVal;

    fn shl(self, other: AffineVal) -> AffineVal {
        match other.affine() {
            Some(k) if k.is_uniform() && k.is_exact() && (0..=31).contains(&k.lo) => {
                self.scale(1i64 << k.lo)
            }
            _ => AffineVal::Unknown,
        }
    }
}

// ---------------------------------------------------------------------------
// Affine-interval dataflow over a kernel CFG.
//
// This is the shared analysis engine behind the race pass in `simt-verify`
// and the memory-performance predictions / marking refinement of PR 3. One
// sweep abstracts every register as an [`AffineVal`] and every predicate as
// the comparison that defined it, with branch-edge interval refinement for
// uniform loop counters and widening after [`MAX_PRECISE_SWEEPS`].
// ---------------------------------------------------------------------------

/// Sweeps with precise interval hulls before widening kicks in: loop
/// counters with small exact bounds converge precisely, unbounded
/// loop-carried values jump to infinity instead of iterating forever.
pub const MAX_PRECISE_SWEEPS: usize = 40;

/// Abstract predicate: the comparison that defined it, kept symbolic so
/// guards can be evaluated per-thread and branch edges can refine the
/// compared register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredVal {
    /// Never defined on any path seen so far.
    Top,
    /// `cmp(lhs, rhs)` over the operand snapshots at the defining `setp`.
    Cmp {
        /// The comparison operator.
        cmp: CmpOp,
        /// Left operand snapshot at the defining `setp`.
        lhs: AffineVal,
        /// Right operand snapshot at the defining `setp`.
        rhs: AffineVal,
        /// Names the compared register while it is still live unredefined
        /// (for edge refinement); cleared on redefinition.
        lhs_reg: Option<Reg>,
    },
    /// Unknown truth value.
    Unknown,
}

impl PredVal {
    /// Lattice meet: agreeing snapshots survive, anything else degrades.
    #[must_use]
    pub fn meet(self, other: PredVal) -> PredVal {
        match (self, other) {
            (PredVal::Top, v) | (v, PredVal::Top) => v,
            (a, b) if a == b => a,
            _ => PredVal::Unknown,
        }
    }

    /// Structural uniformity of the operand snapshots (coefficients
    /// only). Kept for the per-thread envelope consumers; the sound
    /// cross-thread claim is [`is_tb_uniform`](PredVal::is_tb_uniform).
    #[must_use]
    pub fn is_uniform(self) -> bool {
        match self {
            PredVal::Cmp { lhs, rhs, .. } => lhs.is_uniform() && rhs.is_uniform(),
            _ => false,
        }
    }

    /// True when the predicate provably holds the same truth value in
    /// every thread of the dynamic instance: both operand snapshots are
    /// one shared constant (divergence-bit-aware).
    #[must_use]
    pub fn is_tb_uniform(self) -> bool {
        match self {
            PredVal::Cmp { lhs, rhs, .. } => lhs.is_tb_uniform() && rhs.is_tb_uniform(),
            _ => false,
        }
    }

    /// True when both operand snapshots determine every thread's value
    /// outright (exact constants per thread), so old and new definitions
    /// of the predicate agree bit-for-bit.
    #[must_use]
    fn is_determined(self) -> bool {
        match self {
            PredVal::Cmp { lhs, rhs, .. } => {
                lhs.affine().is_some_and(Affine::is_exact)
                    && rhs.affine().is_some_and(Affine::is_exact)
            }
            _ => false,
        }
    }

    /// Per-thread truth value, when both operands are exact affine.
    #[must_use]
    pub fn eval(self, tx: i64, ty: i64) -> Option<bool> {
        let PredVal::Cmp { cmp, lhs, rhs, .. } = self else { return None };
        let l = lhs.affine()?.eval(tx, ty)?;
        let r = rhs.affine()?.eval(tx, ty)?;
        Some(match cmp {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        })
    }
}

/// Dataflow state at one program point.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowState {
    /// False while no path from entry has reached this point.
    pub reachable: bool,
    /// Abstract value per general register.
    pub regs: Vec<AffineVal>,
    /// Abstract value per predicate register.
    pub preds: Vec<PredVal>,
}

impl FlowState {
    /// The not-yet-reached state (everything [`AffineVal::Top`]).
    #[must_use]
    pub fn unreachable(nregs: usize, npreds: usize) -> FlowState {
        FlowState {
            reachable: false,
            regs: vec![AffineVal::Top; nregs],
            preds: vec![PredVal::Top; npreds],
        }
    }

    /// The kernel-entry state. With `zeroed`, registers start as the exact
    /// constant 0 — sound for the functional executor, whose warps
    /// zero-initialize the register file, and TB-uniform by construction.
    /// Without it, entry values are unconstrained.
    #[must_use]
    pub fn entry(nregs: usize, npreds: usize, zeroed: bool) -> FlowState {
        let mut st = FlowState { reachable: true, ..FlowState::unreachable(nregs, npreds) };
        if zeroed {
            st.regs = vec![AffineVal::constant(0); nregs];
        }
        st
    }

    /// Meet with a predecessor's out-state; returns true on change.
    pub fn meet_with(&mut self, other: &FlowState, widen: bool) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            let m = a.meet(*b, widen);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        for (a, b) in self.preds.iter_mut().zip(&other.preds) {
            let m = a.meet(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        changed
    }
}

/// Abstract value of one operand under `st`.
#[must_use]
pub fn resolve(st: &FlowState, op: Operand) -> AffineVal {
    match op {
        // Reads of never-defined registers are V001/V002 territory; here
        // they are simply unknown.
        Operand::Reg(r) => match st.regs[usize::from(r.0)] {
            AffineVal::Top => AffineVal::Unknown,
            v => v,
        },
        // Immediates are u32 bit patterns used with wrapping adds;
        // sign-extending matches how negative deltas are encoded.
        Operand::Imm(v) => AffineVal::constant(i64::from(v as i32)),
    }
}

/// Abstract value an instruction writes to its general destination.
#[must_use]
pub fn value_of(st: &FlowState, instr: &Instruction, block_z: u32) -> AffineVal {
    let s = |i: usize| resolve(st, instr.srcs[i]);
    match instr.op {
        Op::Mov => s(0),
        Op::IAdd => s(0) + s(1),
        Op::ISub => s(0) - s(1),
        Op::IMul => s(0) * s(1),
        Op::IMad => s(0) * s(1) + s(2),
        Op::Shl => s(0) << s(1),
        Op::IMin => s(0).min_(s(1)),
        Op::IMax => s(0).max_(s(1)),
        Op::S2R(sp) => AffineVal::of_special(sp, block_z),
        Op::Ld(MemSpace::Param) => AffineVal::uniform_unknown(),
        // A TB-uniform address loads one word into every lane; the value
        // is unknown but shared within this dynamic instance. A merely
        // structural-uniform address may differ per thread, so the loaded
        // word keeps the envelope but not the shared-constant bit.
        Op::Ld(_) => {
            if s(0).is_tb_uniform() {
                AffineVal::uniform_unknown()
            } else if s(0).is_uniform() {
                AffineVal::uniform_unknown().non_uniform()
            } else {
                AffineVal::Unknown
            }
        }
        Op::Atom(_) => AffineVal::Unknown,
        Op::Sel(p) => {
            let (a, b) = (s(0), s(1));
            let pred = st.preds[usize::from(p.0)];
            if a == b {
                a
            } else if pred.is_uniform() {
                let m = a.meet(b, false);
                // All threads pick the same arm only when the predicate is
                // shared, not merely coefficient-free.
                if pred.is_tb_uniform() {
                    m
                } else {
                    m.non_uniform()
                }
            } else {
                // Per-thread mixture of two different affine forms.
                AffineVal::Unknown
            }
        }
        // Bitwise, shifts-by-register, float and conversion ops: uniform
        // in, uniform out; thread-dependent in, unknown out.
        _ => {
            let ops: Vec<AffineVal> = (0..instr.srcs.len()).map(s).collect();
            AffineVal::opaque(&ops)
        }
    }
}

/// Applies one instruction to the state.
pub fn transfer(st: &mut FlowState, instr: &Instruction, block_z: u32) {
    transfer_divergent(st, instr, block_z, false);
}

/// Applies one instruction to the state, knowing whether the instruction
/// sits inside a divergent region (between a thread-dependent branch and
/// its reconvergence point). Writes in a divergent region reach only the
/// active subset of threads, so their results lose the shared-constant
/// bit and predicate redefinitions degrade like non-uniform guards.
pub fn transfer_divergent(st: &mut FlowState, instr: &Instruction, block_z: u32, divergent: bool) {
    let guard_pred = instr.guard.map(|g| st.preds[usize::from(g.pred.0)]);
    let guard_uniform = guard_pred.is_some_and(PredVal::is_uniform);
    // True when every thread of the instance takes the write together:
    // no guard outside a divergent region, or a guard whose truth is one
    // shared value.
    let write_is_total = if divergent {
        false
    } else {
        match guard_pred {
            None => true,
            Some(p) => p.is_tb_uniform(),
        }
    };
    if let Some(p) = instr.pdst {
        let new = match instr.op {
            Op::Setp(cmp) => {
                let lhs_reg = match instr.srcs[0] {
                    Operand::Reg(r) => Some(r),
                    Operand::Imm(_) => None,
                };
                PredVal::Cmp {
                    cmp,
                    lhs: resolve(st, instr.srcs[0]),
                    rhs: resolve(st, instr.srcs[1]),
                    lhs_reg,
                }
            }
            _ => PredVal::Unknown,
        };
        let slot = &mut st.preds[usize::from(p.0)];
        // A guarded or divergent-region setp mixes old and new bits;
        // predicates have no hull, so anything but a redefinition whose
        // per-thread truth is unchanged (identical snapshot of exact
        // operands) degrades.
        *slot = if (instr.guard.is_none() && !divergent) || (*slot == new && new.is_determined()) {
            new
        } else {
            PredVal::Unknown
        };
    }
    if let Some(d) = instr.dst {
        let v = value_of(st, instr, block_z);
        let slot = usize::from(d.0);
        let old = match st.regs[slot] {
            AffineVal::Top => AffineVal::Unknown,
            o => o,
        };
        let merged = if instr.guard.is_none() {
            v
        } else if guard_uniform {
            // All threads together keep old or take new: hull is sound.
            old.meet(v, false)
        } else if old == v {
            v
        } else {
            // Thread-dependent mixture of old and new values.
            AffineVal::Unknown
        };
        // A partial write leaves inactive threads holding other values;
        // the envelope survives but the shared-constant claim does not.
        st.regs[slot] = if write_is_total { merged } else { merged.non_uniform() };
        // The compared register changed: branch edges can no longer
        // refine it through predicates captured before this write.
        for p in &mut st.preds {
            if let PredVal::Cmp { lhs_reg, .. } = p {
                if *lhs_reg == Some(d) {
                    *lhs_reg = None;
                }
            }
        }
    }
}

/// Narrows `lhs_reg`'s interval on a branch edge where the predicate is
/// known to be `polarity`. Only sound for TB-uniform comparisons against
/// exact constants (all threads agree on the edge taken).
pub fn refine_edge(st: &mut FlowState, pv: PredVal, polarity: bool) {
    let PredVal::Cmp { cmp, lhs, rhs, lhs_reg: Some(r) } = pv else { return };
    let Some(bound) = rhs.affine() else { return };
    if !(bound.is_uniform() && bound.is_exact() && lhs.is_uniform()) {
        return;
    }
    let slot = usize::from(r.0);
    // Belt and braces: the predicate describes the register only while
    // the register still holds the compared value.
    if st.regs[slot] != lhs {
        return;
    }
    let AffineVal::Aff(f) = st.regs[slot] else { return };
    let c = bound.lo;
    let (mut lo, mut hi) = (f.lo, f.hi);
    match (cmp, polarity) {
        (CmpOp::Lt, true) | (CmpOp::Ge, false) => hi = hi.min(c.saturating_sub(1)),
        (CmpOp::Lt, false) | (CmpOp::Ge, true) => lo = lo.max(c),
        (CmpOp::Le, true) | (CmpOp::Gt, false) => hi = hi.min(c),
        (CmpOp::Le, false) | (CmpOp::Gt, true) => lo = lo.max(c.saturating_add(1)),
        (CmpOp::Eq, true) | (CmpOp::Ne, false) => {
            lo = lo.max(c);
            hi = hi.min(c);
        }
        (CmpOp::Eq, false) | (CmpOp::Ne, true) => {}
    }
    if lo <= hi {
        st.regs[slot] = AffineVal::Aff(Affine { lo, hi, ..f });
    }
}

/// Number of predicate slots touched by `instrs` (destinations, guards and
/// `sel` conditions).
#[must_use]
pub fn num_preds(instrs: &[Instruction]) -> usize {
    instrs
        .iter()
        .flat_map(|i| {
            i.pdst.into_iter().chain(i.guard.map(|g| g.pred)).chain(match i.op {
                Op::Sel(p) => Some(p),
                _ => None,
            })
        })
        .map(|p| usize::from(p.0) + 1)
        .max()
        .unwrap_or(0)
}

/// Runs the affine-interval dataflow to a fixed point and returns the
/// per-block **in**-states. `entry_zeroed` selects [`FlowState::entry`]'s
/// register initialization. Branch edges of two-way guarded branches are
/// refined per [`refine_edge`]; widening starts after
/// [`MAX_PRECISE_SWEEPS`].
#[must_use]
pub fn fixpoint(kernel: &Kernel, cfg: &Cfg, block_z: u32, entry_zeroed: bool) -> Vec<FlowState> {
    fixpoint_with_divergence(kernel, cfg, block_z, entry_zeroed).0
}

/// [`fixpoint`], additionally returning the per-block divergent-region
/// flags: `flags[b]` is true when block `b` lies between some branch
/// whose predicate is not provably one shared value and that branch's
/// immediate post-dominator. Writes in flagged blocks reach only active
/// threads, so [`transfer_divergent`] strips their shared-constant bit;
/// callers replaying block bodies from the in-states must pass the same
/// flag to reproduce the fixpoint's values.
#[must_use]
pub fn fixpoint_with_divergence(
    kernel: &Kernel,
    cfg: &Cfg,
    block_z: u32,
    entry_zeroed: bool,
) -> (Vec<FlowState>, Vec<bool>) {
    let nregs = usize::from(kernel.num_regs);
    let npreds = num_preds(&kernel.instrs);
    let nb = cfg.blocks.len();
    let pdoms = crate::dom::PostDoms::compute(cfg);
    // Taint is monotone: a branch once seen divergent stays divergent (its
    // predicate can only descend the lattice), so regions only grow.
    let mut divergent = vec![false; nb];
    let mut in_states: Vec<FlowState> =
        (0..nb).map(|_| FlowState::unreachable(nregs, npreds)).collect();
    in_states[0] = FlowState::entry(nregs, npreds, entry_zeroed);
    let rpo = cfg.reverse_post_order();
    for sweep in 0.. {
        let widen = sweep >= MAX_PRECISE_SWEEPS;
        let mut changed = false;
        for &b in &rpo {
            if !in_states[b].reachable {
                continue;
            }
            let mut st = in_states[b].clone();
            for pc in cfg.blocks[b].range() {
                transfer_divergent(&mut st, &kernel.instrs[pc], block_z, divergent[b]);
            }
            let block = &cfg.blocks[b];
            let term = block.range().last();
            let branch_guard = term.and_then(|pc| match kernel.instrs[pc].op {
                Op::Bra { .. } => kernel.instrs[pc].guard,
                _ => None,
            });
            if let Some(g) = branch_guard {
                if block.succs.len() == 2 && block.succs[0] != block.succs[1] {
                    let pv = st.preds[usize::from(g.pred.0)];
                    // Top (never defined) is the zero-initialized register:
                    // uniformly false, not divergent.
                    let is_divergent = !matches!(pv, PredVal::Top) && !pv.is_tb_uniform();
                    if is_divergent {
                        for r in divergent_region(cfg, b, pdoms.ipdom[b]) {
                            if !divergent[r] {
                                divergent[r] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
            for (i, &succ) in block.succs.iter().enumerate() {
                let mut out = st.clone();
                if let Some(g) = branch_guard {
                    if block.succs.len() == 2 && block.succs[0] != block.succs[1] {
                        // succs[0] is the taken edge: the guard accepted.
                        let polarity = if i == 0 { !g.negate } else { g.negate };
                        let pv = out.preds[usize::from(g.pred.0)];
                        refine_edge(&mut out, pv, polarity);
                    }
                }
                changed |= in_states[succ].meet_with(&out, widen);
            }
        }
        if !changed {
            break;
        }
    }
    (in_states, divergent)
}

/// Blocks strictly between `branch_block` and its immediate
/// post-dominator `join`: everything reachable from the branch's
/// successors without passing through `join`.
fn divergent_region(cfg: &Cfg, branch_block: usize, join: usize) -> Vec<usize> {
    let mut seen = vec![false; cfg.len()];
    seen[join] = true;
    let mut stack: Vec<usize> = cfg.blocks[branch_block].succs.clone();
    let mut region = Vec::new();
    while let Some(b) = stack.pop() {
        if seen[b] {
            continue;
        }
        seen[b] = true;
        region.push(b);
        for &s in &cfg.blocks[b].succs {
            stack.push(s);
        }
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aff(a: i64, b: i64, lo: i64, hi: i64) -> AffineVal {
        AffineVal::Aff(Affine { a, b, lo, hi, uniform: true })
    }

    #[test]
    fn specials_map_to_affine_axes() {
        assert_eq!(AffineVal::of_special(SpecialReg::TidX, 1), aff(1, 0, 0, 0));
        assert_eq!(AffineVal::of_special(SpecialReg::TidY, 1), aff(0, 1, 0, 0));
        assert_eq!(AffineVal::of_special(SpecialReg::TidZ, 1), AffineVal::constant(0));
        assert_eq!(AffineVal::of_special(SpecialReg::TidZ, 4), AffineVal::Unknown);
        assert!(AffineVal::of_special(SpecialReg::CtaidX, 1).is_uniform());
        assert_eq!(AffineVal::of_special(SpecialReg::LaneId, 1), AffineVal::Unknown);
    }

    #[test]
    fn affine_arithmetic_tracks_coefficients() {
        let tx = aff(1, 0, 0, 0);
        let four_tx = tx << AffineVal::constant(2);
        assert_eq!(four_tx, aff(4, 0, 0, 0));
        let addr = four_tx + AffineVal::constant(128);
        assert_eq!(addr, aff(4, 0, 128, 128));
        let scaled = tx * AffineVal::constant(12) + aff(0, 1, 0, 0) * AffineVal::constant(3);
        assert_eq!(scaled, aff(12, 3, 0, 0));
        assert_eq!(tx * tx, AffineVal::Unknown, "tx*tx is not affine");
        assert_eq!(tx - AffineVal::constant(4), aff(1, 0, -4, -4));
    }

    #[test]
    fn meet_hulls_matching_coefficients() {
        let x = aff(4, 0, 0, 0);
        let y = aff(4, 0, 32, 96);
        assert_eq!(x.meet(y, false), aff(4, 0, 0, 96));
        assert_eq!(x.meet(y, true), aff(4, 0, 0, POS_INF), "widening jumps to infinity");
        assert_eq!(x.meet(aff(8, 0, 0, 0), false), AffineVal::Unknown);
        assert_eq!(AffineVal::Top.meet(x, false), x);
        assert_eq!(x.meet(AffineVal::Unknown, false), AffineVal::Unknown);
    }

    #[test]
    fn range_spans_threads_and_interval() {
        let f = Affine { a: 4, b: 64, lo: 8, hi: 12, uniform: true };
        // tx in [0,16), ty in [0,4): 4*15 + 64*3 + 12 = 264.
        assert_eq!(f.range(16, 4), (8, 264));
        let g = Affine { a: -4, b: 0, lo: 0, hi: 0, uniform: true };
        assert_eq!(g.range(8, 1), (-28, 0));
    }

    #[test]
    fn opaque_preserves_uniformity_only() {
        assert!(
            AffineVal::opaque(&[AffineVal::constant(3), AffineVal::uniform_unknown()]).is_uniform()
        );
        assert_eq!(
            AffineVal::opaque(&[AffineVal::constant(3), aff(1, 0, 0, 0)]),
            AffineVal::Unknown
        );
    }

    #[test]
    fn eval_requires_exact_constant() {
        let f = Affine { a: 4, b: 32, lo: 8, hi: 8, uniform: true };
        assert_eq!(f.eval(3, 2), Some(4 * 3 + 32 * 2 + 8));
        assert_eq!(Affine { a: 1, b: 0, lo: 0, hi: 4, uniform: true }.eval(1, 0), None);
    }
}
