//! Static loop trip-count inference over [`crate::dom::NaturalLoops`].
//!
//! For each natural loop the pass recognizes the canonical counted shape
//! the [`simt_isa::KernelBuilder`] loop combinators emit — a single
//! unguarded induction update `ctr += step` (or `-=`) dominating the
//! latch, and a single `setp` defining the back-edge guard from `ctr`
//! against a loop-invariant bound — and solves the per-entry body
//! execution count in closed form.
//!
//! Operand resolution is **launch-aware**: the bound (and step, and the
//! counter's init) may come through `Mov`/`IAdd`/`ISub`/`IMul`/`Shl`
//! chains from immediates, `S2R` launch geometry (`ntid`/`nctaid`), or
//! `Ld(Param)` words of the actual [`LaunchConfig`] — mirroring the
//! functional executor's parameter semantics (absent words read 0).
//! Values the chain cannot pin are bounded by the affine-interval domain
//! ([`crate::affine`]) at the loop preheader, including thread-dependent
//! affine inits/bounds, which yield warp-level `[min, max]` trips over the
//! block's thread range (a warp iterates until its slowest lane exits).
//!
//! A loop whose trip count cannot be bounded — opaque bound (`warpid`,
//! memory-carried values), non-induction counter, or a genuinely
//! divergent-unbounded shape — reports a human-readable reason; the cost
//! estimator in `simt-verify` surfaces that as the `E201` lint and widens
//! the kernel's cycle bracket to "unbounded".

use crate::affine::{self, AffineVal, FlowState};
use crate::cfg::Cfg;
use crate::dom::{Doms, NaturalLoop, NaturalLoops};
use simt_isa::{CmpOp, Instruction, Kernel, LaunchConfig, MemSpace, Op, Operand, Reg};

/// Iteration cap: trip counts beyond this report as unbounded (the
/// simulator would hit its own `max_cycles` wall long before).
pub const MAX_TRIPS: u64 = 1 << 34;

/// Inferred per-entry body execution bounds of one natural loop.
#[derive(Debug, Clone)]
pub struct LoopTrip {
    /// Program counter of the guarded back-edge branch (loop identity).
    pub back_edge_pc: usize,
    /// Header block id.
    pub header: usize,
    /// Body block ids (header and latch included).
    pub body: Vec<usize>,
    /// `[min, max]` body executions per loop entry for any warp of the
    /// launch, or the reason no bound exists.
    pub bound: Result<(u64, u64), String>,
}

/// Trip bounds for every natural loop of a kernel under one launch.
#[derive(Debug, Clone, Default)]
pub struct TripCounts {
    /// One entry per [`NaturalLoops`] loop, same order.
    pub loops: Vec<LoopTrip>,
}

impl TripCounts {
    /// The trip info of the loop with back-edge `pc`, if any.
    #[must_use]
    pub fn at_back_edge(&self, pc: usize) -> Option<&LoopTrip> {
        self.loops.iter().find(|l| l.back_edge_pc == pc)
    }

    /// Product of the `[min, max]` trip bounds of every loop whose body
    /// contains `block`, saturating at [`MAX_TRIPS`]. `Err` carries the
    /// first unboundable enclosing loop's reason.
    pub fn enclosing_product(&self, block: usize) -> Result<(u64, u64), String> {
        let mut min: u64 = 1;
        let mut max: u64 = 1;
        for l in &self.loops {
            if !l.body.contains(&block) {
                continue;
            }
            let (lo, hi) = l.bound.clone()?;
            min = min.saturating_mul(lo).min(MAX_TRIPS);
            max = max.saturating_mul(hi).min(MAX_TRIPS);
        }
        Ok((min, max))
    }
}

/// Infers trip bounds for all natural loops of `kernel` under `launch`.
///
/// `in_states` must be the affine fixpoint in-states of the same
/// kernel/CFG (entry-zeroed, matching the simulator's register file);
/// passing them in lets callers share one fixpoint across passes.
#[must_use]
pub fn infer_trips(
    kernel: &Kernel,
    cfg: &Cfg,
    doms: &Doms,
    loops: &NaturalLoops,
    launch: &LaunchConfig,
    in_states: &[FlowState],
) -> TripCounts {
    // Out-states by replaying each reachable block's body.
    let out_states: Vec<FlowState> = (0..cfg.len())
        .map(|b| {
            let mut st = in_states[b].clone();
            if st.reachable {
                for pc in cfg.blocks[b].range() {
                    affine::transfer(&mut st, &kernel.instrs[pc], launch.block.z);
                }
            }
            st
        })
        .collect();
    let loops_out = loops
        .loops
        .iter()
        .map(|l| LoopTrip {
            back_edge_pc: l.back_edge_pc,
            header: l.header,
            body: l.body.clone(),
            bound: infer_one(kernel, cfg, doms, loops, l, launch, &out_states),
        })
        .collect();
    TripCounts { loops: loops_out }
}

/// The continue-predicate: after each iteration the loop re-enters while
/// `v <cmp> bound` evaluates to `polarity`.
#[derive(Debug, Clone, Copy)]
struct Continue {
    cmp: CmpOp,
    polarity: bool,
}

impl Continue {
    fn holds(self, v: i128, bound: i128) -> bool {
        let t = match self.cmp {
            CmpOp::Eq => v == bound,
            CmpOp::Ne => v != bound,
            CmpOp::Lt => v < bound,
            CmpOp::Le => v <= bound,
            CmpOp::Gt => v > bound,
            CmpOp::Ge => v >= bound,
        };
        t == self.polarity
    }

    fn is_equality(self) -> bool {
        matches!(self.cmp, CmpOp::Eq | CmpOp::Ne)
    }
}

fn mirror(cmp: CmpOp) -> CmpOp {
    match cmp {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        c => c,
    }
}

fn infer_one(
    kernel: &Kernel,
    cfg: &Cfg,
    doms: &Doms,
    loops: &NaturalLoops,
    l: &NaturalLoop,
    launch: &LaunchConfig,
    out_states: &[FlowState],
) -> Result<(u64, u64), String> {
    let bra = &kernel.instrs[l.back_edge_pc];
    let guard = bra.guard.ok_or("back-edge branch has no guard")?;

    // The single in-body definition of the guard predicate.
    let pred_defs: Vec<usize> = l
        .body
        .iter()
        .flat_map(|&b| cfg.blocks[b].range())
        .filter(|&pc| kernel.instrs[pc].pdst == Some(guard.pred))
        .collect();
    let &[setp_pc] = pred_defs.as_slice() else {
        return Err(format!("guard predicate has {} in-body definitions", pred_defs.len()));
    };
    let setp = &kernel.instrs[setp_pc];
    let Op::Setp(cmp) = setp.op else {
        return Err("guard is not an integer setp".to_string());
    };
    if setp.guard.is_some() {
        return Err("guard setp is itself predicated".to_string());
    }
    if !doms.dominates(cfg.block_of[setp_pc], l.latch) {
        return Err("guard setp does not dominate the latch".to_string());
    }

    // Orient the comparison as `ctr <cmp> bound`.
    let (ctr, cmp, bound_op) = match (setp.srcs[0], setp.srcs[1]) {
        (Operand::Reg(r), other) if find_induction(kernel, cfg, doms, loops, l, r).is_some() => {
            (r, cmp, other)
        }
        (other, Operand::Reg(r)) if find_induction(kernel, cfg, doms, loops, l, r).is_some() => {
            (r, mirror(cmp), other)
        }
        _ => return Err("no compared operand is a recognized induction counter".to_string()),
    };
    let (update_pc, update) =
        find_induction(kernel, cfg, doms, loops, l, ctr).expect("checked above");
    let step = match update {
        Update::Affine(s) => resolve_const(kernel, launch, s, 0)
            .ok_or("induction step is not a launch-time constant")?,
        Update::Geometric(s) => {
            let ratio = resolve_const(kernel, launch, s, 0)
                .ok_or("induction ratio is not a launch-time constant")?;
            if ratio < 2 {
                return Err(format!("geometric induction ratio {ratio} makes no progress"));
            }
            ratio
        }
    };

    // Loop-invariant bound: launch-constant chain first, affine preheader
    // envelope second.
    let bound = match bound_op {
        Operand::Imm(v) => Interval::exact(i64::from(v as i32)),
        Operand::Reg(r) => {
            if l.body
                .iter()
                .flat_map(|&b| cfg.blocks[b].range())
                .any(|pc| kernel.instrs[pc].dst == Some(r))
            {
                return Err("loop bound is redefined inside the body".to_string());
            }
            value_interval(kernel, cfg, l, launch, out_states, r)
                .map_err(|e| format!("loop bound: {e}"))?
        }
    };

    // Counter init at the preheader.
    let init = value_interval(kernel, cfg, l, launch, out_states, ctr)
        .map_err(|e| format!("counter init: {e}"))?;

    // The latch tests the post-update value when the update precedes the
    // setp in the (latch-dominating, hence per-iteration) program order.
    let delta: i128 = if setp_pc < update_pc { 1 } else { 0 };
    let cont = Continue { cmp, polarity: !guard.negate };
    if cont.is_equality() && (!init.is_exact() || !bound.is_exact()) {
        return Err("equality-tested loop with inexact init or bound".to_string());
    }

    let mut min = u64::MAX;
    let mut max = 0u64;
    for &i0 in &[init.lo, init.hi] {
        for &n in &[bound.lo, bound.hi] {
            let t = match update {
                Update::Affine(_) => {
                    solve_trips(i128::from(i0), i128::from(step), i128::from(n), delta, cont)?
                }
                Update::Geometric(_) => solve_trips_geometric(
                    i128::from(i0),
                    i128::from(step),
                    i128::from(n),
                    delta,
                    cont,
                )?,
            };
            min = min.min(t);
            max = max.max(t);
        }
    }
    Ok((min, max))
}

/// A finite `[lo, hi]` envelope.
#[derive(Debug, Clone, Copy)]
struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn is_exact(self) -> bool {
        self.lo == self.hi
    }
}

/// The per-iteration shape of a recognized induction update.
#[derive(Debug, Clone, Copy)]
enum Update {
    /// `ctr += step` (or `-=`): the operand is the signed step.
    Affine(Operand),
    /// `ctr *= ratio` — stride-doubling loops (`iadd ctr, ctr`,
    /// `shl ctr, imm`, `imul ctr, m`): the operand is the ratio.
    Geometric(Operand),
}

/// The single in-body induction update of `ctr`: an unguarded
/// latch-dominating `IAdd`/`ISub` (affine) or self-multiplication
/// (geometric), not nested inside an inner loop.
fn find_induction(
    kernel: &Kernel,
    cfg: &Cfg,
    doms: &Doms,
    loops: &NaturalLoops,
    l: &NaturalLoop,
    ctr: Reg,
) -> Option<(usize, Update)> {
    let defs: Vec<usize> = l
        .body
        .iter()
        .flat_map(|&b| cfg.blocks[b].range())
        .filter(|&pc| kernel.instrs[pc].dst == Some(ctr))
        .collect();
    let &[pc] = defs.as_slice() else { return None };
    let i = &kernel.instrs[pc];
    if i.guard.is_some() || !doms.dominates(cfg.block_of[pc], l.latch) {
        return None;
    }
    // Executed once per iteration: not inside a strictly-nested loop.
    let b = cfg.block_of[pc];
    let nested = loops.loops.iter().any(|l2| {
        l2.back_edge_pc != l.back_edge_pc
            && l2.body.contains(&b)
            && l2.body.iter().all(|bb| l.body.contains(bb))
    });
    if nested {
        return None;
    }
    match (i.op, i.srcs.as_slice()) {
        (Op::IAdd, &[Operand::Reg(a), Operand::Reg(b)]) if a == ctr && b == ctr => {
            Some((pc, Update::Geometric(Operand::Imm(2))))
        }
        (Op::IAdd, &[Operand::Reg(a), s]) if a == ctr => Some((pc, Update::Affine(s))),
        (Op::IAdd, &[s, Operand::Reg(a)]) if a == ctr => Some((pc, Update::Affine(s))),
        (Op::ISub, &[Operand::Reg(a), s]) if a == ctr => {
            Some((pc, Update::Affine(negate_operand(s)?)))
        }
        (Op::Shl, &[Operand::Reg(a), Operand::Imm(sh)]) if a == ctr && (1..31).contains(&sh) => {
            Some((pc, Update::Geometric(Operand::Imm(1 << sh))))
        }
        (Op::IMul, &[Operand::Reg(a), s]) if a == ctr => Some((pc, Update::Geometric(s))),
        (Op::IMul, &[s, Operand::Reg(a)]) if a == ctr => Some((pc, Update::Geometric(s))),
        _ => None,
    }
}

/// `-imm`, when the operand is an immediate (register steps keep their
/// sign through [`resolve_const`] at the caller's negation point).
fn negate_operand(s: Operand) -> Option<Operand> {
    match s {
        Operand::Imm(v) => Some(Operand::Imm((v as i32).wrapping_neg() as u32)),
        Operand::Reg(_) => None,
    }
}

/// Resolves an operand to a launch-time constant by chasing its unique
/// static definition through pure arithmetic, launch geometry (`S2R`) and
/// parameter loads — the executor's exact semantics (absent params read
/// 0, immediates sign-extend).
fn resolve_const(kernel: &Kernel, launch: &LaunchConfig, op: Operand, depth: u32) -> Option<i64> {
    if depth > 32 {
        return None;
    }
    let r = match op {
        Operand::Imm(v) => return Some(i64::from(v as i32)),
        Operand::Reg(r) => r,
    };
    let defs: Vec<&Instruction> = kernel.instrs.iter().filter(|i| i.dst == Some(r)).collect();
    let &[i] = defs.as_slice() else { return None };
    if i.guard.is_some() {
        return None;
    }
    let s = |idx: usize| resolve_const(kernel, launch, i.srcs[idx], depth + 1);
    match i.op {
        Op::Mov => s(0),
        Op::IAdd => Some(s(0)?.checked_add(s(1)?)?),
        Op::ISub => Some(s(0)?.checked_sub(s(1)?)?),
        Op::IMul => Some(s(0)?.checked_mul(s(1)?)?),
        Op::Shl => Some(s(0)?.checked_shl(u32::try_from(s(1)?).ok()?)?),
        Op::S2R(sp) => {
            use simt_isa::SpecialReg as S;
            match sp {
                S::NtidX => Some(i64::from(launch.block.x)),
                S::NtidY => Some(i64::from(launch.block.y)),
                S::NtidZ => Some(i64::from(launch.block.z)),
                S::NctaidX => Some(i64::from(launch.grid.x)),
                S::NctaidY => Some(i64::from(launch.grid.y)),
                S::NctaidZ => Some(i64::from(launch.grid.z)),
                _ => None,
            }
        }
        Op::Ld(MemSpace::Param) => {
            let addr = s(0)?.checked_add(i64::from(i.offset))?;
            if addr < 0 {
                return None;
            }
            let word = usize::try_from(addr / 4).ok()?;
            Some(launch.params.get(word).map_or(0, |v| i64::from(v.0 as i32)))
        }
        _ => None,
    }
}

/// Finite envelope of register `r` at the loop preheader: the meet of the
/// affine out-states of the header's outside-the-body predecessors
/// (kernel entry for a loop headed at block 0). Thread-affine values are
/// widened over the launch's thread range — a warp runs a divergent loop
/// until its slowest lane exits, and every lane's trip lies inside the
/// envelope's corners.
fn value_interval(
    kernel: &Kernel,
    cfg: &Cfg,
    l: &NaturalLoop,
    launch: &LaunchConfig,
    out_states: &[FlowState],
    r: Reg,
) -> Result<Interval, String> {
    let nregs = usize::from(kernel.num_regs);
    let npreds = affine::num_preds(&kernel.instrs);
    let mut st = if l.header == 0 {
        FlowState::entry(nregs, npreds, true)
    } else {
        FlowState::unreachable(nregs, npreds)
    };
    for &p in &cfg.blocks[l.header].preds {
        if !l.body.contains(&p) {
            st.meet_with(&out_states[p], false);
        }
    }
    if !st.reachable {
        return Err("loop preheader is unreachable".to_string());
    }
    match st.regs[usize::from(r.0)] {
        AffineVal::Top => Ok(Interval::exact(0)), // never written: reads 0
        AffineVal::Aff(f) => {
            let (lo, hi) = f.range(i64::from(launch.block.x), i64::from(launch.block.y));
            if lo == affine::NEG_INF || hi == affine::POS_INF {
                // The interval domain widens loads away even when the
                // chain is launch-resolvable (e.g. a `Ld(Param)` bound):
                // chase the unique static definition before giving up.
                resolve_const(kernel, launch, Operand::Reg(r), 0)
                    .map(Interval::exact)
                    .ok_or_else(|| "value is unbounded at the preheader".to_string())
            } else {
                Ok(Interval { lo, hi })
            }
        }
        AffineVal::Unknown => {
            // Last chance: a launch-constant chain the interval domain
            // widened away (e.g. a param load).
            resolve_const(kernel, launch, Operand::Reg(r), 0)
                .map(Interval::exact)
                .ok_or_else(|| "value is not thread-affine or launch-constant".to_string())
        }
    }
}

/// Smallest `k >= 1` with `!cont(i0 + (k - delta) * step, bound)`: the
/// body execution count of a bottom-tested loop whose latch tests the
/// counter value `i0 + (k - delta) * step` after iteration `k`.
fn solve_trips(
    i0: i128,
    step: i128,
    bound: i128,
    delta: i128,
    cont: Continue,
) -> Result<u64, String> {
    let v = |k: i128| i0 + (k - delta) * step;
    if !cont.holds(v(1), bound) {
        return Ok(1);
    }
    if cont.is_equality() {
        // Continue while v == bound: leaves as soon as the counter moves.
        let eq_continue = cont.holds(bound, bound);
        if eq_continue {
            return if step == 0 {
                Err("equality loop with zero step never exits".to_string())
            } else {
                Ok(2)
            };
        }
        // Continue while v != bound: exits at the exact hit, if any.
        if step == 0 {
            return Err("inequality loop with zero step never exits".to_string());
        }
        let num = bound - i0;
        if num % step != 0 {
            return Err("inequality loop steps over its bound".to_string());
        }
        let k = num / step + delta;
        if k >= 1 {
            return u64::try_from(k).map_err(|_| "trip count overflows".to_string());
        }
        return Err("inequality loop never reaches its bound".to_string());
    }
    // Ordered comparison: the continue set is a half-line in the counter
    // value, so `!cont` is monotone in `k`; binary-search the first exit.
    let cap = i128::from(MAX_TRIPS);
    if cont.holds(v(cap), bound) {
        return Err(format!("no exit within {MAX_TRIPS} iterations"));
    }
    let (mut lo, mut hi) = (1i128, cap); // cont(lo) holds, !cont(hi)
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if cont.holds(v(mid), bound) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(u64::try_from(hi).expect("bounded by MAX_TRIPS"))
}

/// Smallest `k >= 1` with `!cont(i0 * ratio^(k - delta), bound)` — the
/// stride-doubling analog of [`solve_trips`]. With `ratio >= 2` the
/// counter magnitude at least doubles per iteration, so any exit arrives
/// before `i128` saturates (~130 iterations); iterate directly rather
/// than solving in closed form, which also covers the equality tests.
fn solve_trips_geometric(
    i0: i128,
    ratio: i128,
    bound: i128,
    delta: i128,
    cont: Continue,
) -> Result<u64, String> {
    if i0 == 0 {
        // The counter is stuck at zero: the test's verdict never changes.
        return if cont.holds(0, bound) {
            Err("geometric loop with zero counter never exits".to_string())
        } else {
            Ok(1)
        };
    }
    // Value tested after iteration 1, then multiplied once per iteration.
    let mut val = if delta == 1 { i0 } else { i0.saturating_mul(ratio) };
    for k in 1..=200u64 {
        if !cont.holds(val, bound) {
            return Ok(k);
        }
        val = val.saturating_mul(ratio);
    }
    Err("geometric loop shows no exit within the search cap".to_string())
}
