//! Post-dominator analysis and SIMT reconvergence points.
//!
//! A divergent branch reconverges at the *immediate post-dominator* of its
//! block — the classic stack-based SIMT reconvergence discipline the
//! baseline simulator implements. The analysis is the Cooper–Harvey–Kennedy
//! iterative algorithm run on the reversed CFG.

use crate::cfg::{BlockId, Cfg};
use simt_isa::Op;

/// Immediate post-dominators of every block, plus per-branch reconvergence
/// program counters.
#[derive(Debug, Clone)]
pub struct PostDoms {
    /// `ipdom[b]` is the immediate post-dominator of block `b` (the virtual
    /// exit post-dominates itself).
    pub ipdom: Vec<BlockId>,
}

impl PostDoms {
    /// Computes post-dominators of `cfg` with the Cooper–Harvey–Kennedy
    /// algorithm on the reversed graph (rooted at the virtual exit).
    ///
    /// Blocks that cannot reach the exit (closed infinite loops) keep the
    /// exit as their immediate post-dominator, which is harmless for
    /// reconvergence purposes.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> PostDoms {
        let n = cfg.len();
        let exit = cfg.exit_block();
        const UNDEF: usize = usize::MAX;

        // Postorder of the reversed graph (edges = CFG predecessors),
        // rooted at the exit. The root finishes last, so it receives the
        // highest postorder number; intersect() climbs ipdom links toward
        // higher numbers.
        let mut po = vec![UNDEF; n];
        let mut order: Vec<BlockId> = Vec::with_capacity(n);
        {
            let mut visited = vec![false; n];
            let mut stack: Vec<(BlockId, usize)> = vec![(exit, 0)];
            visited[exit] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < cfg.blocks[b].preds.len() {
                    let p = cfg.blocks[b].preds[*i];
                    *i += 1;
                    if !visited[p] {
                        visited[p] = true;
                        stack.push((p, 0));
                    }
                } else {
                    po[b] = order.len();
                    order.push(b);
                    stack.pop();
                }
            }
        }

        let mut ipdom = vec![UNDEF; n];
        ipdom[exit] = exit;

        let intersect = |ipdom: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while po[a] < po[b] {
                    a = ipdom[a];
                }
                while po[b] < po[a] {
                    b = ipdom[b];
                }
            }
            a
        };

        // Process in reverse postorder (exit first).
        let rpo: Vec<BlockId> = order.iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == exit {
                    continue;
                }
                // "Predecessors" in the reversed graph are CFG successors.
                let mut new_idom = UNDEF;
                for &s in &cfg.blocks[b].succs {
                    if po[s] != UNDEF && ipdom[s] != UNDEF {
                        new_idom =
                            if new_idom == UNDEF { s } else { intersect(&ipdom, new_idom, s) };
                    }
                }
                if new_idom != UNDEF && ipdom[b] != new_idom {
                    ipdom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Blocks that never reach the exit: pin to the exit.
        for d in ipdom.iter_mut() {
            if *d == UNDEF {
                *d = exit;
            }
        }
        PostDoms { ipdom }
    }

    /// True when `a` post-dominates `b`.
    #[must_use]
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.ipdom[cur];
            if next == cur {
                return false;
            }
            cur = next;
        }
    }
}

/// Per-branch reconvergence points: for each conditional branch instruction,
/// the instruction index where diverged warp halves re-join (the first
/// instruction of the branch block's immediate post-dominator).
#[derive(Debug, Clone)]
pub struct ReconvergenceTable {
    /// `recon[pc]` is `Some(join_pc)` when instruction `pc` is a guarded
    /// branch; `join_pc == usize::MAX` denotes reconvergence at exit.
    pub recon: Vec<Option<usize>>,
}

/// Sentinel reconvergence PC meaning "at thread exit".
pub const RECONVERGE_AT_EXIT: usize = usize::MAX;

impl ReconvergenceTable {
    /// Computes the table for `kernel` using `cfg` and its post-dominators.
    #[must_use]
    pub fn compute(kernel: &simt_isa::Kernel, cfg: &Cfg, pdoms: &PostDoms) -> ReconvergenceTable {
        let mut recon = vec![None; kernel.instrs.len()];
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if let Op::Bra { .. } = i.op {
                if i.guard.is_some() {
                    let b = cfg.block_of[pc];
                    let j = pdoms.ipdom[b];
                    recon[pc] = Some(if j == cfg.exit_block() {
                        RECONVERGE_AT_EXIT
                    } else {
                        cfg.blocks[j].start
                    });
                }
            }
        }
        ReconvergenceTable { recon }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Guard, KernelBuilder, SpecialReg};

    #[test]
    fn diamond_reconverges_at_join() {
        let mut b = KernelBuilder::new("d");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        let out = b.alloc();
        b.if_then_else(Guard::if_true(p), |b| b.mov_to(out, 1u32), |b| b.mov_to(out, 2u32));
        b.store(simt_isa::MemSpace::Global, 0u32, out, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        // The first guarded branch must reconverge at the store instruction.
        let store_pc = k.instrs.iter().position(|i| i.op.is_store()).expect("kernel stores");
        let branch_pc = k
            .instrs
            .iter()
            .position(|i| i.op.is_branch() && i.guard.is_some())
            .expect("guarded branch");
        assert_eq!(rt.recon[branch_pc], Some(store_pc));
    }

    #[test]
    fn if_then_reconverges_after_body() {
        let mut b = KernelBuilder::new("it");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        b.if_then(Guard::if_true(p), |b| {
            let one = b.mov(1u32);
            b.store(simt_isa::MemSpace::Global, 0u32, one, 0);
        });
        let x = b.mov(9u32);
        b.store(simt_isa::MemSpace::Global, 4u32, x, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        let branch_pc = 2;
        assert!(k.instrs[branch_pc].op.is_branch());
        // Joins at the `mov 9` after the body (instruction 5).
        assert_eq!(rt.recon[branch_pc], Some(5));
    }

    #[test]
    fn loop_branch_reconverges_at_loop_exit() {
        let mut b = KernelBuilder::new("lp");
        let i = b.mov(0u32);
        b.do_while(|b| {
            b.iadd_to(i, i, 1u32);
            let p = b.setp(CmpOp::Lt, i, 8u32);
            Guard::if_true(p)
        });
        b.store(simt_isa::MemSpace::Global, 0u32, i, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        let branch_pc = k.instrs.iter().position(|x| x.op.is_branch()).unwrap();
        let store_pc = k.instrs.iter().position(|x| x.op.is_store()).unwrap();
        assert_eq!(rt.recon[branch_pc], Some(store_pc));
    }

    #[test]
    fn post_dominance_relation() {
        let mut b = KernelBuilder::new("pd");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        b.if_then(Guard::if_true(p), |b| {
            let _ = b.mov(1u32);
        });
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let exit = cfg.exit_block();
        for blk in 0..cfg.len() {
            assert!(pd.post_dominates(exit, blk), "exit post-dominates everything");
        }
        // The body block does not post-dominate the entry.
        assert!(!pd.post_dominates(1, 0));
    }

    #[test]
    fn unguarded_branches_have_no_reconvergence_entry() {
        let mut b = KernelBuilder::new("ub");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Eq, t, 0u32);
        b.if_then_else(
            Guard::if_true(p),
            |b| {
                let _ = b.mov(1u32);
            },
            |b| {
                let _ = b.mov(2u32);
            },
        );
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        for (pc, i) in k.instrs.iter().enumerate() {
            if i.op.is_branch() && i.guard.is_none() {
                assert_eq!(rt.recon[pc], None, "unguarded branch at {pc}");
            }
        }
    }
}
