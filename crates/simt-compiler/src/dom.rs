//! Post-dominator analysis and SIMT reconvergence points.
//!
//! A divergent branch reconverges at the *immediate post-dominator* of its
//! block — the classic stack-based SIMT reconvergence discipline the
//! baseline simulator implements. The analysis is the Cooper–Harvey–Kennedy
//! iterative algorithm run on the reversed CFG.

use crate::cfg::{BlockId, Cfg};
use simt_isa::Op;

/// Immediate post-dominators of every block, plus per-branch reconvergence
/// program counters.
#[derive(Debug, Clone)]
pub struct PostDoms {
    /// `ipdom[b]` is the immediate post-dominator of block `b` (the virtual
    /// exit post-dominates itself).
    pub ipdom: Vec<BlockId>,
}

impl PostDoms {
    /// Computes post-dominators of `cfg` with the Cooper–Harvey–Kennedy
    /// algorithm on the reversed graph (rooted at the virtual exit).
    ///
    /// Blocks that cannot reach the exit (closed infinite loops) keep the
    /// exit as their immediate post-dominator, which is harmless for
    /// reconvergence purposes.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> PostDoms {
        let n = cfg.len();
        let exit = cfg.exit_block();
        const UNDEF: usize = usize::MAX;

        // Postorder of the reversed graph (edges = CFG predecessors),
        // rooted at the exit. The root finishes last, so it receives the
        // highest postorder number; intersect() climbs ipdom links toward
        // higher numbers.
        let mut po = vec![UNDEF; n];
        let mut order: Vec<BlockId> = Vec::with_capacity(n);
        {
            let mut visited = vec![false; n];
            let mut stack: Vec<(BlockId, usize)> = vec![(exit, 0)];
            visited[exit] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < cfg.blocks[b].preds.len() {
                    let p = cfg.blocks[b].preds[*i];
                    *i += 1;
                    if !visited[p] {
                        visited[p] = true;
                        stack.push((p, 0));
                    }
                } else {
                    po[b] = order.len();
                    order.push(b);
                    stack.pop();
                }
            }
        }

        let mut ipdom = vec![UNDEF; n];
        ipdom[exit] = exit;

        let intersect = |ipdom: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while po[a] < po[b] {
                    a = ipdom[a];
                }
                while po[b] < po[a] {
                    b = ipdom[b];
                }
            }
            a
        };

        // Process in reverse postorder (exit first).
        let rpo: Vec<BlockId> = order.iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == exit {
                    continue;
                }
                // "Predecessors" in the reversed graph are CFG successors.
                let mut new_idom = UNDEF;
                for &s in &cfg.blocks[b].succs {
                    if po[s] != UNDEF && ipdom[s] != UNDEF {
                        new_idom =
                            if new_idom == UNDEF { s } else { intersect(&ipdom, new_idom, s) };
                    }
                }
                if new_idom != UNDEF && ipdom[b] != new_idom {
                    ipdom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Blocks that never reach the exit: pin to the exit.
        for d in ipdom.iter_mut() {
            if *d == UNDEF {
                *d = exit;
            }
        }
        PostDoms { ipdom }
    }

    /// True when `a` post-dominates `b`.
    #[must_use]
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.ipdom[cur];
            if next == cur {
                return false;
            }
            cur = next;
        }
    }
}

/// Immediate (forward) dominators of every block, rooted at the entry.
#[derive(Debug, Clone)]
pub struct Doms {
    /// `idom[b]` is the immediate dominator of block `b` (the entry
    /// dominates itself). Blocks unreachable from the entry are pinned to
    /// the entry.
    pub idom: Vec<BlockId>,
}

impl Doms {
    /// Computes forward dominators of `cfg` with the Cooper–Harvey–Kennedy
    /// algorithm, rooted at block 0.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Doms {
        let n = cfg.len();
        let entry: BlockId = 0;
        const UNDEF: usize = usize::MAX;

        // Postorder of the forward graph rooted at the entry. The root
        // finishes last, so it receives the highest postorder number;
        // intersect() climbs idom links toward higher numbers.
        let mut po = vec![UNDEF; n];
        let mut order: Vec<BlockId> = Vec::with_capacity(n);
        {
            let mut visited = vec![false; n];
            let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
            visited[entry] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < cfg.blocks[b].succs.len() {
                    let s = cfg.blocks[b].succs[*i];
                    *i += 1;
                    if !visited[s] {
                        visited[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    po[b] = order.len();
                    order.push(b);
                    stack.pop();
                }
            }
        }

        let mut idom = vec![UNDEF; n];
        idom[entry] = entry;

        let intersect = |idom: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while po[a] < po[b] {
                    a = idom[a];
                }
                while po[b] < po[a] {
                    b = idom[b];
                }
            }
            a
        };

        let rpo: Vec<BlockId> = order.iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == entry {
                    continue;
                }
                let mut new_idom = UNDEF;
                for &p in &cfg.blocks[b].preds {
                    if po[p] != UNDEF && idom[p] != UNDEF {
                        new_idom =
                            if new_idom == UNDEF { p } else { intersect(&idom, new_idom, p) };
                    }
                }
                if new_idom != UNDEF && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // Unreachable blocks: pin to the entry.
        for d in idom.iter_mut() {
            if *d == UNDEF {
                *d = entry;
            }
        }
        Doms { idom }
    }

    /// True when `a` dominates `b`.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur];
            if next == cur {
                return false;
            }
            cur = next;
        }
    }
}

/// One natural loop the symbolic engine can summarize: a single back edge
/// `latch -> header` where the header dominates the latch, the latch ends
/// in a guarded branch targeting the header's first instruction, and every
/// other edge leaving a body block stays inside the body (so the branch's
/// fall-through is the unique loop exit).
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Block whose first instruction is the loop entry.
    pub header: BlockId,
    /// Block containing the back-edge branch.
    pub latch: BlockId,
    /// Program counter of the guarded back-edge branch (last instruction of
    /// the latch).
    pub back_edge_pc: usize,
    /// First instruction of the header (the branch target).
    pub header_pc: usize,
    /// Blocks in the loop body, header and latch included.
    pub body: Vec<BlockId>,
}

/// All summarizable natural loops of a kernel, indexed by back-edge pc.
#[derive(Debug, Clone, Default)]
pub struct NaturalLoops {
    /// Loops in discovery order (by back-edge pc).
    pub loops: Vec<NaturalLoop>,
}

impl NaturalLoops {
    /// Finds single-back-edge natural loops whose only exit is the back
    /// edge's fall-through. Loops that share a header with another back
    /// edge, or whose body has a side exit, are skipped — the symbolic
    /// engine falls back to unrolling those.
    #[must_use]
    pub fn compute(kernel: &simt_isa::Kernel, cfg: &Cfg, doms: &Doms) -> NaturalLoops {
        let mut back_edges: Vec<(BlockId, BlockId, usize)> = Vec::new();
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if let Op::Bra { target } = i.op {
                if i.guard.is_some() {
                    let latch = cfg.block_of[pc];
                    // The back edge must be the block's last instruction and
                    // target a block header that dominates the latch.
                    if pc + 1 != cfg.blocks[latch].end {
                        continue;
                    }
                    if target >= cfg.block_of.len() {
                        continue;
                    }
                    let header = cfg.block_of[target];
                    // The branch must land on the block's first instruction.
                    if cfg.blocks[header].start != target {
                        continue;
                    }
                    if doms.dominates(header, latch) {
                        back_edges.push((latch, header, pc));
                    }
                }
            }
        }
        let mut loops = Vec::new();
        'edges: for &(latch, header, pc) in &back_edges {
            // One back edge per header only.
            if back_edges.iter().filter(|&&(_, h, _)| h == header).count() != 1 {
                continue;
            }
            // Body = {header} ∪ blocks reaching the latch without passing
            // the header (standard natural-loop body, walked backwards).
            let mut in_body = vec![false; cfg.len()];
            in_body[header] = true;
            let mut stack = vec![latch];
            while let Some(b) = stack.pop() {
                if in_body[b] {
                    continue;
                }
                in_body[b] = true;
                for &p in &cfg.blocks[b].preds {
                    stack.push(p);
                }
            }
            // Every edge out of the body must be the back-edge branch's
            // fall-through; any other side exit disqualifies the loop.
            for b in 0..cfg.len() {
                if !in_body[b] {
                    continue;
                }
                for &s in &cfg.blocks[b].succs {
                    if in_body[s] {
                        continue;
                    }
                    let is_latch_fallthrough =
                        b == latch && cfg.blocks[latch].succs.get(1) == Some(&s);
                    if !is_latch_fallthrough {
                        continue 'edges;
                    }
                }
            }
            let body: Vec<BlockId> = (0..cfg.len()).filter(|&b| in_body[b]).collect();
            loops.push(NaturalLoop {
                header,
                latch,
                back_edge_pc: pc,
                header_pc: cfg.blocks[header].start,
                body,
            });
        }
        NaturalLoops { loops }
    }

    /// The loop whose back-edge branch sits at `pc`, if any.
    #[must_use]
    pub fn at_back_edge(&self, pc: usize) -> Option<&NaturalLoop> {
        self.loops.iter().find(|l| l.back_edge_pc == pc)
    }
}

/// Per-branch reconvergence points: for each conditional branch instruction,
/// the instruction index where diverged warp halves re-join (the first
/// instruction of the branch block's immediate post-dominator).
#[derive(Debug, Clone)]
pub struct ReconvergenceTable {
    /// `recon[pc]` is `Some(join_pc)` when instruction `pc` is a guarded
    /// branch; `join_pc == usize::MAX` denotes reconvergence at exit.
    pub recon: Vec<Option<usize>>,
}

/// Sentinel reconvergence PC meaning "at thread exit".
pub const RECONVERGE_AT_EXIT: usize = usize::MAX;

impl ReconvergenceTable {
    /// Computes the table for `kernel` using `cfg` and its post-dominators.
    #[must_use]
    pub fn compute(kernel: &simt_isa::Kernel, cfg: &Cfg, pdoms: &PostDoms) -> ReconvergenceTable {
        let mut recon = vec![None; kernel.instrs.len()];
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if let Op::Bra { .. } = i.op {
                if i.guard.is_some() {
                    let b = cfg.block_of[pc];
                    let j = pdoms.ipdom[b];
                    recon[pc] = Some(if j == cfg.exit_block() {
                        RECONVERGE_AT_EXIT
                    } else {
                        cfg.blocks[j].start
                    });
                }
            }
        }
        ReconvergenceTable { recon }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::{CmpOp, Guard, KernelBuilder, SpecialReg};

    #[test]
    fn diamond_reconverges_at_join() {
        let mut b = KernelBuilder::new("d");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        let out = b.alloc();
        b.if_then_else(Guard::if_true(p), |b| b.mov_to(out, 1u32), |b| b.mov_to(out, 2u32));
        b.store(simt_isa::MemSpace::Global, 0u32, out, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        // The first guarded branch must reconverge at the store instruction.
        let store_pc = k.instrs.iter().position(|i| i.op.is_store()).expect("kernel stores");
        let branch_pc = k
            .instrs
            .iter()
            .position(|i| i.op.is_branch() && i.guard.is_some())
            .expect("guarded branch");
        assert_eq!(rt.recon[branch_pc], Some(store_pc));
    }

    #[test]
    fn if_then_reconverges_after_body() {
        let mut b = KernelBuilder::new("it");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        b.if_then(Guard::if_true(p), |b| {
            let one = b.mov(1u32);
            b.store(simt_isa::MemSpace::Global, 0u32, one, 0);
        });
        let x = b.mov(9u32);
        b.store(simt_isa::MemSpace::Global, 4u32, x, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        let branch_pc = 2;
        assert!(k.instrs[branch_pc].op.is_branch());
        // Joins at the `mov 9` after the body (instruction 5).
        assert_eq!(rt.recon[branch_pc], Some(5));
    }

    #[test]
    fn loop_branch_reconverges_at_loop_exit() {
        let mut b = KernelBuilder::new("lp");
        let i = b.mov(0u32);
        b.do_while(|b| {
            b.iadd_to(i, i, 1u32);
            let p = b.setp(CmpOp::Lt, i, 8u32);
            Guard::if_true(p)
        });
        b.store(simt_isa::MemSpace::Global, 0u32, i, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        let branch_pc = k.instrs.iter().position(|x| x.op.is_branch()).unwrap();
        let store_pc = k.instrs.iter().position(|x| x.op.is_store()).unwrap();
        assert_eq!(rt.recon[branch_pc], Some(store_pc));
    }

    #[test]
    fn post_dominance_relation() {
        let mut b = KernelBuilder::new("pd");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Lt, t, 4u32);
        b.if_then(Guard::if_true(p), |b| {
            let _ = b.mov(1u32);
        });
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let exit = cfg.exit_block();
        for blk in 0..cfg.len() {
            assert!(pd.post_dominates(exit, blk), "exit post-dominates everything");
        }
        // The body block does not post-dominate the entry.
        assert!(!pd.post_dominates(1, 0));
    }

    #[test]
    fn forward_dominators_and_natural_loop_of_do_while() {
        let mut b = KernelBuilder::new("nl");
        let i = b.mov(0u32);
        b.do_while(|b| {
            b.iadd_to(i, i, 1u32);
            let p = b.setp(CmpOp::Lt, i, 8u32);
            Guard::if_true(p)
        });
        b.store(simt_isa::MemSpace::Global, 0u32, i, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let doms = Doms::compute(&cfg);
        // Entry dominates everything.
        for blk in 0..cfg.len() {
            assert!(doms.dominates(0, blk), "entry dominates block {blk}");
        }
        let loops = NaturalLoops::compute(&k, &cfg, &doms);
        assert_eq!(loops.loops.len(), 1, "one natural loop");
        let l = &loops.loops[0];
        let branch_pc = k.instrs.iter().position(|x| x.op.is_branch()).unwrap();
        assert_eq!(l.back_edge_pc, branch_pc);
        assert_eq!(
            l.header_pc,
            match k.instrs[branch_pc].op {
                Op::Bra { target } => target,
                _ => unreachable!(),
            }
        );
        assert!(l.body.contains(&l.header) && l.body.contains(&l.latch));
        assert!(loops.at_back_edge(branch_pc).is_some());
        assert!(loops.at_back_edge(branch_pc + 1).is_none());
    }

    #[test]
    fn loop_with_side_exit_is_not_summarizable() {
        // A loop body containing a guarded exit before the back edge: the
        // body has two ways out, so NaturalLoops must skip it.
        let mut b = KernelBuilder::new("side");
        let t = b.special(SpecialReg::TidX);
        let i = b.mov(0u32);
        let top = b.here();
        b.iadd_to(i, i, 1u32);
        let q = b.setp(CmpOp::Eq, i, t);
        b.if_then(Guard::if_true(q), |b| {
            b.store(simt_isa::MemSpace::Global, 0u32, i, 0);
        });
        let p = b.setp(CmpOp::Lt, i, 8u32);
        b.branch_back_if(top, Guard::if_true(p));
        b.store(simt_isa::MemSpace::Global, 4u32, i, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let doms = Doms::compute(&cfg);
        let loops = NaturalLoops::compute(&k, &cfg, &doms);
        // The inner if_then is fine (not a loop); the back edge itself is a
        // well-formed single-exit loop, so it IS summarizable. What must
        // never appear is a loop keyed on the if_then's branch.
        let if_pc = k
            .instrs
            .iter()
            .position(|x| x.op.is_branch() && x.guard.is_some())
            .expect("guarded branch");
        assert!(loops.at_back_edge(if_pc).is_none(), "forward branch is not a back edge");
        for l in &loops.loops {
            assert!(doms.dominates(l.header, l.latch));
        }
    }

    #[test]
    fn straight_line_kernel_has_no_loops() {
        let mut b = KernelBuilder::new("sl");
        let t = b.special(SpecialReg::TidX);
        let a = b.shl_imm(t, 2);
        b.store(simt_isa::MemSpace::Global, a, t, 0);
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let doms = Doms::compute(&cfg);
        let loops = NaturalLoops::compute(&k, &cfg, &doms);
        assert!(loops.loops.is_empty());
    }

    #[test]
    fn unguarded_branches_have_no_reconvergence_entry() {
        let mut b = KernelBuilder::new("ub");
        let t = b.special(SpecialReg::TidX);
        let p = b.setp(CmpOp::Eq, t, 0u32);
        b.if_then_else(
            Guard::if_true(p),
            |b| {
                let _ = b.mov(1u32);
            },
            |b| {
                let _ = b.mov(2u32);
            },
        );
        let k = b.finish();
        let cfg = Cfg::build(&k);
        let pd = PostDoms::compute(&cfg);
        let rt = ReconvergenceTable::compute(&k, &cfg, &pd);
        for (pc, i) in k.instrs.iter().enumerate() {
            if i.op.is_branch() && i.guard.is_none() {
                assert_eq!(rt.recon[pc], None, "unguarded branch at {pc}");
            }
        }
    }
}
